// Word engine — the shared kernel every MPCBF variant is built from.
//
// The paper's contribution is one small machine: hash bits are turned into
// g word targets with ⌈k/g⌉ level-1 positions each (Sec. III-C), and each
// word runs the hierarchical counter walk of core/hcbf.hpp. Before this
// header existed that kernel was hand-copied into Mpcbf, AtomicMpcbf and
// (indirectly) ShardedMpcbf/DurableMpcbf, each copy drifting on limits and
// missing the batched prefetch pipeline. This header is the single source:
//
//   * TargetDeriver — HashBitStream -> Targets (words + positions) in the
//     one canonical derivation order every operation must agree on, with
//     the paper's consumed-bit accounting riding along in the stream.
//   * WordPlan / group_by_word — the same targets regrouped by *distinct*
//     word, the layout single-CAS-per-word storage needs.
//   * LevelWalk<W> — the hierarchical increment/decrement/min-counter
//     walk applied across a target set, storage-policy agnostic.
//   * PlainWords<W> / AtomicWords64 — the two storage policies: a plain
//     word vector with a cached hierarchy-usage sidecar (external
//     synchronization), and a seq-consistent CAS-loop word vector that
//     re-derives capacity from the word value (lock-free, W == 64).
//   * evaluate_lazy / evaluate_eager — membership evaluation over
//     pre-derived targets replaying each scalar query's exact visit order
//     and accounting, which is what makes batch and scalar stats
//     bit-for-bit comparable (tests/test_stats_parity.cpp).
//   * chunked_pipeline + BatchStatsAccumulator — the software-pipelined
//     batch skeleton (derive a chunk -> prefetch its words -> resolve)
//     and the one-publish-per-class stats plumbing shared by every
//     contains_batch/insert_batch.
//
// Stats/trace stay pluggable: the engine records through the caller's
// AccessStats and the MPCBF_TRACE_* macros at the filter layer, so the
// MPCBF_DISABLE_ACCESS_STATS / MPCBF_DISABLE_TRACING twins compile the
// instrumentation out exactly as before.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bitvec/word_bitset.hpp"
#include "core/hcbf.hpp"
#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"
#include "model/fpr_model.hpp"

namespace mpcbf::core::engine {

// Hot-path force-inline: the engine decomposes what used to be one big
// member function per operation into small policy pieces; without the
// hint GCC keeps some of them (notably derive_all) out of line at -O2,
// costing ~15% on scalar insert/erase.
#if defined(__GNUC__) || defined(__clang__)
#define MPCBF_ENGINE_INLINE __attribute__((always_inline)) inline
#else
#define MPCBF_ENGINE_INLINE inline
#endif

/// Hard limits shared by every variant. g is bounded by the fixed-size
/// target arrays; ⌈k/g⌉ by the per-word position arrays. One word can
/// receive up to k = kMaxG * kMaxKPerWord positions when all g hashes
/// collide, which is what sizes the flat arrays below.
inline constexpr unsigned kMaxG = 8;
inline constexpr unsigned kMaxKPerWord = 32;
inline constexpr unsigned kMaxPositions = kMaxG * kMaxKPerWord;

/// Shared constructor validation: every variant accepts and rejects the
/// same (k, g) shapes. `name` prefixes the exception message.
[[noreturn]] inline void throw_shape_error(const char* name,
                                           const char* what) {
  std::string msg(name);
  msg.append(": ").append(what);
  throw std::invalid_argument(msg);
}

inline void validate_shape(unsigned k, unsigned g, const char* name) {
  if (k == 0) throw_shape_error(name, "k must be >= 1");
  if (g == 0 || g > k) throw_shape_error(name, "need 1 <= g <= k");
  if (g > kMaxG) throw_shape_error(name, "g too large");
  if ((k + g - 1) / g > kMaxKPerWord) {
    throw_shape_error(name, "too many hashes per word");
  }
}

/// Fixed-capacity set of the distinct words an operation touches — the
/// paper's "memory accesses" unit (duplicate hash words cost one access).
struct SeenWords {
  std::array<std::size_t, kMaxG> ids;
  std::size_t count = 0;

  /// Returns true iff `w` was not already present.
  bool add(std::size_t w) noexcept {
    for (std::size_t s = 0; s < count; ++s) {
      if (ids[s] == w) return false;
    }
    ids[count++] = w;
    return true;
  }
};

/// An operation's derived targets in canonical (derivation) order:
/// word t, then its positions — the order queries consume, so inserts,
/// deletes and queries agree on every hash bit.
struct Targets {
  std::array<std::size_t, kMaxPositions> word_of;
  std::array<unsigned, kMaxPositions> pos;
  // Word index per hash group, including groups with zero positions
  // (uneven k/g splits): those words have no word_of entry yet still cost
  // a memory touch, which batch accounting must replicate.
  std::array<std::size_t, kMaxG> group_word;
  unsigned total_positions = 0;
  std::size_t distinct_words = 0;
};

/// The same targets regrouped by distinct word (first-seen order),
/// positions contiguous per word in derivation order — the layout a
/// single-CAS-per-word storage applies in one shot. CSR-style so a word
/// that absorbs every group's positions still fits.
struct WordPlan {
  std::array<std::size_t, kMaxG> word;
  std::array<unsigned, kMaxG + 1> offset;
  std::array<unsigned, kMaxPositions> pos;
  unsigned num_words = 0;
};

/// Turns a HashBitStream into the Targets word/position set. Holds only
/// the layout scalars, so filters construct one per operation for free.
class TargetDeriver {
 public:
  TargetDeriver(std::size_t num_words, unsigned k, unsigned g,
                unsigned b1) noexcept
      : num_words_(num_words), k_(k), g_(g), b1_(b1) {}

  /// Derives all g word indices and k positions in the canonical order.
  /// Consumed-bit accounting accrues in the stream itself.
  MPCBF_ENGINE_INLINE void derive_all(hash::HashBitStream& stream,
                                      Targets& t) const {
    SeenWords seen;
    t.total_positions = 0;
    for (unsigned wi = 0; wi < g_; ++wi) {
      const std::size_t w = stream.next_index(num_words_);
      t.group_word[wi] = w;
      seen.add(w);
      const unsigned kw = model::hashes_per_word(k_, g_, wi);
      for (unsigned i = 0; i < kw; ++i) {
        t.word_of[t.total_positions] = w;
        t.pos[t.total_positions] =
            static_cast<unsigned>(stream.next_index(b1_));
        ++t.total_positions;
      }
    }
    t.distinct_words = seen.count;
  }

  [[nodiscard]] std::size_t num_words() const noexcept { return num_words_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned g() const noexcept { return g_; }
  [[nodiscard]] unsigned b1() const noexcept { return b1_; }

 private:
  std::size_t num_words_;
  unsigned k_;
  unsigned g_;
  unsigned b1_;
};

/// Regroups canonical targets by distinct word. Position order within a
/// word is derivation order, so applying a plan produces bit-identical
/// word state to applying the flat targets.
inline void group_by_word(const Targets& t, WordPlan& p) noexcept {
  p.num_words = 0;
  unsigned filled = 0;
  p.offset[0] = 0;
  for (unsigned i = 0; i < t.total_positions; ++i) {
    bool known = false;
    for (unsigned s = 0; s < p.num_words; ++s) {
      if (p.word[s] == t.word_of[i]) {
        known = true;
        break;
      }
    }
    if (known) continue;
    const std::size_t w = t.word_of[i];
    p.word[p.num_words] = w;
    for (unsigned j = i; j < t.total_positions; ++j) {
      if (t.word_of[j] == w) p.pos[filled++] = t.pos[j];
    }
    p.offset[++p.num_words] = filled;
  }
}

/// Verdict + accounting of one evaluated query, in the paper's units.
struct BatchEval {
  bool positive;
  std::size_t words_touched;
  std::uint64_t hash_bits;
};

/// Evaluates pre-derived targets with exactly the lazy scalar query's
/// visit order and accounting: hash bits are charged per word index
/// (ceil_log2(l)) and per consumed position (ceil_log2(b1)), stopping at
/// the same point scalar short-circuiting stops the lazy stream, and
/// words_touched deduplicates colliding groups identically. `test(w, pos)`
/// reads a level-1 bit.
template <class TestBit>
[[nodiscard]] BatchEval evaluate_lazy(const Targets& t, std::size_t num_words,
                                      unsigned k, unsigned g, unsigned b1,
                                      bool short_circuit, TestBit&& test) {
  const unsigned log2_l = hash::ceil_log2(num_words);
  const unsigned log2_b1 = hash::ceil_log2(b1);
  BatchEval ev{true, 0, 0};
  SeenWords seen;
  unsigned idx = 0;
  for (unsigned wi = 0; wi < g; ++wi) {
    const unsigned kw = model::hashes_per_word(k, g, wi);
    if (!ev.positive && short_circuit) break;
    const std::size_t w = t.group_word[wi];
    ev.hash_bits += log2_l;
    seen.add(w);
    ev.words_touched = seen.count;
    for (unsigned i = 0; i < kw; ++i) {
      ev.hash_bits += log2_b1;
      if (!test(w, t.pos[idx + i])) {
        ev.positive = false;
        if (short_circuit) break;
      }
    }
    idx += kw;
  }
  return ev;
}

/// All-or-nothing capacity check: aggregates the increments each distinct
/// word would receive (g hash words can collide) before mutating.
/// `capacity` is the word's hierarchy budget, W - b1.
[[nodiscard]] inline bool capacity_ok(
    const Targets& t, std::span<const std::uint16_t> hier_used,
    unsigned capacity) noexcept {
  std::array<std::size_t, kMaxG> word{};
  std::array<unsigned, kMaxG> needed{};
  std::size_t n_distinct = 0;
  for (unsigned i = 0; i < t.total_positions; ++i) {
    bool found = false;
    for (std::size_t s = 0; s < n_distinct; ++s) {
      if (word[s] == t.word_of[i]) {
        ++needed[s];
        found = true;
        break;
      }
    }
    if (!found) {
      word[n_distinct] = t.word_of[i];
      needed[n_distinct] = 1;
      ++n_distinct;
    }
  }
  for (std::size_t s = 0; s < n_distinct; ++s) {
    if (hier_used[word[s]] + needed[s] > capacity) return false;
  }
  return true;
}

// --- storage policies ----------------------------------------------------

/// Plain storage: a word vector plus the cached per-word hierarchy usage
/// (derivable from the word state; kept in sync by increment/decrement).
/// Mutations require external synchronization; const reads are safe
/// concurrently with each other.
template <unsigned W>
class PlainWords {
 public:
  using Word = bits::WordBitset<W>;

  void init(std::size_t l) {
    words_.resize(l);
    hier_used_.assign(l, 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return words_.size(); }
  [[nodiscard]] bool test(std::size_t w, unsigned pos) const noexcept {
    return words_[w].test(pos);
  }
  void prefetch(std::size_t w, bool for_write) const noexcept {
    // GCC requires the rw argument to be a literal constant (clang folds
    // the ternary even at -O0); branch so both accept it.
    if (for_write) {
      __builtin_prefetch(&words_[w], 1, 1);
    } else {
      __builtin_prefetch(&words_[w], 0, 1);
    }
  }

  /// Increments the counter at (w, pos), keeping the usage cache in sync.
  HcbfResult increment(std::size_t w, unsigned b1, unsigned pos) noexcept {
    const HcbfResult r = Hcbf<W>::increment(words_[w], b1, pos, hier_used_[w]);
    if (r.ok) ++hier_used_[w];
    return r;
  }

  HcbfResult decrement(std::size_t w, unsigned b1, unsigned pos) noexcept {
    const HcbfResult r = Hcbf<W>::decrement(words_[w], b1, pos);
    if (r.ok) --hier_used_[w];
    return r;
  }

  [[nodiscard]] unsigned counter(std::size_t w, unsigned b1,
                                 unsigned pos) const noexcept {
    return Hcbf<W>::counter(words_[w], b1, pos);
  }

  [[nodiscard]] std::uint16_t hier_used(std::size_t w) const noexcept {
    return hier_used_[w];
  }
  [[nodiscard]] std::span<const std::uint16_t> hier_used_span()
      const noexcept {
    return hier_used_;
  }

  void reset() {
    for (auto& w : words_) w.reset();
    std::fill(hier_used_.begin(), hier_used_.end(), std::uint16_t{0});
  }

  // Raw access for serialization, merge and structural validation — the
  // usage cache and word vector move as a pair.
  [[nodiscard]] std::vector<Word>& words() noexcept { return words_; }
  [[nodiscard]] const std::vector<Word>& words() const noexcept {
    return words_;
  }
  [[nodiscard]] std::vector<std::uint16_t>& usage() noexcept {
    return hier_used_;
  }
  [[nodiscard]] const std::vector<std::uint16_t>& usage() const noexcept {
    return hier_used_;
  }

 private:
  std::vector<Word> words_;
  std::vector<std::uint16_t> hier_used_;
};

/// Lock-free storage over 64-bit words: every mutation is a
/// load → pure transform → CAS loop, capacity re-derived from the word
/// value inside the loop (no out-of-word metadata), so the CAS publishes
/// a fully consistent word and some thread always makes progress.
class AtomicWords64 {
 public:
  static constexpr unsigned kWordBits = 64;

  void init(std::size_t l) {
    words_ = std::vector<std::atomic<std::uint64_t>>(l);
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return words_.size(); }
  [[nodiscard]] std::uint64_t load_acquire(std::size_t w) const noexcept {
    return words_[w].load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t load_relaxed(std::size_t w) const noexcept {
    return words_[w].load(std::memory_order_relaxed);
  }
  void store_relaxed(std::size_t w, std::uint64_t v) noexcept {
    words_[w].store(v, std::memory_order_relaxed);
  }
  void prefetch(std::size_t w, bool for_write) const noexcept {
    // GCC requires the rw argument to be a literal constant (clang folds
    // the ternary even at -O0); branch so both accept it.
    if (for_write) {
      __builtin_prefetch(&words_[w], 1, 1);
    } else {
      __builtin_prefetch(&words_[w], 0, 1);
    }
  }

  /// CAS loop applying all of plan group `s`'s increments (or decrements)
  /// to its word. Returns false on overflow/underflow (word unchanged).
  bool apply_group(const WordPlan& p, unsigned s, unsigned b1,
                   bool increment) noexcept {
    std::atomic<std::uint64_t>& slot = words_[p.word[s]];
    std::uint64_t expected = slot.load(std::memory_order_acquire);
    for (;;) {
      bits::WordBitset<64> w;
      w.set_limb(0, expected);
      unsigned used = Hcbf<64>::hierarchy_bits(w, b1);
      bool ok = true;
      for (unsigned i = p.offset[s]; i < p.offset[s + 1] && ok; ++i) {
        if (increment) {
          const HcbfResult r = Hcbf<64>::increment(w, b1, p.pos[i], used);
          ok = r.ok;
          if (ok) ++used;
        } else {
          ok = Hcbf<64>::decrement(w, b1, p.pos[i]).ok;
        }
      }
      if (!ok) return false;
      if (slot.compare_exchange_weak(expected, w.limb(0),
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
        return true;
      }
      // expected reloaded by compare_exchange; retry on the fresh value.
    }
  }

 private:
  std::vector<std::atomic<std::uint64_t>> words_;
};

/// Eager-evaluation verdict: one atomic snapshot per distinct word, test
/// its positions in derivation order, stop at the first unset bit — the
/// exact visit order of the eager scalar query (hash bits don't shrink
/// under short-circuiting there; the caller accounts the full derivation).
struct EagerEval {
  bool positive;
  unsigned words_touched;
};

[[nodiscard]] inline EagerEval evaluate_eager(const AtomicWords64& words,
                                              const WordPlan& p,
                                              unsigned b1) noexcept {
  (void)b1;
  for (unsigned s = 0; s < p.num_words; ++s) {
    bits::WordBitset<64> w;
    w.set_limb(0, words.load_acquire(p.word[s]));
    for (unsigned i = p.offset[s]; i < p.offset[s + 1]; ++i) {
      if (!w.test(p.pos[i])) {
        return {false, s + 1};
      }
    }
  }
  return {true, p.num_words};
}

// --- the hierarchical level walk -----------------------------------------

/// Width-templated level walk over a full target set — the "bits spent
/// only on non-zero counters" machinery of Sec. III-B, applied across the
/// g words an operation touches. Storage must expose the PlainWords
/// increment/decrement/counter signatures.
template <unsigned W>
struct LevelWalk {
  /// Applies every increment; the caller must have verified capacity
  /// (capacity_ok), so failure is a programming error. Returns the
  /// hierarchy-addressing bits the walk claimed (update bandwidth).
  template <class Storage>
  static std::uint64_t increment_all(Storage& s, unsigned b1,
                                     const Targets& t) noexcept {
    std::uint64_t extra_bits = 0;
    for (unsigned i = 0; i < t.total_positions; ++i) {
      const HcbfResult r = s.increment(t.word_of[i], b1, t.pos[i]);
      assert(r.ok);
      extra_bits += r.extra_bits;
    }
    return extra_bits;
  }

  struct DecrementResult {
    bool ok = true;               ///< false if any counter underflowed
    std::uint64_t extra_bits = 0;
    unsigned underflows = 0;
  };

  /// Applies every decrement, continuing past underflowing positions
  /// (each counts one underflow) — the contract-violation semantics every
  /// CBF shares.
  template <class Storage>
  static DecrementResult decrement_all(Storage& s, unsigned b1,
                                       const Targets& t) noexcept {
    DecrementResult out;
    for (unsigned i = 0; i < t.total_positions; ++i) {
      const HcbfResult r = s.decrement(t.word_of[i], b1, t.pos[i]);
      if (r.ok) {
        out.extra_bits += r.extra_bits;
      } else {
        out.ok = false;
        ++out.underflows;
      }
    }
    return out;
  }

  /// Multiplicity estimate: minimum counter across the target set, with
  /// the zero early-exit every scalar count() uses.
  template <class Storage>
  [[nodiscard]] static unsigned min_counter(const Storage& s, unsigned b1,
                                            const Targets& t) noexcept {
    unsigned min_c = ~0u;
    for (unsigned i = 0; i < t.total_positions; ++i) {
      min_c = std::min(min_c, s.counter(t.word_of[i], b1, t.pos[i]));
      if (min_c == 0) break;
    }
    return min_c;
  }
};

// --- batch pipeline ------------------------------------------------------

/// Keys per pipeline chunk: large enough to hide a memory round-trip
/// behind the next keys' hashing, small enough that a chunk's targets
/// stay cache-resident.
inline constexpr std::size_t kBatchChunk = 32;

/// The software-pipelined batch skeleton shared by every variant:
/// derive(i) hashes key i and issues its prefetches; resolve(i) runs
/// after the whole chunk derived, by which time the words are in flight
/// or resident — the software analogue of the pipelined lookups the
/// paper targets in hardware. `chunk_begin(count)` / `chunk_end(count)`
/// bracket each chunk for sampled timing.
template <class DeriveFn, class ResolveFn, class ChunkBegin, class ChunkEnd>
void chunked_pipeline(std::size_t n, DeriveFn&& derive, ResolveFn&& resolve,
                      ChunkBegin&& chunk_begin, ChunkEnd&& chunk_end) {
  for (std::size_t base = 0; base < n; base += kBatchChunk) {
    const std::size_t count = std::min(kBatchChunk, n - base);
    chunk_begin(count);
    for (std::size_t i = 0; i < count; ++i) derive(base + i, i);
    for (std::size_t i = 0; i < count; ++i) resolve(base + i, i);
    chunk_end(count);
  }
}

/// Call-local query tallies indexed by verdict (negative=0, positive=1),
/// published as one atomic trio per op class at the end of a batch call —
/// identical totals to per-op recording at a fraction of the atomic
/// traffic.
class BatchStatsAccumulator {
 public:
  void add(bool positive, std::size_t words_touched,
           std::uint64_t hash_bits) noexcept {
    const unsigned cls = positive ? 1u : 0u;
    ++ops_[cls];
    words_[cls] += words_touched;
    bits_[cls] += hash_bits;
  }

  void publish(metrics::AccessStats& stats) const noexcept {
    stats.record_n(metrics::OpClass::kQueryNegative, ops_[0], words_[0],
                   bits_[0]);
    stats.record_n(metrics::OpClass::kQueryPositive, ops_[1], words_[1],
                   bits_[1]);
  }

 private:
  std::array<std::uint64_t, 2> ops_{};
  std::array<std::uint64_t, 2> words_{};
  std::array<std::uint64_t, 2> bits_{};
};

}  // namespace mpcbf::core::engine
