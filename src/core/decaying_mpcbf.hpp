// DecayingMpcbf — sliding-window TTL semantics on the shared word
// engine, so bounded-lifetime workloads age out stale entries without
// ever issuing an explicit ERASE.
//
// The window is G fixed-shape MPCBF generations (core/mpcbf.hpp), all
// sharing one layout and hash seed. Inserts land in the newest
// generation only; queries consult every generation (a key is present
// while *any* generation remembers it); decay_tick() retires the oldest
// generation and starts a fresh one in its slot. An entry inserted once
// therefore survives between G-1 and G ticks — the classic
// sliding-window Bloom construction (cf. Dynamic Partition Bloom
// Filters, arXiv:1901.06493), here inheriting the paper's
// multi-partitioned counter words per generation.
//
// Why this keeps FPR flat under an infinite insert stream: a plain CBF
// only accumulates — its fill factor, and with it the false-positive
// rate, grows monotonically toward saturation. Here the live state is
// capped at whatever arrived in the last G tick windows, so the
// steady-state fill (and the union-bound FPR across generations,
// model_fpr()) is a function of the *rate*, not of total stream length.
// tests/test_decay.cpp locks in exactly that: an insert soak holds the
// decayed filter's measured FPR within model bounds while the no-decay
// control saturates.
//
// Generation rotation reuses storage: the retired generation is
// clear()ed in place and becomes the new current one, so a tick is O(l)
// zeroing with zero allocation and the memory footprint is constant for
// the filter's lifetime.
//
// Thread-safety: same contract as Mpcbf — concurrent const queries are
// safe, mutations (including decay_tick) need external serialization.
// The serving layer wraps namespaces in a shared_mutex already.
#pragma once

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/mpcbf.hpp"
#include "io/crc32c.hpp"
#include "io/journal.hpp"
#include "metrics/registry.hpp"
#include "trace/trace.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mpcbf::core {

struct DecayConfig {
  /// Shape of each window generation (every generation is identical).
  MpcbfConfig generation;
  /// Window depth: an entry survives generations-1 .. generations ticks.
  unsigned generations = 4;
};

template <unsigned W = 64>
class DecayingMpcbf {
 public:
  /// Cap on the window depth a config (or a hostile snapshot length
  /// field) may request.
  static constexpr unsigned kMaxGenerations = 64;
  static constexpr char kMagic[9] = "MPCBDKY1";

  explicit DecayingMpcbf(const DecayConfig& cfg) : cfg_(cfg) {
    if (cfg.generations < 2 || cfg.generations > kMaxGenerations) {
      throw std::invalid_argument(
          "DecayingMpcbf: generations must be in [2, " +
          std::to_string(kMaxGenerations) + "]");
    }
    gens_.reserve(cfg.generations);
    for (unsigned i = 0; i < cfg.generations; ++i) {
      gens_.push_back(std::make_unique<Mpcbf<W>>(cfg.generation));
    }
  }

  // --- mutations ---------------------------------------------------------

  /// Inserts into the newest generation. Returns that generation's
  /// insert verdict (overflow policy applies per generation).
  bool insert(std::string_view key) { return gens_.back()->insert(key); }

  /// Erases one prior insert, newest generation that still counts the
  /// key first — explicit deletion stays available even though decay is
  /// the intended retirement path.
  bool erase(std::string_view key) {
    for (auto it = gens_.rbegin(); it != gens_.rend(); ++it) {
      if ((*it)->count(key) > 0) return (*it)->erase(key);
    }
    return false;
  }

  /// Retires the oldest generation and starts a fresh one in its slot
  /// (storage reused in place). Returns the tick ordinal just applied
  /// (1-based).
  std::uint64_t decay_tick() {
    MPCBF_TRACE_SPAN(span, kCore, "decay.tick");
    auto oldest = std::move(gens_.front());
    gens_.erase(gens_.begin());
    oldest->clear();
    gens_.push_back(std::move(oldest));
    ++ticks_;
    span.set_arg("tick", ticks_);
    return ticks_;
  }

  void clear() {
    for (auto& g : gens_) g->clear();
    ticks_ = 0;
  }

  // --- queries -----------------------------------------------------------

  /// Membership across the window: positive while any generation
  /// remembers the key.
  [[nodiscard]] bool contains(std::string_view key) const {
    for (auto it = gens_.rbegin(); it != gens_.rend(); ++it) {
      if ((*it)->contains(key)) return true;
    }
    return false;
  }

  /// Min-counter frequency estimate summed across generations — the
  /// window-total multiplicity (each insert lives in exactly one
  /// generation, so the sum never undercounts correctly inserted keys).
  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    std::uint64_t total = 0;
    for (const auto& g : gens_) total += g->count(key);
    return total > 0xFFFFFFFFull ? 0xFFFFFFFFu
                                 : static_cast<std::uint32_t>(total);
  }

  void contains_batch(std::span<const std::string> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string>(keys, out);
  }
  void contains_batch(std::span<const std::string_view> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string_view>(keys, out);
  }
  void insert_batch(std::span<const std::string> keys,
                    std::span<std::uint8_t> ok) {
    gens_.back()->insert_batch(keys, ok);
  }
  void insert_batch(std::span<const std::string_view> keys,
                    std::span<std::uint8_t> ok) {
    gens_.back()->insert_batch(keys, ok);
  }

  // --- introspection -----------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& g : gens_) total += g->size();
    return total;
  }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    std::size_t total = 0;
    for (const auto& g : gens_) total += g->memory_bits();
    return total;
  }
  [[nodiscard]] std::size_t num_words() const noexcept {
    std::size_t total = 0;
    for (const auto& g : gens_) total += g->num_words();
    return total;
  }
  [[nodiscard]] unsigned k() const noexcept { return gens_.front()->k(); }
  [[nodiscard]] unsigned g() const noexcept { return gens_.front()->g(); }
  [[nodiscard]] unsigned b1() const noexcept { return gens_.front()->b1(); }
  [[nodiscard]] unsigned n_max() const noexcept {
    return gens_.front()->n_max();
  }
  [[nodiscard]] std::uint64_t seed() const noexcept {
    return gens_.front()->seed();
  }
  [[nodiscard]] std::uint64_t overflow_events() const noexcept {
    std::uint64_t total = 0;
    for (const auto& g : gens_) total += g->overflow_events();
    return total;
  }
  [[nodiscard]] std::uint64_t underflow_events() const noexcept {
    std::uint64_t total = 0;
    for (const auto& g : gens_) total += g->underflow_events();
    return total;
  }
  [[nodiscard]] std::size_t stash_size() const noexcept {
    std::size_t total = 0;
    for (const auto& g : gens_) total += g->stash_size();
    return total;
  }
  [[nodiscard]] unsigned generations() const noexcept {
    return static_cast<unsigned>(gens_.size());
  }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] const DecayConfig& config() const noexcept { return cfg_; }
  /// Generation i, oldest first (i = generations()-1 is the insert
  /// target). Diagnostic use.
  [[nodiscard]] const Mpcbf<W>& generation(std::size_t i) const {
    return *gens_.at(i);
  }

  /// Merged occupancy across generations (position-wise histogram sums;
  /// all generations share one geometry) — feeds HealthProber.
  [[nodiscard]] typename Mpcbf<W>::FillReport fill_report() const {
    typename Mpcbf<W>::FillReport merged;
    merged.hierarchy_histogram.assign(W - b1() + 1, 0);
    for (const auto& g : gens_) {
      const auto r = g->fill_report();
      for (std::size_t u = 0; u < r.hierarchy_histogram.size(); ++u) {
        merged.hierarchy_histogram[u] += r.hierarchy_histogram[u];
      }
      if (r.counter_histogram.size() > merged.counter_histogram.size()) {
        merged.counter_histogram.resize(r.counter_histogram.size(), 0);
      }
      for (std::size_t c = 0; c < r.counter_histogram.size(); ++c) {
        merged.counter_histogram[c] += r.counter_histogram[c];
      }
      merged.total_positions += r.total_positions;
    }
    if (merged.counter_histogram.empty()) {
      merged.counter_histogram.resize(1, merged.total_positions);
    }
    return merged;
  }

  /// Closed-form FPR bound for the window: a query false-positives when
  /// *any* generation does, so 1 - prod(1 - f_gen) — the union bound
  /// the decay soak test compares measurements against.
  [[nodiscard]] double model_fpr() const {
    double none = 1.0;
    for (const auto& g : gens_) {
      none *= 1.0 - model::fpr_mpcbf_g(g->size(), g->num_words(), g->b1(),
                                       g->k(), g->g());
    }
    return 1.0 - none;
  }

  [[nodiscard]] bool validate() const {
    if (gens_.size() != cfg_.generations) return false;
    for (const auto& g : gens_) {
      if (!g->validate()) return false;
    }
    return true;
  }

  // --- serialization -----------------------------------------------------

  /// Bare payload (magic + body) for embedding in durable snapshots.
  void save_payload(std::ostream& os) const {
    io::write_magic(os, kMagic);
    io::write_pod<std::uint32_t>(os,
                                 static_cast<std::uint32_t>(gens_.size()));
    io::write_pod<std::uint64_t>(os, ticks_);
    for (const auto& g : gens_) g->save_payload(os);
  }

  static DecayingMpcbf load_payload(std::istream& is) {
    io::expect_magic(is, kMagic);
    const auto count = io::read_pod<std::uint32_t>(is);
    if (count < 2 || count > kMaxGenerations) {
      throw std::runtime_error(
          "DecayingMpcbf::load: generation count out of range");
    }
    const auto ticks = io::read_pod<std::uint64_t>(is);
    std::vector<std::unique_ptr<Mpcbf<W>>> gens;
    gens.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      gens.push_back(
          std::make_unique<Mpcbf<W>>(Mpcbf<W>::load_payload(is)));
      if (i > 0 && !gens.front()->compatible(*gens.back())) {
        throw std::runtime_error(
            "DecayingMpcbf::load: generations disagree on layout");
      }
    }
    DecayingMpcbf f(std::move(gens), ticks);
    return f;
  }

 private:
  DecayingMpcbf(std::vector<std::unique_ptr<Mpcbf<W>>> gens,
                std::uint64_t ticks)
      : gens_(std::move(gens)), ticks_(ticks) {
    cfg_.generations = static_cast<unsigned>(gens_.size());
    const Mpcbf<W>& g0 = *gens_.front();
    cfg_.generation.memory_bits = g0.memory_bits();
    cfg_.generation.k = g0.k();
    cfg_.generation.g = g0.g();
    cfg_.generation.n_max = g0.n_max();
    cfg_.generation.policy = g0.policy();
    cfg_.generation.seed = g0.seed();
  }

  template <class Key>
  void contains_batch_impl(std::span<const Key> keys,
                           std::span<std::uint8_t> out) const {
    if (keys.size() != out.size()) {
      throw std::invalid_argument("contains_batch: size mismatch");
    }
    // Newest generation first through the engine's batch pipeline, then
    // only the misses re-probe older generations — the hot path for a
    // recency-skewed workload stays one batched pass.
    gens_.back()->contains_batch(keys, out);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (out[i]) continue;
      for (std::size_t gi = gens_.size() - 1; gi-- > 0;) {
        if (gens_[gi]->contains(keys[i])) {
          out[i] = 1;
          break;
        }
      }
    }
  }

  DecayConfig cfg_;
  std::vector<std::unique_ptr<Mpcbf<W>>> gens_;  // oldest first
  std::uint64_t ticks_ = 0;
};

// --- DurableDecayingMpcbf -----------------------------------------------
//
// Crash-safe wrapper mirroring DurableMpcbf (same directory layout,
// snapshot naming, watermark model), with decay ticks first-classed in
// the WAL exactly like the elastic topology ops: a tick is journaled as
// a kDecayTick record (key = LE u64 tick ordinal) *before* the rotation
// is applied, and replay rotates at the record's sequence position — so
// a recovered window is byte-identical to the crashed process's,
// including which generation each surviving key lives in.

namespace detail {

inline std::string encode_decay_tick(std::uint64_t tick) {
  std::string s(8, '\0');
  std::memcpy(s.data(), &tick, 8);
  return s;
}

inline bool decode_decay_tick(std::string_view key, std::uint64_t& tick) {
  if (key.size() != 8) return false;
  std::memcpy(&tick, key.data(), 8);
  return true;
}

}  // namespace detail

template <unsigned W = 64>
class DurableDecayingMpcbf {
 public:
  static constexpr char kSnapshotMagic[9] = "MPCBDKD1";

  struct Options {
    std::size_t flush_every = 1;
    bool fsync = true;
    std::size_t keep_snapshots = 2;
    /// Test-only crash injection, as DurableMpcbf::Options::crash_hook.
    std::function<void(std::string_view)> crash_hook;
  };

  DurableDecayingMpcbf(const std::filesystem::path& dir,
                       const DecayConfig& cfg, Options options = {})
      : dir_(dir),
        options_(options),
        filter_(recover(dir, &cfg)),
        journal_(journal_path(dir).string()) {
    if (options_.flush_every == 0) options_.flush_every = 1;
    if (options_.keep_snapshots == 0) options_.keep_snapshots = 1;
  }

  static std::shared_ptr<DurableDecayingMpcbf> open_shared(
      const std::filesystem::path& dir, const DecayConfig& cfg,
      Options options = {}) {
    return std::shared_ptr<DurableDecayingMpcbf>(
        new DurableDecayingMpcbf(dir, cfg, options));
  }

  ~DurableDecayingMpcbf() {
    try {
      if (journal_.next_seq() > journal_.base_seq()) {
        journal_.flush(options_.fsync);
      }
    } catch (...) {
      // Destructor must not throw; the unflushed tail is the loss
      // window the flush policy already admits.
    }
  }

  DurableDecayingMpcbf(const DurableDecayingMpcbf&) = delete;
  DurableDecayingMpcbf& operator=(const DurableDecayingMpcbf&) = delete;

  // --- mutations (journaled, WAL-first) ----------------------------------

  bool insert(std::string_view key) {
    log_op(io::JournalOp::kInsert, key);
    return filter_.insert(key);
  }

  bool erase(std::string_view key) {
    log_op(io::JournalOp::kErase, key);
    return filter_.erase(key);
  }

  void insert_batch(std::span<const std::string> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string>(keys, ok);
  }
  void insert_batch(std::span<const std::string_view> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string_view>(keys, ok);
  }

  /// Journals then applies one window rotation. Returns the tick
  /// ordinal. The record is flushed with the same group-commit policy
  /// as mutations — a tick acknowledged by flush() survives any crash.
  std::uint64_t decay_tick() {
    log_op(io::JournalOp::kDecayTick,
           detail::encode_decay_tick(filter_.ticks() + 1));
    return filter_.decay_tick();
  }

  // --- queries -----------------------------------------------------------

  [[nodiscard]] bool contains(std::string_view key) const {
    return filter_.contains(key);
  }
  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    return filter_.count(key);
  }
  void contains_batch(std::span<const std::string> keys,
                      std::span<std::uint8_t> out) const {
    filter_.contains_batch(keys, out);
  }
  void contains_batch(std::span<const std::string_view> keys,
                      std::span<std::uint8_t> out) const {
    filter_.contains_batch(keys, out);
  }

  void flush() {
    journal_.flush(options_.fsync);
    pending_ = 0;
  }

  /// Snapshot with the DurableMpcbf publish discipline: write-temp →
  /// flush → fsync → atomic rename → dir fsync → journal truncate.
  void snapshot() {
    MPCBF_TRACE_SPAN(span, kIo, "decay.snapshot");
    journal_.flush(options_.fsync);
    pending_ = 0;
    const std::uint64_t last_seq = journal_.next_seq() - 1;
    const std::filesystem::path tmp = dir_ / "snapshot.tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) {
        throw std::runtime_error("DurableDecayingMpcbf: cannot write " +
                                 tmp.string());
      }
      std::ostringstream payload;
      io::write_magic(payload, kSnapshotMagic);
      io::write_pod<std::uint64_t>(payload, last_seq);
      filter_.save_payload(payload);
      io::write_frame(os, payload.str());
      os.flush();
      if (!os) {
        throw std::runtime_error(
            "DurableDecayingMpcbf: snapshot write failed");
      }
    }
    crash_point("snapshot:post-temp-write");
    if (options_.fsync) sync_path(tmp);
    crash_point("snapshot:pre-rename");
    std::filesystem::rename(tmp, dir_ / snapshot_name(last_seq));
    if (options_.fsync) sync_path(dir_);
    crash_point("snapshot:post-rename");
    journal_.reset(last_seq + 1);
    crash_point("snapshot:post-journal-reset");
    prune_snapshots();
  }

  [[nodiscard]] const DecayingMpcbf<W>& filter() const noexcept {
    return filter_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return filter_.size(); }
  [[nodiscard]] std::uint64_t ticks() const noexcept {
    return filter_.ticks();
  }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  [[nodiscard]] std::uint64_t next_seq() const noexcept {
    return journal_.next_seq();
  }
  [[nodiscard]] std::size_t pending_records() const noexcept {
    return pending_;
  }

  // --- recovery ----------------------------------------------------------

  /// Newest valid snapshot + replay above its watermark; decay ticks
  /// replay as rotations at their exact sequence positions. Pass
  /// cfg == nullptr to require a usable snapshot.
  static DecayingMpcbf<W> recover(const std::filesystem::path& dir,
                                  const DecayConfig* cfg = nullptr) {
    MPCBF_TRACE_SPAN(span, kIo, "decay.recover");
    std::filesystem::create_directories(dir);
    std::optional<DecayingMpcbf<W>> filter;
    std::uint64_t watermark = 0;
    for (const auto& path : snapshot_files(dir)) {
      try {
        std::ifstream is(path, std::ios::binary);
        if (!is) continue;
        std::istringstream payload(io::read_frame(is));
        io::expect_magic(payload, kSnapshotMagic);
        const auto last_seq = io::read_pod<std::uint64_t>(payload);
        filter.emplace(DecayingMpcbf<W>::load_payload(payload));
        watermark = last_seq;
        break;  // newest valid snapshot wins
      } catch (const std::runtime_error&) {
        continue;  // corrupt snapshot: fall back to an older one
      }
    }
    if (!filter) {
      if (cfg == nullptr) {
        throw std::runtime_error(
            "DurableDecayingMpcbf: no loadable snapshot in " +
            dir.string() + " and no config to start from");
      }
      filter.emplace(*cfg);
    } else if (cfg != nullptr) {
      if (filter->generations() != cfg->generations ||
          filter->seed() != cfg->generation.seed) {
        throw std::runtime_error(
            "DurableDecayingMpcbf: snapshot window does not match config");
      }
    }
    const io::JournalScan scan =
        io::Journal::scan(journal_path(dir).string());
    if (scan.base_seq > watermark + 1) {
      throw std::runtime_error(
          "DurableDecayingMpcbf: journal was compacted past the newest "
          "loadable snapshot; state is unrecoverable without it");
    }
    for (const auto& rec : scan.records) {
      if (rec.seq <= watermark) continue;
      switch (rec.op) {
        case io::JournalOp::kInsert:
          (void)filter->insert(rec.key);
          break;
        case io::JournalOp::kErase:
          (void)filter->erase(rec.key);
          break;
        case io::JournalOp::kDecayTick: {
          std::uint64_t tick = 0;
          if (detail::decode_decay_tick(rec.key, tick)) {
            (void)filter->decay_tick();
          }
          break;
        }
        case io::JournalOp::kSegmentAdd:
        case io::JournalOp::kSegmentRetire:
          throw std::runtime_error(
              "DurableDecayingMpcbf: journal contains segment-topology "
              "records (elastic filter directory?)");
      }
    }
    return std::move(*filter);
  }

  static std::filesystem::path journal_path(
      const std::filesystem::path& dir) {
    return dir / "journal.wal";
  }

  static std::vector<std::filesystem::path> snapshot_files(
      const std::filesystem::path& dir) {
    std::vector<std::filesystem::path> files;
    if (!std::filesystem::is_directory(dir)) return files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.starts_with("snapshot-") && name.ends_with(".mpcbf")) {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end(),
              [](const auto& a, const auto& b) {
                return a.filename().string() > b.filename().string();
              });
    return files;
  }

 private:
  template <typename Key>
  void insert_batch_impl(std::span<const Key> keys,
                         std::span<std::uint8_t> ok) {
    if (keys.size() != ok.size()) {
      throw std::invalid_argument("insert_batch: size mismatch");
    }
    for (const auto& key : keys) {
      log_op(io::JournalOp::kInsert, key);
    }
    filter_.insert_batch(keys, ok);
  }

  void log_op(io::JournalOp op, std::string_view key) {
    crash_point("journal:pre-append");
    journal_.append(op, key);
    ++pending_;
    crash_point("journal:post-append");
    if (pending_ >= options_.flush_every) {
      journal_.flush(options_.fsync);
      pending_ = 0;
      crash_point("journal:post-flush");
    }
  }

  void crash_point(std::string_view point) {
    if (options_.crash_hook) options_.crash_hook(point);
  }

  static std::string snapshot_name(std::uint64_t seq) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "snapshot-%016llx.mpcbf",
                  static_cast<unsigned long long>(seq));
    return buf;
  }

  void prune_snapshots() const {
    const auto files = snapshot_files(dir_);
    for (std::size_t i = options_.keep_snapshots; i < files.size(); ++i) {
      std::error_code ec;
      std::filesystem::remove(files[i], ec);  // best-effort cleanup
    }
  }

  static void sync_path(const std::filesystem::path& p) {
#ifdef __unix__
    const int fd = ::open(p.c_str(), O_RDONLY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
#else
    (void)p;
#endif
  }

  std::filesystem::path dir_;
  Options options_;
  DecayingMpcbf<W> filter_;
  io::Journal journal_;
  std::size_t pending_ = 0;
};

}  // namespace mpcbf::core
