// ElasticMpcbf — online-growable MPCBF built from a chain of fixed-size
// Mpcbf segments (the Dynamic Partition Bloom Filter recipe on top of
// the paper's partitioned word layout).
//
// Every fixed-shape MPCBF must pick its word count up front, so a
// deployment facing unknown cardinality either over-provisions or
// saturates. ElasticMpcbf removes that choice: it starts with one
// segment and appends further identically-shaped segments as load
// grows, never rebuilding or rehashing what is already stored.
//
// Routing (the segment-selector invariant). The key space is split into
// 2^route_bits virtual buckets by a dedicated selector hash that is
// independent of the per-segment word hashes. Each bucket owns an
// append-only *chain* of segment ids; the chain's back is the bucket's
// current owner and receives all new inserts for that bucket. A query
// probes only the bucket's chain (not every segment), oldest first.
// Because chains only ever append — growth moves a bucket's *future*
// inserts to the new segment, it never moves stored keys — a key keeps
// its segment for life:
//
//   bucket 5: [seg0]            insert a, b        a,b -> seg0
//   grow:     [seg0, seg2]      insert c           c   -> seg2
//   query a:  probe seg0, seg2  (a still found in seg0)
//
// Growth policy. After an insert, the owner segment is scored with the
// HealthProber saturation machinery (metrics/health.hpp; empirical FPR
// probes disabled so the score is a pure function of filter state).
// When the score crosses `grow_score` (the prober's Warn default), a
// new segment is appended and the *upper half* of the hot segment's
// owned buckets move to it (split-ordered: the low half stays, so
// repeated splits halve a segment's routing share without ever
// touching stored keys). The check runs every `probe_stride` insert
// attempts and additionally whenever the insert overflowed — both
// deterministic functions of the operation stream, which is what lets
// a WAL replay reproduce the exact topology (see DurableElasticMpcbf).
//
// Draining. A segment that no longer owns any bucket is cold: it
// receives no inserts and only loses elements. compact_once() merges
// the oldest such segment into the smallest live segment (counter-wise
// Mpcbf::merge — all segments share one layout and seed precisely so
// this is possible), rewrites every chain to point at the absorbing
// segment, and frees the husk. Queries stay correct throughout: any
// chain that could reach the retired segment now reaches the absorber,
// which holds a superset of its counters.
//
// Thread-safety matches Mpcbf: const queries are safe concurrently,
// mutations (insert/erase/grow/compact) need external synchronization.
// ElasticMaintainer at the bottom runs compaction + gauge publishing in
// the background on a util::ThreadPool under a caller-supplied lock.
#pragma once

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <istream>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/mpcbf.hpp"
#include "hash/murmur3.hpp"
#include "io/binary.hpp"
#include "io/crc32c.hpp"
#include "io/journal.hpp"
#include "metrics/health.hpp"
#include "metrics/registry.hpp"
#include "model/fpr_model.hpp"
#include "trace/trace.hpp"

namespace mpcbf::core {

struct ElasticConfig {
  /// Shape of every segment. All segments share this config (including
  /// the hash seed) so cold segments stay counter-wise mergeable.
  MpcbfConfig segment;
  /// log2 of the virtual routing buckets. More buckets = finer-grained
  /// splits; 2^route_bits should comfortably exceed max_segments.
  unsigned route_bits = 6;
  /// Saturation score (0-100) at which the owner segment splits; the
  /// HealthProber Warn default.
  double grow_score = 70.0;
  /// Insert attempts between health checks of the owner segment (the
  /// check also runs on any overflow event). Must be >= 1.
  std::size_t probe_stride = 256;
  /// Hard cap on chain length; at the cap the filter stops growing and
  /// relies on the segment overflow policy (size with headroom or use
  /// OverflowPolicy::kStash).
  std::size_t max_segments = 64;
};

/// One chain-maintenance event, reported by grow/compact so durable
/// wrappers can journal it.
struct ElasticTopologyOp {
  std::uint32_t segment = 0;  ///< grown-from / retired segment id
  std::uint32_t into = 0;     ///< absorbing segment id (retire only)
};

template <unsigned W = 64>
class ElasticMpcbf {
 public:
  static constexpr char kMagic[9] = "MPCBELA1";
  static constexpr std::uint32_t kNoSegment = 0xFFFFFFFFu;
  static constexpr unsigned kMaxRouteBits = 20;
  static constexpr std::uint64_t kMaxSegments = 1u << 16;

  explicit ElasticMpcbf(const ElasticConfig& cfg)
      : cfg_(cfg),
        selector_seed_(util::SplitMix64::mix(cfg.segment.seed ^
                                             0xE1A571C5EEDB10C5ull)) {
    if (cfg_.route_bits == 0 || cfg_.route_bits > kMaxRouteBits) {
      throw std::invalid_argument("ElasticMpcbf: route_bits out of range");
    }
    if (cfg_.probe_stride == 0) cfg_.probe_stride = 1;
    if (cfg_.max_segments == 0 || cfg_.max_segments > kMaxSegments) {
      throw std::invalid_argument(
          "ElasticMpcbf: max_segments out of range");
    }
    segments_.push_back(std::make_unique<Mpcbf<W>>(cfg_.segment));
    attempts_.push_back(0);
    recheck_floor_.push_back(0);
    chains_.assign(num_buckets(), {0});
  }

  // --- filter operations -------------------------------------------------

  /// Inserts `key` into its bucket's owner segment. Growth, when due,
  /// happens *after* the insert completes (so a journaled operation
  /// stream replays to the identical topology): with auto_grow (the
  /// default) the split is applied inline; otherwise it is left pending
  /// for the owner (DurableElasticMpcbf) to journal and apply.
  bool insert(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kCore, "elastic.insert");
    const std::size_t b = bucket_of(key);
    const std::uint32_t s = chains_[b].back();
    Mpcbf<W>& seg = *segments_[s];
    const std::uint64_t overflow_before = seg.overflow_events();
    const bool ok = seg.insert(key);
    ++attempts_[s];
    if (span.live()) span.set_arg("segment", s);
    // Overflow events make a growth check due between stride points;
    // the resample floor inside check_growth keeps either trigger from
    // re-sampling per event.
    if (seg.overflow_events() != overflow_before ||
        attempts_[s] % cfg_.probe_stride == 0) {
      check_growth(s);
    }
    if (auto_grow_ && pending_growth_) {
      (void)grow_from(pending_growth_->segment);
    }
    return ok;
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    MPCBF_TRACE_SPAN(span, kCore, "elastic.query");
    const auto& chain = chains_[bucket_of(key)];
    if (span.live()) span.set_arg("chain", chain.size());
    for (const std::uint32_t s : chain) {
      if (segments_[s]->contains(key)) return true;
    }
    return false;
  }

  /// Deletes one prior insert: probes the bucket's chain oldest-first
  /// and decrements the first segment whose counters still hold the
  /// key. Returns false (counting an underflow in the owner segment)
  /// when no segment does.
  bool erase(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kCore, "elastic.erase");
    const auto& chain = chains_[bucket_of(key)];
    for (const std::uint32_t s : chain) {
      if (segments_[s]->count(key) > 0) {
        return segments_[s]->erase(key);
      }
    }
    return segments_[chain.back()]->erase(key);
  }

  /// Multiplicity estimate summed over the bucket's chain (a key
  /// inserted both before and after a split holds copies in two
  /// segments). Never an undercount, like any CBF estimate.
  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    std::uint32_t total = 0;
    for (const std::uint32_t s : chains_[bucket_of(key)]) {
      total += segments_[s]->count(key);
    }
    return total;
  }

  /// The chain segment that would answer a query for `key` (oldest
  /// chain member whose counters hold it) — the quantity the
  /// selector-stability tests pin across grow/snapshot/recover.
  [[nodiscard]] std::optional<std::uint32_t> locate(
      std::string_view key) const {
    for (const std::uint32_t s : chains_[bucket_of(key)]) {
      if (segments_[s]->count(key) > 0) return s;
    }
    return std::nullopt;
  }

  void contains_batch(std::span<const std::string> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string>(keys, out);
  }
  void contains_batch(std::span<const std::string_view> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string_view>(keys, out);
  }
  /// Batched inserts; a split due mid-batch lands between the two keys
  /// exactly as a scalar loop would place it.
  void insert_batch(std::span<const std::string> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string>(keys, ok);
  }
  void insert_batch(std::span<const std::string_view> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string_view>(keys, ok);
  }

  void clear() {
    segments_.clear();
    attempts_.clear();
    recheck_floor_.clear();
    segments_.push_back(std::make_unique<Mpcbf<W>>(cfg_.segment));
    attempts_.push_back(0);
    recheck_floor_.push_back(0);
    chains_.assign(num_buckets(), {0});
    pending_growth_.reset();
    grows_ = 0;
    retires_ = 0;
    reclaimed_bytes_ = 0;
  }

  // --- growth / drain control -------------------------------------------

  [[nodiscard]] bool auto_grow() const noexcept { return auto_grow_; }
  /// Durable wrappers disable auto-grow so every topology change is
  /// journaled before it is applied.
  void set_auto_grow(bool v) noexcept { auto_grow_ = v; }

  /// The split the last insert made due but did not apply (auto_grow
  /// off). Cleared by grow_from().
  [[nodiscard]] std::optional<ElasticTopologyOp> pending_growth()
      const noexcept {
    return pending_growth_;
  }

  /// Appends a new segment and moves the upper half of `source`'s owned
  /// buckets to it. Returns the new segment id, or kNoSegment when
  /// growth is impossible (segment cap reached or `source` owns no
  /// buckets). Deterministic: replaying the same call sequence on equal
  /// state yields byte-identical topology.
  std::uint32_t grow_from(std::uint32_t source) {
    pending_growth_.reset();
    if (source >= segments_.size() || !segments_[source]) {
      return kNoSegment;
    }
    if (live_segments() >= cfg_.max_segments) return kNoSegment;
    std::vector<std::uint32_t> owned;
    for (std::uint32_t b = 0; b < num_buckets(); ++b) {
      if (chains_[b].back() == source) owned.push_back(b);
    }
    if (owned.empty()) return kNoSegment;
    const auto t = static_cast<std::uint32_t>(segments_.size());
    segments_.push_back(std::make_unique<Mpcbf<W>>(cfg_.segment));
    attempts_.push_back(0);
    recheck_floor_.push_back(0);
    for (std::size_t i = owned.size() / 2; i < owned.size(); ++i) {
      chains_[owned[i]].push_back(t);
    }
    ++grows_;
    MPCBF_LOG_INFO("elastic.grow", log::u64("source", source),
                   log::u64("new_segment", t),
                   log::u64("buckets_moved", owned.size() - owned.size() / 2),
                   log::u64("segments", segments_.size()));
    MPCBF_TRACE_INSTANT(kCore, "elastic.grow", "segments",
                        segments_.size());
    return t;
  }

  /// The drain step compact_once() would take, if any: the oldest
  /// ownerless segment plus the smallest live segment that can absorb
  /// it. Pure function of state (durable wrappers journal it first).
  [[nodiscard]] std::optional<ElasticTopologyOp> compaction_candidate()
      const {
    for (std::uint32_t r = 0;
         r < static_cast<std::uint32_t>(segments_.size()); ++r) {
      if (!segments_[r] || owns_buckets(r)) continue;
      // Smallest live segment (by element count, ties to the lowest id)
      // other than r: merging into the emptiest target keeps the
      // absorbed counters farthest from the word overflow cap.
      std::uint32_t into = kNoSegment;
      for (std::uint32_t t = 0;
           t < static_cast<std::uint32_t>(segments_.size()); ++t) {
        if (t == r || !segments_[t]) continue;
        if (into == kNoSegment ||
            segments_[t]->size() < segments_[into]->size()) {
          into = t;
        }
      }
      if (into == kNoSegment) continue;
      return ElasticTopologyOp{r, into};
    }
    return std::nullopt;
  }

  /// Merges segment `retired` into `into` (counter-wise, all-or-nothing
  /// via Mpcbf::merge), rewrites every chain to reference the absorber,
  /// and frees the husk. Returns false — with no state change — when
  /// the merge would overflow a word or the arguments are not a valid
  /// drain step.
  bool retire_into(std::uint32_t retired, std::uint32_t into) {
    if (retired >= segments_.size() || into >= segments_.size() ||
        retired == into || !segments_[retired] || !segments_[into] ||
        owns_buckets(retired)) {
      return false;
    }
    if (!segments_[into]->merge(*segments_[retired])) return false;
    for (auto& chain : chains_) {
      bool has_into = false;
      for (const auto s : chain) has_into |= (s == into);
      for (auto& s : chain) {
        if (s == retired) s = into;
      }
      if (has_into) {
        // The rewrite may have introduced a duplicate; keep the first
        // occurrence so probe order stays oldest-first.
        bool seen = false;
        std::erase_if(chain, [&](std::uint32_t s) {
          if (s != into) return false;
          if (seen) return true;
          seen = true;
          return false;
        });
      }
    }
    // Return the husk's memory to the OS now: free() alone parks the
    // words in the allocator arena and the chain keeps its peak RSS.
    reclaimed_bytes_ += segments_[retired]->release_storage();
    segments_[retired].reset();
    attempts_[retired] = 0;
    recheck_floor_[retired] = 0;
    ++retires_;
    MPCBF_LOG_INFO("elastic.retire", log::u64("retired", retired),
                   log::u64("into", into),
                   log::u64("reclaimed_bytes", reclaimed_bytes_),
                   log::u64("live_segments", live_segments()));
    MPCBF_TRACE_INSTANT(kCore, "elastic.retire", "segments",
                        live_segments());
    return true;
  }

  /// One background drain pass: apply the compaction candidate, if any.
  std::optional<ElasticTopologyOp> compact_once() {
    const auto step = compaction_candidate();
    if (!step) return std::nullopt;
    if (!retire_into(step->segment, step->into)) return std::nullopt;
    return step;
  }

  // --- aggregate introspection (HealthProber / make_backend surface) ----

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& s : segments_) {
      if (s) total += s->size();
    }
    return total;
  }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    std::size_t total = 0;
    for (const auto& s : segments_) {
      if (s) total += s->memory_bits();
    }
    return total;
  }
  [[nodiscard]] std::size_t num_words() const noexcept {
    std::size_t total = 0;
    for (const auto& s : segments_) {
      if (s) total += s->num_words();
    }
    return total;
  }
  [[nodiscard]] unsigned k() const noexcept { return shape().k(); }
  [[nodiscard]] unsigned g() const noexcept { return shape().g(); }
  [[nodiscard]] unsigned b1() const noexcept { return shape().b1(); }
  [[nodiscard]] unsigned n_max() const noexcept { return shape().n_max(); }
  [[nodiscard]] std::uint64_t seed() const noexcept {
    return cfg_.segment.seed;
  }
  [[nodiscard]] std::uint64_t overflow_events() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : segments_) {
      if (s) total += s->overflow_events();
    }
    return total;
  }
  [[nodiscard]] std::uint64_t underflow_events() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : segments_) {
      if (s) total += s->underflow_events();
    }
    return total;
  }
  [[nodiscard]] std::size_t stash_size() const noexcept {
    std::size_t total = 0;
    for (const auto& s : segments_) {
      if (s) total += s->stash_size();
    }
    return total;
  }

  /// Merged occupancy report across live segments (histograms sum
  /// position-wise; all segments share one word geometry).
  [[nodiscard]] typename Mpcbf<W>::FillReport fill_report() const {
    typename Mpcbf<W>::FillReport merged;
    merged.hierarchy_histogram.assign(W - b1() + 1, 0);
    for (const auto& s : segments_) {
      if (!s) continue;
      const auto r = s->fill_report();
      for (std::size_t u = 0; u < r.hierarchy_histogram.size(); ++u) {
        merged.hierarchy_histogram[u] += r.hierarchy_histogram[u];
      }
      if (r.counter_histogram.size() > merged.counter_histogram.size()) {
        merged.counter_histogram.resize(r.counter_histogram.size(), 0);
      }
      for (std::size_t c = 0; c < r.counter_histogram.size(); ++c) {
        merged.counter_histogram[c] += r.counter_histogram[c];
      }
      merged.total_positions += r.total_positions;
    }
    if (merged.counter_histogram.empty()) {
      merged.counter_histogram.resize(1, merged.total_positions);
    }
    return merged;
  }

  /// Closed-form FPR bound for the chain: a bucket's query false-
  /// positives in *any* chain segment, so per bucket the bound is
  /// 1 - prod(1 - f_seg) over its chain (the Dynamic/Scalable BF union
  /// bound), averaged uniformly over buckets (the selector hash spreads
  /// keys uniformly).
  [[nodiscard]] double model_fpr() const {
    std::vector<double> seg_fpr(segments_.size(), 0.0);
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      if (!segments_[s]) continue;
      const Mpcbf<W>& f = *segments_[s];
      seg_fpr[s] = model::fpr_mpcbf_g(f.size(), f.num_words(), f.b1(),
                                      f.k(), f.g());
    }
    double sum = 0.0;
    for (const auto& chain : chains_) {
      double none = 1.0;
      for (const std::uint32_t s : chain) none *= 1.0 - seg_fpr[s];
      sum += 1.0 - none;
    }
    return sum / static_cast<double>(num_buckets());
  }

  [[nodiscard]] const ElasticConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint64_t selector_seed() const noexcept {
    return selector_seed_;
  }
  [[nodiscard]] std::uint32_t num_buckets() const noexcept {
    return 1u << cfg_.route_bits;
  }
  /// Segment slots ever created (retired slots stay numbered so chain
  /// ids are stable for the filter's lifetime).
  [[nodiscard]] std::size_t num_segments() const noexcept {
    return segments_.size();
  }
  [[nodiscard]] std::size_t live_segments() const noexcept {
    std::size_t n = 0;
    for (const auto& s : segments_) n += s != nullptr;
    return n;
  }
  [[nodiscard]] const Mpcbf<W>* segment(std::size_t i) const {
    return i < segments_.size() ? segments_[i].get() : nullptr;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& chain(
      std::uint32_t bucket) const {
    return chains_.at(bucket);
  }
  [[nodiscard]] std::uint32_t owner(std::uint32_t bucket) const {
    return chains_.at(bucket).back();
  }
  [[nodiscard]] std::uint32_t bucket_of(std::string_view key) const {
    return static_cast<std::uint32_t>(
        hash::murmur3_128(key, selector_seed_).hi >>
        (64 - cfg_.route_bits));
  }
  [[nodiscard]] std::uint64_t grows() const noexcept { return grows_; }
  [[nodiscard]] std::uint64_t retires() const noexcept { return retires_; }
  /// Heap bytes of drained segments returned to the OS (process
  /// lifetime; not persisted, like the access-stats counters).
  [[nodiscard]] std::uint64_t reclaimed_bytes() const noexcept {
    return reclaimed_bytes_;
  }

  /// Saturation score of one segment under the growth prober (0-100);
  /// retired slots read 0.
  [[nodiscard]] double segment_score(std::size_t i) const {
    if (i >= segments_.size() || !segments_[i]) return 0.0;
    return growth_prober().sample(*segments_[i]).saturation_score;
  }

  /// Chain-level aggregate score: the worst live segment (the next
  /// split happens where the worst segment is, so this is the number an
  /// operator alarms on).
  [[nodiscard]] double aggregate_score() const {
    double worst = 0.0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (segments_[i]) worst = std::max(worst, segment_score(i));
    }
    return worst;
  }

  /// Publishes per-segment and chain-level gauges (mpcbf_elastic_*)
  /// into `reg`. Retired slots publish nothing.
  void publish_metrics(metrics::Registry& reg,
                       const std::string& label = "elastic") const {
    reg.gauge("mpcbf_elastic_segments", "Live segments in the chain",
              {{"filter", label}})
        .set(static_cast<double>(live_segments()));
    reg.gauge("mpcbf_elastic_grows_total", "Segment splits so far",
              {{"filter", label}})
        .set(static_cast<double>(grows_));
    reg.gauge("mpcbf_elastic_retires_total",
              "Cold segments drained and merged away", {{"filter", label}})
        .set(static_cast<double>(retires_));
    auto& reclaimed = reg.counter(
        "mpcbf_elastic_reclaimed_bytes_total",
        "Drained-segment heap bytes returned to the OS",
        {{"filter", label}});
    if (reclaimed_bytes_ > reclaimed.value()) {
      reclaimed.inc(reclaimed_bytes_ - reclaimed.value());
    }
    reg.gauge("mpcbf_elastic_model_fpr",
              "Chain-level closed-form FPR bound", {{"filter", label}})
        .set(model_fpr());
    reg.gauge("mpcbf_elastic_aggregate_score",
              "Worst live segment's saturation score (0-100)",
              {{"filter", label}})
        .set(aggregate_score());
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (!segments_[i]) continue;
      const std::string seg = std::to_string(i);
      reg.gauge("mpcbf_elastic_segment_elements",
                "Elements held by one chain segment",
                {{"filter", label}, {"segment", seg}})
          .set(static_cast<double>(segments_[i]->size()));
      reg.gauge("mpcbf_elastic_segment_score",
                "Per-segment saturation score (0-100)",
                {{"filter", label}, {"segment", seg}})
          .set(segment_score(i));
    }
  }

  /// Structural self-check: every live segment validates, every chain
  /// is non-empty, references only live segments, and holds no
  /// duplicates.
  [[nodiscard]] bool validate() const {
    if (segments_.empty() || chains_.size() != num_buckets()) return false;
    for (const auto& s : segments_) {
      if (s && !s->validate()) return false;
    }
    for (const auto& chain : chains_) {
      if (chain.empty()) return false;
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i] >= segments_.size() || !segments_[chain[i]]) {
          return false;
        }
        for (std::size_t j = i + 1; j < chain.size(); ++j) {
          if (chain[i] == chain[j]) return false;
        }
      }
    }
    return true;
  }

  // --- serialization ----------------------------------------------------

  /// The topology record: selector seed, routing shape, counters and
  /// every bucket chain — the exact bytes embedded in save_payload().
  /// Byte-identical across snapshot/recover/bootstrap by construction;
  /// tests pin it the way test_golden pins word state.
  [[nodiscard]] std::string topology_bytes() const {
    std::ostringstream os(std::ios::binary);
    io::write_pod<std::uint32_t>(os, cfg_.route_bits);
    io::write_pod<std::uint64_t>(os, selector_seed_);
    io::write_pod<std::uint64_t>(os, grows_);
    io::write_pod<std::uint64_t>(os, retires_);
    io::write_pod<std::uint32_t>(
        os, static_cast<std::uint32_t>(segments_.size()));
    for (const auto& s : segments_) {
      io::write_pod<std::uint8_t>(os, s ? 1 : 0);
    }
    for (const auto& chain : chains_) {
      io::write_pod<std::uint32_t>(
          os, static_cast<std::uint32_t>(chain.size()));
      for (const auto s : chain) io::write_pod<std::uint32_t>(os, s);
    }
    return std::move(os).str();
  }

  void save(std::ostream& os) const {
    std::ostringstream payload;
    save_payload(payload);
    io::write_frame(os, payload.str());
  }

  static ElasticMpcbf load(std::istream& is) {
    std::istringstream payload(io::read_frame(is));
    return load_payload(payload);
  }

  /// Bare payload (magic + body, no frame) for embedding in durable
  /// snapshot frames.
  void save_payload(std::ostream& os) const {
    io::write_magic(os, kMagic);
    io::write_pod<std::uint32_t>(os, W);
    io::write_pod<std::uint64_t>(
        os, std::bit_cast<std::uint64_t>(cfg_.grow_score));
    io::write_pod<std::uint64_t>(os, cfg_.probe_stride);
    io::write_pod<std::uint64_t>(os, cfg_.max_segments);
    os << topology_bytes();
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      if (!segments_[i]) continue;
      io::write_pod<std::uint64_t>(os, attempts_[i]);
      // The resample floor is growth-decision state: a restored filter
      // that forgot it would probe (and possibly split) at stride
      // points the original skipped, breaking replay determinism.
      io::write_pod<std::uint64_t>(os, recheck_floor_[i]);
      segments_[i]->save_payload(os);
    }
  }

  static ElasticMpcbf load_payload(std::istream& is) {
    io::expect_magic(is, kMagic);
    const auto width = io::read_pod<std::uint32_t>(is);
    if (width != W) {
      throw std::runtime_error("ElasticMpcbf::load: word width mismatch");
    }
    ElasticConfig cfg;
    cfg.grow_score =
        std::bit_cast<double>(io::read_pod<std::uint64_t>(is));
    cfg.probe_stride = io::read_pod<std::uint64_t>(is);
    cfg.max_segments = io::read_pod<std::uint64_t>(is);
    if (cfg.probe_stride == 0 || cfg.max_segments == 0 ||
        cfg.max_segments > kMaxSegments) {
      throw std::runtime_error("ElasticMpcbf::load: bad growth policy");
    }
    cfg.route_bits = io::read_pod<std::uint32_t>(is);
    if (cfg.route_bits == 0 || cfg.route_bits > kMaxRouteBits) {
      throw std::runtime_error("ElasticMpcbf::load: route_bits out of range");
    }
    const auto selector_seed = io::read_pod<std::uint64_t>(is);
    const auto grows = io::read_pod<std::uint64_t>(is);
    const auto retires = io::read_pod<std::uint64_t>(is);
    const auto num_segments = io::read_pod<std::uint32_t>(is);
    if (num_segments == 0 || num_segments > kMaxSegments) {
      throw std::runtime_error(
          "ElasticMpcbf::load: segment count out of range");
    }
    std::vector<std::uint8_t> present(num_segments);
    for (auto& p : present) p = io::read_pod<std::uint8_t>(is);
    const std::uint32_t buckets = 1u << cfg.route_bits;
    std::vector<std::vector<std::uint32_t>> chains(buckets);
    for (auto& chain : chains) {
      const auto len = io::read_pod<std::uint32_t>(is);
      if (len == 0 || len > num_segments) {
        throw std::runtime_error("ElasticMpcbf::load: bad chain length");
      }
      chain.resize(len);
      for (auto& s : chain) {
        s = io::read_pod<std::uint32_t>(is);
        if (s >= num_segments || present[s] == 0) {
          throw std::runtime_error(
              "ElasticMpcbf::load: chain references a missing segment");
        }
      }
    }
    std::vector<std::unique_ptr<Mpcbf<W>>> segments(num_segments);
    std::vector<std::uint64_t> attempts(num_segments, 0);
    std::vector<std::uint64_t> floors(num_segments, 0);
    const Mpcbf<W>* first = nullptr;
    for (std::uint32_t i = 0; i < num_segments; ++i) {
      if (present[i] == 0) continue;
      attempts[i] = io::read_pod<std::uint64_t>(is);
      floors[i] = io::read_pod<std::uint64_t>(is);
      segments[i] =
          std::make_unique<Mpcbf<W>>(Mpcbf<W>::load_payload(is));
      if (first == nullptr) {
        first = segments[i].get();
      } else if (!first->compatible(*segments[i])) {
        throw std::runtime_error(
            "ElasticMpcbf::load: segments disagree on layout");
      }
    }
    if (first == nullptr) {
      throw std::runtime_error("ElasticMpcbf::load: no live segments");
    }
    cfg.segment.memory_bits = first->memory_bits();
    cfg.segment.k = first->k();
    cfg.segment.g = first->g();
    cfg.segment.n_max = first->n_max();
    cfg.segment.seed = first->seed();
    cfg.segment.policy = first->policy();
    // The selector seed is derived from the segment seed; a stored
    // value that disagrees would route keys to the wrong chains.
    if (selector_seed != util::SplitMix64::mix(cfg.segment.seed ^
                                               0xE1A571C5EEDB10C5ull)) {
      throw std::runtime_error(
          "ElasticMpcbf::load: selector seed mismatch");
    }
    ElasticMpcbf f(std::move(cfg), selector_seed, std::move(segments),
                   std::move(attempts), std::move(floors),
                   std::move(chains), grows, retires);
    if (!f.validate()) {
      throw std::runtime_error("ElasticMpcbf::load: corrupt chain state");
    }
    return f;
  }

 private:
  ElasticMpcbf(ElasticConfig cfg, std::uint64_t selector_seed,
               std::vector<std::unique_ptr<Mpcbf<W>>> segments,
               std::vector<std::uint64_t> attempts,
               std::vector<std::uint64_t> recheck_floor,
               std::vector<std::vector<std::uint32_t>> chains,
               std::uint64_t grows, std::uint64_t retires)
      : cfg_(std::move(cfg)),
        selector_seed_(selector_seed),
        segments_(std::move(segments)),
        attempts_(std::move(attempts)),
        recheck_floor_(std::move(recheck_floor)),
        chains_(std::move(chains)),
        grows_(grows),
        retires_(retires) {}

  [[nodiscard]] const Mpcbf<W>& shape() const {
    for (const auto& s : segments_) {
      if (s) return *s;
    }
    throw std::logic_error("ElasticMpcbf: no live segments");
  }

  [[nodiscard]] bool owns_buckets(std::uint32_t seg) const {
    for (const auto& chain : chains_) {
      if (chain.back() == seg) return true;
    }
    return false;
  }

  /// The scorer behind growth decisions: saturation components only
  /// (fpr_probes = 0 keeps sample() a pure function of filter state, so
  /// WAL replay reaches identical split points), no registry, no
  /// alarms.
  [[nodiscard]] const metrics::HealthProber& growth_prober() const {
    if (!prober_) {
      metrics::HealthProber::Config pc;
      pc.filter_label = "elastic-segment";
      pc.warn_score = cfg_.grow_score;
      pc.fpr_probes = 0;
      pc.registry = nullptr;
      prober_ = std::make_unique<metrics::HealthProber>(std::move(pc));
    }
    return *prober_;
  }

  /// Level-1 counter positions per segment — structural (all segments
  /// share one geometry), derived lazily so it never enters the
  /// serialized state.
  [[nodiscard]] std::uint64_t level1_positions() const {
    if (level1_positions_ == 0) {
      level1_positions_ = shape().fill_report().total_positions;
    }
    return level1_positions_;
  }

  [[nodiscard]] static double hierarchy_capacity(
      const Mpcbf<W>& seg) noexcept {
    return seg.b1() < W
               ? static_cast<double>(seg.num_words()) * (W - seg.b1())
               : 0.0;
  }

  /// O(1) stand-in for the prober's saturation components, built from
  /// counters and closed forms (expected level-1 fill, the hierarchy
  /// conservation law, stash/overflow ratios). Slightly conservative —
  /// it over-estimates each component — so a segment it clears cannot
  /// be one the full probe would split.
  [[nodiscard]] double proxy_score(const Mpcbf<W>& seg) const {
    const double n = static_cast<double>(seg.size());
    const double k = static_cast<double>(seg.k());
    double worst = 0.0;
    if (const double pos = static_cast<double>(level1_positions());
        pos > 0) {
      worst = 1.0 - std::exp(-k * n / pos);
    }
    if (const double cap = hierarchy_capacity(seg); cap > 0) {
      worst = std::max(worst, k * n / cap);
    }
    const double attempts =
        n + static_cast<double>(seg.overflow_events());
    if (attempts > 0) {
      worst = std::max(
          worst, static_cast<double>(seg.overflow_events()) / attempts);
    }
    if (n > 0) {
      worst =
          std::max(worst, static_cast<double>(seg.stash_size()) / n);
    } else if (seg.stash_size() > 0) {
      worst = 1.0;
    }
    return 100.0 * worst;
  }

  /// Decides whether segment `s` is due for a split. The full prober
  /// sample walks every word (O(l), milliseconds at serving sizes), so
  /// two deterministic gates keep it off the insert hot path: the
  /// analytic resample floor on the slot's attempt counter, set by the
  /// previous below-threshold probe, then the O(1) proxy score. Both
  /// are pure functions of the operation stream, so WAL replay reaches
  /// identical split points.
  void check_growth(std::uint32_t s) {
    if (pending_growth_) return;
    if (live_segments() >= cfg_.max_segments) return;
    const Mpcbf<W>& seg = *segments_[s];
    if (attempts_[s] < recheck_floor_[s]) return;
    if (proxy_score(seg) < 0.75 * cfg_.grow_score) return;
    const metrics::HealthSample smp = growth_prober().sample(seg);
    if (smp.saturation_score >= cfg_.grow_score) {
      pending_growth_ = ElasticTopologyOp{s, 0};
      return;
    }
    // Below threshold: bound the fewest future attempts at which *any*
    // saturation component could reach the gate — fill and utilization
    // from their closed forms, overflow and stash linearized assuming
    // every future attempt lands badly — and skip probes until then.
    // 60% of the analytic distance absorbs fluctuation around the
    // expected trajectory; the probe_stride floor keeps the worst-case
    // sample cadence bounded even when the gate is near.
    const double target = cfg_.grow_score / 100.0;
    const double k = static_cast<double>(seg.k());
    double dn = std::numeric_limits<double>::infinity();
    if (smp.level1_fill < target && target < 1.0) {
      dn = static_cast<double>(level1_positions()) *
           std::log((1.0 - smp.level1_fill) / (1.0 - target)) / k;
    }
    if (const double cap = hierarchy_capacity(seg);
        cap > 0 && smp.hierarchy_utilization < target) {
      dn = std::min(dn, cap * (target - smp.hierarchy_utilization) / k);
    }
    const double n = static_cast<double>(seg.size());
    const double ovf = static_cast<double>(seg.overflow_events());
    if (smp.overflow_rate < target) {
      dn = std::min(dn, (target - smp.overflow_rate) * (n + ovf));
    }
    if (smp.stash_pressure < target) {
      dn = std::min(dn, (target - smp.stash_pressure) * std::max(n, 1.0));
    }
    if (std::isfinite(dn)) {
      const auto step = std::max<std::uint64_t>(
          cfg_.probe_stride, static_cast<std::uint64_t>(0.6 * dn));
      recheck_floor_[s] = attempts_[s] + step;
    }
  }

  template <class Key>
  void contains_batch_impl(std::span<const Key> keys,
                           std::span<std::uint8_t> out) const {
    if (keys.size() != out.size()) {
      throw std::invalid_argument("contains_batch: size mismatch");
    }
    MPCBF_TRACE_SPAN(span, kCore, "elastic.query_batch");
    span.set_arg("keys", keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      out[i] = contains(keys[i]) ? 1 : 0;
    }
  }

  template <class Key>
  void insert_batch_impl(std::span<const Key> keys,
                         std::span<std::uint8_t> ok) {
    if (keys.size() != ok.size()) {
      throw std::invalid_argument("insert_batch: size mismatch");
    }
    MPCBF_TRACE_SPAN(span, kCore, "elastic.insert_batch");
    span.set_arg("keys", keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ok[i] = insert(keys[i]) ? 1 : 0;
    }
  }

  ElasticConfig cfg_;
  std::uint64_t selector_seed_;
  std::vector<std::unique_ptr<Mpcbf<W>>> segments_;  // null = retired
  std::vector<std::uint64_t> attempts_;  // insert attempts per slot
  // Per-slot minimum size before the next full growth probe; derived
  // from sampled scores, so it is serialized to keep replay aligned.
  std::vector<std::uint64_t> recheck_floor_;
  mutable std::uint64_t level1_positions_ = 0;  // lazy structural cache
  std::vector<std::vector<std::uint32_t>> chains_;  // per-bucket, oldest first
  std::uint64_t grows_ = 0;
  std::uint64_t retires_ = 0;
  std::uint64_t reclaimed_bytes_ = 0;  // process-lifetime, not persisted
  bool auto_grow_ = true;
  std::optional<ElasticTopologyOp> pending_growth_;
  mutable std::unique_ptr<metrics::HealthProber> prober_;
};

// --- DurableElasticMpcbf ------------------------------------------------
//
// Crash-safe wrapper mirroring DurableMpcbf (same directory layout,
// snapshot naming, watermark model and fault-injection points), with
// topology changes first-classed in the WAL: a split is journaled as a
// kSegmentAdd record (key = LE u32 source segment) and a drain as
// kSegmentRetire (key = LE u32 retired | LE u32 absorber), each
// appended *after* the mutation that made it due — replay applies the
// records at their sequence positions and reproduces the chain byte for
// byte, regardless of how the growth policy evolves between versions.

namespace detail {

inline std::string encode_segment_add(std::uint32_t source) {
  std::string s(4, '\0');
  std::memcpy(s.data(), &source, 4);
  return s;
}

inline std::string encode_segment_retire(std::uint32_t retired,
                                         std::uint32_t into) {
  std::string s(8, '\0');
  std::memcpy(s.data(), &retired, 4);
  std::memcpy(s.data() + 4, &into, 4);
  return s;
}

inline bool decode_segment_add(std::string_view key,
                               std::uint32_t& source) {
  if (key.size() != 4) return false;
  std::memcpy(&source, key.data(), 4);
  return true;
}

inline bool decode_segment_retire(std::string_view key,
                                  std::uint32_t& retired,
                                  std::uint32_t& into) {
  if (key.size() != 8) return false;
  std::memcpy(&retired, key.data(), 4);
  std::memcpy(&into, key.data() + 4, 4);
  return true;
}

}  // namespace detail

template <unsigned W = 64>
class DurableElasticMpcbf {
 public:
  static constexpr char kSnapshotMagic[9] = "MPCBELD1";

  struct Options {
    std::size_t flush_every = 1;
    bool fsync = true;
    std::size_t keep_snapshots = 2;
    std::function<void(std::string_view)> crash_hook;
  };

  DurableElasticMpcbf(const std::filesystem::path& dir,
                      const ElasticConfig& cfg, Options options = {})
      : DurableElasticMpcbf(dir, std::optional<ElasticConfig>(cfg),
                            std::move(options)) {}

  static DurableElasticMpcbf open_existing(
      const std::filesystem::path& dir, Options options = {}) {
    return DurableElasticMpcbf(dir, std::nullopt, std::move(options));
  }

  /// Shared-ownership open (the class is immovable — the journal pins
  /// an fd), for net::make_backend callers.
  static std::shared_ptr<DurableElasticMpcbf> open_shared(
      const std::filesystem::path& dir,
      std::optional<ElasticConfig> cfg = std::nullopt,
      Options options = {}) {
    return std::shared_ptr<DurableElasticMpcbf>(
        new DurableElasticMpcbf(dir, cfg, std::move(options)));
  }

  ~DurableElasticMpcbf() {
    try {
      if (journal_.next_seq() > journal_.base_seq()) {
        journal_.flush(options_.fsync);
      }
    } catch (...) {
      // Destructor must not throw; the unflushed tail is the
      // acknowledged-loss window the flush policy already admits.
    }
  }

  DurableElasticMpcbf(const DurableElasticMpcbf&) = delete;
  DurableElasticMpcbf& operator=(const DurableElasticMpcbf&) = delete;

  // --- mutations (journaled; topology changes ride the same WAL) --------

  bool insert(std::string_view key) {
    log_op(io::JournalOp::kInsert, key);
    const bool ok = filter_.insert(key);
    drain_pending_growth();
    return ok;
  }

  bool erase(std::string_view key) {
    log_op(io::JournalOp::kErase, key);
    return filter_.erase(key);
  }

  /// Batched inserts. Unlike DurableMpcbf, records are journaled key by
  /// key (each key's append precedes its apply — the WAL invariant
  /// holds per key) so a split due mid-batch lands in the journal at
  /// its exact replay position. Group commit still batches fsyncs.
  void insert_batch(std::span<const std::string> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string>(keys, ok);
  }
  void insert_batch(std::span<const std::string_view> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string_view>(keys, ok);
  }

  /// One journaled drain pass (see ElasticMpcbf::compact_once).
  std::optional<ElasticTopologyOp> compact_once() {
    const auto step = filter_.compaction_candidate();
    if (!step) return std::nullopt;
    log_op(io::JournalOp::kSegmentRetire,
           detail::encode_segment_retire(step->segment, step->into));
    if (!filter_.retire_into(step->segment, step->into)) {
      // The candidate was journaled but unappliable (merge overflow);
      // replay tolerates the no-op record the same way.
      return std::nullopt;
    }
    return step;
  }

  // --- queries ----------------------------------------------------------

  [[nodiscard]] bool contains(std::string_view key) const {
    return filter_.contains(key);
  }
  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    return filter_.count(key);
  }
  void contains_batch(std::span<const std::string> keys,
                      std::span<std::uint8_t> out) const {
    filter_.contains_batch(keys, out);
  }
  void contains_batch(std::span<const std::string_view> keys,
                      std::span<std::uint8_t> out) const {
    filter_.contains_batch(keys, out);
  }

  void flush() {
    journal_.flush(options_.fsync);
    pending_ = 0;
  }

  /// Snapshot with the DurableMpcbf protocol: write-temp → flush →
  /// fsync → atomic rename → directory fsync → journal truncation. The
  /// snapshot embeds the full topology record, so recovery restores the
  /// chain byte for byte.
  void snapshot() {
    MPCBF_TRACE_SPAN(span, kIo, "elastic.snapshot");
    journal_.flush(options_.fsync);
    pending_ = 0;
    const std::uint64_t last_seq = journal_.next_seq() - 1;
    const std::filesystem::path tmp = dir_ / "snapshot.tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) {
        throw std::runtime_error("DurableElasticMpcbf: cannot write " +
                                 tmp.string());
      }
      write_snapshot_stream(os, last_seq);
      os.flush();
      if (!os) {
        throw std::runtime_error(
            "DurableElasticMpcbf: snapshot write failed");
      }
    }
    crash_point("snapshot:post-temp-write");
    if (options_.fsync) sync_path(tmp);
    crash_point("snapshot:pre-rename");
    std::filesystem::rename(tmp, dir_ / snapshot_name(last_seq));
    if (options_.fsync) sync_path(dir_);
    crash_point("snapshot:post-rename");
    journal_.reset(last_seq + 1);
    crash_point("snapshot:post-journal-reset");
    prune_snapshots();
  }

  // --- replication primitives (same shapes as DurableMpcbf) -------------

  struct ReplicationBatch {
    std::vector<io::JournalRecord> records;
    std::uint64_t next_seq = 1;
    std::uint64_t base_seq = 1;
  };

  [[nodiscard]] ReplicationBatch journal_records_from(
      std::uint64_t from_seq, std::uint32_t max_records,
      std::uint64_t max_bytes) {
    if (pending_ > 0) {
      journal_.flush(options_.fsync);
      pending_ = 0;
    }
    ReplicationBatch batch;
    batch.next_seq = journal_.next_seq();
    batch.base_seq = journal_.base_seq();
    if (from_seq < batch.base_seq || from_seq >= batch.next_seq) {
      return batch;
    }
    io::JournalScan scan = io::Journal::scan(journal_path(dir_).string());
    std::uint64_t bytes = 0;
    for (auto& rec : scan.records) {
      if (rec.seq < from_seq) continue;
      if (batch.records.size() >= max_records) break;
      bytes += 13 + rec.key.size();
      if (bytes > max_bytes && !batch.records.empty()) break;
      batch.records.push_back(std::move(rec));
    }
    return batch;
  }

  [[nodiscard]] std::pair<std::string, std::uint64_t>
  serialize_snapshot() {
    journal_.flush(options_.fsync);
    pending_ = 0;
    const std::uint64_t last_seq = journal_.next_seq() - 1;
    std::ostringstream os(std::ios::binary);
    write_snapshot_stream(os, last_seq);
    return {std::move(os).str(), last_seq};
  }

  /// Installs a primary's snapshot image verbatim (topology included)
  /// and resets the journal to watermark + 1 — the follower-bootstrap
  /// path; afterwards this directory's snapshot files are byte-
  /// identical to the primary's at equal watermarks.
  std::uint64_t install_snapshot(std::string_view image) {
    std::istringstream is(std::string(image), std::ios::binary);
    std::istringstream payload(io::read_frame(is));
    io::expect_magic(payload, kSnapshotMagic);
    const auto last_seq = io::read_pod<std::uint64_t>(payload);
    ElasticMpcbf<W> loaded = ElasticMpcbf<W>::load_payload(payload);
    const std::filesystem::path tmp = dir_ / "snapshot.tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) {
        throw std::runtime_error("DurableElasticMpcbf: cannot write " +
                                 tmp.string());
      }
      os.write(image.data(), static_cast<std::streamsize>(image.size()));
      os.flush();
      if (!os) {
        throw std::runtime_error(
            "DurableElasticMpcbf: snapshot install write failed");
      }
    }
    if (options_.fsync) sync_path(tmp);
    std::filesystem::rename(tmp, dir_ / snapshot_name(last_seq));
    if (options_.fsync) sync_path(dir_);
    journal_.reset(last_seq + 1);
    pending_ = 0;
    filter_ = std::move(loaded);
    filter_.set_auto_grow(false);
    prune_snapshots();
    return last_seq;
  }

  /// Applies one replicated record WAL-first. Rejects sequence gaps and
  /// (defensively) ops this build does not understand.
  bool apply_replicated(std::uint64_t seq, io::JournalOp op,
                        std::string_view key) {
    if (seq != journal_.next_seq()) return false;
    switch (op) {
      case io::JournalOp::kInsert:
        log_op(op, key);
        (void)filter_.insert(key);
        return true;
      case io::JournalOp::kErase:
        log_op(op, key);
        (void)filter_.erase(key);
        return true;
      case io::JournalOp::kSegmentAdd: {
        std::uint32_t source = 0;
        if (!detail::decode_segment_add(key, source)) return false;
        log_op(op, key);
        (void)filter_.grow_from(source);
        return true;
      }
      case io::JournalOp::kSegmentRetire: {
        std::uint32_t retired = 0;
        std::uint32_t into = 0;
        if (!detail::decode_segment_retire(key, retired, into)) {
          return false;
        }
        log_op(op, key);
        (void)filter_.retire_into(retired, into);
        return true;
      }
      case io::JournalOp::kDecayTick:
        // Decay ticks belong to DurableDecayingMpcbf journals; an
        // elastic follower must reject rather than misapply them.
        return false;
    }
    return false;
  }

  // --- introspection ----------------------------------------------------

  [[nodiscard]] const ElasticMpcbf<W>& filter() const noexcept {
    return filter_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return filter_.size(); }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  [[nodiscard]] std::uint64_t next_seq() const noexcept {
    return journal_.next_seq();
  }
  [[nodiscard]] std::uint64_t base_seq() const noexcept {
    return journal_.base_seq();
  }
  [[nodiscard]] std::size_t pending_records() const noexcept {
    return pending_;
  }
  void publish_metrics(metrics::Registry& reg,
                       const std::string& label = "elastic") const {
    filter_.publish_metrics(reg, label);
  }

  // --- recovery ---------------------------------------------------------

  /// Newest valid snapshot + replay above its watermark. Topology
  /// records replay at their exact sequence positions with auto-grow
  /// disabled, so the rebuilt chain is byte-identical to the crashed
  /// process's. Pass cfg == nullptr to require a usable snapshot.
  static ElasticMpcbf<W> recover(const std::filesystem::path& dir,
                                 const ElasticConfig* cfg = nullptr) {
    MPCBF_TRACE_SPAN(span, kIo, "elastic.recover");
    std::filesystem::create_directories(dir);
    std::optional<ElasticMpcbf<W>> filter;
    std::uint64_t watermark = 0;
    for (const auto& path : snapshot_files(dir)) {
      try {
        std::ifstream is(path, std::ios::binary);
        if (!is) continue;
        std::istringstream payload(io::read_frame(is));
        io::expect_magic(payload, kSnapshotMagic);
        const auto last_seq = io::read_pod<std::uint64_t>(payload);
        filter.emplace(ElasticMpcbf<W>::load_payload(payload));
        watermark = last_seq;
        break;
      } catch (const std::runtime_error&) {
        continue;  // corrupt snapshot: fall back to an older one
      }
    }
    if (!filter) {
      if (cfg == nullptr) {
        throw std::runtime_error(
            "DurableElasticMpcbf: no loadable snapshot in " +
            dir.string() + " and no config to start from");
      }
      filter.emplace(*cfg);
    } else if (cfg != nullptr) {
      if (filter->config().route_bits != cfg->route_bits ||
          filter->seed() != cfg->segment.seed) {
        throw std::runtime_error(
            "DurableElasticMpcbf: snapshot routing does not match config");
      }
    }
    filter->set_auto_grow(false);
    const io::JournalScan scan =
        io::Journal::scan(journal_path(dir).string());
    if (scan.base_seq > watermark + 1) {
      throw std::runtime_error(
          "DurableElasticMpcbf: journal was compacted past the newest "
          "loadable snapshot; state is unrecoverable without it");
    }
    for (const auto& rec : scan.records) {
      if (rec.seq <= watermark) continue;
      switch (rec.op) {
        case io::JournalOp::kInsert:
          (void)filter->insert(rec.key);
          break;
        case io::JournalOp::kErase:
          (void)filter->erase(rec.key);
          break;
        case io::JournalOp::kSegmentAdd: {
          std::uint32_t source = 0;
          if (detail::decode_segment_add(rec.key, source)) {
            (void)filter->grow_from(source);
          }
          break;
        }
        case io::JournalOp::kSegmentRetire: {
          std::uint32_t retired = 0;
          std::uint32_t into = 0;
          if (detail::decode_segment_retire(rec.key, retired, into)) {
            (void)filter->retire_into(retired, into);
          }
          break;
        }
        case io::JournalOp::kDecayTick:
          throw std::runtime_error(
              "DurableElasticMpcbf: journal contains decay-tick records "
              "(decaying filter directory?)");
      }
    }
    return std::move(*filter);
  }

  static std::filesystem::path journal_path(
      const std::filesystem::path& dir) {
    return dir / "journal.wal";
  }

  static std::vector<std::filesystem::path> snapshot_files(
      const std::filesystem::path& dir) {
    std::vector<std::filesystem::path> files;
    if (!std::filesystem::is_directory(dir)) return files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.starts_with("snapshot-") && name.ends_with(".mpcbf")) {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end(), [](const auto& a, const auto& b) {
      return a.filename().string() > b.filename().string();
    });
    return files;
  }

 private:
  DurableElasticMpcbf(const std::filesystem::path& dir,
                      std::optional<ElasticConfig> cfg, Options options)
      : dir_(dir),
        options_(std::move(options)),
        filter_(recover(dir, cfg ? &*cfg : nullptr)),
        journal_(journal_path(dir).string()) {
    if (options_.flush_every == 0) options_.flush_every = 1;
    if (options_.keep_snapshots == 0) options_.keep_snapshots = 1;
    // A crash between an insert's append and its split's append leaves
    // the growth pending after replay; journal and apply it now so the
    // recovered process converges with the uncrashed one.
    drain_pending_growth();
  }

  template <typename Key>
  void insert_batch_impl(std::span<const Key> keys,
                         std::span<std::uint8_t> ok) {
    if (keys.size() != ok.size()) {
      throw std::invalid_argument("insert_batch: size mismatch");
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ok[i] = insert(keys[i]) ? 1 : 0;
    }
  }

  void drain_pending_growth() {
    while (const auto pending = filter_.pending_growth()) {
      log_op(io::JournalOp::kSegmentAdd,
             detail::encode_segment_add(pending->segment));
      (void)filter_.grow_from(pending->segment);
    }
  }

  void log_op(io::JournalOp op, std::string_view key) {
    crash_point("journal:pre-append");
    journal_.append(op, key);
    ++pending_;
    crash_point("journal:post-append");
    if (pending_ >= options_.flush_every) {
      journal_.flush(options_.fsync);
      pending_ = 0;
      crash_point("journal:post-flush");
    }
  }

  void crash_point(std::string_view point) {
    if (options_.crash_hook) options_.crash_hook(point);
  }

  void write_snapshot_stream(std::ostream& os,
                             std::uint64_t last_seq) const {
    std::ostringstream payload;
    io::write_magic(payload, kSnapshotMagic);
    io::write_pod<std::uint64_t>(payload, last_seq);
    filter_.save_payload(payload);
    io::write_frame(os, payload.str());
  }

  static std::string snapshot_name(std::uint64_t seq) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "snapshot-%016llx.mpcbf",
                  static_cast<unsigned long long>(seq));
    return buf;
  }

  void prune_snapshots() const {
    const auto files = snapshot_files(dir_);
    for (std::size_t i = options_.keep_snapshots; i < files.size(); ++i) {
      std::error_code ec;
      std::filesystem::remove(files[i], ec);  // best-effort cleanup
    }
  }

  static void sync_path(const std::filesystem::path& p) {
#ifdef __unix__
    const int fd = ::open(p.c_str(), O_RDONLY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
#else
    (void)p;
#endif
  }

  std::filesystem::path dir_;
  Options options_;
  ElasticMpcbf<W> filter_;
  io::Journal journal_;
  std::size_t pending_ = 0;
};

// --- background maintenance ---------------------------------------------

/// Runs a maintenance step (drain pass + gauge refresh, typically) on
/// an interval, on a util::ThreadPool worker. The step runs under
/// whatever synchronization the caller bakes into the callback — the
/// serving layer passes a closure that takes the backend's exclusive
/// lock, exactly like a mutating request.
class ElasticMaintainer {
 public:
  ElasticMaintainer(std::function<void()> step,
                    std::chrono::milliseconds interval)
      : step_(std::move(step)), interval_(interval), pool_(1) {
    pool_.submit([this] { run(); });
  }

  ~ElasticMaintainer() { stop(); }
  ElasticMaintainer(const ElasticMaintainer&) = delete;
  ElasticMaintainer& operator=(const ElasticMaintainer&) = delete;

  /// Stops the loop and joins the pool. Idempotent.
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_requested_ = true;
    }
    cv_.notify_all();
    pool_.stop();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (cv_.wait_for(lock, interval_,
                       [this] { return stop_requested_; })) {
        return;
      }
      lock.unlock();
      step_();
      lock.lock();
    }
  }

  std::function<void()> step_;
  std::chrono::milliseconds interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  util::ThreadPool pool_;
};

}  // namespace mpcbf::core
