// ShardedMpcbf — thread-safe MPCBF for word widths where the lock-free
// single-word CAS of AtomicMpcbf does not apply (W > 64), or when the
// stash/throw overflow policies are needed under concurrency.
//
// The key space is partitioned across S independent Mpcbf shards by a
// dedicated shard hash (independent of the per-shard word hashes), each
// shard guarded by its own mutex. Operations on different shards never
// contend; within a shard the full sequential feature set (policies,
// counts, merge of equal-sharding filters, serialization) is available.
// This is the classic striped-lock recipe — chosen over finer-grained
// schemes because an MPCBF operation only holds its lock for a handful of
// word accesses (CP.20: RAII locking, no manual unlock paths).
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/mpcbf.hpp"
#include "hash/murmur3.hpp"
#include "trace/trace.hpp"

namespace mpcbf::core {

template <unsigned W = 64>
class ShardedMpcbf {
 public:
  /// Splits `cfg.memory_bits` (and `cfg.expected_n`) evenly across
  /// `num_shards` Mpcbf instances. Shard count is clamped to >= 1.
  /// Both splits round up, so the total provisioned capacity is never
  /// below what the planner asked for — flooring the per-shard bits
  /// used to shave up to `num_shards - 1` bits off the FPR budget.
  ShardedMpcbf(const MpcbfConfig& cfg, unsigned num_shards)
      : shard_seed_(util::SplitMix64::mix(cfg.seed ^ 0x5ad5ad5ad5ad5adULL)) {
    if (num_shards == 0) num_shards = 1;
    MpcbfConfig shard_cfg = cfg;
    // Ceil-divide across shards, then ceil to a whole word: Mpcbf
    // floors its word count (l = memory_bits / W), so a fractional
    // word per shard would otherwise be dropped num_shards times over.
    const std::size_t per_shard =
        (cfg.memory_bits + num_shards - 1) / num_shards;
    shard_cfg.memory_bits = (per_shard + W - 1) / W * W;
    if (cfg.expected_n != 0) {
      shard_cfg.expected_n =
          (cfg.expected_n + num_shards - 1) / num_shards;
    }
    shards_.reserve(num_shards);
    for (unsigned s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(shard_cfg));
    }
  }

  bool insert(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kShard, "shard.insert");
    Shard& s = shard_of(key);
    if (span.live()) span.set_arg("shard", shard_index(key));
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.filter.insert(key);
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    MPCBF_TRACE_SPAN(span, kShard, "shard.query");
    const Shard& s = shard_of(key);
    if (span.live()) span.set_arg("shard", shard_index(key));
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.filter.contains(key);
  }

  bool erase(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kShard, "shard.erase");
    Shard& s = shard_of(key);
    if (span.live()) span.set_arg("shard", shard_index(key));
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.filter.erase(key);
  }

  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    const Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.filter.count(key);
  }

  // --- batch operations --------------------------------------------------

  /// Batched membership: keys are first grouped by shard, then each shard
  /// is locked once and queried through the Mpcbf engine pipeline
  /// (derive → prefetch → resolve), and the verdicts scattered back to
  /// the caller's order. One lock acquisition per touched shard instead
  /// of one per key, and the per-shard pipeline keeps its prefetch
  /// locality. `out[i]` receives the verdict for `keys[i]`.
  void contains_batch(std::span<const std::string> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string>(keys, out);
  }
  void contains_batch(std::span<const std::string_view> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string_view>(keys, out);
  }

  /// Batched inserts with the same group-by-shard pass; `ok[i]` receives
  /// insert(keys[i])'s return value. Within a shard, keys are applied in
  /// caller order, so overflow outcomes match a scalar loop exactly.
  void insert_batch(std::span<const std::string> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string>(keys, ok);
  }
  void insert_batch(std::span<const std::string_view> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string_view>(keys, ok);
  }

  void clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      s->filter.clear();
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      total += s->filter.size();
    }
    return total;
  }

  [[nodiscard]] std::uint64_t overflow_events() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      total += s->filter.overflow_events();
    }
    return total;
  }

  [[nodiscard]] std::uint64_t underflow_events() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      total += s->filter.underflow_events();
    }
    return total;
  }

  [[nodiscard]] std::size_t stash_size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      total += s->filter.stash_size();
    }
    return total;
  }

  /// Aggregated access/latency stats across all shards (snapshot by
  /// value: per-shard AccessStats live under the shard locks).
  [[nodiscard]] metrics::AccessStats stats_snapshot() const {
    metrics::AccessStats out;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      out.merge(s->filter.stats());
    }
    return out;
  }

  void reset_stats() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      s->filter.reset_stats();
    }
  }

  [[nodiscard]] std::size_t memory_bits() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      total += s->filter.memory_bits();
    }
    return total;
  }

  [[nodiscard]] unsigned num_shards() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Quiescent structural check (callers must ensure no concurrent
  /// mutation, as for any whole-structure validation).
  [[nodiscard]] bool validate() const {
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      if (!s->filter.validate()) return false;
    }
    return true;
  }

  // --- serialization ----------------------------------------------------

  static constexpr char kMagic[9] = "MPCBSHD2";

  /// Serializes every shard into one v2 frame (quiescent state only —
  /// shard locks are taken one at a time, so concurrent mutations would
  /// tear across shards).
  void save(std::ostream& os) const {
    std::ostringstream payload;
    io::write_magic(payload, kMagic);
    io::write_pod<std::uint32_t>(payload, W);
    io::write_pod<std::uint32_t>(payload,
                                 static_cast<std::uint32_t>(shards_.size()));
    io::write_pod<std::uint64_t>(payload, shard_seed_);
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      s->filter.save_payload(payload);
    }
    io::write_frame(os, payload.str());
  }

  /// Restores a filter written by save(). Throws std::runtime_error on
  /// corruption (frame CRC, shard layout disagreement, seed mismatch).
  static ShardedMpcbf load(std::istream& is) {
    std::istringstream payload(io::read_frame(is));
    io::expect_magic(payload, kMagic);
    const auto width = io::read_pod<std::uint32_t>(payload);
    if (width != W) {
      throw std::runtime_error("ShardedMpcbf::load: word width mismatch");
    }
    const auto num_shards = io::read_pod<std::uint32_t>(payload);
    if (num_shards == 0 || num_shards > kMaxShards) {
      throw std::runtime_error("ShardedMpcbf::load: shard count out of range");
    }
    const auto shard_seed = io::read_pod<std::uint64_t>(payload);
    std::vector<std::unique_ptr<Shard>> shards;
    shards.reserve(num_shards);
    for (std::uint32_t i = 0; i < num_shards; ++i) {
      shards.push_back(
          std::make_unique<Shard>(Mpcbf<W>::load_payload(payload)));
      if (!shards[0]->filter.compatible(shards[i]->filter)) {
        throw std::runtime_error(
            "ShardedMpcbf::load: shards disagree on layout");
      }
    }
    // The shard hash seed is derived from the per-shard seed; a stored
    // value that disagrees would route keys to the wrong shards.
    const std::uint64_t expected_seed = util::SplitMix64::mix(
        shards[0]->filter.seed() ^ 0x5ad5ad5ad5ad5adULL);
    if (shard_seed != expected_seed) {
      throw std::runtime_error("ShardedMpcbf::load: shard seed mismatch");
    }
    return ShardedMpcbf(std::move(shards), shard_seed);
  }

 private:
  static constexpr std::uint32_t kMaxShards = 1u << 16;

  struct Shard {
    explicit Shard(const MpcbfConfig& cfg) : filter(cfg) {}
    explicit Shard(Mpcbf<W>&& f) : filter(std::move(f)) {}
    Mpcbf<W> filter;
    mutable std::mutex mutex;
  };

  ShardedMpcbf(std::vector<std::unique_ptr<Shard>> shards,
               std::uint64_t shard_seed)
      : shards_(std::move(shards)), shard_seed_(shard_seed) {}

  [[nodiscard]] std::size_t shard_index(std::string_view key) const {
    const std::uint64_t h = hash::murmur3_128(key, shard_seed_).lo;
    return static_cast<std::size_t>(h % shards_.size());
  }

  [[nodiscard]] Shard& shard_of(std::string_view key) const {
    return *shards_[shard_index(key)];
  }

  /// Group-by-shard pass shared by the batch operations: buckets each
  /// key's view and original index per shard. Views into the caller's
  /// keys, so no key bytes are copied.
  template <class Key>
  void group_by_shard(std::span<const Key> keys,
                      std::vector<std::vector<std::string_view>>& shard_keys,
                      std::vector<std::vector<std::size_t>>& shard_idx) const {
    shard_keys.assign(shards_.size(), {});
    shard_idx.assign(shards_.size(), {});
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::size_t s = shard_index(keys[i]);
      shard_keys[s].emplace_back(keys[i]);
      shard_idx[s].push_back(i);
    }
  }

  template <class Key>
  void contains_batch_impl(std::span<const Key> keys,
                           std::span<std::uint8_t> out) const {
    if (keys.size() != out.size()) {
      throw std::invalid_argument("contains_batch: size mismatch");
    }
    MPCBF_TRACE_SPAN(span, kShard, "shard.query_batch");
    span.set_arg("keys", keys.size());
    std::vector<std::vector<std::string_view>> shard_keys;
    std::vector<std::vector<std::size_t>> shard_idx;
    group_by_shard(keys, shard_keys, shard_idx);
    std::vector<std::uint8_t> verdicts;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shard_keys[s].empty()) continue;
      verdicts.resize(shard_keys[s].size());
      {
        std::lock_guard<std::mutex> lock(shards_[s]->mutex);
        shards_[s]->filter.contains_batch(
            std::span<const std::string_view>(shard_keys[s]),
            std::span<std::uint8_t>(verdicts));
      }
      for (std::size_t j = 0; j < shard_idx[s].size(); ++j) {
        out[shard_idx[s][j]] = verdicts[j];
      }
    }
  }

  template <class Key>
  void insert_batch_impl(std::span<const Key> keys,
                         std::span<std::uint8_t> ok) {
    if (keys.size() != ok.size()) {
      throw std::invalid_argument("insert_batch: size mismatch");
    }
    MPCBF_TRACE_SPAN(span, kShard, "shard.insert_batch");
    span.set_arg("keys", keys.size());
    std::vector<std::vector<std::string_view>> shard_keys;
    std::vector<std::vector<std::size_t>> shard_idx;
    group_by_shard(keys, shard_keys, shard_idx);
    std::vector<std::uint8_t> results;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shard_keys[s].empty()) continue;
      results.resize(shard_keys[s].size());
      {
        std::lock_guard<std::mutex> lock(shards_[s]->mutex);
        shards_[s]->filter.insert_batch(
            std::span<const std::string_view>(shard_keys[s]),
            std::span<std::uint8_t>(results));
      }
      for (std::size_t j = 0; j < shard_idx[s].size(); ++j) {
        ok[shard_idx[s][j]] = results[j];
      }
    }
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_seed_;
};

}  // namespace mpcbf::core
