// ShardedMpcbf — thread-safe MPCBF for word widths where the lock-free
// single-word CAS of AtomicMpcbf does not apply (W > 64), or when the
// stash/throw overflow policies are needed under concurrency.
//
// The key space is partitioned across S independent Mpcbf shards by a
// dedicated shard hash (independent of the per-shard word hashes), each
// shard guarded by its own mutex. Operations on different shards never
// contend; within a shard the full sequential feature set (policies,
// counts, merge of equal-sharding filters, serialization) is available.
// This is the classic striped-lock recipe — chosen over finer-grained
// schemes because an MPCBF operation only holds its lock for a handful of
// word accesses (CP.20: RAII locking, no manual unlock paths).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/mpcbf.hpp"
#include "hash/murmur3.hpp"

namespace mpcbf::core {

template <unsigned W = 64>
class ShardedMpcbf {
 public:
  /// Splits `cfg.memory_bits` (and `cfg.expected_n`) evenly across
  /// `num_shards` Mpcbf instances. Shard count is clamped to >= 1.
  ShardedMpcbf(const MpcbfConfig& cfg, unsigned num_shards)
      : shard_seed_(util::SplitMix64::mix(cfg.seed ^ 0x5ad5ad5ad5ad5adULL)) {
    if (num_shards == 0) num_shards = 1;
    MpcbfConfig shard_cfg = cfg;
    shard_cfg.memory_bits = cfg.memory_bits / num_shards;
    if (cfg.expected_n != 0) {
      shard_cfg.expected_n =
          (cfg.expected_n + num_shards - 1) / num_shards;
    }
    shards_.reserve(num_shards);
    for (unsigned s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(shard_cfg));
    }
  }

  bool insert(std::string_view key) {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.filter.insert(key);
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    const Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.filter.contains(key);
  }

  bool erase(std::string_view key) {
    Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.filter.erase(key);
  }

  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    const Shard& s = shard_of(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.filter.count(key);
  }

  void clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      s->filter.clear();
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      total += s->filter.size();
    }
    return total;
  }

  [[nodiscard]] std::uint64_t overflow_events() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      total += s->filter.overflow_events();
    }
    return total;
  }

  [[nodiscard]] std::size_t memory_bits() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      total += s->filter.memory_bits();
    }
    return total;
  }

  [[nodiscard]] unsigned num_shards() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  /// Quiescent structural check (callers must ensure no concurrent
  /// mutation, as for any whole-structure validation).
  [[nodiscard]] bool validate() const {
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mutex);
      if (!s->filter.validate()) return false;
    }
    return true;
  }

 private:
  struct Shard {
    explicit Shard(const MpcbfConfig& cfg) : filter(cfg) {}
    Mpcbf<W> filter;
    mutable std::mutex mutex;
  };

  [[nodiscard]] Shard& shard_of(std::string_view key) const {
    const std::uint64_t h = hash::murmur3_128(key, shard_seed_).lo;
    return *shards_[h % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_seed_;
};

}  // namespace mpcbf::core
