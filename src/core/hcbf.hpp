// Hierarchical Counting Bloom Filter (HCBF) inside one machine word —
// Sec. III-B and Algorithm 1 of the paper.
//
// Layout of a W-bit word holding an HCBF with first-level size b1:
//
//   [ level 1: b1 membership bits | level 2 | level 3 | ... | free ]
//
// Level 1 has a fixed size; every level j >= 2 has exactly
// popcount(level j-1) bits (one slot per set bit of the level above — the
// class invariant traversal relies on). The counter addressed by level-1
// position p has value c iff the chain starting at p carries 1s through
// levels 1..c and a 0 terminator slot at level c+1. Hence:
//
//   * a counter of value c consumes exactly c hierarchy bits
//     ((c-1) ones + 1 terminator), so hierarchy usage == sum of counters;
//   * querying needs only level 1 — this is what makes the false positive
//     rate depend on b1 alone (eq. 4/5);
//   * counters are not bounded at 15 like CBF's 4-bit counters; a chain may
//     grow as deep as the word allows.
//
// The traversal step from a set bit at in-level position p of level j goes
// to in-level position popcount_j(bits before p) of level j+1 (the paper's
// popcount(i) function).
//
// These are free-standing operations over (WordBitset<W>, b1) so that both
// the sequential container (which caches per-word usage) and the lock-free
// container (which must keep all state inside the 64-bit word) share one
// implementation.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

#include "bitvec/word_bitset.hpp"
#include "hash/hash_stream.hpp"

namespace mpcbf::core {

/// Outcome of a single counter increment/decrement.
struct HcbfResult {
  bool ok = false;        ///< false on overflow (increment) / underflow (decrement)
  unsigned value = 0;     ///< counter value after the operation
  unsigned extra_bits = 0;  ///< hierarchy-addressing bits beyond level 1
                            ///< (per-level ceil(log2(level size)); feeds the
                            ///< update access-bandwidth metric)
};

template <unsigned W>
struct Hcbf {
  using Word = bits::WordBitset<W>;

  /// Total occupied bits: b1 plus the packed hierarchy levels. Derived by
  /// walking the level-size invariant |v_{j+1}| = popcount(v_j); used by
  /// the lock-free container and by validation (the sequential container
  /// caches the same value).
  static unsigned occupied_bits(const Word& w, unsigned b1) noexcept {
    unsigned start = 0;
    unsigned size = b1;
    unsigned total = 0;
    while (size > 0 && total + size <= W) {
      const unsigned ones = w.popcount_range(start, start + size);
      total += size;
      start += size;
      size = ones;
    }
    return total;
  }

  /// Hierarchy bits in use == sum of all counters in the word.
  static unsigned hierarchy_bits(const Word& w, unsigned b1) noexcept {
    return occupied_bits(w, b1) - b1;
  }

  /// True iff one more increment fits (it will consume one hierarchy bit).
  static bool can_increment(unsigned b1, unsigned hierarchy_used) noexcept {
    return b1 + hierarchy_used < W;
  }

  /// Increment the counter at level-1 position `pos` (0 <= pos < b1).
  /// `hierarchy_used` must be the word's current hierarchy usage; the
  /// caller owns keeping it in sync (+1 on success).
  static HcbfResult increment(Word& w, unsigned b1, unsigned pos,
                              unsigned hierarchy_used) noexcept {
    assert(pos < b1);
    if (!can_increment(b1, hierarchy_used)) {
      return {};
    }
    unsigned level_start = 0;
    unsigned level_size = b1;
    unsigned p = pos;
    unsigned depth = 1;
    unsigned extra_bits = 0;
    for (;;) {
      const unsigned abs = level_start + p;
      const unsigned ones_before = w.popcount_range(level_start, abs);
      const unsigned next_start = level_start + level_size;
      if (!w.test(abs)) {
        // End of the chain: extend it by one. The freshly set bit at level
        // `depth` gets its terminator slot at level depth+1, index
        // popcount(bits before it).
        w.set(abs);
        w.insert_zero_at(next_start + ones_before);
        return {true, depth, extra_bits};
      }
      // Descend to this bit's slot in the next level.
      const unsigned next_size =
          w.popcount_range(level_start, next_start);
      extra_bits += hash::ceil_log2(next_size);
      p = ones_before;
      level_start = next_start;
      level_size = next_size;
      ++depth;
    }
  }

  /// Decrement the counter at level-1 position `pos`. Fails (ok=false)
  /// when the counter is already zero. Caller decrements its cached
  /// hierarchy usage on success.
  static HcbfResult decrement(Word& w, unsigned b1, unsigned pos) noexcept {
    assert(pos < b1);
    if (!w.test(pos)) {
      return {};
    }
    unsigned level_start = 0;
    unsigned level_size = b1;
    unsigned p = pos;
    unsigned depth = 1;
    unsigned extra_bits = 0;
    for (;;) {
      const unsigned abs = level_start + p;
      const unsigned ones_before = w.popcount_range(level_start, abs);
      const unsigned next_start = level_start + level_size;
      const unsigned next_size = w.popcount_range(level_start, next_start);
      const unsigned next_abs = next_start + ones_before;
      if (!w.test(next_abs)) {
        // `abs` is the last 1 of the chain; drop its terminator slot and
        // flip it back to 0 (the paper's delete, Sec. III-B.1).
        w.remove_bit_at(next_abs);
        w.clear(abs);
        return {true, depth - 1, extra_bits};
      }
      extra_bits += hash::ceil_log2(next_size);
      p = ones_before;
      level_start = next_start;
      level_size = next_size;
      ++depth;
    }
  }

  /// Current value of the counter at level-1 position `pos`.
  static unsigned counter(const Word& w, unsigned b1, unsigned pos) noexcept {
    assert(pos < b1);
    if (!w.test(pos)) return 0;
    unsigned level_start = 0;
    unsigned level_size = b1;
    unsigned p = pos;
    unsigned depth = 1;
    for (;;) {
      const unsigned abs = level_start + p;
      const unsigned ones_before = w.popcount_range(level_start, abs);
      const unsigned next_start = level_start + level_size;
      const unsigned next_size = w.popcount_range(level_start, next_start);
      const unsigned next_abs = next_start + ones_before;
      if (!w.test(next_abs)) return depth;
      p = ones_before;
      level_start = next_start;
      level_size = next_size;
      ++depth;
    }
  }

  /// Membership test over level 1 only. With `short_circuit`, stops at the
  /// first zero bit (the behaviour behind the paper's sub-k average query
  /// accesses). Returns true iff all positions are set.
  static bool membership(const Word& w, std::span<const unsigned> positions,
                         bool short_circuit = true) noexcept {
    bool all = true;
    for (const unsigned pos : positions) {
      if (!w.test(pos)) {
        all = false;
        if (short_circuit) return false;
      }
    }
    return all;
  }

  /// Structural validation for tests: level sizes follow the popcount
  /// invariant, the occupied region fits in the word, and everything past
  /// it is zero.
  static bool validate(const Word& w, unsigned b1) noexcept {
    unsigned start = 0;
    unsigned size = b1;
    while (size > 0) {
      if (start + size > W) return false;
      const unsigned ones = w.popcount_range(start, start + size);
      start += size;
      size = ones;
    }
    // Everything beyond the last (empty) level must be zero.
    return w.popcount_range(start, W) == 0;
  }
};

/// Value-type wrapper bundling a word with its b1 — convenient for unit
/// tests, examples, and the paper's Fig. 3 walkthrough.
template <unsigned W>
class HcbfWord {
 public:
  explicit HcbfWord(unsigned b1) noexcept : b1_(b1) {
    assert(b1 >= 1 && b1 <= W);
  }

  [[nodiscard]] unsigned b1() const noexcept { return b1_; }
  [[nodiscard]] unsigned hierarchy_used() const noexcept { return used_; }
  [[nodiscard]] unsigned free_bits() const noexcept { return W - b1_ - used_; }

  HcbfResult increment(unsigned pos) noexcept {
    const HcbfResult r = Hcbf<W>::increment(word_, b1_, pos, used_);
    if (r.ok) ++used_;
    return r;
  }

  HcbfResult decrement(unsigned pos) noexcept {
    const HcbfResult r = Hcbf<W>::decrement(word_, b1_, pos);
    if (r.ok) --used_;
    return r;
  }

  [[nodiscard]] unsigned counter(unsigned pos) const noexcept {
    return Hcbf<W>::counter(word_, b1_, pos);
  }

  [[nodiscard]] bool membership(std::span<const unsigned> positions,
                                bool short_circuit = true) const noexcept {
    return Hcbf<W>::membership(word_, positions, short_circuit);
  }

  [[nodiscard]] bool validate() const noexcept {
    return Hcbf<W>::validate(word_, b1_) &&
           Hcbf<W>::hierarchy_bits(word_, b1_) == used_;
  }

  [[nodiscard]] const bits::WordBitset<W>& raw() const noexcept {
    return word_;
  }
  [[nodiscard]] bits::WordBitset<W>& raw() noexcept { return word_; }

 private:
  bits::WordBitset<W> word_{};
  unsigned b1_;
  unsigned used_ = 0;
};

}  // namespace mpcbf::core
