// AtomicMpcbf — lock-free MPCBF over 64-bit words.
//
// The paper closes Sec. IV-B noting a hardware platform (FPGA hashing,
// single-word memory transactions) was being built; this class is the
// software analogue of that design point. Because a whole HCBF fits in one
// 64-bit word, every word mutation is a load → pure transform → CAS loop:
// a query is literally one atomic load per word (g loads for MPCBF-g), and
// inserts/deletes are lock-free (some thread always makes progress).
//
// Built on core/word_engine.hpp: target derivation is the shared
// TargetDeriver (same canonical hash order as Mpcbf), regrouped by
// distinct word (engine::group_by_word) so each word is CASed exactly
// once per operation, and the word vector is the engine's AtomicWords64
// storage policy. Capacity is re-derived from the word value inside the
// CAS loop via the level-size invariant (Hcbf::occupied_bits), so no
// out-of-word metadata exists and the CAS publishes a fully consistent
// word.
//
// Semantics under concurrency:
//  * per-word updates are linearizable (single-CAS publication);
//  * an element mapping to g >= 2 words is inserted word by word, so a
//    concurrent query can observe a partial insert as a (transient) false
//    negative — the same anomaly a hardware pipeline with per-bank updates
//    exhibits. Callers needing atomic multi-word visibility must
//    externally synchronize (or use g = 1, where inserts are atomic).
//  * overflow policy is reject-only: stash bookkeeping cannot be made
//    lock-free alongside the word CAS.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bitvec/word_bitset.hpp"
#include "core/hcbf.hpp"
#include "core/word_engine.hpp"
#include "hash/hash_stream.hpp"
#include "io/binary.hpp"
#include "io/crc32c.hpp"
#include "metrics/access_stats.hpp"
#include "trace/trace.hpp"
#include "metrics/timer.hpp"
#include "model/fpr_model.hpp"

namespace mpcbf::core {

class AtomicMpcbf {
 public:
  static constexpr unsigned kWordBits = 64;
  static constexpr unsigned kMaxG = engine::kMaxG;
  static constexpr unsigned kMaxKPerWord = engine::kMaxKPerWord;

  /// `n_max` = 0 derives the per-word capacity from `expected_n` via the
  /// eq.-(11) heuristic; a nonzero value overrides it (callers wanting
  /// stronger no-overflow guarantees add headroom here).
  AtomicMpcbf(std::size_t memory_bits, unsigned k, unsigned g,
              std::size_t expected_n,
              std::uint64_t seed = hash::kDefaultSeed, unsigned n_max = 0)
      : k_(k), g_(g), seed_(seed) {
    engine::validate_shape(k, g, "AtomicMpcbf");
    const std::size_t l = memory_bits / kWordBits;
    if (l == 0) {
      throw std::invalid_argument("AtomicMpcbf: memory smaller than a word");
    }
    if (expected_n == 0 && n_max == 0) {
      throw std::invalid_argument("AtomicMpcbf: expected_n or n_max required");
    }
    n_max_ = n_max != 0 ? n_max : model::n_max_heuristic(expected_n, l, g);
    if (n_max_ == 0) n_max_ = 1;
    b1_ = model::b1_improved(kWordBits, k_, g_, n_max_);
    if (b1_ < 2) {
      throw std::invalid_argument(
          "AtomicMpcbf: configuration leaves no first-level bits");
    }
    store_.init(l);
  }

  /// Movable so load() can return by value (atomics themselves are not
  /// movable; the counter transfers as a relaxed snapshot). Quiescent
  /// source only.
  AtomicMpcbf(AtomicMpcbf&& other) noexcept
      : store_(std::move(other.store_)),
        k_(other.k_),
        g_(other.g_),
        b1_(other.b1_),
        n_max_(other.n_max_),
        seed_(other.seed_),
        stats_(other.stats_),
        overflow_events_(
            other.overflow_events_.load(std::memory_order_relaxed)),
        underflow_events_(
            other.underflow_events_.load(std::memory_order_relaxed)) {}

  /// Lock-free insert. Returns false if any target word lacks capacity
  /// (words updated before the failing one are rolled back, so the insert
  /// is all-or-nothing from the caller's perspective).
  bool insert(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kCore, "atomic_mpcbf.insert");
    const bool timed = stats_.should_sample();
    const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
    engine::WordPlan p;
    const std::uint64_t bits = derive(key, p);
    return insert_planned(p, bits, span, timed, t0);
  }

  /// Membership query: one atomic load per (distinct) word. Hashing is
  /// eager here (the whole stream is consumed before the first load), so
  /// accounted hash bits do not shrink under short-circuiting the way the
  /// lazy scalar Mpcbf's do — word touches still stop at the first miss.
  [[nodiscard]] bool contains(std::string_view key) const {
    MPCBF_TRACE_SPAN(span, kCore, "atomic_mpcbf.query");
    const bool timed = stats_.should_sample();
    const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
    engine::WordPlan p;
    const std::uint64_t bits = derive(key, p);
    const engine::EagerEval ev = engine::evaluate_eager(store_, p, b1_);
    span.set_arg("words", ev.words_touched);
    record_op(ev.positive ? metrics::OpClass::kQueryPositive
                          : metrics::OpClass::kQueryNegative,
              ev.words_touched, bits, timed, t0);
    return ev.positive;
  }

  /// Lock-free delete of one prior insert. Returns false (and leaves the
  /// remaining words untouched for that position) when a counter
  /// underflows — the never-inserted-key contract violation. Each
  /// underflowing word counts one underflow event.
  bool erase(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kCore, "atomic_mpcbf.erase");
    const bool timed = stats_.should_sample();
    const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
    engine::WordPlan p;
    const std::uint64_t bits = derive(key, p);
    bool ok = true;
    for (unsigned s = 0; s < p.num_words; ++s) {
      if (!store_.apply_group(p, s, b1_, /*increment=*/false)) {
        ok = false;
        underflow_events_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    record_op(metrics::OpClass::kDelete, p.num_words, bits, timed, t0);
    return ok;
  }

  /// Multiplicity estimate from a per-word atomic snapshot.
  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    engine::WordPlan p;
    derive(key, p);
    unsigned min_c = ~0u;
    for (unsigned s = 0; s < p.num_words; ++s) {
      bits::WordBitset<64> w;
      w.set_limb(0, store_.load_acquire(p.word[s]));
      for (unsigned i = p.offset[s]; i < p.offset[s + 1]; ++i) {
        min_c = std::min(min_c, Hcbf<64>::counter(w, b1_, p.pos[i]));
        if (min_c == 0) return 0;
      }
    }
    return min_c;
  }

  // --- batch operations --------------------------------------------------

  /// Membership for a batch of keys through the engine's software
  /// pipeline: a chunk of keys is hashed and its word plans built first,
  /// every distinct word prefetched, then each key resolved from a
  /// snapshot — hiding the per-word cache miss behind the next key's
  /// hashing. `out[i]` receives the verdict for `keys[i]`.
  ///
  /// Stats parity with scalar contains(): evaluation stops at the same
  /// first-miss word and hashing is eager in both, so a batch and a
  /// scalar pass over the same (quiescent) keys produce identical
  /// per-class op counts, word touches and accounted bits. Tallies are
  /// aggregated per call (one atomic trio per op class); sampled chunks
  /// record their per-key average latency.
  void contains_batch(std::span<const std::string> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string>(keys, out);
  }
  void contains_batch(std::span<const std::string_view> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string_view>(keys, out);
  }

  /// Batched lock-free inserts through the same pipeline; `ok[i]`
  /// receives insert(keys[i])'s return value. Each key is applied (and
  /// accounted) exactly as a scalar insert, so overflow rollback and
  /// stats match a scalar loop op for op.
  void insert_batch(std::span<const std::string> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string>(keys, ok);
  }
  void insert_batch(std::span<const std::string_view> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string_view>(keys, ok);
  }

  [[nodiscard]] std::size_t num_words() const noexcept {
    return store_.size();
  }
  [[nodiscard]] unsigned b1() const noexcept { return b1_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned g() const noexcept { return g_; }
  [[nodiscard]] unsigned n_max() const noexcept { return n_max_; }
  [[nodiscard]] std::uint64_t overflow_events() const noexcept {
    return overflow_events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t underflow_events() const noexcept {
    return underflow_events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return store_.size() * kWordBits;
  }
  /// Access-bandwidth / latency accounting (relaxed atomics, safe to read
  /// while other threads operate on the filter).
  [[nodiscard]] const metrics::AccessStats& stats() const noexcept {
    return stats_;
  }
  void reset_stats() noexcept { stats_.reset(); }

  /// Structural check (quiescent state only).
  [[nodiscard]] bool validate() const {
    for (std::size_t i = 0; i < store_.size(); ++i) {
      bits::WordBitset<64> w;
      w.set_limb(0, store_.load_relaxed(i));
      if (!Hcbf<64>::validate(w, b1_)) return false;
    }
    return true;
  }

  // --- serialization ----------------------------------------------------

  static constexpr char kMagic[9] = "MPCBATM2";

  /// Serializes the word array into a v2 frame. Quiescent state only:
  /// each word is read with one relaxed load, so words mutated while
  /// saving would tear *across* words (each word itself is consistent).
  void save(std::ostream& os) const {
    std::ostringstream payload;
    io::write_magic(payload, kMagic);
    io::write_pod<std::uint32_t>(payload, k_);
    io::write_pod<std::uint32_t>(payload, g_);
    io::write_pod<std::uint32_t>(payload, b1_);
    io::write_pod<std::uint32_t>(payload, n_max_);
    io::write_pod<std::uint64_t>(payload, seed_);
    io::write_pod<std::uint64_t>(payload, overflow_events());
    io::write_pod<std::uint64_t>(payload, store_.size());
    for (std::size_t i = 0; i < store_.size(); ++i) {
      io::write_pod<std::uint64_t>(payload, store_.load_relaxed(i));
    }
    io::write_frame(os, payload.str());
  }

  /// Restores a filter written by save(). Throws std::runtime_error on
  /// corruption; every word must satisfy the HCBF invariants.
  static AtomicMpcbf load(std::istream& is) {
    std::istringstream payload(io::read_frame(is));
    io::expect_magic(payload, kMagic);
    const auto k = io::read_pod<std::uint32_t>(payload);
    const auto g = io::read_pod<std::uint32_t>(payload);
    const auto b1 = io::read_pod<std::uint32_t>(payload);
    const auto n_max = io::read_pod<std::uint32_t>(payload);
    const auto seed = io::read_pod<std::uint64_t>(payload);
    const auto overflows = io::read_pod<std::uint64_t>(payload);
    const auto word_count = io::read_pod<std::uint64_t>(payload);
    constexpr std::uint64_t kMaxWords = (1ull << 31) / sizeof(std::uint64_t);
    if (word_count == 0 || word_count > kMaxWords) {
      throw std::runtime_error("AtomicMpcbf::load: word count out of range");
    }
    AtomicMpcbf f = [&] {
      try {
        return AtomicMpcbf(word_count * kWordBits, k, g, 0, seed, n_max);
      } catch (const std::invalid_argument& e) {
        throw std::runtime_error(
            std::string("AtomicMpcbf::load: bad layout: ") + e.what());
      }
    }();
    if (f.b1_ != b1) {
      throw std::runtime_error("AtomicMpcbf::load: layout mismatch");
    }
    for (std::size_t i = 0; i < f.store_.size(); ++i) {
      f.store_.store_relaxed(i, io::read_pod<std::uint64_t>(payload));
    }
    f.overflow_events_.store(overflows, std::memory_order_relaxed);
    if (!f.validate()) {
      throw std::runtime_error("AtomicMpcbf::load: corrupt filter state");
    }
    return f;
  }

 private:
  /// The layout scalars the engine needs; trivially constructed per op.
  [[nodiscard]] engine::TargetDeriver deriver() const noexcept {
    return engine::TargetDeriver(store_.size(), k_, g_, b1_);
  }

  /// Records one operation's tallies and, for sampled ops, its latency.
  void record_op(metrics::OpClass c, std::uint64_t words,
                 std::uint64_t bits, bool timed,
                 std::uint64_t t0) const noexcept {
    stats_.record(c, words, bits);
    if (timed) stats_.record_latency(c, metrics::now_ns() - t0);
  }

  /// Derives the canonical targets and regroups them by distinct word so
  /// each word is CASed exactly once per operation. Returns the accounted
  /// hash bits consumed (the paper's access-bandwidth unit).
  std::uint64_t derive(std::string_view key, engine::WordPlan& p) const {
    hash::HashBitStream stream(key, seed_);
    engine::Targets t;
    deriver().derive_all(stream, t);
    engine::group_by_word(t, p);
    return stream.accounted_bits();
  }

  /// The insert body after planning — per-word CAS application with
  /// all-or-nothing rollback and accounting — shared by scalar insert()
  /// and the batch pipeline so they cannot diverge.
  template <class Span>
  bool insert_planned(const engine::WordPlan& p, std::uint64_t bits,
                      Span& span, bool timed, std::uint64_t t0) {
    unsigned done = 0;
    for (; done < p.num_words; ++done) {
      if (!store_.apply_group(p, done, b1_, /*increment=*/true)) break;
    }
    if (done == p.num_words) {
      span.set_arg("words", p.num_words);
      record_op(metrics::OpClass::kInsert, p.num_words, bits, timed, t0);
      return true;
    }
    // Roll back the words already updated.
    for (unsigned u = 0; u < done; ++u) {
      store_.apply_group(p, u, /*b1=*/b1_, /*increment=*/false);
    }
    overflow_events_.fetch_add(1, std::memory_order_relaxed);
    MPCBF_TRACE_INSTANT(kCore, "atomic_mpcbf.overflow_reject");
    // A rejected insert still touched every word up to and including the
    // failing one (plus the rollback writes to the first `done`).
    record_op(metrics::OpClass::kInsert, 2 * done + 1, bits, timed, t0);
    return false;
  }

  template <class Key>
  void contains_batch_impl(std::span<const Key> keys,
                           std::span<std::uint8_t> out) const {
    if (keys.size() != out.size()) {
      throw std::invalid_argument("contains_batch: size mismatch");
    }
    MPCBF_TRACE_SPAN(span, kCore, "atomic_mpcbf.query_batch");
    span.set_arg("keys", keys.size());
    std::array<engine::WordPlan, engine::kBatchChunk> plans;
    std::array<std::uint64_t, engine::kBatchChunk> bits;
    engine::BatchStatsAccumulator acc;
    bool timed = false;
    std::uint64_t t0 = 0;
    engine::chunked_pipeline(
        keys.size(),
        [&](std::size_t key_i, std::size_t slot) {
          bits[slot] = derive(keys[key_i], plans[slot]);
          for (unsigned s = 0; s < plans[slot].num_words; ++s) {
            store_.prefetch(plans[slot].word[s], /*for_write=*/false);
          }
        },
        [&](std::size_t key_i, std::size_t slot) {
          const engine::EagerEval ev =
              engine::evaluate_eager(store_, plans[slot], b1_);
          out[key_i] = ev.positive ? 1 : 0;
          acc.add(ev.positive, ev.words_touched, bits[slot]);
        },
        [&](std::size_t) {
          timed = stats_.should_sample();
          t0 = timed ? metrics::now_ns() : 0;
        },
        [&](std::size_t count) {
          if (timed) {
            stats_.record_batch_latency((metrics::now_ns() - t0) / count);
          }
        });
    acc.publish(stats_);
  }

  template <class Key>
  void insert_batch_impl(std::span<const Key> keys,
                         std::span<std::uint8_t> ok) {
    if (keys.size() != ok.size()) {
      throw std::invalid_argument("insert_batch: size mismatch");
    }
    MPCBF_TRACE_SPAN(span, kCore, "atomic_mpcbf.insert_batch");
    span.set_arg("keys", keys.size());
    std::array<engine::WordPlan, engine::kBatchChunk> plans;
    std::array<std::uint64_t, engine::kBatchChunk> bits;
    engine::chunked_pipeline(
        keys.size(),
        [&](std::size_t key_i, std::size_t slot) {
          bits[slot] = derive(keys[key_i], plans[slot]);
          for (unsigned s = 0; s < plans[slot].num_words; ++s) {
            store_.prefetch(plans[slot].word[s], /*for_write=*/true);
          }
        },
        [&](std::size_t key_i, std::size_t slot) {
          MPCBF_TRACE_SPAN(op, kCore, "atomic_mpcbf.insert");
          const bool timed = stats_.should_sample();
          const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
          ok[key_i] =
              insert_planned(plans[slot], bits[slot], op, timed, t0) ? 1 : 0;
        },
        [](std::size_t) {}, [](std::size_t) {});
  }

  engine::AtomicWords64 store_;
  unsigned k_;
  unsigned g_;
  unsigned b1_ = 0;
  unsigned n_max_ = 0;
  std::uint64_t seed_;
  mutable metrics::AccessStats stats_;
  std::atomic<std::uint64_t> overflow_events_{0};
  // Not persisted: the v2 frame layout predates this counter and stays
  // byte-compatible.
  std::atomic<std::uint64_t> underflow_events_{0};
};

}  // namespace mpcbf::core
