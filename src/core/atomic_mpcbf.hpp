// AtomicMpcbf — lock-free MPCBF over 64-bit words.
//
// The paper closes Sec. IV-B noting a hardware platform (FPGA hashing,
// single-word memory transactions) was being built; this class is the
// software analogue of that design point. Because a whole HCBF fits in one
// 64-bit word, every word mutation is a load → pure transform → CAS loop:
// a query is literally one atomic load per word (g loads for MPCBF-g), and
// inserts/deletes are lock-free (some thread always makes progress).
//
// Capacity is re-derived from the word value inside the CAS loop via the
// level-size invariant (Hcbf::occupied_bits), so no out-of-word metadata
// exists and the CAS publishes a fully consistent word.
//
// Semantics under concurrency:
//  * per-word updates are linearizable (single-CAS publication);
//  * an element mapping to g >= 2 words is inserted word by word, so a
//    concurrent query can observe a partial insert as a (transient) false
//    negative — the same anomaly a hardware pipeline with per-bank updates
//    exhibits. Callers needing atomic multi-word visibility must
//    externally synchronize (or use g = 1, where inserts are atomic).
//  * overflow policy is reject-only: stash bookkeeping cannot be made
//    lock-free alongside the word CAS.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "bitvec/word_bitset.hpp"
#include "core/hcbf.hpp"
#include "hash/hash_stream.hpp"
#include "io/binary.hpp"
#include "io/crc32c.hpp"
#include "metrics/access_stats.hpp"
#include "trace/trace.hpp"
#include "metrics/timer.hpp"
#include "model/fpr_model.hpp"

namespace mpcbf::core {

class AtomicMpcbf {
 public:
  static constexpr unsigned kWordBits = 64;
  static constexpr unsigned kMaxG = 8;
  static constexpr unsigned kMaxKPerWord = 16;

  /// `n_max` = 0 derives the per-word capacity from `expected_n` via the
  /// eq.-(11) heuristic; a nonzero value overrides it (callers wanting
  /// stronger no-overflow guarantees add headroom here).
  AtomicMpcbf(std::size_t memory_bits, unsigned k, unsigned g,
              std::size_t expected_n,
              std::uint64_t seed = 0x9E3779B97F4A7C15ULL, unsigned n_max = 0)
      : k_(k), g_(g), seed_(seed) {
    if (k == 0 || g == 0 || g > k || g > kMaxG) {
      throw std::invalid_argument("AtomicMpcbf: need 1 <= g <= k (g <= 8)");
    }
    const std::size_t l = memory_bits / kWordBits;
    if (l == 0) {
      throw std::invalid_argument("AtomicMpcbf: memory smaller than a word");
    }
    if (expected_n == 0 && n_max == 0) {
      throw std::invalid_argument("AtomicMpcbf: expected_n or n_max required");
    }
    n_max_ = n_max != 0 ? n_max : model::n_max_heuristic(expected_n, l, g);
    if (n_max_ == 0) n_max_ = 1;
    b1_ = model::b1_improved(kWordBits, k_, g_, n_max_);
    if (b1_ < 2) {
      throw std::invalid_argument(
          "AtomicMpcbf: configuration leaves no first-level bits");
    }
    words_ = std::vector<std::atomic<std::uint64_t>>(l);
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  /// Movable so load() can return by value (atomics themselves are not
  /// movable; the counter transfers as a relaxed snapshot). Quiescent
  /// source only.
  AtomicMpcbf(AtomicMpcbf&& other) noexcept
      : words_(std::move(other.words_)),
        k_(other.k_),
        g_(other.g_),
        b1_(other.b1_),
        n_max_(other.n_max_),
        seed_(other.seed_),
        stats_(other.stats_),
        overflow_events_(
            other.overflow_events_.load(std::memory_order_relaxed)),
        underflow_events_(
            other.underflow_events_.load(std::memory_order_relaxed)) {}

  /// Lock-free insert. Returns false if any target word lacks capacity
  /// (words updated before the failing one are rolled back, so the insert
  /// is all-or-nothing from the caller's perspective).
  bool insert(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kCore, "atomic_mpcbf.insert");
    const bool timed = stats_.should_sample();
    const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
    Targets t;
    const std::uint64_t bits = derive(key, t);
    unsigned done = 0;
    for (; done < t.num_groups; ++done) {
      if (!apply_word(t, done, /*increment=*/true)) break;
    }
    if (done == t.num_groups) {
      span.set_arg("words", t.num_groups);
      record_op(metrics::OpClass::kInsert, t.num_groups, bits, timed, t0);
      return true;
    }
    // Roll back the words already updated.
    for (unsigned u = 0; u < done; ++u) {
      apply_word(t, u, /*increment=*/false);
    }
    overflow_events_.fetch_add(1, std::memory_order_relaxed);
    MPCBF_TRACE_INSTANT(kCore, "atomic_mpcbf.overflow_reject");
    // A rejected insert still touched every word up to and including the
    // failing one (plus the rollback writes to the first `done`).
    record_op(metrics::OpClass::kInsert, 2 * done + 1, bits, timed, t0);
    return false;
  }

  /// Membership query: one atomic load per (distinct) word. Hashing is
  /// eager here (derive() consumes the whole stream before the first
  /// load), so accounted hash bits do not shrink under short-circuiting
  /// the way the lazy scalar Mpcbf's do — word touches still stop at the
  /// first miss.
  [[nodiscard]] bool contains(std::string_view key) const {
    MPCBF_TRACE_SPAN(span, kCore, "atomic_mpcbf.query");
    const bool timed = stats_.should_sample();
    const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
    Targets t;
    const std::uint64_t bits = derive(key, t);
    for (unsigned gi = 0; gi < t.num_groups; ++gi) {
      bits::WordBitset<64> w;
      w.set_limb(0, words_[t.word[gi]].load(std::memory_order_acquire));
      for (unsigned i = 0; i < t.kw[gi]; ++i) {
        if (!w.test(t.pos[gi][i])) {
          span.set_arg("words", gi + 1);
          record_op(metrics::OpClass::kQueryNegative, gi + 1, bits, timed,
                    t0);
          return false;
        }
      }
    }
    span.set_arg("words", t.num_groups);
    record_op(metrics::OpClass::kQueryPositive, t.num_groups, bits, timed,
              t0);
    return true;
  }

  /// Lock-free delete of one prior insert. Returns false (and leaves the
  /// remaining words untouched for that position) when a counter
  /// underflows — the never-inserted-key contract violation. Each
  /// underflowing word counts one underflow event.
  bool erase(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kCore, "atomic_mpcbf.erase");
    const bool timed = stats_.should_sample();
    const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
    Targets t;
    const std::uint64_t bits = derive(key, t);
    bool ok = true;
    for (unsigned gi = 0; gi < t.num_groups; ++gi) {
      if (!apply_word(t, gi, /*increment=*/false)) {
        ok = false;
        underflow_events_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    record_op(metrics::OpClass::kDelete, t.num_groups, bits, timed, t0);
    return ok;
  }

  /// Multiplicity estimate from a per-word atomic snapshot.
  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    Targets t;
    derive(key, t);
    unsigned min_c = ~0u;
    for (unsigned gi = 0; gi < t.num_groups; ++gi) {
      bits::WordBitset<64> w;
      w.set_limb(0, words_[t.word[gi]].load(std::memory_order_acquire));
      for (unsigned i = 0; i < t.kw[gi]; ++i) {
        min_c = std::min(min_c, Hcbf<64>::counter(w, b1_, t.pos[gi][i]));
        if (min_c == 0) return 0;
      }
    }
    return min_c;
  }

  [[nodiscard]] std::size_t num_words() const noexcept {
    return words_.size();
  }
  [[nodiscard]] unsigned b1() const noexcept { return b1_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned g() const noexcept { return g_; }
  [[nodiscard]] unsigned n_max() const noexcept { return n_max_; }
  [[nodiscard]] std::uint64_t overflow_events() const noexcept {
    return overflow_events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t underflow_events() const noexcept {
    return underflow_events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return words_.size() * kWordBits;
  }
  /// Access-bandwidth / latency accounting (relaxed atomics, safe to read
  /// while other threads operate on the filter).
  [[nodiscard]] const metrics::AccessStats& stats() const noexcept {
    return stats_;
  }
  void reset_stats() noexcept { stats_.reset(); }

  /// Structural check (quiescent state only).
  [[nodiscard]] bool validate() const {
    for (const auto& aw : words_) {
      bits::WordBitset<64> w;
      w.set_limb(0, aw.load(std::memory_order_relaxed));
      if (!Hcbf<64>::validate(w, b1_)) return false;
    }
    return true;
  }

  // --- serialization ----------------------------------------------------

  static constexpr char kMagic[9] = "MPCBATM2";

  /// Serializes the word array into a v2 frame. Quiescent state only:
  /// each word is read with one relaxed load, so words mutated while
  /// saving would tear *across* words (each word itself is consistent).
  void save(std::ostream& os) const {
    std::ostringstream payload;
    io::write_magic(payload, kMagic);
    io::write_pod<std::uint32_t>(payload, k_);
    io::write_pod<std::uint32_t>(payload, g_);
    io::write_pod<std::uint32_t>(payload, b1_);
    io::write_pod<std::uint32_t>(payload, n_max_);
    io::write_pod<std::uint64_t>(payload, seed_);
    io::write_pod<std::uint64_t>(payload, overflow_events());
    io::write_pod<std::uint64_t>(payload, words_.size());
    for (const auto& w : words_) {
      io::write_pod<std::uint64_t>(payload,
                                   w.load(std::memory_order_relaxed));
    }
    io::write_frame(os, payload.str());
  }

  /// Restores a filter written by save(). Throws std::runtime_error on
  /// corruption; every word must satisfy the HCBF invariants.
  static AtomicMpcbf load(std::istream& is) {
    std::istringstream payload(io::read_frame(is));
    io::expect_magic(payload, kMagic);
    const auto k = io::read_pod<std::uint32_t>(payload);
    const auto g = io::read_pod<std::uint32_t>(payload);
    const auto b1 = io::read_pod<std::uint32_t>(payload);
    const auto n_max = io::read_pod<std::uint32_t>(payload);
    const auto seed = io::read_pod<std::uint64_t>(payload);
    const auto overflows = io::read_pod<std::uint64_t>(payload);
    const auto word_count = io::read_pod<std::uint64_t>(payload);
    constexpr std::uint64_t kMaxWords = (1ull << 31) / sizeof(std::uint64_t);
    if (word_count == 0 || word_count > kMaxWords) {
      throw std::runtime_error("AtomicMpcbf::load: word count out of range");
    }
    AtomicMpcbf f = [&] {
      try {
        return AtomicMpcbf(word_count * kWordBits, k, g, 0, seed, n_max);
      } catch (const std::invalid_argument& e) {
        throw std::runtime_error(
            std::string("AtomicMpcbf::load: bad layout: ") + e.what());
      }
    }();
    if (f.b1_ != b1) {
      throw std::runtime_error("AtomicMpcbf::load: layout mismatch");
    }
    for (auto& w : f.words_) {
      w.store(io::read_pod<std::uint64_t>(payload),
              std::memory_order_relaxed);
    }
    f.overflow_events_.store(overflows, std::memory_order_relaxed);
    if (!f.validate()) {
      throw std::runtime_error("AtomicMpcbf::load: corrupt filter state");
    }
    return f;
  }

 private:
  struct Targets {
    std::size_t word[kMaxG];
    unsigned kw[kMaxG];
    unsigned pos[kMaxG][kMaxKPerWord];
    unsigned num_groups = 0;
  };

  /// Records one operation's tallies and, for sampled ops, its latency.
  void record_op(metrics::OpClass c, std::uint64_t words,
                 std::uint64_t bits, bool timed,
                 std::uint64_t t0) const noexcept {
    stats_.record(c, words, bits);
    if (timed) stats_.record_latency(c, metrics::now_ns() - t0);
  }

  /// Derives word/position targets, merging duplicate words so each word
  /// is CASed exactly once per operation. Returns the accounted hash bits
  /// consumed (the paper's access-bandwidth unit).
  std::uint64_t derive(std::string_view key, Targets& t) const {
    hash::HashBitStream stream(key, seed_);
    for (unsigned gi = 0; gi < g_; ++gi) {
      const std::size_t w = stream.next_index(words_.size());
      unsigned slot = t.num_groups;
      for (unsigned s = 0; s < t.num_groups; ++s) {
        if (t.word[s] == w) {
          slot = s;
          break;
        }
      }
      if (slot == t.num_groups) {
        t.word[slot] = w;
        t.kw[slot] = 0;
        ++t.num_groups;
      }
      const unsigned kw = model::hashes_per_word(k_, g_, gi);
      for (unsigned i = 0; i < kw; ++i) {
        t.pos[slot][t.kw[slot]++] =
            static_cast<unsigned>(stream.next_index(b1_));
      }
    }
    return stream.accounted_bits();
  }

  /// CAS loop applying all of group `gi`'s increments (or decrements) to
  /// its word. Returns false on overflow/underflow (word unchanged).
  bool apply_word(const Targets& t, unsigned gi, bool increment) {
    std::atomic<std::uint64_t>& slot = words_[t.word[gi]];
    std::uint64_t expected = slot.load(std::memory_order_acquire);
    for (;;) {
      bits::WordBitset<64> w;
      w.set_limb(0, expected);
      unsigned used = Hcbf<64>::hierarchy_bits(w, b1_);
      bool ok = true;
      for (unsigned i = 0; i < t.kw[gi] && ok; ++i) {
        if (increment) {
          const HcbfResult r = Hcbf<64>::increment(w, b1_, t.pos[gi][i], used);
          ok = r.ok;
          if (ok) ++used;
        } else {
          ok = Hcbf<64>::decrement(w, b1_, t.pos[gi][i]).ok;
        }
      }
      if (!ok) return false;
      if (slot.compare_exchange_weak(expected, w.limb(0),
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
        return true;
      }
      // expected reloaded by compare_exchange; retry on the fresh value.
    }
  }

  std::vector<std::atomic<std::uint64_t>> words_;
  unsigned k_;
  unsigned g_;
  unsigned b1_ = 0;
  unsigned n_max_ = 0;
  std::uint64_t seed_;
  mutable metrics::AccessStats stats_;
  std::atomic<std::uint64_t> overflow_events_{0};
  // Not persisted: the v2 frame layout predates this counter and stays
  // byte-compatible.
  std::atomic<std::uint64_t> underflow_events_{0};
};

}  // namespace mpcbf::core
