// MPCBF — Multiple-Partitioned Counting Bloom Filter (Secs. III-B/III-C).
//
// The counter vector is an array of l W-bit words, each holding an improved
// HCBF with first-level size b1 = W - ⌈k/g⌉·n_max. An element maps to g
// words (H_1..H_g) and to ⌈k/g⌉ bit positions inside each (the last word
// may get fewer so the total is k). Queries read only the words' level-1
// bits — g memory accesses, one for MPCBF-1 — while inserts/deletes run the
// hierarchical counter machinery of core/hcbf.hpp inside each word.
//
// Overflow: a word can absorb at most n_max elements' worth of hierarchy
// bits. The n_max heuristic (eq. 11) makes overflow rare; when it does
// happen the configured OverflowPolicy decides: reject the insert (counted,
// returns false), throw, or divert the whole element to a side stash that
// queries and deletes consult, preserving exact semantics at a small memory
// cost.
//
// Thread-safety: const queries are safe concurrently with each other
// (metrics counters are relaxed atomics); mutations require external
// synchronization. For lock-free operation on W=64 see
// core/atomic_mpcbf.hpp.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "bitvec/word_bitset.hpp"
#include "common/page_reclaim.hpp"
#include "common/string_hash.hpp"
#include "core/hcbf.hpp"
#include "core/word_engine.hpp"
#include "hash/hash_stream.hpp"
#include "io/binary.hpp"
#include "io/crc32c.hpp"
#include "metrics/access_stats.hpp"
#include "metrics/timer.hpp"
#include "model/fpr_model.hpp"
#include "trace/trace.hpp"

namespace mpcbf::core {

enum class OverflowPolicy {
  kReject,  ///< failed insert returns false; element is not stored
  kThrow,   ///< failed insert throws std::overflow_error
  kStash,   ///< element diverted to a side hash table; never lost
};

struct MpcbfConfig {
  /// Total memory in bits; the word count is l = memory_bits / W.
  std::size_t memory_bits = 1 << 20;
  /// Total hash functions per element (split across the g words).
  unsigned k = 3;
  /// Memory accesses per operation (words per element); g <= k.
  unsigned g = 1;
  /// Expected cardinality, used by the eq.-(11) heuristic when n_max == 0.
  std::size_t expected_n = 0;
  /// Per-word element capacity; 0 = derive from expected_n via PoissInv.
  unsigned n_max = 0;
  OverflowPolicy policy = OverflowPolicy::kReject;
  std::uint64_t seed = hash::kDefaultSeed;
  /// Stop a query at the first unset bit (paper's measured behaviour).
  bool short_circuit = true;
};

template <unsigned W = 64>
class Mpcbf {
 public:
  static constexpr unsigned kWordBits = W;
  static constexpr unsigned kMaxG = engine::kMaxG;
  static constexpr unsigned kMaxKPerWord = engine::kMaxKPerWord;

  explicit Mpcbf(const MpcbfConfig& cfg)
      : k_(cfg.k),
        g_(cfg.g),
        policy_(cfg.policy),
        seed_(cfg.seed),
        short_circuit_(cfg.short_circuit) {
    engine::validate_shape(cfg.k, cfg.g, "Mpcbf");
    const std::size_t l = cfg.memory_bits / W;
    if (l == 0) throw std::invalid_argument("Mpcbf: memory smaller than one word");
    store_.init(l);

    n_max_ = cfg.n_max;
    if (n_max_ == 0) {
      if (cfg.expected_n == 0) {
        throw std::invalid_argument(
            "Mpcbf: provide expected_n (for the eq.-11 heuristic) or an "
            "explicit n_max");
      }
      n_max_ = model::n_max_heuristic(cfg.expected_n, l, g_);
      if (n_max_ == 0) n_max_ = 1;
    }
    b1_ = model::b1_improved(W, k_, g_, n_max_);
    if (b1_ < 2) {
      throw std::invalid_argument(
          "Mpcbf: n_max*ceil(k/g) leaves no first-level bits in a " +
          std::to_string(W) + "-bit word");
    }
  }

  /// Convenience: size the filter for `expected_n` elements at `memory_bits`
  /// total, deriving n_max via the paper's heuristic.
  static Mpcbf with_memory(std::size_t memory_bits, unsigned k, unsigned g,
                           std::size_t expected_n,
                           std::uint64_t seed = hash::kDefaultSeed) {
    MpcbfConfig cfg;
    cfg.memory_bits = memory_bits;
    cfg.k = k;
    cfg.g = g;
    cfg.expected_n = expected_n;
    cfg.seed = seed;
    return Mpcbf(cfg);
  }

  /// Inserts `key`. Returns false only under OverflowPolicy::kReject when
  /// some target word cannot absorb the element.
  bool insert(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kCore, "mpcbf.insert");
    const bool timed = stats_.should_sample();
    const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
    engine::Targets t;
    hash::HashBitStream stream(key, seed_);
    deriver().derive_all(stream, t);
    span.set_arg("words", t.distinct_words);
    return insert_derived(key, t, stream.accounted_bits(), timed, t0);
  }

  /// Membership query. False positives possible; false negatives are not
  /// (for keys whose inserts all succeeded).
  [[nodiscard]] bool contains(std::string_view key) const {
    MPCBF_TRACE_SPAN(span, kCore, "mpcbf.query");
    const bool timed = stats_.should_sample();
    const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
    hash::HashBitStream stream(key, seed_);
    bool positive = true;
    engine::SeenWords seen;
    for (unsigned t = 0; t < g_; ++t) {
      if (!positive && short_circuit_) break;
      const std::size_t w = stream.next_index(store_.size());
      MPCBF_TRACE_SPAN(fetch, kCore, "mpcbf.word_fetch");
      fetch.set_arg("word", w);
      seen.add(w);
      const unsigned kw = model::hashes_per_word(k_, g_, t);
      for (unsigned i = 0; i < kw; ++i) {
        const auto pos = static_cast<unsigned>(stream.next_index(b1_));
        if (!store_.test(w, pos)) {
          positive = false;
          if (short_circuit_) break;
        }
      }
    }
    const std::size_t words_touched = seen.count;
    if (!positive && !stash_.empty()) {
      MPCBF_TRACE_SPAN(probe, kCore, "mpcbf.stash_probe");
      auto it = stash_.find(key);
      if (it != stash_.end() && it->second > 0) positive = true;
    }
    span.set_arg("words", words_touched);
    record_op(positive ? metrics::OpClass::kQueryPositive
                       : metrics::OpClass::kQueryNegative,
              words_touched, stream.accounted_bits(), timed, t0);
    return positive;
  }

  /// Deletes one prior insert of `key`. Deleting a key that was never
  /// inserted is a contract violation (as in any CBF): the structure stays
  /// valid but other keys may turn falsely negative. Returns false and
  /// counts an underflow when a target counter was already zero; size()
  /// is unchanged by such a failed erase.
  bool erase(std::string_view key) {
    MPCBF_TRACE_SPAN(span, kCore, "mpcbf.erase");
    const bool timed = stats_.should_sample();
    const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
    if (!stash_.empty()) {
      auto it = stash_.find(key);
      if (it != stash_.end() && it->second > 0) {
        if (--it->second == 0) stash_.erase(it);
        --size_;
        record_op(metrics::OpClass::kDelete, 0, 0, timed, t0);
        return true;
      }
    }
    engine::Targets t;
    hash::HashBitStream stream(key, seed_);
    deriver().derive_all(stream, t);

    typename engine::LevelWalk<W>::DecrementResult walk_result;
    {
      MPCBF_TRACE_SPAN(walk, kCore, "mpcbf.level_walk");
      walk_result = engine::LevelWalk<W>::decrement_all(store_, b1_, t);
      walk.set_arg("depth", walk_result.extra_bits);
    }
    underflow_events_ += walk_result.underflows;
    // A fully/partially underflowed erase removed nothing that was ever
    // counted: size_ only tracks successful operations, so a
    // contract-violating delete must not drift it low.
    if (walk_result.ok && size_ > 0) --size_;
    record_op(metrics::OpClass::kDelete, t.distinct_words,
              stream.accounted_bits() + walk_result.extra_bits, timed, t0);
    return walk_result.ok;
  }

  /// Multiplicity estimate: the minimum of the key's counters (plus any
  /// stashed copies). Like CBF count estimates, never an undercount for
  /// correctly inserted keys.
  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    engine::Targets t;
    hash::HashBitStream stream(key, seed_);
    deriver().derive_all(stream, t);
    const unsigned min_c = engine::LevelWalk<W>::min_counter(store_, b1_, t);
    std::uint32_t stashed = 0;
    if (!stash_.empty()) {
      auto it = stash_.find(key);
      if (it != stash_.end()) stashed = it->second;
    }
    return min_c + stashed;
  }

  void clear() {
    store_.reset();
    stash_.clear();
    size_ = 0;
    overflow_events_ = 0;
    underflow_events_ = 0;
  }

  /// Releases the word and usage arrays eagerly: the page-aligned
  /// interior's resident pages are dropped via madvise(MADV_DONTNEED)
  /// and the heap buffers freed, so a retired segment's memory returns
  /// to the OS now rather than lingering in the allocator arena.
  /// Returns the heap bytes released. The filter holds no storage
  /// afterwards — its only remaining legal operation is destruction.
  std::size_t release_storage() noexcept {
    auto& words = store_.words();
    auto& usage = store_.usage();
    const std::size_t bytes =
        words.capacity() * sizeof(bits::WordBitset<W>) +
        usage.capacity() * sizeof(std::uint16_t);
    util::drop_resident_pages(words.data(),
                              words.size() * sizeof(bits::WordBitset<W>));
    util::drop_resident_pages(usage.data(),
                              usage.size() * sizeof(std::uint16_t));
    std::vector<bits::WordBitset<W>>().swap(words);
    std::vector<std::uint16_t>().swap(usage);
    stash_.clear();
    size_ = 0;
    return bytes;
  }

  // --- introspection ----------------------------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t num_words() const noexcept {
    return store_.size();
  }
  [[nodiscard]] unsigned b1() const noexcept { return b1_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned g() const noexcept { return g_; }
  [[nodiscard]] unsigned n_max() const noexcept { return n_max_; }
  [[nodiscard]] OverflowPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return store_.size() * W;
  }
  [[nodiscard]] std::uint64_t overflow_events() const noexcept {
    return overflow_events_;
  }
  [[nodiscard]] std::uint64_t underflow_events() const noexcept {
    return underflow_events_;
  }
  [[nodiscard]] std::size_t stash_size() const noexcept {
    return stash_.size();
  }
  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }
  void reset_stats() noexcept { stats_.reset(); }

  /// Aggregate hierarchy occupancy across words — the quantity whose
  /// per-word cap is k/g * n_max.
  [[nodiscard]] std::uint64_t total_hierarchy_bits() const noexcept {
    std::uint64_t t = 0;
    for (auto u : store_.usage()) t += u;
    return t;
  }

  [[nodiscard]] unsigned max_word_hierarchy_bits() const noexcept {
    unsigned m = 0;
    for (auto u : store_.usage()) m = std::max<unsigned>(m, u);
    return m;
  }

  /// Occupancy report: per-word hierarchy-usage histogram and the
  /// distribution of counter values across all level-1 positions — the
  /// measurable counterparts of model::occupancy. O(l·b1); diagnostic use.
  struct FillReport {
    /// hierarchy_histogram[u] = number of words using u hierarchy bits.
    std::vector<std::size_t> hierarchy_histogram;
    /// counter_histogram[c] = number of level-1 positions with value c.
    std::vector<std::size_t> counter_histogram;
    std::size_t total_positions = 0;
  };

  [[nodiscard]] FillReport fill_report() const {
    FillReport report;
    report.hierarchy_histogram.assign(W - b1_ + 1, 0);
    for (const auto u : store_.usage()) {
      ++report.hierarchy_histogram[u];
    }
    report.total_positions = store_.size() * b1_;
    for (std::size_t w = 0; w < store_.size(); ++w) {
      for (unsigned pos = 0; pos < b1_; ++pos) {
        const unsigned c = store_.counter(w, b1_, pos);
        if (c >= report.counter_histogram.size()) {
          report.counter_histogram.resize(c + 1, 0);
        }
        ++report.counter_histogram[c];
      }
    }
    if (report.counter_histogram.empty()) {
      report.counter_histogram.resize(1, report.total_positions);
    }
    return report;
  }

  /// Structural self-check for tests: every word satisfies the HCBF
  /// invariants and its cached usage matches the derived value.
  [[nodiscard]] bool validate() const {
    for (std::size_t w = 0; w < store_.size(); ++w) {
      if (!Hcbf<W>::validate(store_.words()[w], b1_)) return false;
      if (Hcbf<W>::hierarchy_bits(store_.words()[w], b1_) !=
          store_.usage()[w]) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] const bits::WordBitset<W>& word(std::size_t i) const {
    return store_.words().at(i);
  }

  // --- batch queries ------------------------------------------------------

  /// Membership for a batch of keys. Hashes are derived for a chunk of
  /// keys first and the target words prefetched before any is read, hiding
  /// the per-word cache miss behind the next key's hashing — the software
  /// analogue of the pipelined lookups the paper targets in hardware.
  /// `out[i]` is set to the verdict for `keys[i]`; sizes must match.
  ///
  /// AccessStats parity with scalar contains(): evaluation replays the
  /// scalar visit order (short_circuit_ honoured, duplicate words
  /// deduplicated, hash bits accounted only up to the short-circuit
  /// point), so a batch and a scalar pass over the same keys produce
  /// identical per-class op counts, word touches and accounted bits —
  /// the property tests/test_stats_parity.cpp locks in. Accounting is
  /// aggregated across the whole call (one atomic trio per op class)
  /// and sampled chunks record their per-key average latency — timing
  /// every chunk would put two clock reads plus a histogram record on
  /// the hot path and blow the <5% overhead budget.
  void contains_batch(std::span<const std::string> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string>(keys, out);
  }
  void contains_batch(std::span<const std::string_view> keys,
                      std::span<std::uint8_t> out) const {
    contains_batch_impl<std::string_view>(keys, out);
  }

  /// Inserts a batch of keys through the same derive → prefetch → resolve
  /// pipeline; `ok[i]` receives insert(keys[i])'s return value. Stats and
  /// overflow behaviour match a scalar insert loop op for op (each key
  /// records its own kInsert tallies and sampled latency), so batch and
  /// scalar loads remain comparable in every report.
  void insert_batch(std::span<const std::string> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string>(keys, ok);
  }
  void insert_batch(std::span<const std::string_view> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string_view>(keys, ok);
  }

  // --- merge ---------------------------------------------------------------

  /// True iff `other` has the identical layout and hash seed, i.e. the two
  /// filters index the same positions for the same keys and can be merged.
  [[nodiscard]] bool compatible(const Mpcbf& other) const noexcept {
    return k_ == other.k_ && g_ == other.g_ && b1_ == other.b1_ &&
           n_max_ == other.n_max_ && seed_ == other.seed_ &&
           store_.size() == other.store_.size();
  }

  /// Folds `other`'s contents into this filter (counter-wise addition —
  /// the multiset-union of the represented sets, so deletes of either
  /// side's elements remain valid afterwards). All-or-nothing: returns
  /// false without modifying anything when layouts differ or some word
  /// would overflow.
  bool merge(const Mpcbf& other) {
    if (!compatible(other)) return false;
    for (std::size_t w = 0; w < store_.size(); ++w) {
      if (store_.usage()[w] + other.store_.usage()[w] >
          static_cast<unsigned>(W - b1_)) {
        ++overflow_events_;
        return false;
      }
    }
    for (std::size_t w = 0; w < store_.size(); ++w) {
      if (other.store_.usage()[w] == 0) continue;
      for (unsigned pos = 0; pos < b1_; ++pos) {
        const unsigned c = other.store_.counter(w, b1_, pos);
        for (unsigned i = 0; i < c; ++i) {
          const HcbfResult r = store_.increment(w, b1_, pos);
          assert(r.ok);
          (void)r;
        }
      }
    }
    for (const auto& [key, count] : other.stash_) {
      stash_[key] += count;
    }
    size_ += other.size_;
    return true;
  }

  // --- serialization ---------------------------------------------------------

  static constexpr char kMagic[9] = "MPCBFv1\0";
  /// Memory cap applied to untrusted length fields before any
  /// allocation; a hostile stream cannot make load() request more.
  static constexpr std::uint64_t kMaxLoadBytes = 1ull << 31;
  static constexpr std::uint64_t kMaxStashEntries = 1ull << 24;
  static constexpr std::uint64_t kMaxStashKeyLen = 1ull << 20;

  /// Serializes the full filter state (layout, words, stash, counters)
  /// as a v2 frame: the v1 payload wrapped with magic, format version,
  /// payload length and CRC32C (io/crc32c.hpp). Metrics are not
  /// persisted.
  void save(std::ostream& os) const {
    std::ostringstream payload;
    save_payload(payload);
    io::write_frame(os, payload.str());
  }

  /// Restores a filter previously written by save(). Accepts both the
  /// framed v2 format and bare v1 streams (pre-frame builds). Throws
  /// std::runtime_error on format mismatch or corruption — v2 frames are
  /// CRC-verified before a single payload byte is parsed.
  static Mpcbf load(std::istream& is) {
    const auto magic = io::read_raw_magic(is);
    if (io::magic_equals(magic, io::kFrameMagic)) {
      std::istringstream payload(io::read_frame_payload_after_magic(is));
      io::expect_magic(payload, kMagic);
      return load_body(payload);
    }
    if (io::magic_equals(magic, kMagic)) {
      return load_body(is);  // legacy v1 stream
    }
    throw std::runtime_error("Mpcbf::load: unrecognized magic");
  }

  /// Writes the bare v1 payload (magic + body, no frame) — the unit
  /// composite containers (DurableMpcbf snapshots, ShardedMpcbf) embed
  /// inside their own frames.
  void save_payload(std::ostream& os) const {
    io::write_magic(os, kMagic);
    io::write_pod<std::uint32_t>(os, W);
    io::write_pod<std::uint32_t>(os, k_);
    io::write_pod<std::uint32_t>(os, g_);
    io::write_pod<std::uint32_t>(os, b1_);
    io::write_pod<std::uint32_t>(os, n_max_);
    io::write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(policy_));
    io::write_pod<std::uint8_t>(os, short_circuit_ ? 1 : 0);
    io::write_pod<std::uint64_t>(os, seed_);
    io::write_pod<std::uint64_t>(os, size_);
    io::write_pod<std::uint64_t>(os, overflow_events_);
    io::write_pod<std::uint64_t>(os, underflow_events_);
    io::write_pod_vector(os, store_.words());
    io::write_pod_vector(os, store_.usage());
    io::write_pod<std::uint64_t>(os, stash_.size());
    for (const auto& [key, count] : stash_) {
      io::write_string(os, key);
      io::write_pod<std::uint32_t>(os, count);
    }
  }

  /// Parses a bare v1 payload (counterpart of save_payload).
  static Mpcbf load_payload(std::istream& is) {
    io::expect_magic(is, kMagic);
    return load_body(is);
  }

 private:
  /// Parses the v1 body (everything after the magic) with full
  /// cross-validation: every length is memory-capped before allocation,
  /// the stash must be consistent with the overflow policy, and the
  /// persisted element count must match the hierarchy-bit conservation
  /// law where it is derivable.
  static Mpcbf load_body(std::istream& is) {
    const auto width = io::read_pod<std::uint32_t>(is);
    if (width != W) {
      throw std::runtime_error("Mpcbf::load: word width mismatch");
    }
    MpcbfConfig cfg;
    cfg.k = io::read_pod<std::uint32_t>(is);
    cfg.g = io::read_pod<std::uint32_t>(is);
    const auto b1 = io::read_pod<std::uint32_t>(is);
    cfg.n_max = io::read_pod<std::uint32_t>(is);
    const auto policy_byte = io::read_pod<std::uint8_t>(is);
    if (policy_byte > static_cast<std::uint8_t>(OverflowPolicy::kStash)) {
      throw std::runtime_error("Mpcbf::load: unknown overflow policy");
    }
    cfg.policy = static_cast<OverflowPolicy>(policy_byte);
    cfg.short_circuit = io::read_pod<std::uint8_t>(is) != 0;
    cfg.seed = io::read_pod<std::uint64_t>(is);
    const auto size = io::read_pod<std::uint64_t>(is);
    const auto overflows = io::read_pod<std::uint64_t>(is);
    const auto underflows = io::read_pod<std::uint64_t>(is);
    constexpr std::uint64_t kMaxWords =
        kMaxLoadBytes / sizeof(bits::WordBitset<W>);
    auto words = io::read_pod_vector<bits::WordBitset<W>>(is, kMaxWords);
    auto hier = io::read_pod_vector<std::uint16_t>(is, kMaxWords);
    if (words.empty() || words.size() != hier.size()) {
      throw std::runtime_error("Mpcbf::load: inconsistent word arrays");
    }
    cfg.memory_bits = words.size() * W;
    Mpcbf f = [&] {
      try {
        return Mpcbf(cfg);
      } catch (const std::invalid_argument& e) {
        // A corrupt header must read as corruption, not a usage error.
        throw std::runtime_error(std::string("Mpcbf::load: bad layout: ") +
                                 e.what());
      }
    }();
    if (f.b1_ != b1) {
      throw std::runtime_error("Mpcbf::load: layout mismatch");
    }
    f.store_.words() = std::move(words);
    f.store_.usage() = std::move(hier);
    f.size_ = size;
    f.overflow_events_ = overflows;
    f.underflow_events_ = underflows;
    const auto stash_count = io::read_pod<std::uint64_t>(is);
    if (stash_count > kMaxStashEntries) {
      throw std::runtime_error("Mpcbf::load: stash count out of range");
    }
    std::uint64_t stash_total = 0;
    for (std::uint64_t i = 0; i < stash_count; ++i) {
      std::string key = io::read_string(is, kMaxStashKeyLen);
      const auto count = io::read_pod<std::uint32_t>(is);
      if (count == 0) {
        throw std::runtime_error("Mpcbf::load: zero-count stash entry");
      }
      stash_total += count;
      if (!f.stash_.emplace(std::move(key), count).second) {
        throw std::runtime_error("Mpcbf::load: duplicate stash key");
      }
    }
    if (!f.stash_.empty() && f.policy_ != OverflowPolicy::kStash) {
      throw std::runtime_error(
          "Mpcbf::load: stash entries under a non-stash overflow policy");
    }
    if (!f.validate()) {
      throw std::runtime_error("Mpcbf::load: corrupt filter state");
    }
    // Conservation law (docs/hcbf-format.md): every successful non-stash
    // insert adds exactly k hierarchy bits and every successful erase
    // removes k, so with no underflows on record the persisted element
    // count is fully derivable from the word state.
    if (underflows == 0) {
      if (size < stash_total) {
        throw std::runtime_error("Mpcbf::load: size below stash total");
      }
      if (f.total_hierarchy_bits() != (size - stash_total) * f.k_) {
        throw std::runtime_error(
            "Mpcbf::load: element count inconsistent with word state");
      }
    }
    return f;
  }

  /// The layout scalars the engine needs; trivially constructed per op.
  [[nodiscard]] engine::TargetDeriver deriver() const noexcept {
    return engine::TargetDeriver(store_.size(), k_, g_, b1_);
  }

  /// Records one operation's tallies and, for sampled ops, its latency.
  /// Const because filters record from const queries into mutable stats_.
  void record_op(metrics::OpClass c, std::uint64_t words,
                 std::uint64_t bits, bool timed,
                 std::uint64_t t0) const noexcept {
    stats_.record(c, words, bits);
    if (timed) stats_.record_latency(c, metrics::now_ns() - t0);
  }

  /// The insert body after derivation — capacity check, overflow policy,
  /// level walk, accounting — shared verbatim by scalar insert() and the
  /// batch pipeline so they cannot diverge.
  bool insert_derived(std::string_view key, const engine::Targets& t,
                      std::uint64_t derive_bits, bool timed,
                      std::uint64_t t0) {
    if (!engine::capacity_ok(t, store_.hier_used_span(), W - b1_)) {
      ++overflow_events_;
      switch (policy_) {
        case OverflowPolicy::kThrow:
          throw std::overflow_error("Mpcbf: word overflow on insert");
        case OverflowPolicy::kReject:
          MPCBF_TRACE_INSTANT(kCore, "mpcbf.overflow_reject");
          record_op(metrics::OpClass::kInsert, t.distinct_words, derive_bits,
                    timed, t0);
          return false;
        case OverflowPolicy::kStash:
          MPCBF_TRACE_INSTANT(kCore, "mpcbf.stash_divert", "stash_size",
                              stash_.size() + 1);
          ++stash_[std::string(key)];
          ++size_;
          record_op(metrics::OpClass::kInsert, t.distinct_words, derive_bits,
                    timed, t0);
          return true;
      }
    }

    std::uint64_t extra_bits = 0;
    {
      // The hierarchical counter walk — the paper's "bits spent only on
      // non-zero counters" machinery; depth is the hierarchy bits the
      // walk claimed across all target words.
      MPCBF_TRACE_SPAN(walk, kCore, "mpcbf.level_walk");
      extra_bits = engine::LevelWalk<W>::increment_all(store_, b1_, t);
      walk.set_arg("depth", extra_bits);
    }
    ++size_;
    record_op(metrics::OpClass::kInsert, t.distinct_words,
              derive_bits + extra_bits, timed, t0);
    return true;
  }

  template <class Key>
  void contains_batch_impl(std::span<const Key> keys,
                           std::span<std::uint8_t> out) const {
    if (keys.size() != out.size()) {
      throw std::invalid_argument("contains_batch: size mismatch");
    }
    MPCBF_TRACE_SPAN(span, kCore, "mpcbf.query_batch");
    span.set_arg("keys", keys.size());
    const engine::TargetDeriver der = deriver();
    std::array<engine::Targets, engine::kBatchChunk> targets;
    engine::BatchStatsAccumulator acc;
    bool timed = false;
    std::uint64_t t0 = 0;
    engine::chunked_pipeline(
        keys.size(),
        [&](std::size_t key_i, std::size_t slot) {
          targets[slot].total_positions = 0;
          hash::HashBitStream stream(keys[key_i], seed_);
          der.derive_all(stream, targets[slot]);
          for (unsigned p = 0; p < targets[slot].total_positions; ++p) {
            store_.prefetch(targets[slot].word_of[p], /*for_write=*/false);
          }
        },
        [&](std::size_t key_i, std::size_t slot) {
          const engine::BatchEval ev = engine::evaluate_lazy(
              targets[slot], store_.size(), k_, g_, b1_, short_circuit_,
              [this](std::size_t w, unsigned pos) {
                return store_.test(w, pos);
              });
          bool positive = ev.positive;
          if (!positive && !stash_.empty()) {
            auto it = stash_.find(std::string_view(keys[key_i]));
            positive = it != stash_.end() && it->second > 0;
          }
          out[key_i] = positive ? 1 : 0;
          acc.add(positive, ev.words_touched, ev.hash_bits);
        },
        [&](std::size_t) {
          timed = stats_.should_sample();
          t0 = timed ? metrics::now_ns() : 0;
        },
        [&](std::size_t count) {
          if (timed) {
            stats_.record_batch_latency((metrics::now_ns() - t0) / count);
          }
        });
    acc.publish(stats_);
  }

  template <class Key>
  void insert_batch_impl(std::span<const Key> keys,
                         std::span<std::uint8_t> ok) {
    if (keys.size() != ok.size()) {
      throw std::invalid_argument("insert_batch: size mismatch");
    }
    MPCBF_TRACE_SPAN(span, kCore, "mpcbf.insert_batch");
    span.set_arg("keys", keys.size());
    const engine::TargetDeriver der = deriver();
    std::array<engine::Targets, engine::kBatchChunk> targets;
    std::array<std::uint64_t, engine::kBatchChunk> derive_bits;
    engine::chunked_pipeline(
        keys.size(),
        [&](std::size_t key_i, std::size_t slot) {
          targets[slot].total_positions = 0;
          hash::HashBitStream stream(keys[key_i], seed_);
          der.derive_all(stream, targets[slot]);
          derive_bits[slot] = stream.accounted_bits();
          for (unsigned p = 0; p < targets[slot].total_positions; ++p) {
            store_.prefetch(targets[slot].word_of[p], /*for_write=*/true);
          }
        },
        [&](std::size_t key_i, std::size_t slot) {
          // Per-key accounting exactly as scalar insert(): each op records
          // its own kInsert tallies and sampled latency.
          const bool timed = stats_.should_sample();
          const std::uint64_t t0 = timed ? metrics::now_ns() : 0;
          ok[key_i] = insert_derived(keys[key_i], targets[slot],
                                     derive_bits[slot], timed, t0)
                          ? 1
                          : 0;
        },
        [](std::size_t) {}, [](std::size_t) {});
  }

  engine::PlainWords<W> store_;
  unsigned k_;
  unsigned g_;
  unsigned b1_ = 0;
  unsigned n_max_ = 0;
  OverflowPolicy policy_;
  std::uint64_t seed_;
  bool short_circuit_;
  std::size_t size_ = 0;
  std::uint64_t overflow_events_ = 0;
  std::uint64_t underflow_events_ = 0;
  // Transparent hash/eq: string_view probes on the query path are
  // allocation-free; only inserts materialize a std::string key.
  util::StringKeyMap<std::uint32_t> stash_;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::core
