// DurableMpcbf — crash-safe persistence for an MPCBF: write-ahead
// journal for every mutation plus checksummed snapshots published by
// atomic rename.
//
// On-disk layout of a durable directory:
//
//   dir/journal.wal            append-only op journal (io/journal.hpp)
//   dir/snapshot-<seq16>.mpcbf v2-framed snapshot, payload =
//                              "MPCBDUR1" | last_seq u64 | Mpcbf v1 body
//   dir/snapshot.tmp           in-flight snapshot (never read by recovery)
//
// Write path: a mutation is appended to the journal first, flushed per
// the configured group-commit interval, and only then applied in memory
// — the WAL invariant. snapshot() serializes the filter to snapshot.tmp,
// flushes and fsyncs it, atomically renames it to its final
// sequence-stamped name, fsyncs the directory, then truncates the
// journal to a fresh watermark. A crash at any point leaves either the
// old state (tmp never renamed) or the new one (rename is atomic);
// a crash between rename and journal truncation is handled by the
// watermark: replay skips records at or below the snapshot's last_seq.
//
// recover(): newest snapshot that loads cleanly (CRC-framed, so torn or
// bit-flipped files throw rather than half-load) + replay of the journal
// records above its watermark. With no usable snapshot, replay starts
// from an empty filter built from the caller's config — which is the
// full history whenever the journal has never been truncated.
//
// Fault injection: Options::crash_hook is invoked with a named point
// before/after each durability-critical step; tests throw from the hook
// to simulate a crash there and then assert recover() restores every
// acknowledged (journal-flushed) mutation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/mpcbf.hpp"
#include "io/crc32c.hpp"
#include "io/journal.hpp"
#include "metrics/registry.hpp"
#include "metrics/timer.hpp"
#include "trace/trace.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mpcbf::core {

template <unsigned W = 64>
class DurableMpcbf {
 public:
  static constexpr char kSnapshotMagic[9] = "MPCBDUR1";

  struct Options {
    /// Journal flush (+fsync) every N mutations; 1 = every mutation is
    /// durable before it is applied, larger values trade the crash
    /// window for throughput (group commit).
    std::size_t flush_every = 1;
    /// fsync on journal flush and snapshot publish. Disable only for
    /// benchmarks/tests where the OS page cache is trusted.
    bool fsync = true;
    /// Snapshots to retain after a successful snapshot() (>= 1).
    std::size_t keep_snapshots = 2;
    /// Test-only crash injection: called with a point name at each
    /// durability-critical step; throwing from it simulates a crash.
    std::function<void(std::string_view)> crash_hook;
    /// External sequence-number supplier for sharded ownership: each
    /// call must return a fresh, process-globally unique, increasing
    /// sequence number. When set, every journaled mutation is stamped
    /// with the supplied seq (Journal::append_at) instead of the local
    /// counter — the per-shard WALs then hold disjoint gappy
    /// subsequences of one global stream, which is what lets a merged
    /// replication tail stay consecutive across shards. Unset = flat
    /// single-filter numbering, unchanged.
    std::function<std::uint64_t()> seq_source;
  };

  /// Opens (or creates) a durable filter in `dir`. Existing state is
  /// recovered (newest valid snapshot + journal replay); a fresh
  /// directory starts an empty filter from `cfg`. The recovered
  /// snapshot's layout must match `cfg` — a mismatch throws rather than
  /// silently serving a differently-shaped filter.
  DurableMpcbf(const std::filesystem::path& dir, const MpcbfConfig& cfg,
               Options options = {})
      : dir_(dir),
        options_(options),
        filter_(recover_filter(dir, &cfg)),
        journal_(journal_path(dir).string()) {
    if (options_.flush_every == 0) options_.flush_every = 1;
    if (options_.keep_snapshots == 0) options_.keep_snapshots = 1;
  }

  /// Opens an existing durable directory, deriving the filter layout
  /// from its newest valid snapshot. Throws if no snapshot is loadable.
  static DurableMpcbf open_existing(const std::filesystem::path& dir,
                                    Options options = {}) {
    return DurableMpcbf(dir, std::nullopt, options);
  }

  /// Shared-ownership open, for owners that hand the filter to
  /// long-lived capturing callbacks (net::make_backend). The class is
  /// immovable (the journal pins an fd), so this constructs in place.
  /// Without `cfg` behaves like open_existing(); with `cfg`, like the
  /// open-or-create constructor.
  static std::shared_ptr<DurableMpcbf> open_shared(
      const std::filesystem::path& dir,
      std::optional<MpcbfConfig> cfg = std::nullopt, Options options = {}) {
    return std::shared_ptr<DurableMpcbf>(
        new DurableMpcbf(dir, cfg, options));
  }

  ~DurableMpcbf() {
    try {
      if (journal_.next_seq() > journal_.base_seq()) {
        journal_.flush(options_.fsync);
      }
    } catch (...) {
      // Destructor must not throw; unflushed tail records are the
      // acknowledged-loss window the flush policy already admits.
    }
  }

  DurableMpcbf(const DurableMpcbf&) = delete;
  DurableMpcbf& operator=(const DurableMpcbf&) = delete;

  // --- mutations (journaled) --------------------------------------------

  bool insert(std::string_view key) {
    log_op(io::JournalOp::kInsert, key);
    return filter_.insert(key);
  }

  bool erase(std::string_view key) {
    log_op(io::JournalOp::kErase, key);
    return filter_.erase(key);
  }

  /// Batched inserts with the WAL invariant intact: every key is
  /// journaled (group-commit flushes included) before any is applied in
  /// memory, so an acknowledged batch survives a crash mid-apply. The
  /// in-memory application then runs the engine's prefetch pipeline.
  /// `ok[i]` receives insert(keys[i])'s return value.
  void insert_batch(std::span<const std::string> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string>(keys, ok);
  }
  /// string_view flavour — the serving layer decodes requests to views
  /// into a network buffer and journals/applies them with no per-key
  /// allocation.
  void insert_batch(std::span<const std::string_view> keys,
                    std::span<std::uint8_t> ok) {
    insert_batch_impl<std::string_view>(keys, ok);
  }

  // --- queries (journal-free, same cost as the plain filter) ------------

  [[nodiscard]] bool contains(std::string_view key) const {
    return filter_.contains(key);
  }
  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    return filter_.count(key);
  }
  /// Batched membership through the underlying engine pipeline.
  void contains_batch(std::span<const std::string> keys,
                      std::span<std::uint8_t> out) const {
    filter_.contains_batch(keys, out);
  }
  void contains_batch(std::span<const std::string_view> keys,
                      std::span<std::uint8_t> out) const {
    filter_.contains_batch(keys, out);
  }

  /// Forces buffered journal records to stable storage. After this
  /// returns, every prior mutation survives any crash.
  void flush() {
    MPCBF_TRACE_SPAN(span, kIo, "wal.flush");
    span.set_arg("records", pending_);
    journal_.flush(options_.fsync);
    pending_ = 0;
  }

  /// Serializes the current state to a new snapshot (write-temp → flush
  /// → fsync → atomic rename → directory fsync) and truncates the
  /// journal to the new watermark. Old snapshots beyond
  /// Options::keep_snapshots are removed.
  void snapshot() {
    MPCBF_TRACE_SPAN(span, kIo, "durable.snapshot");
    auto& m = durable_metrics();
    const std::uint64_t t0 =
        metrics::kStatsEnabled ? metrics::now_ns() : 0;
    journal_.flush(options_.fsync);
    pending_ = 0;
    const std::uint64_t last_seq = journal_.next_seq() - 1;

    const std::filesystem::path tmp = dir_ / "snapshot.tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) {
        throw std::runtime_error("DurableMpcbf: cannot write " +
                                 tmp.string());
      }
      write_snapshot_stream(os, last_seq);
      os.flush();
      if (!os) {
        throw std::runtime_error("DurableMpcbf: snapshot write failed");
      }
    }
    crash_point("snapshot:post-temp-write");
    if (options_.fsync) sync_path(tmp);
    crash_point("snapshot:pre-rename");
    const std::filesystem::path final_path = dir_ / snapshot_name(last_seq);
    std::filesystem::rename(tmp, final_path);
    if (options_.fsync) sync_path(dir_);
    crash_point("snapshot:post-rename");
    journal_.reset(last_seq + 1);
    crash_point("snapshot:post-journal-reset");
    prune_snapshots();
    m.snapshots.inc();
    if (metrics::kStatsEnabled) m.snapshot_ns.record(metrics::now_ns() - t0);
  }

  /// Journal records appended since the last flush (the crash-loss
  /// window under flush_every > 1).
  [[nodiscard]] std::size_t pending_records() const noexcept {
    return pending_;
  }

  // --- replication primitives -------------------------------------------
  //
  // The journal's monotonic sequence numbers double as the replication
  // stream: a follower that has applied everything below N asks for
  // records from N, and a snapshot's watermark tells it where replay
  // resumes. Followers mirror the primary's sequence numbering exactly
  // (install_snapshot resets the local journal to watermark + 1), so at
  // equal watermarks the two directories hold byte-identical snapshots.

  /// One page of the replication stream.
  struct ReplicationBatch {
    std::vector<io::JournalRecord> records;
    std::uint64_t next_seq = 1;  ///< journal position after the batch
    std::uint64_t base_seq = 1;  ///< compaction floor; from_seq below
                                 ///< this needs a snapshot bootstrap
  };

  /// Journal records at or after `from_seq`, bounded by `max_records`
  /// and (approximately) `max_bytes`. Buffered appends are flushed
  /// first — a record is only streamed once it is durable here, so a
  /// follower can never be ahead of the primary's own crash recovery.
  [[nodiscard]] ReplicationBatch journal_records_from(
      std::uint64_t from_seq, std::uint32_t max_records,
      std::uint64_t max_bytes) {
    MPCBF_TRACE_SPAN(span, kIo, "durable.repl_read");
    if (pending_ > 0) {
      journal_.flush(options_.fsync);
      pending_ = 0;
    }
    ReplicationBatch batch;
    batch.next_seq = journal_.next_seq();
    batch.base_seq = journal_.base_seq();
    if (from_seq < batch.base_seq || from_seq >= batch.next_seq) {
      return batch;  // compacted away (bootstrap) or nothing new
    }
    io::JournalScan scan = io::Journal::scan(journal_path(dir_).string());
    std::uint64_t bytes = 0;
    for (auto& rec : scan.records) {
      if (rec.seq < from_seq) continue;
      if (batch.records.size() >= max_records) break;
      bytes += 13 + rec.key.size();
      if (bytes > max_bytes && !batch.records.empty()) break;
      batch.records.push_back(std::move(rec));
    }
    span.set_arg("records", batch.records.size());
    return batch;
  }

  /// Serializes the current state into the exact bytes snapshot() would
  /// publish, without touching disk. Returns {image, watermark}.
  [[nodiscard]] std::pair<std::string, std::uint64_t>
  serialize_snapshot() {
    journal_.flush(options_.fsync);
    pending_ = 0;
    const std::uint64_t last_seq = journal_.next_seq() - 1;
    std::ostringstream os(std::ios::binary);
    write_snapshot_stream(os, last_seq);
    return {std::move(os).str(), last_seq};
  }

  /// Installs a snapshot image received from a primary: validates it
  /// fully before touching local state, persists the bytes verbatim
  /// (tmp + fsync + atomic rename, like snapshot()), replaces the
  /// in-memory filter and resets the journal to watermark + 1 so
  /// subsequent records mirror the primary's numbering. Returns the
  /// image's watermark.
  std::uint64_t install_snapshot(std::string_view image) {
    MPCBF_TRACE_SPAN(span, kIo, "durable.snapshot_install");
    std::istringstream is(std::string(image), std::ios::binary);
    std::istringstream payload(io::read_frame(is));
    io::expect_magic(payload, kSnapshotMagic);
    const auto last_seq = io::read_pod<std::uint64_t>(payload);
    Mpcbf<W> loaded = Mpcbf<W>::load_payload(payload);

    const std::filesystem::path tmp = dir_ / "snapshot.tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os) {
        throw std::runtime_error("DurableMpcbf: cannot write " +
                                 tmp.string());
      }
      os.write(image.data(),
               static_cast<std::streamsize>(image.size()));
      os.flush();
      if (!os) {
        throw std::runtime_error(
            "DurableMpcbf: snapshot install write failed");
      }
    }
    if (options_.fsync) sync_path(tmp);
    std::filesystem::rename(tmp, dir_ / snapshot_name(last_seq));
    if (options_.fsync) sync_path(dir_);
    journal_.reset(last_seq + 1);
    pending_ = 0;
    filter_ = std::move(loaded);
    prune_snapshots();
    span.set_arg("watermark", last_seq);
    return last_seq;
  }

  /// Applies one replicated record, preserving the WAL invariant
  /// (journal first, then memory). Rejects anything but the exact next
  /// sequence number — a gap means the caller lost stream continuity
  /// and must re-bootstrap, not paper over it.
  bool apply_replicated(std::uint64_t seq, io::JournalOp op,
                        std::string_view key) {
    if (seq != journal_.next_seq()) return false;
    // Topology ops (kSegmentAdd/kSegmentRetire) belong to elastic
    // journals; a flat filter cannot apply them, and journaling one
    // while skipping its effect would fork recovered state from the
    // primary. Reject so the caller re-bootstraps from a snapshot.
    if (op != io::JournalOp::kInsert && op != io::JournalOp::kErase) {
      return false;
    }
    log_op(op, key);
    if (op == io::JournalOp::kInsert) {
      (void)filter_.insert(key);
    } else {
      (void)filter_.erase(key);
    }
    return true;
  }

  [[nodiscard]] const Mpcbf<W>& filter() const noexcept { return filter_; }
  [[nodiscard]] std::size_t size() const noexcept { return filter_.size(); }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  [[nodiscard]] std::uint64_t next_seq() const noexcept {
    return journal_.next_seq();
  }
  [[nodiscard]] std::uint64_t base_seq() const noexcept {
    return journal_.base_seq();
  }

  // --- recovery (static, no instance required) --------------------------

  /// Reconstructs the filter state a fresh DurableMpcbf would serve:
  /// newest valid snapshot (or an empty `cfg` filter when none loads)
  /// plus replay of journal records above the snapshot watermark. Pass
  /// cfg == nullptr to require a usable snapshot.
  static Mpcbf<W> recover(const std::filesystem::path& dir,
                          const MpcbfConfig* cfg = nullptr) {
    return recover_filter(dir, cfg);
  }

  static std::filesystem::path journal_path(
      const std::filesystem::path& dir) {
    return dir / "journal.wal";
  }

  /// Sequence-stamped snapshot files in `dir`, newest first.
  static std::vector<std::filesystem::path> snapshot_files(
      const std::filesystem::path& dir) {
    std::vector<std::filesystem::path> files;
    if (!std::filesystem::is_directory(dir)) return files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.starts_with("snapshot-") && name.ends_with(".mpcbf")) {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end(),
              [](const auto& a, const auto& b) {
                return a.filename().string() > b.filename().string();
              });
    return files;
  }

 private:
  DurableMpcbf(const std::filesystem::path& dir,
               std::optional<MpcbfConfig> cfg, Options options)
      : dir_(dir),
        options_(options),
        filter_(recover_filter(dir, cfg ? &*cfg : nullptr)),
        journal_(journal_path(dir).string()) {
    if (options_.flush_every == 0) options_.flush_every = 1;
    if (options_.keep_snapshots == 0) options_.keep_snapshots = 1;
  }

  template <typename Key>
  void insert_batch_impl(std::span<const Key> keys,
                         std::span<std::uint8_t> ok) {
    if (keys.size() != ok.size()) {
      throw std::invalid_argument("insert_batch: size mismatch");
    }
    // WAL invariant for the whole batch: every key is journaled (and
    // group-commit flushed) before any is applied in memory.
    for (const auto& key : keys) {
      log_op(io::JournalOp::kInsert, key);
    }
    filter_.insert_batch(keys, ok);
  }

  void log_op(io::JournalOp op, std::string_view key) {
    crash_point("journal:pre-append");
    {
      MPCBF_TRACE_SPAN(span, kIo, "wal.append");
      if (options_.seq_source) {
        journal_.append_at(options_.seq_source(), op, key);
      } else {
        journal_.append(op, key);
      }
    }
    ++pending_;
    crash_point("journal:post-append");
    if (pending_ >= options_.flush_every) {
      MPCBF_TRACE_SPAN(span, kIo, "wal.group_commit");
      span.set_arg("records", pending_);
      // pending_ is the group-commit batch this flush makes durable.
      durable_metrics().commit_batch.record(pending_);
      journal_.flush(options_.fsync);
      pending_ = 0;
      crash_point("journal:post-flush");
    }
  }

  void crash_point(std::string_view point) {
    if (options_.crash_hook) options_.crash_hook(point);
  }

  void write_snapshot_stream(std::ostream& os,
                             std::uint64_t last_seq) const {
    std::ostringstream payload;
    io::write_magic(payload, kSnapshotMagic);
    io::write_pod<std::uint64_t>(payload, last_seq);
    filter_.save_payload(payload);
    io::write_frame(os, payload.str());
  }

  static std::string snapshot_name(std::uint64_t seq) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "snapshot-%016llx.mpcbf",
                  static_cast<unsigned long long>(seq));
    return buf;
  }

  void prune_snapshots() const {
    const auto files = snapshot_files(dir_);
    for (std::size_t i = options_.keep_snapshots; i < files.size(); ++i) {
      std::error_code ec;
      std::filesystem::remove(files[i], ec);  // best-effort cleanup
    }
  }

  static void sync_path(const std::filesystem::path& p) {
    MPCBF_TRACE_SPAN(span, kIo, "durable.fsync");
#ifdef __unix__
    const int fd = ::open(p.c_str(), O_RDONLY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
#else
    (void)p;
#endif
  }

  /// Loads the snapshot at `path`; returns the filter and its journal
  /// watermark. Throws on any corruption (frame CRC, magic, layout).
  static std::pair<Mpcbf<W>, std::uint64_t> load_snapshot(
      const std::filesystem::path& path) {
    MPCBF_TRACE_SPAN(span, kIo, "durable.snapshot_load");
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      throw std::runtime_error("DurableMpcbf: cannot open " + path.string());
    }
    std::istringstream payload(io::read_frame(is));
    io::expect_magic(payload, kSnapshotMagic);
    const auto last_seq = io::read_pod<std::uint64_t>(payload);
    Mpcbf<W> filter = Mpcbf<W>::load_payload(payload);
    return {std::move(filter), last_seq};
  }

  // Durability metrics are process-global (like the journal's): the
  // durable layer runs orders of magnitude below filter ops, so
  // registering once into the global registry is free and gives
  // `mpcbf_tool stats` visibility without any wiring at call sites.
  struct DurableMetrics {
    metrics::Histogram& commit_batch =
        metrics::Registry::global().histogram(
            "mpcbf_durable_commit_batch_records",
            "Journal records made durable per group-commit flush");
    metrics::Counter& snapshots = metrics::Registry::global().counter(
        "mpcbf_durable_snapshots_total", "Snapshots published");
    metrics::Histogram& snapshot_ns =
        metrics::Registry::global().histogram(
            "mpcbf_durable_snapshot_duration_ns",
            "snapshot() wall time (serialize+fsync+rename+truncate), ns");
    metrics::Counter& recoveries = metrics::Registry::global().counter(
        "mpcbf_durable_recoveries_total", "Recovery runs completed");
    metrics::Counter& replayed = metrics::Registry::global().counter(
        "mpcbf_durable_replayed_records_total",
        "Journal records replayed above the snapshot watermark");
  };
  static DurableMetrics& durable_metrics() {
    static DurableMetrics m;
    return m;
  }

  static Mpcbf<W> recover_filter(const std::filesystem::path& dir,
                                 const MpcbfConfig* cfg) {
    MPCBF_TRACE_SPAN(span, kIo, "durable.recover");
    std::filesystem::create_directories(dir);
    std::optional<Mpcbf<W>> filter;
    std::uint64_t watermark = 0;
    for (const auto& path : snapshot_files(dir)) {
      try {
        auto [loaded, last_seq] = load_snapshot(path);
        filter.emplace(std::move(loaded));
        watermark = last_seq;
        break;  // newest valid snapshot wins
      } catch (const std::runtime_error&) {
        continue;  // corrupt snapshot: fall back to an older one
      }
    }
    if (!filter) {
      if (cfg == nullptr) {
        throw std::runtime_error(
            "DurableMpcbf: no loadable snapshot in " + dir.string() +
            " and no config to start from");
      }
      filter.emplace(*cfg);
    } else if (cfg != nullptr) {
      const Mpcbf<W> expected(*cfg);
      if (!filter->compatible(expected)) {
        throw std::runtime_error(
            "DurableMpcbf: snapshot layout does not match config");
      }
    }
    // The journal header is validated even when there is nothing to
    // replay: a corrupt journal must surface, not be ignored.
    const io::JournalScan scan =
        io::Journal::scan(journal_path(dir).string());
    if (scan.base_seq > watermark + 1) {
      // Records below base_seq were compacted into a snapshot this
      // recovery could not load — serving the remainder would silently
      // forget acknowledged mutations.
      throw std::runtime_error(
          "DurableMpcbf: journal was compacted past the newest loadable "
          "snapshot; state is unrecoverable without that snapshot");
    }
    std::uint64_t replayed = 0;
    {
      MPCBF_TRACE_SPAN(replay_span, kIo, "durable.replay");
      for (const auto& rec : scan.records) {
        if (rec.seq <= watermark) continue;  // already in the snapshot
        if (rec.op == io::JournalOp::kInsert) {
          (void)filter->insert(rec.key);
        } else if (rec.op == io::JournalOp::kErase) {
          (void)filter->erase(rec.key);
        } else {
          // Topology record from an elastic journal: a flat filter
          // cannot interpret its payload as a key. Surface the mixup
          // rather than corrupting state with a bogus erase.
          throw std::runtime_error(
              "DurableMpcbf: journal contains segment-topology records "
              "(elastic filter directory?)");
        }
        ++replayed;
      }
      replay_span.set_arg("records", replayed);
    }
    durable_metrics().recoveries.inc();
    durable_metrics().replayed.inc(replayed);
    return std::move(*filter);
  }

  std::filesystem::path dir_;
  Options options_;
  Mpcbf<W> filter_;
  io::Journal journal_;
  std::size_t pending_ = 0;
};

}  // namespace mpcbf::core
