#include "net/fault_proxy.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace mpcbf::net {

namespace {
constexpr std::size_t kChunk = 16 * 1024;
constexpr int kTickMs = 5;
}  // namespace

/// One proxied connection: two sockets and a delayed-chunk queue per
/// direction. `budget` is the truncation fuse — SIZE_MAX means intact.
struct FaultProxy::Pair {
  Socket client;
  Socket upstream;
  struct Chunk {
    std::chrono::steady_clock::time_point ready;
    std::string data;
    std::size_t sent = 0;
  };
  std::deque<Chunk> to_upstream;
  std::deque<Chunk> to_client;
  std::size_t budget = static_cast<std::size_t>(-1);
  bool client_eof = false;
  bool upstream_eof = false;
  bool dead = false;
};

FaultProxy::FaultProxy(Options options) : options_(std::move(options)) {}

FaultProxy::~FaultProxy() { stop(); }

void FaultProxy::start() {
  if (running_.exchange(true)) return;
  listener_ = listen_tcp(options_.listen_address, options_.port);
  set_nonblocking(listener_.fd(), true);
  port_ = local_port(listener_.fd());
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void FaultProxy::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  listener_.close();
  pairs_.clear();
  running_.store(false, std::memory_order_release);
}

void FaultProxy::set_target(const std::string& host,
                            std::uint16_t target_port) {
  std::lock_guard<std::mutex> lock(target_mu_);
  options_.target_host = host;
  options_.target_port = target_port;
}

void FaultProxy::truncate_open_connections(std::size_t bytes) noexcept {
  std::lock_guard<std::mutex> lock(trunc_mu_);
  trunc_pending_ = true;
  trunc_bytes_ = bytes;
}

void FaultProxy::pump(Pair& p, std::size_t budget_bytes) {
  const auto now = std::chrono::steady_clock::now();
  const auto write_side = [&](std::deque<Pair::Chunk>& q, int fd) {
    while (!q.empty() && budget_bytes > 0) {
      Pair::Chunk& chunk = q.front();
      if (chunk.ready > now) break;
      std::size_t want = chunk.data.size() - chunk.sent;
      want = std::min({want, budget_bytes, p.budget});
      if (want == 0) {
        if (p.budget == 0) p.dead = true;  // truncation fuse blown
        return;
      }
      std::ptrdiff_t n = 0;
      try {
        n = write_some(fd, chunk.data.data() + chunk.sent, want);
      } catch (const NetError&) {
        p.dead = true;
        return;
      }
      if (n < 0) break;  // peer's buffer is full
      chunk.sent += static_cast<std::size_t>(n);
      budget_bytes -= static_cast<std::size_t>(n);
      if (p.budget != static_cast<std::size_t>(-1)) {
        p.budget -= static_cast<std::size_t>(n);
      }
      forwarded_.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
      if (chunk.sent == chunk.data.size()) q.pop_front();
    }
    if (p.budget == 0) p.dead = true;
  };
  write_side(p.to_upstream, p.upstream.fd());
  if (p.dead) return;
  write_side(p.to_client, p.client.fd());
}

void FaultProxy::run() {
  std::uint64_t seen_kill = kill_epoch_.load(std::memory_order_acquire);
  std::vector<pollfd> pfds;
  while (!stop_.load(std::memory_order_acquire)) {
    const bool partitioned = partitioned_.load(std::memory_order_acquire);
    // Kill switch: hard-close everything once per epoch bump.
    const std::uint64_t epoch =
        kill_epoch_.load(std::memory_order_acquire);
    if (epoch != seen_kill) {
      seen_kill = epoch;
      for (auto& p : pairs_) p->dead = true;
      killed_.fetch_add(pairs_.size(), std::memory_order_relaxed);
    }
    // Truncation fuse: arm every currently open pair.
    {
      std::lock_guard<std::mutex> lock(trunc_mu_);
      if (trunc_pending_) {
        trunc_pending_ = false;
        for (auto& p : pairs_) p->budget = trunc_bytes_;
      }
    }
    std::erase_if(pairs_, [](const auto& p) { return p->dead; });

    pfds.clear();
    pfds.push_back({listener_.fd(), POLLIN, 0});
    const std::size_t polled = pairs_.size();
    for (const auto& p : pairs_) {
      pfds.push_back(
          {p->client.fd(),
           static_cast<short>(p->client_eof ? 0 : POLLIN), 0});
      pfds.push_back(
          {p->upstream.fd(),
           static_cast<short>(p->upstream_eof ? 0 : POLLIN), 0});
    }
    (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), kTickMs);
    if (stop_.load(std::memory_order_acquire)) break;

    // Accept — or, while partitioned, refuse by immediate close.
    if ((pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listener_.fd(), nullptr, nullptr);
        if (fd < 0) break;
        Socket client(fd);
        if (partitioned) continue;  // dropped on the floor
        try {
          std::string host;
          std::uint16_t tport = 0;
          {
            std::lock_guard<std::mutex> lock(target_mu_);
            host = options_.target_host;
            tport = options_.target_port;
          }
          Socket upstream =
              connect_tcp(host, tport, std::chrono::milliseconds(1000));
          set_nonblocking(client.fd(), true);
          set_nonblocking(upstream.fd(), true);
          auto p = std::make_unique<Pair>();
          p->client = std::move(client);
          p->upstream = std::move(upstream);
          pairs_.push_back(std::move(p));
          connections_.fetch_add(1, std::memory_order_relaxed);
        } catch (const NetError&) {
          // Target unreachable: the refused client sees a reset, which
          // is exactly what a real dead backend looks like.
        }
      }
    }

    const auto delay =
        std::chrono::milliseconds(delay_ms_.load(std::memory_order_acquire));
    const auto ready_at = std::chrono::steady_clock::now() + delay;
    const std::size_t throttle =
        throttle_.load(std::memory_order_acquire);

    // Pairs accepted after the poll have no pfds entry yet; they get
    // serviced on the next tick.
    for (std::size_t i = 0; i < polled; ++i) {
      Pair& p = *pairs_[i];
      if (p.dead) continue;
      const short client_rev = pfds[1 + 2 * i].revents;
      const short upstream_rev = pfds[2 + 2 * i].revents;
      if (((client_rev | upstream_rev) & (POLLERR | POLLNVAL)) != 0) {
        p.dead = true;
        continue;
      }
      // While partitioned, neither read nor write: bytes already queued
      // stay frozen, new bytes back-pressure in the kernel.
      if (partitioned) continue;
      const auto read_side = [&](int fd, bool& eof,
                                 std::deque<Pair::Chunk>& q) {
        char buf[kChunk];
        for (;;) {
          std::ptrdiff_t n = 0;
          try {
            n = read_some(fd, buf, sizeof buf);
          } catch (const NetError&) {
            p.dead = true;
            return;
          }
          if (n < 0) break;  // drained
          if (n == 0) {
            eof = true;
            break;
          }
          q.push_back({ready_at,
                       std::string(buf, static_cast<std::size_t>(n)), 0});
        }
      };
      if ((client_rev & (POLLIN | POLLHUP)) != 0) {
        read_side(p.client.fd(), p.client_eof, p.to_upstream);
      }
      if (!p.dead && (upstream_rev & (POLLIN | POLLHUP)) != 0) {
        read_side(p.upstream.fd(), p.upstream_eof, p.to_client);
      }
      if (p.dead) continue;
      pump(p, throttle == 0 ? static_cast<std::size_t>(-1) : throttle);
      if ((p.client_eof || p.upstream_eof) && p.to_upstream.empty() &&
          p.to_client.empty()) {
        p.dead = true;  // flushed both ways; propagate the close
      }
    }
  }
}

}  // namespace mpcbf::net
