#include "net/shutdown.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>

namespace mpcbf::net {
namespace {

volatile std::sig_atomic_t g_requested = 0;
int g_pipe[2] = {-1, -1};
std::atomic<bool> g_installed{false};

extern "C" void shutdown_handler(int) {
  g_requested = 1;
  if (g_pipe[1] >= 0) {
    const char b = 1;
    // A full pipe already guarantees wait() wakes; ignore the result.
    [[maybe_unused]] ssize_t n = ::write(g_pipe[1], &b, 1);
  }
}

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void ShutdownSignal::install() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  if (::pipe(g_pipe) == 0) {
    make_nonblocking(g_pipe[0]);
    make_nonblocking(g_pipe[1]);
  } else {
    g_pipe[0] = g_pipe[1] = -1;  // requested() polling still works
  }
  struct sigaction sa = {};
  sa.sa_handler = shutdown_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let blocking syscalls see EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool ShutdownSignal::requested() noexcept { return g_requested != 0; }

bool ShutdownSignal::wait(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!requested()) {
    int wait_ms = -1;
    if (timeout.count() > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return requested();
      wait_ms = static_cast<int>(left.count());
    }
    if (g_pipe[0] < 0) {
      // No pipe (install failed): degrade to coarse polling.
      struct timespec ts = {0, 50 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
      continue;
    }
    struct pollfd pfd = {g_pipe[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0 && errno != EINTR) return requested();
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      char drain[64];
      while (::read(g_pipe[0], drain, sizeof drain) > 0) {
      }
    }
  }
  return true;
}

void ShutdownSignal::trigger() noexcept { shutdown_handler(SIGTERM); }

void ShutdownSignal::reset() noexcept {
  g_requested = 0;
  if (g_pipe[0] >= 0) {
    char drain[64];
    while (::read(g_pipe[0], drain, sizeof drain) > 0) {
    }
  }
}

}  // namespace mpcbf::net
