// Admin introspection plane — a minimal HTTP/1.1 GET server bound to a
// *separate* port from the MPN1 binary listener, so a Prometheus
// scraper, a load balancer's health checker and a curl-wielding
// operator never share a socket with the data path.
//
// Deliberately tiny: GET/HEAD only, no keep-alive (every response closes
// the connection, so connection state is one request), request line +
// headers capped at kMaxRequestBytes before any allocation grows past
// it — the same hostile-input discipline as protocol.hpp's frame caps.
// One thread runs a readiness event loop (EventLoop: epoll on Linux)
// for accept and all admin connections; admin traffic is orders of
// magnitude below the data plane, and a single loop keeps the plane
// allocation-capped and lock-free on the data path's hot threads. Idle
// means blocked indefinitely — stop() and new events are delivered via
// the loop's wake channel, never a periodic tick.
//
// Endpoints are injected as handlers (register_admin_endpoints wires
// the standard set), so the server class itself knows nothing about
// filters, registries or replication — tests drive it with fakes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "net/slow_ring.hpp"
#include "net/socket.hpp"

namespace mpcbf::net {

struct HttpRequest {
  std::string_view method;  ///< "GET" / "HEAD"
  std::string_view path;    ///< target with any ?query stripped
  std::string_view query;   ///< bytes after '?', possibly empty
};

struct HttpResponse {
  int status = 200;
  const char* content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// The admin-plane HTTP listener. start() spawns one service thread;
/// stop() drains and joins (idempotent, like Server).
class AdminServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port; read back via port().
    std::uint16_t port = 0;
    /// A connection that has not completed its request line + headers
    /// within this window is closed (slow-loris defense, same rule as
    /// Server::Options::frame_timeout).
    std::chrono::milliseconds header_timeout{5000};
    /// Concurrent admin connections; excess accepts are closed
    /// immediately. Scrapers and probes are serial — this is a cap on
    /// abuse, not a tuning knob.
    std::size_t max_connections = 32;
  };

  /// Request line + headers cap. A scrape request is ~100 bytes; 8 KiB
  /// of headroom covers any legitimate proxy chain.
  static constexpr std::size_t kMaxRequestBytes = 8192;

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit AdminServer(Options options);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers the handler for an exact path. Call before start().
  void handle(std::string path, Handler handler);

  /// Binds, listens and spawns the service thread. Throws NetError.
  void start();
  /// Stops accepting, closes connections, joins. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return started_.load(std::memory_order_acquire) &&
           !stopping_.load(std::memory_order_acquire);
  }

  /// The actually bound port (resolves port 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests answered (any status) over the server's lifetime.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Event-loop iterations of the service thread. An idle admin plane's
  /// count stays flat (no periodic tick) — asserted by the
  /// no-idle-wakeups test.
  [[nodiscard]] std::uint64_t loop_iterations() const noexcept {
    return loop_ ? loop_->iterations() : 0;
  }

 private:
  struct Conn;

  void service_loop();
  /// Parses and answers the buffered request once the header terminator
  /// has arrived; returns false while more bytes are needed.
  bool try_serve(Conn& c);
  void respond(Conn& c, const HttpRequest& req, const HttpResponse& r);

  Options options_;
  std::map<std::string, Handler, std::less<>> handlers_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::unique_ptr<EventLoop> loop_;
  std::thread thread_;
};

/// Everything the standard endpoint set needs, injected so the wiring
/// works identically for mpcbf_tool's real backends and test fakes.
/// Null hooks degrade the affected endpoint ("unavailable"), never 500.
struct AdminEndpoints {
  /// HEALTH-equivalent probe (FilterBackend::health). /healthz keys on
  /// severity: kCritical -> 503.
  std::function<HealthReply()> health;
  /// Readiness bit, matching the MPN1 HEALTH ready semantics (server
  /// running AND backend caught up). /readyz keys on it: false -> 503.
  std::function<bool()> ready;
  /// Replication role/watermarks for /statusz; null for memory-only.
  std::function<ReplStatusReply()> repl_status;
  /// Human-readable backend kind ("memory", "durable", "elastic", ...).
  std::string backend_kind = "memory";
  /// Appends extra /statusz lines (elastic topology digest, journal
  /// paths); optional.
  std::function<void(std::string&)> status_extra;
  /// Slow-request ring backing /tracez; optional (borrowed pointer, must
  /// outlive the AdminServer).
  const SlowRequestRing* slow_ring = nullptr;
};

/// Registers the standard admin plane on `server`:
///   /metrics  Prometheus text exposition of the global registry
///   /healthz  saturation severity (503 once critical)
///   /readyz   readiness bit (503 while not ready / draining)
///   /statusz  human status page
///   /tracez   slow-request spans as Chrome trace JSON
void register_admin_endpoints(AdminServer& server, AdminEndpoints eps);

/// Renders the slow-request ring as a Chrome trace-event JSON object
/// (loadable in chrome://tracing / Perfetto); exposed for tests and the
/// /tracez handler.
[[nodiscard]] std::string slow_ring_chrome_json(const SlowRequestRing& ring);

}  // namespace mpcbf::net
