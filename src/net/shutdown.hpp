// Cooperative SIGINT/SIGTERM handling for long-running tools.
//
// Signal handlers may only touch async-signal-safe state, so the
// handler writes one byte to a self-pipe and sets a sig_atomic_t flag;
// the main thread blocks in wait() (poll on the pipe) or polls
// requested() from its own loop. `mpcbf_tool serve` and
// `mpcbf_tool health --watch` share this so both drain and flush
// instead of dying mid-write.
#pragma once

#include <csignal>
#include <chrono>

namespace mpcbf::net {

class ShutdownSignal {
 public:
  /// Installs SIGINT/SIGTERM handlers routing to this process-wide
  /// latch. Safe to call more than once; later calls are no-ops.
  static void install();

  /// True once a shutdown signal has been received (async-signal-safe
  /// flag read; cheap enough for per-iteration polling).
  static bool requested() noexcept;

  /// Blocks until a signal arrives or `timeout` elapses. Returns true
  /// when shutdown was requested. A zero timeout waits forever.
  static bool wait(std::chrono::milliseconds timeout);

  /// Testing hook: trip the latch as if a signal had arrived.
  static void trigger() noexcept;

  /// Testing hook: re-arm the latch (handlers stay installed).
  static void reset() noexcept;
};

}  // namespace mpcbf::net
