// Blocking client for mpcbfd (net/server.hpp).
//
// One Client owns one TCP connection and is a strict request/response
// state machine — not thread-safe; give each thread its own Client (the
// server pins each connection to one worker, so N clients also spread
// load across workers). connect() retries with linear backoff;
// per-operation send/receive deadlines come from SO_SNDTIMEO/RCVTIMEO.
//
// The batching API is the intended hot path: a query([...64 keys...])
// costs one frame each way and runs the server's word-engine batch
// pipeline, amortizing the syscall + parse overhead that dominates
// 1-key requests (bench/bench_server.cpp measures the gap).
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace mpcbf::net {

/// The server answered with a well-formed error reply (the transport is
/// intact; NetError covers transport failures).
class RemoteError : public NetError {
 public:
  RemoteError(ErrorCode code, const std::string& message)
      : NetError("server error " +
                 std::to_string(static_cast<std::uint32_t>(code)) + ": " +
                 message),
        code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// connect() attempts before giving up (covers a server that is
    /// still binding its port when the client races it).
    unsigned connect_attempts = 10;
    std::chrono::milliseconds retry_backoff{50};
    /// Per-syscall send/receive deadline.
    std::chrono::milliseconds io_timeout{5000};
  };

  explicit Client(Options options) : options_(std::move(options)) {}
  ~Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Connects (with retry/backoff). Throws NetError after the last
  /// failed attempt. Idempotent once connected.
  void connect();

  [[nodiscard]] bool connected() const noexcept { return sock_.valid(); }
  void close() noexcept { sock_.close(); }

  // --- batched filter ops (auto-connect) --------------------------------

  /// Membership verdicts, one byte per key (1 = positive).
  std::vector<std::uint8_t> query(std::span<const std::string> keys);
  std::vector<std::uint8_t> query(std::span<const std::string_view> keys);

  /// Inserts; ok[i] mirrors the server-side insert return value.
  std::vector<std::uint8_t> insert(std::span<const std::string> keys);
  std::vector<std::uint8_t> insert(std::span<const std::string_view> keys);

  /// Erases; ok[i] false for keys whose counters underflowed.
  std::vector<std::uint8_t> erase(std::span<const std::string> keys);
  std::vector<std::uint8_t> erase(std::span<const std::string_view> keys);

  // --- admin ops --------------------------------------------------------

  [[nodiscard]] StatsReply stats();
  [[nodiscard]] HealthReply health();
  /// Asks the server to publish a durable snapshot; returns the journal
  /// watermark. Throws RemoteError(kUnsupported) on memory-only servers.
  std::uint64_t snapshot();

 private:
  /// One round trip: frames `payload`, sends, reads the matching
  /// response frame (id-checked), throws RemoteError on error replies.
  /// Returns the response payload.
  std::string round_trip(Opcode op, std::string_view payload);

  template <typename Key>
  std::vector<std::uint8_t> batch_op(Opcode op, std::span<const Key> keys);

  Options options_;
  Socket sock_;
  std::uint64_t next_id_ = 1;
  std::string sendbuf_;
  std::string recvbuf_;
};

}  // namespace mpcbf::net
