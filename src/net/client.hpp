// Blocking client for mpcbfd (net/server.hpp).
//
// One Client owns one TCP connection and is a strict request/response
// state machine — not thread-safe; give each thread its own Client (the
// server pins each connection to one worker, so N clients also spread
// load across workers). connect() retries with jittered exponential
// backoff under a total deadline budget; per-operation send/receive
// deadlines come from SO_SNDTIMEO/RCVTIMEO.
//
// The batching API is the intended hot path: a query([...64 keys...])
// costs one frame each way and runs the server's word-engine batch
// pipeline, amortizing the syscall + parse overhead that dominates
// 1-key requests (bench/bench_server.cpp measures the gap).
//
// FailoverClient wraps N endpoints: on a transport failure (or a
// kShuttingDown reply) it rotates to the next endpoint, again with
// jittered exponential backoff under a per-operation deadline.
// Idempotent ops (QUERY/STATS/HEALTH/REPLSTATUS) retry freely;
// mutations are retried safely because every INSERT/ERASE carries a
// (session_id, op_seq) SequencePrefix the server dedups — a batch that
// was applied before the connection died is replayed from the server's
// reply cache, not applied twice.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace mpcbf::net {

/// Jittered exponential backoff ("equal jitter": half deterministic,
/// half uniform). A non-zero seed gives a deterministic xorshift
/// stream so tests can reproduce schedules; seed 0 draws per-instance
/// entropy — jitter exists to decorrelate a fleet's retries, and a
/// shared fixed stream would march every default-configured client
/// through identical schedules on a mass reconnect. next() doubles the
/// base up to `max`.
class Backoff {
 public:
  Backoff(std::chrono::milliseconds initial,
          std::chrono::milliseconds max, std::uint64_t seed) noexcept
      : initial_(initial), max_(max), cur_(initial),
        state_(seed != 0 ? seed : entropy_seed()) {}

  /// A never-zero per-instance seed from std::random_device.
  [[nodiscard]] static std::uint64_t entropy_seed() noexcept {
    std::random_device rd;
    const std::uint64_t s =
        (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    return s != 0 ? s : 0x9E3779B97F4A7C15ull;
  }

  [[nodiscard]] std::chrono::milliseconds next() noexcept {
    const std::int64_t base = std::max<std::int64_t>(cur_.count(), 1);
    cur_ = std::min(max_, cur_ * 2);
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    const std::int64_t half = base / 2;
    return std::chrono::milliseconds(
        half + static_cast<std::int64_t>(state_ % (base - half + 1)));
  }

  void reset() noexcept { cur_ = initial_; }

 private:
  std::chrono::milliseconds initial_;
  std::chrono::milliseconds max_;
  std::chrono::milliseconds cur_;
  std::uint64_t state_;
};

/// The server answered with a well-formed error reply (the transport is
/// intact; NetError covers transport failures).
class RemoteError : public NetError {
 public:
  RemoteError(ErrorCode code, const std::string& message)
      : NetError("server error " +
                 std::to_string(static_cast<std::uint32_t>(code)) + ": " +
                 message),
        code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Total budget for connect() retries (covers a server that is
    /// still binding its port when the client races it). Attempts are
    /// spaced by jittered exponential backoff; the budget, not an
    /// attempt count, decides when to give up.
    std::chrono::milliseconds connect_deadline{2000};
    std::chrono::milliseconds initial_backoff{20};
    std::chrono::milliseconds max_backoff{500};
    /// Jitter stream seed; 0 (the default) draws fresh per-instance
    /// entropy so fleet retries stay decorrelated. Set non-zero for a
    /// reproducible schedule in tests.
    std::uint64_t backoff_seed = 0;
    /// Per-syscall send/receive deadline.
    std::chrono::milliseconds io_timeout{5000};
    /// Stamp every request with a kFlagTraced 8-byte trace-id prefix so
    /// the server's request span, slow-request record and log line
    /// correlate back to this client. On by default — the cost is 8
    /// payload bytes per request.
    bool stamp_trace_ids = true;
    /// Trace-id stream seed; 0 (the default) draws per-instance entropy.
    /// Set non-zero for reproducible ids in tests.
    std::uint64_t trace_seed = 0;
  };

  explicit Client(Options options) : options_(std::move(options)) {}
  ~Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Connects (with retry/backoff). Throws NetError after the last
  /// failed attempt. Idempotent once connected.
  void connect();

  [[nodiscard]] bool connected() const noexcept { return sock_.valid(); }
  void close() noexcept { sock_.close(); }

  // --- batched filter ops (auto-connect) --------------------------------

  /// Membership verdicts, one byte per key (1 = positive).
  std::vector<std::uint8_t> query(std::span<const std::string> keys);
  std::vector<std::uint8_t> query(std::span<const std::string_view> keys);

  /// Inserts; ok[i] mirrors the server-side insert return value.
  std::vector<std::uint8_t> insert(std::span<const std::string> keys);
  std::vector<std::uint8_t> insert(std::span<const std::string_view> keys);

  /// Erases; ok[i] false for keys whose counters underflowed.
  std::vector<std::uint8_t> erase(std::span<const std::string> keys);
  std::vector<std::uint8_t> erase(std::span<const std::string_view> keys);

  /// Min-counter occurrence estimates, one u32 per key (0 = definitely
  /// absent; counting-filter semantics otherwise: never under the true
  /// multiplicity except after saturation clamps).
  std::vector<std::uint32_t> est_count(std::span<const std::string> keys);
  std::vector<std::uint32_t> est_count(
      std::span<const std::string_view> keys);

  // --- namespaces -------------------------------------------------------

  /// Scopes every subsequent filter op (query/insert/erase/est_count)
  /// and per-filter admin op (stats/health/snapshot) to a server-side
  /// namespace: frames gain kFlagNamespaced and a name prefix. An empty
  /// name reverts to the server's default (un-namespaced) filter.
  void set_namespace(std::string name) { ns_ = std::move(name); }
  [[nodiscard]] const std::string& current_namespace() const noexcept {
    return ns_;
  }

  /// Creates a namespace; throws RemoteError (kNamespaceExists,
  /// kQuotaExceeded, ...) on rejection.
  void ns_create(std::string_view name, const NsConfigWire& cfg);
  /// Drops a namespace and its durable directory.
  void ns_drop(std::string_view name);
  /// All namespaces, name-sorted.
  [[nodiscard]] std::vector<NsRow> ns_list();
  /// Forces one decay tick; returns the namespace's new tick ordinal.
  std::uint64_t ns_tick(std::string_view name);

  // --- admin ops --------------------------------------------------------

  [[nodiscard]] StatsReply stats();
  [[nodiscard]] HealthReply health();
  /// Asks the server to publish a durable snapshot; returns the journal
  /// watermark. Throws RemoteError(kUnsupported) on memory-only servers.
  std::uint64_t snapshot();

  // --- replication ops (durable servers only) ---------------------------

  /// Pulls one page of journal records; `records` receives the page.
  ReplicateInfo replicate(const ReplicateRequest& req,
                          std::vector<io::JournalRecord>& records);
  /// Fetches one chunk of the primary's consistent snapshot image.
  SnapFetchInfo snap_fetch(const SnapFetchRequest& req, std::string& bytes);
  [[nodiscard]] ReplStatusReply repl_status();

  /// One round trip: frames `payload`, sends, reads the matching
  /// response frame (id-checked), throws RemoteError on error replies.
  /// Returns the response payload. Public so wrappers (FailoverClient)
  /// can send flagged frames. `trace_id` overrides the auto-stamped id
  /// (retries of one logical op resend the same id); 0 means "stamp per
  /// Options::stamp_trace_ids".
  std::string round_trip(Opcode op, std::string_view payload,
                         std::uint8_t flags = 0,
                         std::uint64_t trace_id = 0);

  /// Trace id stamped on the most recent request (0 when stamping is
  /// off) — what to grep for in the server's log and /tracez.
  [[nodiscard]] std::uint64_t last_trace_id() const noexcept {
    return last_trace_id_;
  }

 private:
  template <typename Key>
  std::vector<std::uint8_t> batch_op(Opcode op, std::span<const Key> keys);
  template <typename Key>
  std::vector<std::uint32_t> count_op(std::span<const Key> keys);

  /// Starts a request payload: the namespace prefix when scoped (also
  /// setting kFlagNamespaced in `flags`), else empty.
  std::string scoped_payload(std::uint8_t& flags) const;

  std::uint64_t next_trace_id() noexcept;

  Options options_;
  std::string ns_;
  Socket sock_;
  std::uint64_t next_id_ = 1;
  std::uint64_t trace_state_ = 0;
  std::uint64_t last_trace_id_ = 0;
  std::string sendbuf_;
  std::string tracebuf_;
  std::string recvbuf_;
};

/// One server address a FailoverClient may talk to.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Multi-endpoint client with automatic failover. Not thread-safe, like
/// Client. Endpoint rotation triggers on transport failures (NetError)
/// and kShuttingDown replies; every other RemoteError is authoritative
/// (the server answered) and is rethrown immediately. Mutations carry a
/// SequencePrefix so a retry after failover-to-the-same-node can never
/// double-apply; note that across *distinct* nodes the dedup cache is
/// per-server — point the endpoint list at one replication group.
class FailoverClient {
 public:
  struct Options {
    std::vector<Endpoint> endpoints;
    /// Total budget for one logical operation across all retries.
    std::chrono::milliseconds op_deadline{10000};
    std::chrono::milliseconds initial_backoff{20};
    std::chrono::milliseconds max_backoff{1000};
    /// Per-endpoint connect budget; keep it well under op_deadline so
    /// a dead endpoint cannot eat the whole budget.
    std::chrono::milliseconds connect_deadline{500};
    std::chrono::milliseconds io_timeout{2000};
    /// Dedup session id; 0 = derived from std::random_device.
    std::uint64_t session_id = 0;
    std::uint64_t backoff_seed = 0;
    /// Stamp one trace id per *logical* operation — every failover
    /// retry of that operation resends the same id, mirroring op_seq.
    bool stamp_trace_ids = true;
  };

  explicit FailoverClient(Options options);

  std::vector<std::uint8_t> query(std::span<const std::string> keys);
  std::vector<std::uint8_t> query(std::span<const std::string_view> keys);
  std::vector<std::uint8_t> insert(std::span<const std::string> keys);
  std::vector<std::uint8_t> insert(std::span<const std::string_view> keys);
  std::vector<std::uint8_t> erase(std::span<const std::string> keys);
  std::vector<std::uint8_t> erase(std::span<const std::string_view> keys);
  [[nodiscard]] StatsReply stats();
  [[nodiscard]] HealthReply health();
  [[nodiscard]] ReplStatusReply repl_status();

  /// Index into Options::endpoints the next operation will try first.
  [[nodiscard]] std::size_t active_endpoint() const noexcept {
    return active_;
  }
  /// Endpoint rotations forced by failures so far.
  [[nodiscard]] std::uint64_t failovers() const noexcept {
    return failovers_;
  }
  [[nodiscard]] std::uint64_t session_id() const noexcept {
    return session_id_;
  }
  /// Trace id stamped on the most recent query/insert/erase (all its
  /// retries share it); 0 before the first op or with stamping off.
  [[nodiscard]] std::uint64_t last_trace_id() const noexcept {
    return last_trace_id_;
  }

 private:
  Client& ensure_client();
  void rotate();
  std::uint64_t next_trace_id() noexcept;
  template <typename Fn>
  auto with_failover(Fn&& fn) -> decltype(fn(std::declval<Client&>()));
  template <typename Key>
  std::vector<std::uint8_t> mutate(Opcode op, std::span<const Key> keys);
  template <typename Key>
  std::vector<std::uint8_t> query_impl(std::span<const Key> keys);

  Options options_;
  std::optional<Client> client_;
  std::size_t active_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t session_id_ = 0;
  std::uint64_t next_op_seq_ = 0;
  std::uint64_t trace_state_ = 0;
  std::uint64_t last_trace_id_ = 0;
};

}  // namespace mpcbf::net
