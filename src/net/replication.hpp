// Replicator — the follower half of mpcbfd primary/follower
// replication.
//
// The journal's monotonic sequence numbers double as the replication
// stream (docs/server.md#replication):
//
//   ┌──────────┐  REPLICATE from_seq=N   ┌──────────┐
//   │ follower │ ───────────────────────▶│ primary  │
//   │          │ ◀─────────────────────── │          │
//   └──────────┘  records N..M | need_snapshot
//
// A poll for records from N is simultaneously the ack for everything
// below N — the primary tracks it as this follower's durable watermark.
// When N has been compacted away (N < the primary's journal base_seq)
// the reply says need_snapshot and the follower bootstraps: it fetches
// the primary's consistent snapshot image in SNAPFETCH chunks, installs
// the bytes verbatim into its own durable directory, and resets its
// journal to the image's watermark + 1. From then on the follower's
// sequence numbering mirrors the primary's exactly, so at equal
// watermarks the two directories hold byte-identical snapshot files —
// and a crashed primary can be restarted as a follower of whoever
// superseded it, converging over the same stream.
//
// Applying records preserves the WAL invariant locally (journal first,
// then memory) and rejects any gap in sequence numbers by forcing a
// re-bootstrap; a torn local journal tail is repaired on reopen just
// like on a primary, after which tailing resumes from the repaired
// watermark.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/durable_mpcbf.hpp"
#include "net/client.hpp"

namespace mpcbf::net {

/// Where a follower's replicated records land. The tailing loop only
/// needs three operations — the resume point, gap-checked apply, and
/// snapshot install — so it is expressed as an interface rather than a
/// concrete DurableMpcbf + shared_mutex pair. The classic single-filter
/// follower wraps exactly that pair (make_replication_sink); a future
/// sharded follower would fan records out to per-shard owners behind the
/// same three calls without touching the Replicator.
///
/// Thread contract: the Replicator calls every method from its one
/// tailing thread; implementations own whatever exclusion they need
/// against their serving side (the default sink takes the backend's
/// shared_mutex internally).
class ReplicationSink {
 public:
  virtual ~ReplicationSink() = default;
  /// Next sequence number the local store expects. Doubles as the ack
  /// watermark: polling from N acknowledges everything below N.
  [[nodiscard]] virtual std::uint64_t next_seq() = 0;
  /// Applies one replicated record (journal first, then memory).
  /// Returns false on a sequence gap — the caller must re-bootstrap.
  virtual bool apply(std::uint64_t seq, io::JournalOp op,
                     std::string_view key) = 0;
  /// Installs a full snapshot image fetched from the primary, rewinding
  /// the local journal to the image's watermark.
  virtual void install_snapshot(const std::string& image) = 0;
};

/// The standard sink: one durable filter guarded by the same
/// shared_mutex the serving backend uses (make_backend's explicit-mutex
/// overload), so replica apply and request serving exclude each other.
[[nodiscard]] std::shared_ptr<ReplicationSink> make_replication_sink(
    std::shared_ptr<core::DurableMpcbf<64>> local,
    std::shared_ptr<std::shared_mutex> mu);

class Replicator {
 public:
  struct Options {
    /// Endpoints to tail, tried in order with jittered exponential
    /// backoff on transport failure.
    std::vector<Endpoint> primaries;
    /// Delay between polls once caught up (an empty batch).
    std::chrono::milliseconds poll_interval{20};
    std::chrono::milliseconds io_timeout{2000};
    std::chrono::milliseconds connect_deadline{500};
    std::chrono::milliseconds initial_backoff{20};
    std::chrono::milliseconds max_backoff{1000};
    /// Per-poll page caps (0 = server default).
    std::uint32_t max_records = 4096;
    std::uint32_t max_bytes = 1u << 20;
    /// Snapshot bytes per bootstrap chunk.
    std::uint32_t snap_chunk = 512u * 1024;
    /// Stable id for the primary's lag accounting; 0 = random.
    std::uint64_t follower_id = 0;
  };

  /// Tails `options.primaries` into `sink`.
  Replicator(std::shared_ptr<ReplicationSink> sink, Options options);

  /// Convenience overload for the standard single-filter follower:
  /// equivalent to Replicator(make_replication_sink(local, mu), options).
  Replicator(std::shared_ptr<core::DurableMpcbf<64>> local,
             std::shared_ptr<std::shared_mutex> mu, Options options);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Spawns the background tailing thread. Idempotent.
  void start();
  /// Stops and joins the tailing thread. Idempotent.
  void stop();

  /// One synchronous replication round against the current primary:
  /// bootstrap when the primary says so, otherwise pull and apply one
  /// page. Returns records applied (0 = caught up or bootstrapped).
  /// Throws NetError/RemoteError on failure; callers polling manually
  /// own the retry policy. start()'s thread wraps this with endpoint
  /// rotation and backoff.
  std::size_t poll_once();

  /// True after a poll observed zero lag and no failure since.
  [[nodiscard]] bool caught_up() const noexcept {
    return caught_up_.load(std::memory_order_acquire);
  }
  /// Highest sequence number applied locally.
  [[nodiscard]] std::uint64_t acked_seq() const noexcept {
    return acked_seq_.load(std::memory_order_acquire);
  }
  /// Records the primary had that this follower had not applied, as of
  /// the last successful poll.
  [[nodiscard]] std::uint64_t lag() const noexcept {
    return lag_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t bootstraps() const noexcept {
    return bootstraps_.load(std::memory_order_acquire);
  }
  /// Endpoint rotations forced by failures.
  [[nodiscard]] std::uint64_t failovers() const noexcept {
    return failovers_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t follower_id() const noexcept {
    return options_.follower_id;
  }

  /// Follower-flavoured REPLSTATUS payload for this node's own server.
  [[nodiscard]] ReplStatusReply status() const;

 private:
  void run();
  void bootstrap(Client& client);
  Client& ensure_client();
  void publish_gauges(bool connected) const;
  /// Sleeps up to `d`, waking early on stop(). Returns false when
  /// stopping.
  bool interruptible_sleep(std::chrono::milliseconds d);

  std::shared_ptr<ReplicationSink> sink_;
  Options options_;

  std::optional<Client> client_;
  std::size_t active_ = 0;
  bool force_bootstrap_ = false;

  std::atomic<bool> caught_up_{false};
  std::atomic<std::uint64_t> acked_seq_{0};
  std::atomic<std::uint64_t> lag_{0};
  std::atomic<std::uint64_t> bootstraps_{0};
  std::atomic<std::uint64_t> failovers_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace mpcbf::net
