// Slow-request capture: a fixed-size, lock-free ring of the most recent
// over-threshold requests, feeding /tracez (Chrome trace JSON) and the
// slow-request log line.
//
// Writers are server workers on the request path, so recording must not
// block: a writer claims a slot with one fetch_add and publishes it
// under a per-slot seqlock (version odd while the slot is being
// rewritten, even when stable; every field is a relaxed atomic so a
// concurrent reader's discarded torn read is not a data race). Readers
// (/tracez, tests) copy slots and drop any whose version changed
// mid-copy — a scrape never delays a request.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mpcbf::net {

/// One captured request, as /tracez consumers see it.
struct SlowRequest {
  std::uint64_t seq = 0;         ///< capture order (monotonic)
  std::uint64_t start_ns = 0;    ///< metrics::now_ns() at decode
  std::uint64_t duration_ns = 0;
  std::uint64_t trace_id = 0;    ///< 0 when the request was untraced
  std::uint64_t peer = 0;        ///< packed IPv4 (ip << 16 | port); 0 unknown
  std::uint32_t batch_keys = 0;  ///< keys in the batch (0 for admin ops)
  std::uint8_t opcode = 0;
};

class SlowRequestRing {
 public:
  static constexpr std::size_t kCapacity = 256;  // power of two

  /// Lock-free; called by any worker. The ring keeps the newest
  /// kCapacity entries, overwriting the oldest.
  void record(const SlowRequest& r) noexcept {
    const std::uint64_t seq =
        next_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[seq & (kCapacity - 1)];
    s.version.fetch_add(1, std::memory_order_acq_rel);  // odd: rewriting
    s.seq.store(seq + 1, std::memory_order_relaxed);
    s.start_ns.store(r.start_ns, std::memory_order_relaxed);
    s.duration_ns.store(r.duration_ns, std::memory_order_relaxed);
    s.trace_id.store(r.trace_id, std::memory_order_relaxed);
    s.peer.store(r.peer, std::memory_order_relaxed);
    s.packed.store(pack(r.batch_keys, r.opcode),
                   std::memory_order_relaxed);
    s.version.fetch_add(1, std::memory_order_release);  // even: stable
  }

  /// Consistent copies of every stable slot, oldest first. Slots being
  /// rewritten during the copy are skipped, not blocked on.
  [[nodiscard]] std::vector<SlowRequest> snapshot() const {
    std::vector<SlowRequest> out;
    out.reserve(kCapacity);
    for (const Slot& s : slots_) {
      const std::uint64_t v1 = s.version.load(std::memory_order_acquire);
      if (v1 == 0 || (v1 & 1) != 0) continue;  // empty or mid-rewrite
      SlowRequest r;
      r.seq = s.seq.load(std::memory_order_relaxed);
      r.start_ns = s.start_ns.load(std::memory_order_relaxed);
      r.duration_ns = s.duration_ns.load(std::memory_order_relaxed);
      r.trace_id = s.trace_id.load(std::memory_order_relaxed);
      r.peer = s.peer.load(std::memory_order_relaxed);
      const std::uint64_t packed =
          s.packed.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.version.load(std::memory_order_relaxed) != v1) continue;
      r.batch_keys = static_cast<std::uint32_t>(packed >> 8);
      r.opcode = static_cast<std::uint8_t>(packed & 0xFF);
      r.seq -= 1;  // undo the nonzero bias
      out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const SlowRequest& a, const SlowRequest& b) {
                return a.seq < b.seq;
              });
    return out;
  }

  /// Requests captured over the ring's lifetime (including overwritten
  /// ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t pack(
      std::uint32_t batch_keys, std::uint8_t opcode) noexcept {
    return (static_cast<std::uint64_t>(batch_keys) << 8) | opcode;
  }

  struct Slot {
    std::atomic<std::uint64_t> version{0};  ///< seqlock: odd = rewriting
    std::atomic<std::uint64_t> seq{0};      ///< capture seq + 1 (0 = empty)
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> duration_ns{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> peer{0};
    std::atomic<std::uint64_t> packed{0};   ///< batch_keys << 8 | opcode
  };

  std::atomic<std::uint64_t> next_{0};
  std::array<Slot, kCapacity> slots_{};
};

/// Renders a packed IPv4 peer ("a.b.c.d:port"); "-" for 0/unknown.
[[nodiscard]] inline std::string format_peer(std::uint64_t peer) {
  if (peer == 0) return "-";
  const auto ip = static_cast<std::uint32_t>(peer >> 16);
  const auto port = static_cast<std::uint16_t>(peer & 0xFFFF);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF, port);
  return std::string(buf);
}

}  // namespace mpcbf::net
