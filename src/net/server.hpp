// mpcbfd — the multi-threaded TCP filter server.
//
// Architecture (docs/server.md has the operator view):
//
//   acceptor thread ──round-robin──▶ N worker event loops (poll(2))
//                                      │ per-connection read buffer
//                                      │ decode → dispatch → encode
//                                      ▼
//                              FilterBackend (type-erased, the
//                              FilterHandle idiom of bench_common.hpp)
//                                      │ shared_mutex: queries shared,
//                                      │ mutations exclusive
//                                      ▼
//                    Mpcbf / DurableMpcbf / ShardedMpcbf batch paths
//
// Request pipelining: a connection may send any number of frames without
// waiting; each worker owns its connections outright, so requests are
// decoded and served in arrival order and responses are appended to the
// connection's write buffer in that same order — ordering needs no
// sequence bookkeeping beyond the echoed request id.
//
// Batches decode to string_views into the connection's read buffer and
// feed the word-engine batch pipeline directly (no per-key allocation);
// scratch vectors are per-connection and reused across requests.
//
// Shutdown: stop() closes the listener, lets every worker finish the
// requests already buffered, flushes response bytes (bounded by
// Options::drain_timeout), then joins. Workers run on a util::ThreadPool
// whose stop() the server drives — which is why submit-after-stop had to
// become a defined error.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "metrics/health.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace mpcbf::net {

/// Type-erased filter backend — the serving-layer sibling of
/// bench_common.hpp's FilterHandle. Batch hooks receive key views into
/// the connection's read buffer and write one verdict/ok byte per key.
/// A null hook makes the server answer that opcode with kUnsupported.
struct FilterBackend {
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      contains_batch;
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      insert_batch;
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      erase_batch;
  std::function<StatsReply()> stats;
  /// Probes the filter's health (HealthProber-backed); the server fills
  /// in the `ready` bit itself.
  std::function<HealthReply()> health;
  /// Forces a durable snapshot; returns the journal watermark. Null for
  /// memory-only backends.
  std::function<std::uint64_t()> snapshot;
};

/// Wraps a concrete filter in a FilterBackend. Works with Mpcbf,
/// DurableMpcbf and ShardedMpcbf (members are probed, not required —
/// the publish_filter idiom). All request classes are serialized
/// through one shared_mutex owned by the wrapper: queries/stats/health
/// take it shared, mutations and snapshots exclusive, matching the
/// filters' "const queries are concurrent-safe, mutations are not"
/// contract.
template <typename F>
[[nodiscard]] FilterBackend make_backend(std::shared_ptr<F> f,
                                         std::size_t health_fpr_probes =
                                             512) {
  auto mu = std::make_shared<std::shared_mutex>();
  auto prober = std::make_shared<metrics::HealthProber>([&] {
    metrics::HealthProber::Config cfg;
    cfg.filter_label = "server";
    cfg.fpr_probes = health_fpr_probes;
    return cfg;
  }());
  FilterBackend b;
  b.contains_batch = [f, mu](std::span<const std::string_view> keys,
                             std::span<std::uint8_t> out) {
    std::shared_lock lock(*mu);
    f->contains_batch(keys, out);
  };
  b.insert_batch = [f, mu](std::span<const std::string_view> keys,
                           std::span<std::uint8_t> ok) {
    std::unique_lock lock(*mu);
    f->insert_batch(keys, ok);
  };
  b.erase_batch = [f, mu](std::span<const std::string_view> keys,
                          std::span<std::uint8_t> ok) {
    std::unique_lock lock(*mu);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ok[i] = f->erase(keys[i]) ? 1 : 0;
    }
  };
  b.stats = [f, mu]() {
    std::shared_lock lock(*mu);
    StatsReply s;
    s.elements = f->size();
    // DurableMpcbf exposes layout through its in-memory filter; probe
    // the inner filter when one exists, the wrapped object otherwise.
    const auto& t = [&]() -> const auto& {
      if constexpr (requires { f->filter(); }) {
        return f->filter();
      } else {
        return *f;
      }
    }();
    if constexpr (requires { t.memory_bits(); }) {
      s.memory_bits = t.memory_bits();
    }
    if constexpr (requires { t.k(); t.g(); }) {
      s.k = t.k();
      s.g = t.g();
    }
    if constexpr (requires { t.b1(); t.n_max(); }) {
      s.b1 = t.b1();
      s.n_max = t.n_max();
    }
    if constexpr (requires { t.stash_size(); }) {
      s.stash_entries = t.stash_size();
    }
    if constexpr (requires { t.overflow_events(); }) {
      s.overflow_events = t.overflow_events();
    }
    if constexpr (requires { t.underflow_events(); }) {
      s.underflow_events = t.underflow_events();
    }
    return s;
  };
  b.health = [f, mu, prober]() {
    std::shared_lock lock(*mu);
    const auto probe_target = [&]() -> const auto& {
      // DurableMpcbf is probed through its in-memory filter; everything
      // else is probed directly.
      if constexpr (requires { f->filter(); }) {
        return f->filter();
      } else {
        return *f;
      }
    }();
    const metrics::HealthSample s = prober->probe(probe_target);
    HealthReply r;
    r.severity = static_cast<std::uint8_t>(s.severity);
    r.saturation_score = s.saturation_score;
    r.level1_fill = s.level1_fill;
    r.measured_fpr = s.measured_fpr;
    r.fpr_drift = s.fpr_drift;
    r.elements = s.elements;
    return r;
  };
  if constexpr (requires { f->snapshot(); f->next_seq(); }) {
    b.snapshot = [f, mu]() {
      std::unique_lock lock(*mu);
      f->snapshot();
      return f->next_seq() - 1;
    };
  }
  return b;
}

class Server {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port; read back via port().
    std::uint16_t port = 0;
    /// Worker event loops (and ThreadPool threads). Each connection is
    /// pinned to one worker for its lifetime.
    std::size_t workers = 2;
    /// stop() flushes pending response bytes for at most this long.
    std::chrono::milliseconds drain_timeout{2000};
  };

  Server(FilterBackend backend, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns acceptor + workers. Throws NetError when
  /// the address is unusable.
  void start();

  /// Graceful shutdown: stop accepting, serve every request already
  /// received, flush responses, join all threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// The actually bound port (resolves port 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept;

  /// Requests served (all opcodes, error replies included).
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

 private:
  struct Connection;
  struct Worker;
  struct ServerMetrics;

  void acceptor_loop();
  void worker_loop(Worker& w);
  void service_connection(Worker& w, Connection& c, short revents);
  /// Decodes and serves every complete frame in the read buffer.
  /// Returns false when the connection must be closed.
  bool drain_frames(Connection& c);
  void serve_frame(Connection& c, const Frame& frame);
  void reply_error(Connection& c, const Frame& frame, ErrorCode code,
                   std::string_view message);
  /// Flushes the write buffer; returns false on a dead connection.
  bool flush_writes(Connection& c);

  FilterBackend backend_;
  Options options_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::thread acceptor_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ServerMetrics* metrics_ = nullptr;  // registry-owned, process lifetime
};

}  // namespace mpcbf::net
