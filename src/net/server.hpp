// mpcbfd — the multi-threaded TCP filter server.
//
// Architecture (docs/server.md has the operator view):
//
//   acceptor thread ──round-robin──▶ N worker event loops (poll(2))
//                                      │ per-connection read buffer
//                                      │ decode → dispatch → encode
//                                      ▼
//                              FilterBackend (type-erased, the
//                              FilterHandle idiom of bench_common.hpp)
//                                      │ shared_mutex: queries shared,
//                                      │ mutations exclusive
//                                      ▼
//                    Mpcbf / DurableMpcbf / ShardedMpcbf batch paths
//
// Request pipelining: a connection may send any number of frames without
// waiting; each worker owns its connections outright, so requests are
// decoded and served in arrival order and responses are appended to the
// connection's write buffer in that same order — ordering needs no
// sequence bookkeeping beyond the echoed request id.
//
// Batches decode to string_views into the connection's read buffer and
// feed the word-engine batch pipeline directly (no per-key allocation);
// scratch vectors are per-connection and reused across requests.
//
// Shutdown: stop() closes the listener, lets every worker finish the
// requests already buffered, flushes response bytes (bounded by
// Options::drain_timeout), then joins. Workers run on a util::ThreadPool
// whose stop() the server drives — which is why submit-after-stop had to
// become a defined error.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "metrics/health.hpp"
#include "metrics/registry.hpp"
#include "net/protocol.hpp"
#include "net/slow_ring.hpp"
#include "net/socket.hpp"

namespace mpcbf::net {

/// Type-erased filter backend — the serving-layer sibling of
/// bench_common.hpp's FilterHandle. Batch hooks receive key views into
/// the connection's read buffer and write one verdict/ok byte per key.
/// A null hook makes the server answer that opcode with kUnsupported.
struct FilterBackend {
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      contains_batch;
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      insert_batch;
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      erase_batch;
  std::function<StatsReply()> stats;
  /// Probes the filter's health (HealthProber-backed); the server fills
  /// in the `ready` bit itself.
  std::function<HealthReply()> health;
  /// Forces a durable snapshot; returns the journal watermark. Null for
  /// memory-only backends.
  std::function<std::uint64_t()> snapshot;
  /// Serves one REPLICATE request: appends the complete reply payload
  /// to the string, or returns a static error reason. Null for
  /// memory-only backends.
  std::function<const char*(const ReplicateRequest&, std::string&)>
      replicate;
  /// Serves one SNAPFETCH request (chunked consistent snapshot image).
  std::function<const char*(const SnapFetchRequest&, std::string&)>
      snap_fetch;
  /// Replication role + watermarks for REPLSTATUS.
  std::function<ReplStatusReply()> repl_status;
  /// Optional readiness veto ANDed into the HEALTH ready bit — a
  /// follower keeps it false until it has caught up to its primary.
  std::function<bool()> ready;
};

namespace detail {

/// Primary-side replication bookkeeping shared by the make_backend
/// hooks: the cached consistent snapshot image SNAPFETCH serves, and
/// the per-follower acked watermarks REPLICATE maintains.
struct ReplSource {
  std::mutex mu;
  std::string snap_image;
  std::uint64_t snap_watermark = 0;
  bool snap_valid = false;
  std::unordered_map<std::uint64_t, std::uint64_t> acked;  // follower→seq

  /// Updates the follower table and the fleet lag gauges; call with a
  /// fresh view of the journal's next sequence number.
  void note_follower(std::uint64_t follower_id, std::uint64_t acked_seq,
                     std::uint64_t next_seq) {
    std::lock_guard<std::mutex> lock(mu);
    acked[follower_id] = acked_seq;
    std::uint64_t min_acked = next_seq - 1;
    for (const auto& [id, seq] : acked) {
      min_acked = std::min(min_acked, seq);
    }
    auto& reg = metrics::Registry::global();
    reg.gauge("mpcbf_server_replication_followers",
              "Followers that have polled REPLICATE")
        .set(static_cast<double>(acked.size()));
    reg.gauge("mpcbf_server_replication_min_acked_seq",
              "Slowest follower's acked journal sequence")
        .set(static_cast<double>(min_acked));
    reg.gauge("mpcbf_server_replication_lag_records",
              "Journal records not yet acked by every follower")
        .set(static_cast<double>(next_seq - 1 - min_acked));
  }

  [[nodiscard]] ReplStatusReply status(std::uint64_t next_seq) {
    std::lock_guard<std::mutex> lock(mu);
    ReplStatusReply r;
    r.role = static_cast<std::uint8_t>(ReplRole::kPrimary);
    r.next_seq = next_seq;
    r.acked_seq = next_seq - 1;
    r.followers = acked.size();
    std::uint64_t min_acked = next_seq - 1;
    for (const auto& [id, seq] : acked) {
      min_acked = std::min(min_acked, seq);
    }
    r.min_acked_seq = min_acked;
    r.lag_records = next_seq - 1 - min_acked;
    r.caught_up = r.lag_records == 0 ? 1 : 0;
    return r;
  }
};

}  // namespace detail

/// Wraps a concrete filter in a FilterBackend. Works with Mpcbf,
/// DurableMpcbf and ShardedMpcbf (members are probed, not required —
/// the publish_filter idiom). All request classes are serialized
/// through one shared_mutex: queries/stats/health take it shared,
/// mutations and snapshots exclusive, matching the filters' "const
/// queries are concurrent-safe, mutations are not" contract. Pass the
/// mutex explicitly when another actor (a follower's Replicator)
/// mutates the filter outside the server's request path and must share
/// the same exclusion.
template <typename F>
[[nodiscard]] FilterBackend make_backend(
    std::shared_ptr<F> f, std::shared_ptr<std::shared_mutex> mu,
    std::size_t health_fpr_probes = 512) {
  auto prober = std::make_shared<metrics::HealthProber>([&] {
    metrics::HealthProber::Config cfg;
    cfg.filter_label = "server";
    cfg.fpr_probes = health_fpr_probes;
    return cfg;
  }());
  FilterBackend b;
  b.contains_batch = [f, mu](std::span<const std::string_view> keys,
                             std::span<std::uint8_t> out) {
    std::shared_lock lock(*mu);
    f->contains_batch(keys, out);
  };
  b.insert_batch = [f, mu](std::span<const std::string_view> keys,
                           std::span<std::uint8_t> ok) {
    std::unique_lock lock(*mu);
    f->insert_batch(keys, ok);
  };
  b.erase_batch = [f, mu](std::span<const std::string_view> keys,
                          std::span<std::uint8_t> ok) {
    std::unique_lock lock(*mu);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ok[i] = f->erase(keys[i]) ? 1 : 0;
    }
  };
  b.stats = [f, mu]() {
    std::shared_lock lock(*mu);
    StatsReply s;
    s.elements = f->size();
    // DurableMpcbf exposes layout through its in-memory filter; probe
    // the inner filter when one exists, the wrapped object otherwise.
    const auto& t = [&]() -> const auto& {
      if constexpr (requires { f->filter(); }) {
        return f->filter();
      } else {
        return *f;
      }
    }();
    if constexpr (requires { t.memory_bits(); }) {
      s.memory_bits = t.memory_bits();
    }
    if constexpr (requires { t.k(); t.g(); }) {
      s.k = t.k();
      s.g = t.g();
    }
    if constexpr (requires { t.b1(); t.n_max(); }) {
      s.b1 = t.b1();
      s.n_max = t.n_max();
    }
    if constexpr (requires { t.stash_size(); }) {
      s.stash_entries = t.stash_size();
    }
    if constexpr (requires { t.overflow_events(); }) {
      s.overflow_events = t.overflow_events();
    }
    if constexpr (requires { t.underflow_events(); }) {
      s.underflow_events = t.underflow_events();
    }
    return s;
  };
  b.health = [f, mu, prober]() {
    std::shared_lock lock(*mu);
    const auto& probe_target = [&]() -> const auto& {
      // DurableMpcbf is probed through its in-memory filter; everything
      // else is probed directly.
      if constexpr (requires { f->filter(); }) {
        return f->filter();
      } else {
        return *f;
      }
    }();
    const metrics::HealthSample s = prober->probe(probe_target);
    HealthReply r;
    r.severity = static_cast<std::uint8_t>(s.severity);
    r.saturation_score = s.saturation_score;
    r.level1_fill = s.level1_fill;
    r.measured_fpr = s.measured_fpr;
    r.fpr_drift = s.fpr_drift;
    r.elements = s.elements;
    return r;
  };
  if constexpr (requires { f->snapshot(); f->next_seq(); }) {
    b.snapshot = [f, mu]() {
      std::unique_lock lock(*mu);
      f->snapshot();
      return f->next_seq() - 1;
    };
  }
  // Durable backends (journal + serializable snapshot) can act as a
  // replication primary: REPLICATE streams journal records, SNAPFETCH
  // serves a cached consistent snapshot image, REPLSTATUS reports fleet
  // watermarks. Lock order: the filter mutex and the ReplSource mutex
  // are never held together in the replicate hook, and snap_fetch
  // acquires ReplSource → filter only, so there is no cycle.
  if constexpr (requires {
                  f->journal_records_from(std::uint64_t{0},
                                          std::uint32_t{0},
                                          std::uint64_t{0});
                  f->serialize_snapshot();
                }) {
    auto repl = std::make_shared<detail::ReplSource>();
    b.replicate = [f, mu, repl](const ReplicateRequest& req,
                                std::string& out) -> const char* {
      const std::uint32_t max_records =
          std::min(req.max_records != 0 ? req.max_records
                                        : kMaxReplicateRecords,
                   kMaxReplicateRecords);
      const std::uint64_t max_bytes = std::min<std::uint64_t>(
          req.max_bytes != 0 ? req.max_bytes : (1u << 20),
          kMaxPayload / 2);
      typename F::ReplicationBatch batch;
      {
        // Exclusive: journal_records_from may flush buffered appends.
        std::unique_lock lock(*mu);
        batch = f->journal_records_from(req.from_seq, max_records,
                                        max_bytes);
      }
      ReplicateInfo info;
      info.next_seq = batch.next_seq;
      info.base_seq = batch.base_seq;
      info.need_snapshot = req.from_seq < batch.base_seq ? 1 : 0;
      if (info.need_snapshot != 0) batch.records.clear();
      append_replicate_reply(out, info, batch.records);
      repl->note_follower(req.follower_id,
                          req.from_seq > 0 ? req.from_seq - 1 : 0,
                          batch.next_seq);
      return nullptr;
    };
    b.snap_fetch = [f, mu, repl](const SnapFetchRequest& req,
                                 std::string& out) -> const char* {
      const std::uint32_t max_bytes = std::min(
          req.max_bytes != 0 ? req.max_bytes : (1u << 20), kMaxSnapChunk);
      std::lock_guard<std::mutex> guard(repl->mu);
      if (req.offset == 0 || !repl->snap_valid) {
        if (req.offset != 0) {
          // A mid-fetch request with no cached image cannot be served
          // consistently; the follower restarts from offset 0.
          return "snapfetch: no cached image for nonzero offset";
        }
        std::unique_lock lock(*mu);
        auto [image, watermark] = f->serialize_snapshot();
        repl->snap_image = std::move(image);
        repl->snap_watermark = watermark;
        repl->snap_valid = true;
      }
      if (req.offset > repl->snap_image.size()) {
        return "snapfetch: offset beyond image";
      }
      SnapFetchInfo info;
      info.watermark = repl->snap_watermark;
      info.total_bytes = repl->snap_image.size();
      info.offset = req.offset;
      const std::size_t len = std::min<std::size_t>(
          max_bytes, repl->snap_image.size() - req.offset);
      append_snapfetch_reply(
          out, info,
          std::string_view(repl->snap_image).substr(req.offset, len));
      // The image cache exists only to keep one fetch consistent; drop
      // it once the follower has read past the end.
      if (req.offset + len >= repl->snap_image.size()) {
        repl->snap_valid = false;
        repl->snap_image.clear();
        repl->snap_image.shrink_to_fit();
      }
      return nullptr;
    };
    b.repl_status = [f, mu, repl]() {
      std::uint64_t next_seq = 1;
      {
        std::shared_lock lock(*mu);
        next_seq = f->next_seq();
      }
      return repl->status(next_seq);
    };
  }
  return b;
}

template <typename F>
[[nodiscard]] FilterBackend make_backend(std::shared_ptr<F> f,
                                         std::size_t health_fpr_probes =
                                             512) {
  return make_backend(std::move(f),
                      std::make_shared<std::shared_mutex>(),
                      health_fpr_probes);
}

class Server {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port; read back via port().
    std::uint16_t port = 0;
    /// Worker event loops (and ThreadPool threads). Each connection is
    /// pinned to one worker for its lifetime.
    std::size_t workers = 2;
    /// stop() flushes pending response bytes for at most this long.
    std::chrono::milliseconds drain_timeout{2000};
    /// A connection whose read buffer has held a partial frame for
    /// longer than this is closed (slow-loris defense) and counted in
    /// mpcbf_server_timeouts_total. 0 disables the sweep.
    std::chrono::milliseconds frame_timeout{30000};
    /// Requests served slower than this are captured in the
    /// slow-request ring (slow_ring()) and logged, rate-limited, with
    /// their trace id. Negative disables capture; 0 captures every
    /// request (tests, fine-grained debugging).
    std::chrono::microseconds slow_request_threshold{-1};
  };

  Server(FilterBackend backend, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns acceptor + workers. Throws NetError when
  /// the address is unusable.
  void start();

  /// Graceful shutdown: stop accepting, serve every request already
  /// received, flush responses, join all threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// The actually bound port (resolves port 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept;

  /// Requests served (all opcodes, error replies included).
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

  /// The slow-request ring /tracez renders. Populated only when
  /// Options::slow_request_threshold is >= 0.
  [[nodiscard]] const SlowRequestRing& slow_ring() const noexcept {
    return slow_ring_;
  }

 private:
  struct Connection;
  struct Worker;
  struct ServerMetrics;

  void acceptor_loop();
  void worker_loop(Worker& w);
  void service_connection(Worker& w, Connection& c, short revents);
  /// Decodes and serves every complete frame in the read buffer.
  /// Returns false when the connection must be closed.
  bool drain_frames(Connection& c);
  void serve_frame(Connection& c, const Frame& frame);
  /// Sequenced-mutation path: dedups on (session_id, op_seq), replaying
  /// the cached reply for retries. Returns true when it fully handled
  /// the frame (reply already appended).
  bool serve_sequenced(Connection& c, const Frame& frame, Opcode op);
  void reply_error(Connection& c, const Frame& frame, ErrorCode code,
                   std::string_view message);
  /// Flushes the write buffer; returns false on a dead connection.
  bool flush_writes(Connection& c);
  /// Closes connections stuck mid-frame past Options::frame_timeout.
  void sweep_stalled(Worker& w);

  FilterBackend backend_;
  Options options_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::thread acceptor_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ServerMetrics* metrics_ = nullptr;  // registry-owned, process lifetime
  SlowRequestRing slow_ring_;

  // Sequenced-mutation dedup: one entry per client session, holding the
  // last (op_seq, reply) so a failover retry replays instead of
  // re-applying. Shared across workers — a retried session typically
  // arrives on a brand-new connection.
  struct DedupEntry {
    std::uint64_t op_seq = 0;
    std::uint8_t opcode = 0;
    std::string reply;
  };
  static constexpr std::size_t kMaxDedupSessions = 4096;
  std::mutex dedup_mu_;
  std::unordered_map<std::uint64_t, DedupEntry> dedup_;
};

}  // namespace mpcbf::net
