// mpcbfd — the multi-threaded TCP filter server.
//
// Two ownership models share one wire protocol (docs/server.md has the
// operator view):
//
// Flat (`--cores 1`, the bisectable baseline): every worker serves every
// request against one FilterBackend whose hooks serialize through a
// shared_mutex — queries shared, mutations exclusive.
//
//   acceptor ──round-robin──▶ N worker event loops (epoll)
//                               │ decode → dispatch → encode
//                               ▼
//                       FilterBackend (type-erased)
//                               │ shared_mutex
//                               ▼
//             Mpcbf / DurableMpcbf / ShardedMpcbf batch paths
//
// Shared-nothing (`--cores N`): the key space is partitioned across N
// shards, each owned outright by one worker thread — its filter words,
// WAL segment, health prober and shard metrics are touched by that
// thread only, so the data path holds zero shared locks. Routing
// happens at decode time (protocol.hpp::shard_of): a parsed batch is
// split into per-shard sub-batches; keys owned by the decoding worker
// are served in place, the rest travel to their owners over lossless
// SPSC rings (spsc_ring.hpp) and the completions ride the reverse
// rings, eventfd-woken. A per-connection reply pipeline reassembles
// responses in request order, so the wire protocol is byte-identical to
// the flat server.
//
//   acceptor ──round-robin──▶ N worker event loops (epoll)
//                               │ decode → shard split
//                  ┌────────────┼─ SPSC work/completion rings ─┐
//                  ▼            ▼                              ▼
//             ShardBackend 0  ShardBackend 1  …  ShardBackend N-1
//             (worker 0 only) (worker 1 only)    (worker N-1 only)
//
// Request pipelining: a connection may send any number of frames without
// waiting; responses are emitted in arrival order (flat mode appends
// directly; sharded mode orders completions through the reply pipeline)
// — ordering needs no sequence bookkeeping beyond the echoed request id.
//
// Batches decode to string_views into the connection's read buffer and
// feed the word-engine batch pipeline directly (no per-key allocation on
// the flat path or the sharded all-local fast path; a cross-shard
// scatter copies the key bytes once into the request's own storage,
// because the read buffer may be compacted while sub-batches are still
// in flight).
//
// Shutdown: stop() closes the listener, lets every worker finish the
// requests already buffered, flushes response bytes (bounded by
// Options::drain_timeout), then joins. Sharded workers additionally
// keep serving ring work for their peers until every origin has
// finished, so no in-flight sub-batch is dropped, and flush their WAL
// segment before exiting; stop() then writes the per-shard snapshots +
// manifest through the ShardSet hooks.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "metrics/health.hpp"
#include "metrics/registry.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "net/slow_ring.hpp"
#include "net/socket.hpp"
#include "net/spsc_ring.hpp"

namespace mpcbf::net {

class NamespaceRegistry;

/// Type-erased filter backend — the serving-layer sibling of
/// bench_common.hpp's FilterHandle. Batch hooks receive key views into
/// the connection's read buffer and write one verdict/ok byte per key.
/// A null hook makes the server answer that opcode with kUnsupported.
struct FilterBackend {
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      contains_batch;
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      insert_batch;
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      erase_batch;
  /// EST_COUNT: per-key min-counter frequency estimate. Null when the
  /// wrapped filter has no count() (plain Bloom semantics).
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint32_t>)>
      est_count;
  /// Pre-insert quota gate: given the incoming batch size, returns a
  /// static error reason when admitting it would breach the namespace's
  /// key quota, nullptr to admit. Checked before insert_batch so a
  /// quota breach is a clean wire-level rejection (kQuotaExceeded), not
  /// a half-applied batch. Null = no quota (the default backend).
  std::function<const char*(std::size_t incoming_keys)> admit;
  std::function<StatsReply()> stats;
  /// Probes the filter's health (HealthProber-backed); the server fills
  /// in the `ready` bit itself.
  std::function<HealthReply()> health;
  /// Forces a durable snapshot; returns the journal watermark. Null for
  /// memory-only backends.
  std::function<std::uint64_t()> snapshot;
  /// Serves one REPLICATE request: appends the complete reply payload
  /// to the string, or returns a static error reason. Null for
  /// memory-only backends.
  std::function<const char*(const ReplicateRequest&, std::string&)>
      replicate;
  /// Serves one SNAPFETCH request (chunked consistent snapshot image).
  std::function<const char*(const SnapFetchRequest&, std::string&)>
      snap_fetch;
  /// Replication role + watermarks for REPLSTATUS.
  std::function<ReplStatusReply()> repl_status;
  /// Optional readiness veto ANDed into the HEALTH ready bit — a
  /// follower keeps it false until it has caught up to its primary.
  std::function<bool()> ready;
};

namespace detail {

/// Layout/usage stats probed off a concrete filter (members are probed,
/// not required — the publish_filter idiom). Shared by the flat and
/// per-shard backend factories.
template <typename F>
[[nodiscard]] StatsReply probe_stats(const F& f) {
  StatsReply s;
  s.elements = f.size();
  // DurableMpcbf exposes layout through its in-memory filter; probe
  // the inner filter when one exists, the wrapped object otherwise.
  const auto& t = [&]() -> const auto& {
    if constexpr (requires { f.filter(); }) {
      return f.filter();
    } else {
      return f;
    }
  }();
  if constexpr (requires { t.memory_bits(); }) {
    s.memory_bits = t.memory_bits();
  }
  if constexpr (requires { t.k(); t.g(); }) {
    s.k = t.k();
    s.g = t.g();
  }
  if constexpr (requires { t.b1(); t.n_max(); }) {
    s.b1 = t.b1();
    s.n_max = t.n_max();
  }
  if constexpr (requires { t.stash_size(); }) {
    s.stash_entries = t.stash_size();
  }
  if constexpr (requires { t.overflow_events(); }) {
    s.overflow_events = t.overflow_events();
  }
  if constexpr (requires { t.underflow_events(); }) {
    s.underflow_events = t.underflow_events();
  }
  return s;
}

/// Health probe off a concrete filter via a HealthProber. The caller
/// owns filling the `ready` bit.
template <typename F>
[[nodiscard]] HealthReply probe_health(metrics::HealthProber& prober,
                                       const F& f) {
  const auto& probe_target = [&]() -> const auto& {
    // DurableMpcbf is probed through its in-memory filter; everything
    // else is probed directly.
    if constexpr (requires { f.filter(); }) {
      return f.filter();
    } else {
      return f;
    }
  }();
  const metrics::HealthSample s = prober.probe(probe_target);
  HealthReply r;
  r.severity = static_cast<std::uint8_t>(s.severity);
  r.saturation_score = s.saturation_score;
  r.level1_fill = s.level1_fill;
  r.measured_fpr = s.measured_fpr;
  r.fpr_drift = s.fpr_drift;
  r.elements = s.elements;
  return r;
}

/// Primary-side replication bookkeeping shared by the make_backend
/// hooks: the cached consistent snapshot image SNAPFETCH serves, and
/// the per-follower acked watermarks REPLICATE maintains.
struct ReplSource {
  std::mutex mu;
  std::string snap_image;
  std::uint64_t snap_watermark = 0;
  bool snap_valid = false;
  std::unordered_map<std::uint64_t, std::uint64_t> acked;  // follower→seq

  /// Updates the follower table and the fleet lag gauges; call with a
  /// fresh view of the journal's next sequence number.
  void note_follower(std::uint64_t follower_id, std::uint64_t acked_seq,
                     std::uint64_t next_seq) {
    std::lock_guard<std::mutex> lock(mu);
    acked[follower_id] = acked_seq;
    std::uint64_t min_acked = next_seq - 1;
    for (const auto& [id, seq] : acked) {
      min_acked = std::min(min_acked, seq);
    }
    auto& reg = metrics::Registry::global();
    reg.gauge("mpcbf_server_replication_followers",
              "Followers that have polled REPLICATE")
        .set(static_cast<double>(acked.size()));
    reg.gauge("mpcbf_server_replication_min_acked_seq",
              "Slowest follower's acked journal sequence")
        .set(static_cast<double>(min_acked));
    reg.gauge("mpcbf_server_replication_lag_records",
              "Journal records not yet acked by every follower")
        .set(static_cast<double>(next_seq - 1 - min_acked));
  }

  [[nodiscard]] ReplStatusReply status(std::uint64_t next_seq) {
    std::lock_guard<std::mutex> lock(mu);
    ReplStatusReply r;
    r.role = static_cast<std::uint8_t>(ReplRole::kPrimary);
    r.next_seq = next_seq;
    r.acked_seq = next_seq - 1;
    r.followers = acked.size();
    std::uint64_t min_acked = next_seq - 1;
    for (const auto& [id, seq] : acked) {
      min_acked = std::min(min_acked, seq);
    }
    r.min_acked_seq = min_acked;
    r.lag_records = next_seq - 1 - min_acked;
    r.caught_up = r.lag_records == 0 ? 1 : 0;
    return r;
  }
};

}  // namespace detail

/// Wraps a concrete filter in a FilterBackend. Works with Mpcbf,
/// DurableMpcbf and ShardedMpcbf (members are probed, not required —
/// the publish_filter idiom). All request classes are serialized
/// through one shared_mutex: queries/stats/health take it shared,
/// mutations and snapshots exclusive, matching the filters' "const
/// queries are concurrent-safe, mutations are not" contract. Pass the
/// mutex explicitly when another actor (a follower's Replicator)
/// mutates the filter outside the server's request path and must share
/// the same exclusion.
template <typename F>
[[nodiscard]] FilterBackend make_backend(
    std::shared_ptr<F> f, std::shared_ptr<std::shared_mutex> mu,
    std::size_t health_fpr_probes = 512,
    std::string filter_label = "server") {
  auto prober = std::make_shared<metrics::HealthProber>([&] {
    metrics::HealthProber::Config cfg;
    cfg.filter_label = std::move(filter_label);
    cfg.fpr_probes = health_fpr_probes;
    return cfg;
  }());
  FilterBackend b;
  b.contains_batch = [f, mu](std::span<const std::string_view> keys,
                             std::span<std::uint8_t> out) {
    std::shared_lock lock(*mu);
    f->contains_batch(keys, out);
  };
  b.insert_batch = [f, mu](std::span<const std::string_view> keys,
                           std::span<std::uint8_t> ok) {
    std::unique_lock lock(*mu);
    f->insert_batch(keys, ok);
  };
  b.erase_batch = [f, mu](std::span<const std::string_view> keys,
                          std::span<std::uint8_t> ok) {
    std::unique_lock lock(*mu);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ok[i] = f->erase(keys[i]) ? 1 : 0;
    }
  };
  if constexpr (requires {
                  { f->count(std::string_view{}) }
                  -> std::convertible_to<std::uint32_t>;
                }) {
    b.est_count = [f, mu](std::span<const std::string_view> keys,
                          std::span<std::uint32_t> out) {
      std::shared_lock lock(*mu);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        out[i] = f->count(keys[i]);
      }
    };
  }
  b.stats = [f, mu]() {
    std::shared_lock lock(*mu);
    return detail::probe_stats(*f);
  };
  b.health = [f, mu, prober]() {
    std::shared_lock lock(*mu);
    return detail::probe_health(*prober, *f);
  };
  if constexpr (requires { f->snapshot(); f->next_seq(); }) {
    b.snapshot = [f, mu]() {
      std::unique_lock lock(*mu);
      f->snapshot();
      return f->next_seq() - 1;
    };
  }
  // Durable backends (journal + serializable snapshot) can act as a
  // replication primary: REPLICATE streams journal records, SNAPFETCH
  // serves a cached consistent snapshot image, REPLSTATUS reports fleet
  // watermarks. Lock order: the filter mutex and the ReplSource mutex
  // are never held together in the replicate hook, and snap_fetch
  // acquires ReplSource → filter only, so there is no cycle.
  if constexpr (requires {
                  f->journal_records_from(std::uint64_t{0},
                                          std::uint32_t{0},
                                          std::uint64_t{0});
                  f->serialize_snapshot();
                }) {
    auto repl = std::make_shared<detail::ReplSource>();
    b.replicate = [f, mu, repl](const ReplicateRequest& req,
                                std::string& out) -> const char* {
      const std::uint32_t max_records =
          std::min(req.max_records != 0 ? req.max_records
                                        : kMaxReplicateRecords,
                   kMaxReplicateRecords);
      const std::uint64_t max_bytes = std::min<std::uint64_t>(
          req.max_bytes != 0 ? req.max_bytes : (1u << 20),
          kMaxPayload / 2);
      typename F::ReplicationBatch batch;
      {
        // Exclusive: journal_records_from may flush buffered appends.
        std::unique_lock lock(*mu);
        batch = f->journal_records_from(req.from_seq, max_records,
                                        max_bytes);
      }
      ReplicateInfo info;
      info.next_seq = batch.next_seq;
      info.base_seq = batch.base_seq;
      info.need_snapshot = req.from_seq < batch.base_seq ? 1 : 0;
      if (info.need_snapshot != 0) batch.records.clear();
      append_replicate_reply(out, info, batch.records);
      repl->note_follower(req.follower_id,
                          req.from_seq > 0 ? req.from_seq - 1 : 0,
                          batch.next_seq);
      return nullptr;
    };
    b.snap_fetch = [f, mu, repl](const SnapFetchRequest& req,
                                 std::string& out) -> const char* {
      const std::uint32_t max_bytes = std::min(
          req.max_bytes != 0 ? req.max_bytes : (1u << 20), kMaxSnapChunk);
      std::lock_guard<std::mutex> guard(repl->mu);
      if (req.offset == 0 || !repl->snap_valid) {
        if (req.offset != 0) {
          // A mid-fetch request with no cached image cannot be served
          // consistently; the follower restarts from offset 0.
          return "snapfetch: no cached image for nonzero offset";
        }
        std::unique_lock lock(*mu);
        auto [image, watermark] = f->serialize_snapshot();
        repl->snap_image = std::move(image);
        repl->snap_watermark = watermark;
        repl->snap_valid = true;
      }
      if (req.offset > repl->snap_image.size()) {
        return "snapfetch: offset beyond image";
      }
      SnapFetchInfo info;
      info.watermark = repl->snap_watermark;
      info.total_bytes = repl->snap_image.size();
      info.offset = req.offset;
      const std::size_t len = std::min<std::size_t>(
          max_bytes, repl->snap_image.size() - req.offset);
      append_snapfetch_reply(
          out, info,
          std::string_view(repl->snap_image).substr(req.offset, len));
      // The image cache exists only to keep one fetch consistent; drop
      // it once the follower has read past the end.
      if (req.offset + len >= repl->snap_image.size()) {
        repl->snap_valid = false;
        repl->snap_image.clear();
        repl->snap_image.shrink_to_fit();
      }
      return nullptr;
    };
    b.repl_status = [f, mu, repl]() {
      std::uint64_t next_seq = 1;
      {
        std::shared_lock lock(*mu);
        next_seq = f->next_seq();
      }
      return repl->status(next_seq);
    };
  }
  return b;
}

template <typename F>
[[nodiscard]] FilterBackend make_backend(std::shared_ptr<F> f,
                                         std::size_t health_fpr_probes =
                                             512) {
  return make_backend(std::move(f),
                      std::make_shared<std::shared_mutex>(),
                      health_fpr_probes);
}

/// Sharded-ownership variant of FilterBackend: one per key-space shard,
/// every hook invoked exclusively by the worker thread that owns the
/// shard — which is why, unlike make_backend's hooks, none of them
/// takes a lock. Null hooks disable the corresponding opcode (the
/// server answers kUnsupported), mirroring FilterBackend semantics.
struct ShardBackend {
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      contains_batch;
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      insert_batch;
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint8_t>)>
      erase_batch;
  /// EST_COUNT against this shard's keys (min-counter estimate).
  std::function<void(std::span<const std::string_view>,
                     std::span<std::uint32_t>)>
      est_count;
  std::function<StatsReply()> stats;
  std::function<HealthReply()> health;
  /// Durable snapshot of this shard; returns its journal watermark
  /// (highest global seq captured). Null for memory-only shards.
  std::function<std::uint64_t()> snapshot;
  /// Forces this shard's WAL group-commit buffer to stable storage
  /// (drain path). Null for memory-only shards.
  std::function<void()> wal_flush;
  /// One page of this shard's journal tail from `from_seq` — the
  /// per-shard half of the merged replication stream.
  struct Tail {
    std::vector<io::JournalRecord> records;
    std::uint64_t next_seq = 1;
    std::uint64_t base_seq = 1;
  };
  std::function<Tail(std::uint64_t from_seq, std::uint32_t max_records,
                     std::uint64_t max_bytes)>
      journal_tail;
  /// Owner-thread housekeeping (elastic compaction step); invoked by
  /// the owning worker between request batches, never concurrently
  /// with the data hooks.
  std::function<void()> maintain;
};

/// The sharded server's backend: per-shard hooks plus the cross-shard
/// glue that cannot live in any single shard.
struct ShardSet {
  std::vector<ShardBackend> shards;
  /// Last globally assigned journal sequence number. Shared with every
  /// shard's DurableMpcbf seq_source; the server reads it for
  /// REPLSTATUS and the merged replication stream. Null for
  /// memory-only shard sets.
  std::shared_ptr<std::atomic<std::uint64_t>> seq_counter;
  /// Writes the merged final snapshot artifacts after all shards have
  /// snapshotted (one watermark per shard, in shard order): the
  /// shards.manifest file tying the per-shard snapshots into one
  /// recovery unit, plus a best-effort single-file merged filter.
  /// Called by at most one thread at a time.
  std::function<void(std::span<const std::uint64_t>)> manifest;
};

/// Wraps one concrete filter shard in a ShardBackend. No mutex
/// parameter on purpose: the owning worker thread is the only caller.
template <typename F>
[[nodiscard]] ShardBackend make_shard_backend(
    std::shared_ptr<F> f, std::size_t shard_index,
    std::size_t health_fpr_probes = 512) {
  auto prober = std::make_shared<metrics::HealthProber>([&] {
    metrics::HealthProber::Config cfg;
    cfg.filter_label = "shard-" + std::to_string(shard_index);
    cfg.fpr_probes = health_fpr_probes;
    return cfg;
  }());
  ShardBackend b;
  b.contains_batch = [f](std::span<const std::string_view> keys,
                         std::span<std::uint8_t> out) {
    f->contains_batch(keys, out);
  };
  b.insert_batch = [f](std::span<const std::string_view> keys,
                       std::span<std::uint8_t> ok) {
    f->insert_batch(keys, ok);
  };
  b.erase_batch = [f](std::span<const std::string_view> keys,
                      std::span<std::uint8_t> ok) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ok[i] = f->erase(keys[i]) ? 1 : 0;
    }
  };
  if constexpr (requires {
                  { f->count(std::string_view{}) }
                  -> std::convertible_to<std::uint32_t>;
                }) {
    b.est_count = [f](std::span<const std::string_view> keys,
                      std::span<std::uint32_t> out) {
      for (std::size_t i = 0; i < keys.size(); ++i) {
        out[i] = f->count(keys[i]);
      }
    };
  }
  b.stats = [f]() { return detail::probe_stats(*f); };
  b.health = [f, prober]() { return detail::probe_health(*prober, *f); };
  if constexpr (requires { f->snapshot(); f->next_seq(); }) {
    b.snapshot = [f]() {
      f->snapshot();
      return f->next_seq() - 1;
    };
  }
  if constexpr (requires { f->flush(); }) {
    b.wal_flush = [f]() { f->flush(); };
  }
  if constexpr (requires {
                  f->journal_records_from(std::uint64_t{0},
                                          std::uint32_t{0},
                                          std::uint64_t{0});
                }) {
    b.journal_tail = [f](std::uint64_t from_seq, std::uint32_t max_records,
                         std::uint64_t max_bytes) {
      auto batch = f->journal_records_from(from_seq, max_records, max_bytes);
      ShardBackend::Tail t;
      t.records = std::move(batch.records);
      t.next_seq = batch.next_seq;
      t.base_seq = batch.base_seq;
      return t;
    };
  }
  if constexpr (requires { f->compact_once(); }) {
    b.maintain = [f]() { (void)f->compact_once(); };
  }
  return b;
}

class Server {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 = kernel-assigned ephemeral port; read back via port().
    std::uint16_t port = 0;
    /// Worker event loops (and ThreadPool threads). Each connection is
    /// pinned to one worker for its lifetime.
    std::size_t workers = 2;
    /// stop() flushes pending response bytes for at most this long.
    std::chrono::milliseconds drain_timeout{2000};
    /// A connection whose read buffer has held a partial frame for
    /// longer than this is closed (slow-loris defense) and counted in
    /// mpcbf_server_timeouts_total. 0 disables the sweep.
    std::chrono::milliseconds frame_timeout{30000};
    /// Requests served slower than this are captured in the
    /// slow-request ring (slow_ring()) and logged, rate-limited, with
    /// their trace id. Negative disables capture; 0 captures every
    /// request (tests, fine-grained debugging).
    std::chrono::microseconds slow_request_threshold{-1};
  };

  Server(FilterBackend backend, Options options);
  /// Shared-nothing server: one worker per shard, each owning its
  /// ShardBackend outright. Options::workers is overridden to the shard
  /// count (thread-per-core is the whole point).
  Server(ShardSet shards, Options options);
  ~Server();

  /// Attaches the multi-tenant namespace registry (flat mode only; the
  /// sharded server answers namespaced frames with kUnsupported). Call
  /// before start(). Namespaced data frames route to the named
  /// namespace's backend; NSCREATE/NSDROP/NSLIST/NSTICK administer the
  /// registry over the wire.
  void set_namespace_registry(std::shared_ptr<NamespaceRegistry> registry);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns acceptor + workers. Throws NetError when
  /// the address is unusable.
  void start();

  /// Graceful shutdown: stop accepting, serve every request already
  /// received, flush responses, join all threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// The actually bound port (resolves port 0). Valid after start().
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept;

  /// Requests served (all opcodes, error replies included).
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

  /// The slow-request ring /tracez renders. Populated only when
  /// Options::slow_request_threshold is >= 0.
  [[nodiscard]] const SlowRequestRing& slow_ring() const noexcept {
    return slow_ring_;
  }

  /// Key-space shards served (1 for the flat backend).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return sharded_ ? shards_.shards.size() : 1;
  }

  /// Event-loop iterations across the acceptor and every worker. An
  /// idle server's count stays flat — the no-periodic-wakeups test
  /// asserts exactly that.
  [[nodiscard]] std::uint64_t loop_iterations() const noexcept;

 private:
  struct Connection;
  struct Worker;
  struct ServerMetrics;
  struct PendingReply;
  struct SubBatch;
  /// One slot in a cross-worker SPSC ring: a sub-batch travelling to
  /// its owner (work) or back to its origin (completion).
  struct RingMsg {
    SubBatch* sub = nullptr;
    bool completion = false;
  };

  void acceptor_loop();
  void worker_loop(Worker& w);
  void service_connection(Worker& w, Connection& c, bool readable,
                          bool broken);
  /// Decodes and serves every complete frame in the read buffer.
  /// Returns false when the connection must be closed.
  bool drain_frames(Worker& w, Connection& c);
  void serve_frame(Worker& w, Connection& c, const Frame& frame);
  /// Sequenced-mutation path: dedups on (session_id, op_seq), replaying
  /// the cached reply for retries. Returns true when it fully handled
  /// the frame (reply already appended). `be` is the route target — the
  /// default backend or a namespace's.
  bool serve_sequenced(Worker& w, Connection& c, const Frame& frame,
                       Opcode op, const FilterBackend& be);
  void reply_error(Worker& w, Connection& c, const Frame& frame,
                   ErrorCode code, std::string_view message);
  /// Flushes the write buffer; returns false on a dead connection.
  bool flush_writes(Connection& c);
  /// Re-arms EPOLLOUT to match pending write bytes.
  void update_write_interest(Worker& w, Connection& c);
  /// Closes connections stuck mid-frame past Options::frame_timeout.
  void sweep_stalled(Worker& w);

  // --- sharded mode ------------------------------------------------------
  void serve_frame_sharded(Worker& w, Connection& c, const Frame& frame);
  /// Runs one sub-batch against the worker's own shard.
  void execute_sub(Worker& w, SubBatch& sub);
  /// Sends `msg` to worker `dest`'s inbound ring (producer side = `w`),
  /// parking it on the overflow queue when the ring is full.
  void send_to(Worker& w, std::size_t dest, RingMsg msg);
  /// Pops and handles every pending ring message; returns work done.
  bool drain_rings(Worker& w);
  /// Called on the origin worker when a sub-batch completes; finalizes
  /// the job once the last shard reports in.
  void complete_sub(Worker& w, SubBatch& sub);
  /// Merges sub results into the reply payload and marks the job done.
  void finalize_job(Worker& w, PendingReply& job);
  /// Emits every leading completed reply of the connection's pipeline.
  void pump_replies(Worker& w, Connection& c);
  /// Enqueues an already-complete reply, preserving pipeline order.
  void complete_now(Worker& w, Connection& c, std::uint8_t opcode,
                    std::uint8_t flags, std::uint64_t request_id,
                    std::string payload);
  /// Records served-request metrics at job completion time.
  void note_served(PendingReply& job);

  FilterBackend backend_;
  std::shared_ptr<NamespaceRegistry> registry_;
  ShardSet shards_;
  bool sharded_ = false;
  Options options_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  /// Sharded drain: origins that have finished producing new work.
  std::atomic<std::size_t> drained_origins_{0};
  std::thread acceptor_;
  std::unique_ptr<EventLoop> accept_loop_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// rings_[dest][src]: messages from worker src to worker dest.
  std::vector<std::vector<std::unique_ptr<SpscRing<RingMsg>>>> rings_;
  ServerMetrics* metrics_ = nullptr;  // registry-owned, process lifetime
  SlowRequestRing slow_ring_;
  detail::ReplSource repl_source_;  ///< sharded-primary follower table

  // Sequenced-mutation dedup: one entry per client session, holding the
  // last (op_seq, reply) so a failover retry replays instead of
  // re-applying. Shared across workers — a retried session typically
  // arrives on a brand-new connection.
  struct DedupEntry {
    std::uint64_t op_seq = 0;
    std::uint8_t opcode = 0;
    /// Sharded mode: the op is scattered and its reply not yet cached.
    /// A concurrent retry is answered with a retryable error instead of
    /// a second apply.
    bool inflight = false;
    std::string reply;
  };
  static constexpr std::size_t kMaxDedupSessions = 4096;
  std::mutex dedup_mu_;
  std::unordered_map<std::uint64_t, DedupEntry> dedup_;
};

}  // namespace mpcbf::net
