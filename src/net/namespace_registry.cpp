#include "net/namespace_registry.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/log.hpp"
#include "core/decaying_mpcbf.hpp"
#include "core/durable_mpcbf.hpp"
#include "core/mpcbf.hpp"
#include "metrics/registry.hpp"

namespace mpcbf::net {

namespace {

[[nodiscard]] const char* kind_name(NsKind kind) noexcept {
  switch (kind) {
    case NsKind::kMemory: return "memory";
    case NsKind::kDurable: return "durable";
    case NsKind::kDecay: return "decay";
    case NsKind::kDurableDecay: return "durable-decay";
  }
  return "?";
}

[[nodiscard]] core::MpcbfConfig generation_config(const NsConfigWire& cfg) {
  core::MpcbfConfig c;
  c.memory_bits = cfg.memory_bits;
  c.k = cfg.k;
  c.g = cfg.g;
  // The eq.-(11) planner needs a cardinality; default to the same
  // bits-per-element heuristic mpcbf_tool's serve path uses.
  c.expected_n =
      cfg.expected_n != 0 ? cfg.expected_n : std::max<std::uint64_t>(
                                                 cfg.memory_bits / 16, 1);
  return c;
}

[[nodiscard]] std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// One registered namespace. The backend (and the closures) keep the
// concrete filter alive via shared_ptr, so an Entry released by drop()
// while a request is in flight dies only after that request finishes.
struct NamespaceRegistry::Entry {
  std::string name;
  NsConfigWire cfg{};
  NsKind kind = NsKind::kMemory;
  unsigned generations = 0;  ///< decay kinds only; 0 otherwise
  std::shared_ptr<FilterBackend> backend;
  // Introspection closures bound to the concrete filter + its mutex.
  std::function<std::uint64_t()> elements;
  std::function<std::uint64_t()> memory_bits;
  std::function<std::uint64_t()> ticks;    ///< null: kind has no decay
  std::function<std::uint64_t()> do_tick;  ///< null: kind has no decay
  std::shared_ptr<std::atomic<std::uint64_t>> quota_rejections =
      std::make_shared<std::atomic<std::uint64_t>>(0);
  /// steady_clock nanos of the last decay tick (automatic or NSTICK);
  /// atomic because the ticker and request threads both touch it.
  std::atomic<std::int64_t> last_tick_ns{steady_now_ns()};
};

NamespaceRegistry::NamespaceRegistry(Options options)
    : options_(std::move(options)) {
  if (options_.max_namespaces == 0 ||
      options_.max_namespaces > kMaxNamespaces) {
    options_.max_namespaces = kMaxNamespaces;
  }
  if (options_.start_ticker && options_.ticker_period.count() > 0) {
    ticker_ = std::thread([this] { ticker_loop(); });
  }
}

NamespaceRegistry::~NamespaceRegistry() {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

std::string NamespaceRegistry::create(std::string_view name,
                                      const NsConfigWire& cfg,
                                      ErrorCode& code) {
  code = ErrorCode::kBadRequest;
  if (!namespace_name_valid(name)) return "invalid namespace name";
  if (cfg.kind > static_cast<std::uint8_t>(NsKind::kDurableDecay)) {
    return "unknown backend kind";
  }
  const auto kind = static_cast<NsKind>(cfg.kind);
  const bool decaying =
      kind == NsKind::kDecay || kind == NsKind::kDurableDecay;
  const bool durable =
      kind == NsKind::kDurable || kind == NsKind::kDurableDecay;
  unsigned generations = 0;
  if (decaying) {
    generations = cfg.decay_generations != 0 ? cfg.decay_generations : 4;
    if (generations < 2) {
      return "decay_generations must be at least 2";
    }
  } else {
    if (cfg.decay_generations != 0) {
      return "decay_generations set on a non-decay kind";
    }
    if (cfg.tick_interval_ms != 0) {
      return "tick_interval_ms set on a non-decay kind";
    }
  }
  if (durable && options_.root_dir.empty()) {
    code = ErrorCode::kUnsupported;
    return "server has no durable root directory; durable namespace "
           "kinds need one";
  }
  if (cfg.memory_bits == 0) return "memory_bits must be positive";
  // The memory quota is enforced against the *configured* footprint:
  // filters are sized up front, so an oversized plan is rejected here,
  // cleanly, instead of ever allocating.
  const std::uint64_t footprint =
      cfg.memory_bits / 8 * (decaying ? generations : 1);
  if (cfg.max_memory_bytes != 0 && footprint > cfg.max_memory_bytes) {
    code = ErrorCode::kQuotaExceeded;
    return "configured filter footprint exceeds the namespace memory "
           "quota";
  }

  std::unique_lock lock(mu_);
  if (entries_.size() >= options_.max_namespaces) {
    code = ErrorCode::kQuotaExceeded;
    return "namespace count cap reached";
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const std::shared_ptr<Entry>& e, std::string_view n) {
        return e->name < n;
      });
  if (pos != entries_.end() && (*pos)->name == name) {
    code = ErrorCode::kNamespaceExists;
    return "namespace already exists";
  }

  auto entry = std::make_shared<Entry>();
  entry->name.assign(name);
  entry->cfg = cfg;
  entry->kind = kind;
  entry->generations = generations;
  auto mu = std::make_shared<std::shared_mutex>();
  const std::string label = "ns-" + entry->name;
  const std::filesystem::path dir =
      std::filesystem::path(options_.root_dir) / ("ns-" + entry->name);
  try {
    switch (kind) {
      case NsKind::kMemory: {
        auto f = std::make_shared<core::Mpcbf<64>>(generation_config(cfg));
        entry->backend = std::make_shared<FilterBackend>(make_backend(
            f, mu, options_.health_fpr_probes, label));
        entry->elements = [f, mu] {
          std::shared_lock l(*mu);
          return static_cast<std::uint64_t>(f->size());
        };
        entry->memory_bits = [f, mu] {
          std::shared_lock l(*mu);
          return static_cast<std::uint64_t>(f->memory_bits());
        };
        break;
      }
      case NsKind::kDurable: {
        auto f = std::make_shared<core::DurableMpcbf<64>>(
            dir, generation_config(cfg));
        entry->backend = std::make_shared<FilterBackend>(make_backend(
            f, mu, options_.health_fpr_probes, label));
        entry->elements = [f, mu] {
          std::shared_lock l(*mu);
          return static_cast<std::uint64_t>(f->size());
        };
        entry->memory_bits = [f, mu] {
          std::shared_lock l(*mu);
          return static_cast<std::uint64_t>(f->filter().memory_bits());
        };
        break;
      }
      case NsKind::kDecay: {
        core::DecayConfig dc;
        dc.generation = generation_config(cfg);
        dc.generations = generations;
        auto f = std::make_shared<core::DecayingMpcbf<64>>(dc);
        entry->backend = std::make_shared<FilterBackend>(make_backend(
            f, mu, options_.health_fpr_probes, label));
        entry->elements = [f, mu] {
          std::shared_lock l(*mu);
          return static_cast<std::uint64_t>(f->size());
        };
        entry->memory_bits = [f, mu] {
          std::shared_lock l(*mu);
          return static_cast<std::uint64_t>(f->memory_bits());
        };
        entry->ticks = [f, mu] {
          std::shared_lock l(*mu);
          return f->ticks();
        };
        entry->do_tick = [f, mu] {
          std::unique_lock l(*mu);
          return f->decay_tick();
        };
        break;
      }
      case NsKind::kDurableDecay: {
        core::DecayConfig dc;
        dc.generation = generation_config(cfg);
        dc.generations = generations;
        auto f = core::DurableDecayingMpcbf<64>::open_shared(dir, dc);
        entry->backend = std::make_shared<FilterBackend>(make_backend(
            f, mu, options_.health_fpr_probes, label));
        entry->elements = [f, mu] {
          std::shared_lock l(*mu);
          return static_cast<std::uint64_t>(f->size());
        };
        entry->memory_bits = [f, mu] {
          std::shared_lock l(*mu);
          return static_cast<std::uint64_t>(f->filter().memory_bits());
        };
        entry->ticks = [f, mu] {
          std::shared_lock l(*mu);
          return f->ticks();
        };
        entry->do_tick = [f, mu] {
          std::unique_lock l(*mu);
          return f->decay_tick();
        };
        break;
      }
    }
  } catch (const std::exception& e) {
    code = ErrorCode::kInternal;
    return std::string("namespace backend construction failed: ") +
           e.what();
  }
  if (cfg.max_keys != 0) {
    // Quota gate: the server consults this before insert_batch, so a
    // breach is an all-or-nothing wire rejection.
    entry->backend->admit =
        [elements = entry->elements, max = cfg.max_keys,
         rej = entry->quota_rejections](
            std::size_t incoming) -> const char* {
      if (elements() + incoming > max) {
        rej->fetch_add(1, std::memory_order_relaxed);
        return "namespace key quota exceeded";
      }
      return nullptr;
    };
  }
  entries_.insert(pos, std::move(entry));
  const std::size_t count = entries_.size();
  lock.unlock();
  MPCBF_LOG_INFO("ns.create", log::str("ns", name),
                 log::str("kind", kind_name(kind)),
                 log::u64("memory_bits", cfg.memory_bits),
                 log::u64("max_keys", cfg.max_keys),
                 log::u64("generations", generations),
                 log::u64("namespaces", count));
  publish_metrics();
  return {};
}

std::string NamespaceRegistry::drop(std::string_view name,
                                    ErrorCode& code) {
  std::shared_ptr<Entry> entry;
  {
    std::unique_lock lock(mu_);
    const auto it = std::find_if(
        entries_.begin(), entries_.end(),
        [&](const std::shared_ptr<Entry>& e) { return e->name == name; });
    if (it == entries_.end()) {
      code = ErrorCode::kUnknownNamespace;
      return "unknown namespace";
    }
    entry = *it;
    entries_.erase(it);
  }
  if (entry->kind == NsKind::kDurable ||
      entry->kind == NsKind::kDurableDecay) {
    // Bounded-lifetime contract: the durable directory goes with the
    // namespace. In-flight requests still hold the backend; on POSIX,
    // unlinking files a live journal has open is safe.
    std::error_code ec;
    std::filesystem::remove_all(
        std::filesystem::path(options_.root_dir) / ("ns-" + entry->name),
        ec);
    if (ec) {
      MPCBF_LOG_WARN("ns.drop_cleanup_failed",
                     log::str("ns", entry->name),
                     log::str("error", ec.message()));
    }
  }
  MPCBF_LOG_INFO("ns.drop", log::str("ns", entry->name),
                 log::str("kind", kind_name(entry->kind)));
  publish_metrics();
  return {};
}

std::string NamespaceRegistry::tick(std::string_view name,
                                    std::uint64_t& ticks,
                                    ErrorCode& code) {
  const auto entry = find(name);
  if (!entry) {
    code = ErrorCode::kUnknownNamespace;
    return "unknown namespace";
  }
  if (!entry->do_tick) {
    code = ErrorCode::kUnsupported;
    return "namespace kind has no decay window";
  }
  try {
    ticks = entry->do_tick();
  } catch (const std::exception& e) {
    code = ErrorCode::kInternal;
    return std::string("decay tick failed: ") + e.what();
  }
  entry->last_tick_ns.store(steady_now_ns(), std::memory_order_relaxed);
  MPCBF_LOG_INFO("ns.tick", log::str("ns", entry->name),
                 log::u64("tick", ticks));
  return {};
}

std::vector<NsRow> NamespaceRegistry::list() const {
  std::shared_lock lock(mu_);
  std::vector<NsRow> rows;
  rows.reserve(entries_.size());
  for (const auto& e : entries_) {
    NsRow row;
    row.name = e->name;
    row.info.kind = static_cast<std::uint8_t>(e->kind);
    row.info.decay_generations =
        static_cast<std::uint8_t>(e->generations);
    row.info.elements = e->elements();
    row.info.memory_bits = e->memory_bits();
    row.info.max_keys = e->cfg.max_keys;
    row.info.max_memory_bytes = e->cfg.max_memory_bytes;
    row.info.decay_ticks = e->ticks ? e->ticks() : 0;
    row.info.quota_rejections =
        e->quota_rejections->load(std::memory_order_relaxed);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::shared_ptr<const FilterBackend> NamespaceRegistry::resolve(
    std::string_view name) const {
  const auto entry = find(name);
  return entry ? entry->backend : nullptr;
}

std::size_t NamespaceRegistry::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

void NamespaceRegistry::status_lines(std::string& out) const {
  for (const auto& row : list()) {
    out += "namespace ";
    out += row.name;
    out += " kind=";
    out += kind_name(static_cast<NsKind>(row.info.kind));
    out += " elements=" + std::to_string(row.info.elements);
    out += " memory_bits=" + std::to_string(row.info.memory_bits);
    if (row.info.decay_generations != 0) {
      out += " generations=" +
             std::to_string(row.info.decay_generations);
      out += " decay_ticks=" + std::to_string(row.info.decay_ticks);
    }
    if (row.info.max_keys != 0) {
      out += " max_keys=" + std::to_string(row.info.max_keys);
    }
    out += " quota_rejections=" +
           std::to_string(row.info.quota_rejections);
    out += "\n";
  }
}

void NamespaceRegistry::publish_metrics() {
  auto& reg = metrics::Registry::global();
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::shared_lock lock(mu_);
    entries = entries_;
  }
  reg.gauge("mpcbf_namespaces", "Registered namespaces")
      .set(static_cast<double>(entries.size()));
  for (const auto& e : entries) {
    reg.gauge("mpcbf_ns_elements", "Elements resident per namespace",
              {{"ns", e->name}})
        .set(static_cast<double>(e->elements()));
    reg.gauge("mpcbf_ns_memory_bits",
              "Configured filter bits per namespace", {{"ns", e->name}})
        .set(static_cast<double>(e->memory_bits()));
    auto& ticks = reg.counter("mpcbf_ns_decay_ticks_total",
                              "Decay window rotations per namespace",
                              {{"ns", e->name}});
    const double tick_total =
        static_cast<double>(e->ticks ? e->ticks() : 0);
    if (tick_total > ticks.value()) ticks.inc(tick_total - ticks.value());
    auto& rej = reg.counter(
        "mpcbf_ns_quota_rejections_total",
        "Insert batches rejected by the namespace key quota",
        {{"ns", e->name}});
    const double rej_total = static_cast<double>(
        e->quota_rejections->load(std::memory_order_relaxed));
    if (rej_total > rej.value()) rej.inc(rej_total - rej.value());
  }
}

std::size_t NamespaceRegistry::tick_elapsed() {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::shared_lock lock(mu_);
    entries = entries_;
  }
  std::size_t ticked = 0;
  const std::int64_t now = steady_now_ns();
  for (const auto& e : entries) {
    if (!e->do_tick || e->cfg.tick_interval_ms == 0) continue;
    const std::int64_t interval_ns =
        std::int64_t{e->cfg.tick_interval_ms} * 1'000'000;
    if (now - e->last_tick_ns.load(std::memory_order_relaxed) <
        interval_ns) {
      continue;
    }
    try {
      const std::uint64_t tick = e->do_tick();
      e->last_tick_ns.store(steady_now_ns(), std::memory_order_relaxed);
      ++ticked;
      MPCBF_LOG_INFO("ns.auto_tick", log::str("ns", e->name),
                     log::u64("tick", tick));
    } catch (const std::exception& ex) {
      MPCBF_LOG_ERROR("ns.auto_tick_failed", log::str("ns", e->name),
                      log::str("error", ex.what()));
    }
  }
  return ticked;
}

std::shared_ptr<NamespaceRegistry::Entry> NamespaceRegistry::find(
    std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const std::shared_ptr<Entry>& e, std::string_view n) {
        return e->name < n;
      });
  if (pos != entries_.end() && (*pos)->name == name) return *pos;
  return nullptr;
}

void NamespaceRegistry::ticker_loop() {
  std::unique_lock<std::mutex> lock(ticker_mu_);
  while (!ticker_stop_) {
    ticker_cv_.wait_for(lock, options_.ticker_period);
    if (ticker_stop_) break;
    lock.unlock();
    tick_elapsed();
    publish_metrics();
    lock.lock();
  }
}

}  // namespace mpcbf::net
