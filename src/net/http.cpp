#include "net/http.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "metrics/build_info.hpp"
#include "metrics/registry.hpp"

namespace mpcbf::net {

namespace {

constexpr std::size_t kReadChunk = 2048;

[[nodiscard]] const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void append_json_escaped(std::string& out, std::string_view v) {
  for (const char ch : v) {
    switch (ch) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(ch);
    }
  }
}

}  // namespace

struct AdminServer::Conn {
  explicit Conn(Socket s) : sock(std::move(s)) {}
  Socket sock;
  std::string rbuf;
  std::string wbuf;
  std::size_t wpos = 0;
  bool responded = false;   ///< reply buffered; close once flushed
  bool want_write = false;  ///< EPOLLOUT currently armed
  bool dead = false;
  std::chrono::steady_clock::time_point since =
      std::chrono::steady_clock::now();
};

AdminServer::AdminServer(Options options) : options_(std::move(options)) {}

AdminServer::~AdminServer() { stop(); }

void AdminServer::handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

void AdminServer::start() {
  if (started_.exchange(true)) {
    throw NetError("AdminServer::start: already started");
  }
  listener_ = listen_tcp(options_.bind_address, options_.port);
  set_nonblocking(listener_.fd(), true);
  port_ = local_port(listener_.fd());
  loop_ = std::make_unique<EventLoop>();
  loop_->add(listener_.fd(), false, nullptr);
  thread_ = std::thread([this] { service_loop(); });
  MPCBF_LOG_INFO("admin.start",
                 log::str("bind", options_.bind_address),
                 log::u64("port", port_));
}

void AdminServer::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (loop_) loop_->wake();  // unblock a wait(-1) on the idle plane
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void AdminServer::service_loop() {
  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<EventLoop::Event> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Block indefinitely when idle; a finite timeout exists only while
    // a connection is mid-request (slow-loris sweep needs a clock).
    int timeout_ms = -1;
    const auto now = std::chrono::steady_clock::now();
    auto earliest = std::chrono::steady_clock::time_point::max();
    for (const auto& c : conns) {
      if (!c->dead && !c->responded) {
        earliest = std::min(earliest, c->since + options_.header_timeout);
      }
    }
    if (earliest != std::chrono::steady_clock::time_point::max()) {
      const auto wait_ms = std::chrono::duration_cast<
                               std::chrono::milliseconds>(earliest - now)
                               .count() +
                           1;
      timeout_ms = static_cast<int>(std::clamp<long long>(
          wait_ms, 1, std::numeric_limits<int>::max()));
    }
    (void)loop_->wait(events, timeout_ms);
    if (stopping_.load(std::memory_order_acquire)) break;

    for (const auto& e : events) {
      if (e.data == nullptr) {  // listener
        for (;;) {
          const int fd = ::accept(listener_.fd(), nullptr, nullptr);
          if (fd < 0) break;
          Socket sock(fd);
          if (conns.size() >= options_.max_connections) {
            continue;  // over cap: close immediately (Socket dtor)
          }
          set_nonblocking(fd, true);
          auto conn = std::make_unique<Conn>(std::move(sock));
          loop_->add(conn->sock.fd(), false, conn.get());
          conns.push_back(std::move(conn));
        }
        continue;
      }
      Conn& c = *static_cast<Conn*>(e.data);
      if (c.dead) continue;
      try {
        if (e.readable || e.error) {
          if (c.responded) {
            // Level-triggered readability after the response is built
            // (pipelined bytes, FIN): drain and discard so the loop
            // does not spin while the reply flushes.
            char junk[kReadChunk];
            std::ptrdiff_t n;
            while ((n = read_some(c.sock.fd(), junk, sizeof junk)) > 0) {
            }
            if (n == 0 && c.wpos == c.wbuf.size()) c.dead = true;
          } else {
            for (;;) {
              const std::size_t old = c.rbuf.size();
              if (old + kReadChunk > kMaxRequestBytes + kReadChunk) {
                // Headers over the cap: answer 431 and stop reading.
                // The buffer never grows past cap + one chunk.
                respond(c, HttpRequest{},
                        HttpResponse{431, "text/plain; charset=utf-8",
                                     "request header fields too large\n"});
                break;
              }
              c.rbuf.resize(old + kReadChunk);
              const std::ptrdiff_t n =
                  read_some(c.sock.fd(), c.rbuf.data() + old, kReadChunk);
              c.rbuf.resize(old +
                            (n > 0 ? static_cast<std::size_t>(n) : 0));
              if (n == 0) {  // EOF before a full request
                c.dead = true;
                break;
              }
              if (n < 0) break;  // EAGAIN
            }
            if (!c.dead && !c.responded) (void)try_serve(c);
          }
        }
        // Flush.
        while (!c.dead && c.wpos < c.wbuf.size()) {
          const std::ptrdiff_t n =
              write_some(c.sock.fd(), c.wbuf.data() + c.wpos,
                         c.wbuf.size() - c.wpos);
          if (n < 0) break;
          c.wpos += static_cast<std::size_t>(n);
        }
        if (c.responded && c.wpos == c.wbuf.size()) c.dead = true;
        if (!c.dead) {
          const bool want = c.wpos < c.wbuf.size();
          if (want != c.want_write) {
            c.want_write = want;
            loop_->mod(c.sock.fd(), want, &c);
          }
        }
      } catch (const NetError&) {
        c.dead = true;
      }
    }

    const auto after = std::chrono::steady_clock::now();
    for (auto& c : conns) {
      if (!c->dead && !c->responded &&
          after - c->since > options_.header_timeout) {
        c->dead = true;  // slow-loris: never completed the header
      }
    }
    std::erase_if(conns, [this](const auto& c) {
      if (c->dead) loop_->del(c->sock.fd());
      return c->dead;
    });
  }
}

bool AdminServer::try_serve(Conn& c) {
  const std::size_t header_end = c.rbuf.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (c.rbuf.size() > kMaxRequestBytes) {
      respond(c, HttpRequest{},
              HttpResponse{431, "text/plain; charset=utf-8",
                           "request header fields too large\n"});
      return true;
    }
    return false;
  }
  const std::string_view head =
      std::string_view(c.rbuf).substr(0, header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // "METHOD SP target SP HTTP/1.x" — anything else is malformed.
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : request_line.find(' ', sp1 + 1);
  HttpRequest req;
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      !request_line.substr(sp2 + 1).starts_with("HTTP/1.")) {
    respond(c, req,
            HttpResponse{400, "text/plain; charset=utf-8",
                         "malformed request line\n"});
    return true;
  }
  req.method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') {
    respond(c, req,
            HttpResponse{400, "text/plain; charset=utf-8",
                         "malformed request target\n"});
    return true;
  }
  if (const std::size_t q = target.find('?');
      q != std::string_view::npos) {
    req.query = target.substr(q + 1);
    target = target.substr(0, q);
  }
  req.path = target;
  if (req.method != "GET" && req.method != "HEAD") {
    respond(c, req,
            HttpResponse{405, "text/plain; charset=utf-8",
                         "only GET and HEAD are served\n"});
    return true;
  }
  const auto it = handlers_.find(req.path);
  if (it == handlers_.end()) {
    respond(c, req,
            HttpResponse{404, "text/plain; charset=utf-8",
                         "unknown admin path\n"});
    return true;
  }
  HttpResponse r;
  try {
    r = it->second(req);
  } catch (const std::exception& e) {
    r.status = 503;
    r.body = std::string("handler failed: ") + e.what() + "\n";
  }
  respond(c, req, r);
  return true;
}

void AdminServer::respond(Conn& c, const HttpRequest& req,
                          const HttpResponse& r) {
  served_.fetch_add(1, std::memory_order_relaxed);
  char head[160];
  const int n = std::snprintf(
      head, sizeof head,
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      r.status, status_text(r.status), r.content_type, r.body.size());
  c.wbuf.append(head, static_cast<std::size_t>(n));
  if (req.method != "HEAD") c.wbuf.append(r.body);
  c.responded = true;
  if (r.status >= 400) {
    MPCBF_LOG_DEBUG("admin.request_error",
                    log::u64("status",
                             static_cast<std::uint64_t>(r.status)),
                    log::str("path", req.path));
  }
}

// --- standard endpoint set ---------------------------------------------

std::string slow_ring_chrome_json(const SlowRequestRing& ring) {
  const std::vector<SlowRequest> slow = ring.snapshot();
  std::string out;
  out.reserve(256 + slow.size() * 192);
  out.append("{\"traceEvents\":[");
  bool first = true;
  for (const SlowRequest& r : slow) {
    if (!first) out.push_back(',');
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"cat\":\"net\",\"name\":\"",
                  static_cast<double>(r.start_ns) / 1e3,
                  static_cast<double>(r.duration_ns) / 1e3);
    out.append(buf);
    out.append(to_string(static_cast<Opcode>(r.opcode)));
    out.append("\",\"args\":{\"trace_id\":\"");
    out.append(r.trace_id != 0 ? log::format_hex16(r.trace_id) : "");
    out.append("\",\"batch_keys\":");
    std::snprintf(buf, sizeof buf, "%u", r.batch_keys);
    out.append(buf);
    out.append(",\"peer\":\"");
    append_json_escaped(out, format_peer(r.peer));
    out.append("\",\"seq\":");
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(r.seq));
    out.append(buf);
    out.append("}}");
  }
  out.append("]}");
  return out;
}

void register_admin_endpoints(AdminServer& server, AdminEndpoints eps) {
  auto shared = std::make_shared<AdminEndpoints>(std::move(eps));

  server.handle("/metrics", [](const HttpRequest&) {
    metrics::publish_build_info();
    std::ostringstream os;
    metrics::Registry::global().write_prometheus(os);
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = os.str();
    return r;
  });

  server.handle("/healthz", [shared](const HttpRequest&) {
    HttpResponse r;
    if (!shared->health) {
      r.body = "ok (no health probe)\n";
      return r;
    }
    const HealthReply h = shared->health();
    const bool critical = h.severity >= 2;  // metrics::Severity::kCritical
    r.status = critical ? 503 : 200;
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s severity=%u score=%.1f level1_fill=%.4f "
                  "measured_fpr=%.6g fpr_drift=%.6g elements=%llu\n",
                  critical ? "critical" : (h.severity == 1 ? "warn" : "ok"),
                  static_cast<unsigned>(h.severity), h.saturation_score,
                  h.level1_fill, h.measured_fpr, h.fpr_drift,
                  static_cast<unsigned long long>(h.elements));
    r.body = buf;
    return r;
  });

  server.handle("/readyz", [shared](const HttpRequest&) {
    HttpResponse r;
    const bool ready = !shared->ready || shared->ready();
    r.status = ready ? 200 : 503;
    r.body = ready ? "ready\n" : "not ready\n";
    return r;
  });

  server.handle("/statusz", [shared, &server](const HttpRequest&) {
    HttpResponse r;
    std::string& b = r.body;
    b.append("mpcbfd admin plane\n");
    b.append("backend: ").append(shared->backend_kind).push_back('\n');
    char buf[192];
    std::snprintf(buf, sizeof buf, "version: %s (git %s)\n",
                  metrics::kBuildVersion, metrics::build_git_sha());
    b.append(buf);
    std::snprintf(buf, sizeof buf, "uptime_seconds: %.1f\n",
                  metrics::process_uptime_seconds());
    b.append(buf);
    const bool ready = !shared->ready || shared->ready();
    b.append("ready: ").append(ready ? "true" : "false").push_back('\n');
    if (shared->health) {
      const HealthReply h = shared->health();
      std::snprintf(buf, sizeof buf,
                    "health: severity=%u score=%.1f elements=%llu\n",
                    static_cast<unsigned>(h.severity), h.saturation_score,
                    static_cast<unsigned long long>(h.elements));
      b.append(buf);
    }
    if (shared->repl_status) {
      const ReplStatusReply s = shared->repl_status();
      static constexpr const char* kRoles[] = {"none", "primary",
                                               "follower"};
      std::snprintf(
          buf, sizeof buf,
          "replication: role=%s caught_up=%u next_seq=%llu "
          "acked_seq=%llu followers=%llu min_acked_seq=%llu "
          "lag_records=%llu\n",
          s.role <= 2 ? kRoles[s.role] : "?",
          static_cast<unsigned>(s.caught_up),
          static_cast<unsigned long long>(s.next_seq),
          static_cast<unsigned long long>(s.acked_seq),
          static_cast<unsigned long long>(s.followers),
          static_cast<unsigned long long>(s.min_acked_seq),
          static_cast<unsigned long long>(s.lag_records));
      b.append(buf);
    }
    if (shared->slow_ring != nullptr) {
      std::snprintf(buf, sizeof buf,
                    "slow_requests_captured: %llu\n",
                    static_cast<unsigned long long>(
                        shared->slow_ring->recorded()));
      b.append(buf);
    }
    std::snprintf(buf, sizeof buf, "admin_requests_served: %llu\n",
                  static_cast<unsigned long long>(
                      server.requests_served()));
    b.append(buf);
    if (shared->status_extra) shared->status_extra(b);
    return r;
  });

  server.handle("/tracez", [shared](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = shared->slow_ring != nullptr
                 ? slow_ring_chrome_json(*shared->slow_ring)
                 : std::string("{\"traceEvents\":[]}");
    return r;
  });

  server.handle("/", [](const HttpRequest&) {
    HttpResponse r;
    r.body =
        "mpcbfd admin endpoints:\n"
        "  /metrics  Prometheus text exposition\n"
        "  /healthz  saturation severity (503 when critical)\n"
        "  /readyz   readiness bit (503 while not ready)\n"
        "  /statusz  human status page\n"
        "  /tracez   slow-request spans (Chrome trace JSON)\n";
    return r;
  });
}

}  // namespace mpcbf::net
