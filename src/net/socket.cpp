#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mpcbf::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw NetError(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("inet_pton: invalid IPv4 address '" + host + "'");
  }
  return addr;
}

void apply_timeout(int fd, std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

}  // namespace

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_tcp(const std::string& host, std::uint16_t port,
                  int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(sock.fd(), backlog) != 0) throw_errno("listen");
  return sock;
}

std::uint64_t peer_id(int fd) noexcept {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return 0;
  }
  return (static_cast<std::uint64_t>(ntohl(addr.sin_addr.s_addr)) << 16) |
         ntohs(addr.sin_port);
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds io_timeout) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  apply_timeout(sock.fd(), io_timeout);
  const sockaddr_in addr = make_addr(host, port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw_errno("connect");
  }
  // Request/response round trips are latency-bound; never Nagle-delay a
  // small batched request behind an unacked previous one.
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof one);
  return sock;
}

void set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) throw_errno("fcntl(F_SETFL)");
}

std::ptrdiff_t read_some(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == ECONNRESET) return 0;  // peer reset == stream over
    throw_errno("read");
  }
}

std::ptrdiff_t write_some(int fd, const void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EPIPE || errno == ECONNRESET) {
      throw NetError("write: connection closed by peer");
    }
    throw_errno("write");
  }
}

void write_all(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const std::ptrdiff_t n = write_some(fd, p, len);
    if (n < 0) throw NetError("write: timed out");
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace mpcbf::net
