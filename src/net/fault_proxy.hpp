// FaultProxy — a chaos TCP forwarder for exercising mpcbfd's failure
// paths under test.
//
// The proxy listens on its own port and forwards byte streams to a
// target, with injectable faults controlled at runtime:
//
//   partition      stop forwarding in both directions and refuse new
//                  connections (the classic network split)
//   delay          hold every forwarded chunk for a fixed time
//   throttle       cap forwarded bytes per 10 ms tick (slow-loris: the
//                  victim sees a frame arrive one dribble at a time)
//   truncate_next  forward only N more bytes on each currently open
//                  connection, then hard-close it (a mid-frame cut)
//   kill_connections  hard-close every open connection now
//
// Faults apply to live traffic — a schedule can flip them while
// requests are in flight, which is the whole point. The proxy never
// parses frames; it breaks byte streams, and the protocol layer's CRC
// framing is what must keep the damage contained.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace mpcbf::net {

class FaultProxy {
 public:
  struct Options {
    std::string listen_address = "127.0.0.1";
    /// 0 = kernel-assigned; read back via port().
    std::uint16_t port = 0;
    std::string target_host = "127.0.0.1";
    std::uint16_t target_port = 0;
  };

  explicit FaultProxy(Options options);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Binds and spawns the forwarding thread. Throws NetError when the
  /// listen address is unusable.
  void start();
  /// Closes everything and joins. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  // --- chaos controls (thread-safe, apply to live traffic) --------------

  /// Repoints the proxy at a new target (used when a killed primary
  /// comes back on a different port). Existing connections keep their
  /// old target; new ones get the new one.
  void set_target(const std::string& host, std::uint16_t target_port);
  void set_partitioned(bool on) noexcept {
    partitioned_.store(on, std::memory_order_release);
  }
  void set_delay(std::chrono::milliseconds d) noexcept {
    delay_ms_.store(d.count(), std::memory_order_release);
  }
  /// 0 disables the throttle.
  void set_throttle_bytes_per_tick(std::size_t n) noexcept {
    throttle_.store(n, std::memory_order_release);
  }
  /// Forward only `bytes` more on each open connection, then cut it.
  void truncate_open_connections(std::size_t bytes) noexcept;
  void kill_connections() noexcept {
    kill_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  [[nodiscard]] std::uint64_t connections() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t forwarded_bytes() const noexcept {
    return forwarded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t killed() const noexcept {
    return killed_.load(std::memory_order_relaxed);
  }

 private:
  struct Pair;
  void run();
  void pump(Pair& p, std::size_t budget_bytes);

  Options options_;
  Socket listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::mutex target_mu_;

  std::atomic<bool> partitioned_{false};
  std::atomic<long long> delay_ms_{0};
  std::atomic<std::size_t> throttle_{0};
  std::atomic<std::uint64_t> kill_epoch_{0};

  std::mutex trunc_mu_;
  bool trunc_pending_ = false;
  std::size_t trunc_bytes_ = 0;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> killed_{0};

  std::vector<std::unique_ptr<Pair>> pairs_;
  std::thread thread_;
};

}  // namespace mpcbf::net
