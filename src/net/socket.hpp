// Thin POSIX TCP helpers shared by the server and client: an RAII fd
// wrapper plus listen/connect/read/write wrappers with EINTR handling.
// Everything network-y that touches an errno lives here so server.cpp
// and client.cpp stay protocol logic.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mpcbf::net {

/// Network-layer failure (connect/bind/IO); `what()` carries the syscall
/// and errno text.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Move-only RAII owner of a socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on `host:port` (port 0 = kernel-assigned ephemeral;
/// read it back with local_port). Sets SO_REUSEADDR. Throws NetError.
[[nodiscard]] Socket listen_tcp(const std::string& host,
                                std::uint16_t port, int backlog = 128);

/// The locally bound port of a listening/connected socket.
[[nodiscard]] std::uint16_t local_port(int fd);

/// The connected peer as a packed IPv4 id (`ip << 16 | port`), the
/// compact form the slow-request ring stores; 0 when unavailable.
/// Render with format_peer (net/slow_ring.hpp).
[[nodiscard]] std::uint64_t peer_id(int fd) noexcept;

/// One blocking connect attempt with send/receive timeouts applied to
/// the resulting socket. Throws NetError on failure.
[[nodiscard]] Socket connect_tcp(const std::string& host,
                                 std::uint16_t port,
                                 std::chrono::milliseconds io_timeout);

void set_nonblocking(int fd, bool enable);

/// read(2) retrying EINTR. Returns bytes read (0 = EOF), -1 with errno
/// EAGAIN/EWOULDBLOCK preserved for nonblocking callers; throws NetError
/// on hard errors.
std::ptrdiff_t read_some(int fd, void* buf, std::size_t len);

/// write(2) retrying EINTR; same contract as read_some.
std::ptrdiff_t write_some(int fd, const void* buf, std::size_t len);

/// Blocking write of the whole buffer (client side). Throws NetError on
/// error or timeout (EAGAIN from SO_SNDTIMEO).
void write_all(int fd, const void* buf, std::size_t len);

}  // namespace mpcbf::net
