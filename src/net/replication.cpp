#include "net/replication.hpp"

#include <random>

#include "common/log.hpp"
#include "metrics/registry.hpp"
#include "trace/trace.hpp"

namespace mpcbf::net {

namespace {

/// The classic follower sink: one durable filter behind the serving
/// backend's shared_mutex.
class DurableSink final : public ReplicationSink {
 public:
  DurableSink(std::shared_ptr<core::DurableMpcbf<64>> local,
              std::shared_ptr<std::shared_mutex> mu)
      : local_(std::move(local)), mu_(std::move(mu)) {}

  std::uint64_t next_seq() override {
    std::shared_lock lock(*mu_);
    return local_->next_seq();
  }

  bool apply(std::uint64_t seq, io::JournalOp op,
             std::string_view key) override {
    std::unique_lock lock(*mu_);
    return local_->apply_replicated(seq, op, key);
  }

  void install_snapshot(const std::string& image) override {
    std::unique_lock lock(*mu_);
    local_->install_snapshot(image);
  }

 private:
  std::shared_ptr<core::DurableMpcbf<64>> local_;
  std::shared_ptr<std::shared_mutex> mu_;
};

}  // namespace

std::shared_ptr<ReplicationSink> make_replication_sink(
    std::shared_ptr<core::DurableMpcbf<64>> local,
    std::shared_ptr<std::shared_mutex> mu) {
  return std::make_shared<DurableSink>(std::move(local), std::move(mu));
}

Replicator::Replicator(std::shared_ptr<ReplicationSink> sink, Options options)
    : sink_(std::move(sink)), options_(std::move(options)) {
  if (!sink_) throw NetError("Replicator: null sink");
  if (options_.primaries.empty()) {
    throw NetError("Replicator: no primary endpoints");
  }
  if (options_.follower_id == 0) {
    std::random_device rd;
    options_.follower_id = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    if (options_.follower_id == 0) options_.follower_id = 1;
  }
  // The local journal's position is the resume point: a restarted
  // follower continues from whatever its own WAL made durable.
  acked_seq_.store(sink_->next_seq() - 1, std::memory_order_release);
}

Replicator::Replicator(std::shared_ptr<core::DurableMpcbf<64>> local,
                       std::shared_ptr<std::shared_mutex> mu,
                       Options options)
    : Replicator(make_replication_sink(std::move(local), std::move(mu)),
                 std::move(options)) {}

Replicator::~Replicator() { stop(); }

void Replicator::start() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void Replicator::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Replicator::interruptible_sleep(std::chrono::milliseconds d) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  return !stop_cv_.wait_for(lock, d, [this] { return stop_requested_; });
}

Client& Replicator::ensure_client() {
  if (!client_ || !client_->connected()) {
    const Endpoint& ep = options_.primaries[active_];
    Client::Options co;
    co.host = ep.host;
    co.port = ep.port;
    co.connect_deadline = options_.connect_deadline;
    co.initial_backoff = options_.initial_backoff;
    co.max_backoff = options_.max_backoff;
    co.io_timeout = options_.io_timeout;
    client_.emplace(std::move(co));
  }
  return *client_;
}

void Replicator::publish_gauges(bool connected) const {
  auto& reg = metrics::Registry::global();
  reg.gauge("mpcbf_replication_acked_seq",
            "Highest journal sequence applied by this follower")
      .set(static_cast<double>(acked_seq_.load(std::memory_order_relaxed)));
  reg.gauge("mpcbf_replication_lag_records",
            "Primary records this follower has not yet applied")
      .set(static_cast<double>(lag_.load(std::memory_order_relaxed)));
  reg.gauge("mpcbf_replication_connected",
            "1 while the follower's last poll succeeded")
      .set(connected ? 1.0 : 0.0);
}

void Replicator::bootstrap(Client& client) {
  MPCBF_TRACE_SPAN(span, kNet, "repl.bootstrap");
  MPCBF_LOG_INFO("repl.bootstrap_begin",
                 log::u64("follower_id", options_.follower_id));
  std::string image;
  std::uint64_t watermark = 0;
  std::uint64_t total = 0;
  std::uint64_t offset = 0;
  for (;;) {
    SnapFetchRequest req;
    req.offset = offset;
    req.max_bytes = options_.snap_chunk;
    std::string bytes;
    const SnapFetchInfo info = client.snap_fetch(req, bytes);
    if (offset == 0) {
      watermark = info.watermark;
      total = info.total_bytes;
      image.clear();
      image.reserve(total);  // total is capped by the reply parser
    } else if (info.watermark != watermark) {
      // The primary regenerated its image mid-fetch (it snapshotted
      // between our chunks); restart from the top.
      offset = 0;
      continue;
    }
    image.append(bytes);
    offset += bytes.size();
    if (offset >= total) break;
    if (bytes.empty()) {
      throw NetError("snap fetch returned no bytes before the image end");
    }
  }
  sink_->install_snapshot(image);
  acked_seq_.store(sink_->next_seq() - 1, std::memory_order_release);
  bootstraps_.fetch_add(1, std::memory_order_relaxed);
  MPCBF_LOG_INFO("repl.bootstrap_done", log::u64("watermark", watermark),
                 log::u64("image_bytes", image.size()));
  span.set_arg("watermark", watermark);
}

std::size_t Replicator::poll_once() {
  MPCBF_TRACE_SPAN(span, kNet, "repl.poll");
  Client& client = ensure_client();
  if (force_bootstrap_) {
    bootstrap(client);
    force_bootstrap_ = false;
  }
  ReplicateRequest req;
  req.follower_id = options_.follower_id;
  req.from_seq = sink_->next_seq();
  req.max_records = options_.max_records;
  req.max_bytes = options_.max_bytes;
  std::vector<io::JournalRecord> records;
  const ReplicateInfo info = client.replicate(req, records);
  if (info.next_seq < req.from_seq) {
    // Our journal is AHEAD of this primary's stream: we hold a fork
    // (the classic case is an ex-primary restarting as a follower of
    // its old replica, carrying writes that were never replicated).
    // The primary's history wins — discard the fork by re-syncing from
    // its snapshot image, which rewinds our journal to its watermark.
    MPCBF_LOG_WARN("repl.fork_discard",
                   log::u64("local_next_seq", req.from_seq),
                   log::u64("primary_next_seq", info.next_seq));
    bootstrap(client);
    caught_up_.store(false, std::memory_order_release);
    publish_gauges(true);
    return 0;
  }
  if (info.need_snapshot != 0) {
    bootstrap(client);
    // Lag against the stream head is unknown until the next poll; stay
    // not-caught-up rather than claim readiness off a stale number.
    caught_up_.store(false, std::memory_order_release);
    publish_gauges(true);
    return 0;
  }
  for (const auto& rec : records) {
    if (!sink_->apply(rec.seq, rec.op, rec.key)) {
      // A gap means stream continuity is lost (e.g. the local journal
      // was repaired behind our back); re-sync from a snapshot.
      force_bootstrap_ = true;
      MPCBF_LOG_WARN("repl.stream_gap", log::u64("record_seq", rec.seq),
                     log::u64("expected_seq", sink_->next_seq()));
      throw NetError("replicate stream gap; forcing bootstrap");
    }
  }
  acked_seq_.store(sink_->next_seq() - 1, std::memory_order_release);
  const std::uint64_t acked = acked_seq_.load(std::memory_order_relaxed);
  const std::uint64_t lag = info.next_seq - 1 - acked;
  lag_.store(lag, std::memory_order_release);
  caught_up_.store(lag == 0, std::memory_order_release);
  publish_gauges(true);
  span.set_arg("records", records.size());
  return records.size();
}

void Replicator::run() {
  Backoff backoff(options_.initial_backoff, options_.max_backoff,
                  options_.follower_id);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stop_requested_) return;
    }
    try {
      const std::size_t applied = poll_once();
      backoff.reset();
      if (applied == 0) {
        if (!interruptible_sleep(options_.poll_interval)) return;
      }
    } catch (const std::exception& e) {
      // Rate-limited by the per-site limiter: a primary that rejects
      // every poll (e.g. SNAPFETCH unsupported on a sharded primary
      // whose journal has compacted past us) would otherwise retry
      // silently forever.
      MPCBF_LOG_WARN("repl.poll_failed", log::str("error", e.what()),
                     log::u64("follower_id", options_.follower_id));
      caught_up_.store(false, std::memory_order_release);
      publish_gauges(false);
      client_.reset();
      active_ = (active_ + 1) % options_.primaries.size();
      failovers_.fetch_add(1, std::memory_order_relaxed);
      if (!interruptible_sleep(backoff.next())) return;
    }
  }
}

ReplStatusReply Replicator::status() const {
  ReplStatusReply r;
  r.role = static_cast<std::uint8_t>(ReplRole::kFollower);
  r.caught_up = caught_up() ? 1 : 0;
  r.acked_seq = acked_seq();
  r.next_seq = r.acked_seq + 1;
  r.lag_records = lag();
  return r;
}

}  // namespace mpcbf::net
