// Readiness event loop for the serving stack: epoll on Linux, poll(2)
// elsewhere, plus an eventfd/self-pipe wake channel.
//
// Both mpcbfd workers and the admin listener used to poll(2) with a
// fixed 50 ms tick so that stop flags and cross-thread hand-offs were
// noticed "soon". That burns a wakeup every tick on an idle process and
// adds up to 50 ms of latency to anything delivered between ticks. An
// EventLoop instead blocks indefinitely (timeout -1) until either a
// registered fd turns ready or another thread calls wake() — idle means
// zero loop iterations, and hand-offs (new connection adopted, SPSC
// ring message, stop request) are delivered at syscall latency.
//
// Level-triggered on purpose: connection handlers read/write as much as
// they can per iteration and rely on re-arming semantics being "still
// ready? fire again", which makes partial reads impossible to lose.
// wait() drains the wake channel internally; a wake with no ready fds
// returns 0 events, which callers treat as "check your queues".
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#else
#include <algorithm>
#include <poll.h>
#endif
#include <unistd.h>

namespace mpcbf::net {

class EventLoop {
 public:
  struct Event {
    void* data = nullptr;
    bool readable = false;
    bool writable = false;
    /// EPOLLERR/EPOLLHUP (or POLLERR/POLLHUP/POLLNVAL): the fd is dead
    /// or half-closed; handlers should read to EOF and tear down.
    bool error = false;
  };

  EventLoop() {
#ifdef __linux__
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) throw std::runtime_error("EventLoop: epoll_create1");
    wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakefd_ < 0) {
      ::close(epfd_);
      throw std::runtime_error("EventLoop: eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = const_cast<char*>(&kWakeTag);
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) != 0) {
      ::close(wakefd_);
      ::close(epfd_);
      throw std::runtime_error("EventLoop: epoll_ctl wakefd");
    }
#else
    int fds[2];
    if (::pipe(fds) != 0) throw std::runtime_error("EventLoop: pipe");
    wakefd_ = fds[0];
    wakewr_ = fds[1];
#endif
  }

  ~EventLoop() {
#ifdef __linux__
    ::close(wakefd_);
    ::close(epfd_);
#else
    ::close(wakefd_);
    ::close(wakewr_);
#endif
  }

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void add(int fd, bool want_write, void* data) { ctl(fd, want_write, data, /*add=*/true); }
  void mod(int fd, bool want_write, void* data) { ctl(fd, want_write, data, /*add=*/false); }

  void del(int fd) {
#ifdef __linux__
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#else
    for (std::size_t i = 0; i < pollfds_.size(); ++i) {
      if (pollfds_[i].fd == fd) {
        pollfds_.erase(pollfds_.begin() + static_cast<long>(i));
        polldata_.erase(polldata_.begin() + static_cast<long>(i));
        return;
      }
    }
#endif
  }

  /// Thread-safe: wakes a wait() blocked in another thread. Coalesces —
  /// any number of wakes before the next wait() cost one loop iteration.
  void wake() {
    const std::uint64_t one = 1;
#ifdef __linux__
    [[maybe_unused]] auto n = ::write(wakefd_, &one, sizeof one);
#else
    [[maybe_unused]] auto n = ::write(wakewr_, &one, 1);
#endif
  }

  /// Blocks until an fd is ready, wake() is called, or `timeout_ms`
  /// elapses (-1 = forever). Returns the ready events (the wake channel
  /// is drained internally and never reported). Every return increments
  /// the iteration counter — the idle-wakeup test asserts this stays
  /// flat while the process has nothing to do.
  int wait(std::vector<Event>& out, int timeout_ms) {
    out.clear();
#ifdef __linux__
    epoll_event evs[64];
    const int n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
    if (n < 0) return 0;  // EINTR
    iterations_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.ptr == const_cast<char*>(&kWakeTag)) {
        std::uint64_t junk;
        while (::read(wakefd_, &junk, sizeof junk) > 0) {
        }
        continue;
      }
      Event e;
      e.data = evs[i].data.ptr;
      e.readable = (evs[i].events & EPOLLIN) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
#else
    std::vector<pollfd> fds = pollfds_;
    fds.push_back(pollfd{wakefd_, POLLIN, 0});
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0) return 0;  // EINTR
    iterations_.fetch_add(1, std::memory_order_relaxed);
    if (fds.back().revents & POLLIN) {
      char junk[64];
      while (::read(wakefd_, junk, sizeof junk) > 0) {
      }
    }
    for (std::size_t i = 0; i + 1 < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      Event e;
      e.data = polldata_[i];
      e.readable = (fds[i].revents & POLLIN) != 0;
      e.writable = (fds[i].revents & POLLOUT) != 0;
      e.error = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(e);
    }
#endif
    return static_cast<int>(out.size());
  }

  /// Loop iterations completed (wait() returns). Thread-safe read.
  [[nodiscard]] std::uint64_t iterations() const noexcept {
    return iterations_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr char kWakeTag = 0;  // sentinel address for the wake fd

  void ctl(int fd, bool want_write, void* data, bool add) {
#ifdef __linux__
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.ptr = data;
    if (::epoll_ctl(epfd_, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, fd, &ev) !=
        0) {
      throw std::runtime_error("EventLoop: epoll_ctl");
    }
#else
    const short events =
        static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
    if (!add) {
      for (std::size_t i = 0; i < pollfds_.size(); ++i) {
        if (pollfds_[i].fd == fd) {
          pollfds_[i].events = events;
          polldata_[i] = data;
          return;
        }
      }
    }
    pollfds_.push_back(pollfd{fd, events, 0});
    polldata_.push_back(data);
#endif
  }

#ifdef __linux__
  int epfd_ = -1;
#else
  int wakewr_ = -1;
  std::vector<pollfd> pollfds_;
  std::vector<void*> polldata_;
#endif
  int wakefd_ = -1;
  std::atomic<std::uint64_t> iterations_{0};
};

}  // namespace mpcbf::net
