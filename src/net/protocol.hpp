// Wire protocol for mpcbfd — the length-prefixed, CRC32C-framed binary
// format the filter server and client library speak.
//
// Every message (request or response) is one frame:
//
//   offset  size  field
//   0       4     frame magic 0x314E504D ("MPN1", little-endian u32)
//   4       1     opcode (Opcode enum)
//   5       1     flags (bit0 = response, bit1 = error)
//   6       2     reserved (must be 0)
//   8       8     request id (u64; a response echoes its request's id)
//   16      4     payload length in bytes (u32)
//   20      4     CRC32C of the payload bytes (u32)
//   24      len   payload
//
// The header is fixed-size so a reader knows exactly how many bytes to
// wait for; the CRC covers the payload, so a frame is either delivered
// intact or rejected before a single payload byte reaches a parser —
// the same discipline io/crc32c.hpp enforces for snapshots. Requests
// are batched (one frame carries up to kMaxBatchKeys keys) because the
// whole point of the serving layer is to amortize the syscall + parse
// cost over the word-engine batch pipeline; see docs/server.md for
// batching guidance.
//
// Hostile-input hardening mirrors the snapshot loaders: every length
// field is validated against a cap *before* any allocation
// (kMaxPayload, kMaxBatchKeys, kMaxKeyLen), and decoded keys are
// string_views into the connection's read buffer — a request batch is
// processed with zero per-key allocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "hash/xxhash64.hpp"
#include "io/crc32c.hpp"
#include "io/journal.hpp"

namespace mpcbf::net {

inline constexpr std::uint32_t kFrameMagic = 0x314E504Du;  // "MPN1"
inline constexpr std::size_t kHeaderSize = 24;
/// Frame payload cap: anything larger is rejected from the header alone,
/// before allocation (a hostile length field must not become an
/// allocation bomb — same rule as io::kMaxFramePayload).
inline constexpr std::uint32_t kMaxPayload = 1u << 24;  // 16 MiB
/// Keys per batched request.
inline constexpr std::uint32_t kMaxBatchKeys = 1u << 16;
/// Bytes per key.
inline constexpr std::uint32_t kMaxKeyLen = 4096;
/// Journal records per REPLICATE reply.
inline constexpr std::uint32_t kMaxReplicateRecords = 1u << 16;
/// Snapshot bytes per SNAPFETCH chunk (well under kMaxPayload so the
/// reply header always fits).
inline constexpr std::uint32_t kMaxSnapChunk = 4u << 20;  // 4 MiB
/// Total assembled snapshot size a follower will accept.
inline constexpr std::uint64_t kMaxSnapshotBytes = 1ull << 30;  // 1 GiB
/// Bytes per namespace name (NamespacePrefix / NSCREATE / NSDROP).
inline constexpr std::uint32_t kMaxNamespaceLen = 64;
/// Namespaces one server will host; NSCREATE past this is rejected.
inline constexpr std::uint32_t kMaxNamespaces = 256;

enum class Opcode : std::uint8_t {
  kQuery = 1,      ///< batched membership; reply = verdict per key
  kInsert = 2,     ///< batched insert; reply = ok flag per key
  kErase = 3,      ///< batched erase; reply = ok flag per key
  kStats = 4,      ///< filter layout + counters (StatsReply)
  kHealth = 5,     ///< readiness + saturation probe (HealthReply)
  kSnapshot = 6,   ///< force a durable snapshot (SnapshotReply)
  kReplicate = 7,  ///< tail journal records from a watermark (follower)
  kSnapFetch = 8,  ///< fetch a consistent snapshot image in chunks
  kReplStatus = 9, ///< replication role / watermarks (ReplStatusReply)
  kEstCount = 10,  ///< batched min-counter frequency estimate (u32/key)
  kNsCreate = 11,  ///< create a namespace (name + NsConfigWire)
  kNsDrop = 12,    ///< drop a namespace and its backend state
  kNsList = 13,    ///< enumerate namespaces (NsRowWire per namespace)
  kNsTick = 14,    ///< force one decay tick on a namespace (NsTickReply)
};

[[nodiscard]] constexpr bool opcode_known(std::uint8_t op) noexcept {
  return op >= 1 && op <= 14;
}

/// Highest opcode value; sizes per-opcode metric arrays.
inline constexpr std::uint8_t kMaxOpcode = 14;

[[nodiscard]] constexpr const char* to_string(Opcode op) noexcept {
  switch (op) {
    case Opcode::kQuery: return "query";
    case Opcode::kInsert: return "insert";
    case Opcode::kErase: return "erase";
    case Opcode::kStats: return "stats";
    case Opcode::kHealth: return "health";
    case Opcode::kSnapshot: return "snapshot";
    case Opcode::kReplicate: return "replicate";
    case Opcode::kSnapFetch: return "snapfetch";
    case Opcode::kReplStatus: return "replstatus";
    case Opcode::kEstCount: return "est_count";
    case Opcode::kNsCreate: return "nscreate";
    case Opcode::kNsDrop: return "nsdrop";
    case Opcode::kNsList: return "nslist";
    case Opcode::kNsTick: return "nstick";
  }
  return "?";
}

inline constexpr std::uint8_t kFlagResponse = 0x1;
inline constexpr std::uint8_t kFlagError = 0x2;
/// Request carries a (session_id, op_seq) SequencePrefix ahead of its
/// payload; the server dedups, so a retried mutation applies once.
inline constexpr std::uint8_t kFlagSequenced = 0x4;
/// Request carries an 8-byte TracePrefix as the *first* payload bytes
/// (ahead of the SequencePrefix when both flags are set): the client's
/// trace id, which the server attaches to its request span, its
/// slow-request record and its log line — one id follows the operation
/// across the process boundary.
inline constexpr std::uint8_t kFlagTraced = 0x8;
/// Request targets a named namespace: the payload carries a
/// NamespacePrefix (u8 length + name bytes) *after* the TracePrefix and
/// *before* the SequencePrefix — the trace id names the operation, the
/// namespace names the routing target, and the dedup state is scoped to
/// whatever the route resolves to. The name is length- and
/// charset-validated before any lookup, like every other hostile-input
/// check in this header.
inline constexpr std::uint8_t kFlagNamespaced = 0x10;

/// Error codes carried by an error response payload.
enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,    ///< frame was intact but its payload is malformed
  kUnsupported = 2,   ///< opcode not supported by this backend
  kInternal = 3,      ///< backend threw while serving the request
  kShuttingDown = 4,  ///< server is draining; retry against another node
  kQuotaExceeded = 5,     ///< namespace key/memory quota would be exceeded
  kUnknownNamespace = 6,  ///< NamespacePrefix names no registered namespace
  kNamespaceExists = 7,   ///< NSCREATE of a name already registered
};

struct FrameHeader {
  std::uint8_t opcode = 0;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// A decoded frame; `payload` views into the caller's buffer and is only
/// valid until that buffer is mutated.
struct Frame {
  FrameHeader header;
  std::string_view payload;
};

// --- low-level append/read helpers (little-endian PODs, like io/) -------

namespace detail {

template <typename T>
inline void append_pod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Bounds-checked sequential reader over a payload view. read() returns
/// false on truncation instead of throwing — the decoder turns that into
/// a clean protocol error.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view buf) : buf_(buf) {}

  template <typename T>
  [[nodiscard]] bool read(T& v) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    if (buf_.size() - pos_ < sizeof v) return false;
    std::memcpy(&v, buf_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return true;
  }

  [[nodiscard]] bool read_view(std::size_t len,
                               std::string_view& out) noexcept {
    if (buf_.size() - pos_ < len) return false;
    out = buf_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == buf_.size();
  }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace detail

// --- frame encode -------------------------------------------------------

/// Appends one complete frame (header + payload) to `out`. The payload
/// must already respect kMaxPayload; callers build payloads with the
/// append_* helpers below, which enforce the caps.
inline void append_frame(std::string& out, Opcode op, std::uint8_t flags,
                         std::uint64_t request_id,
                         std::string_view payload) {
  detail::append_pod<std::uint32_t>(out, kFrameMagic);
  detail::append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(op));
  detail::append_pod<std::uint8_t>(out, flags);
  detail::append_pod<std::uint16_t>(out, 0);  // reserved
  detail::append_pod<std::uint64_t>(out, request_id);
  detail::append_pod<std::uint32_t>(
      out, static_cast<std::uint32_t>(payload.size()));
  detail::append_pod<std::uint32_t>(out, io::crc32c(payload));
  out.append(payload);
}

// --- frame decode (incremental) ----------------------------------------

enum class DecodeStatus : std::uint8_t {
  kNeedMore,  ///< buffer holds a prefix of a frame; read more bytes
  kFrame,     ///< one intact frame decoded; drop `consumed` bytes
  kError,     ///< stream is unrecoverable (bad magic / CRC / oversized)
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;               ///< valid when status == kFrame
  std::size_t consumed = 0;  ///< bytes of `buf` the frame occupied
  const char* error = nullptr;  ///< static reason when status == kError
};

/// Attempts to decode one frame from the front of `buf`. Never throws
/// and never allocates: a torn, truncated, oversized or corrupt stream
/// yields kNeedMore or kError. On kError the connection must be closed —
/// after a framing violation the byte stream has no trustworthy
/// resynchronization point.
[[nodiscard]] inline DecodeResult decode_frame(std::string_view buf) {
  DecodeResult r;
  if (buf.size() < kHeaderSize) return r;  // kNeedMore
  detail::PayloadReader reader(buf);
  std::uint32_t magic = 0;
  std::uint16_t reserved = 0;
  FrameHeader& h = r.frame.header;
  (void)reader.read(magic);
  (void)reader.read(h.opcode);
  (void)reader.read(h.flags);
  (void)reader.read(reserved);
  (void)reader.read(h.request_id);
  (void)reader.read(h.payload_len);
  (void)reader.read(h.payload_crc);
  if (magic != kFrameMagic) {
    r.status = DecodeStatus::kError;
    r.error = "bad frame magic";
    return r;
  }
  if (reserved != 0) {
    r.status = DecodeStatus::kError;
    r.error = "nonzero reserved field";
    return r;
  }
  if (h.payload_len > kMaxPayload) {
    // Rejected from the header alone: the payload is never read, let
    // alone buffered, so an attacker cannot force a 4 GiB allocation.
    r.status = DecodeStatus::kError;
    r.error = "payload length over cap";
    return r;
  }
  if (buf.size() < kHeaderSize + h.payload_len) return r;  // kNeedMore
  const std::string_view payload = buf.substr(kHeaderSize, h.payload_len);
  if (io::crc32c(payload) != h.payload_crc) {
    r.status = DecodeStatus::kError;
    r.error = "payload CRC mismatch";
    return r;
  }
  r.frame.payload = payload;
  r.consumed = kHeaderSize + h.payload_len;
  r.status = DecodeStatus::kFrame;
  return r;
}

// --- batch payloads -----------------------------------------------------
//
// QUERY / INSERT / ERASE request payload:
//   u32 count, then count x (u32 key_len, key bytes)
// QUERY / INSERT / ERASE response payload:
//   u32 count, then count verdict/ok bytes (0 or 1)

template <typename Key>
inline void append_key_batch(std::string& out, std::span<const Key> keys) {
  if (keys.size() > kMaxBatchKeys) {
    throw std::length_error("append_key_batch: too many keys");
  }
  detail::append_pod<std::uint32_t>(
      out, static_cast<std::uint32_t>(keys.size()));
  for (const auto& key : keys) {
    if (key.size() > kMaxKeyLen) {
      throw std::length_error("append_key_batch: key too long");
    }
    detail::append_pod<std::uint32_t>(
        out, static_cast<std::uint32_t>(key.size()));
    out.append(key.data(), key.size());
  }
}

/// Parses a key batch into views over `payload` (zero copies — the views
/// feed the word-engine batch path directly). Returns nullptr on
/// success, a static error reason otherwise. Caps are enforced before
/// the output vector grows past them.
[[nodiscard]] inline const char* parse_key_batch(
    std::string_view payload, std::vector<std::string_view>& keys) {
  keys.clear();
  detail::PayloadReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.read(count)) return "key batch: truncated count";
  if (count > kMaxBatchKeys) return "key batch: count over cap";
  // Each key needs at least its 4-byte length prefix: a cheap structural
  // bound that rejects absurd counts before reserve().
  if (payload.size() < sizeof(std::uint32_t) * (1 + std::size_t{count})) {
    return "key batch: count exceeds payload";
  }
  keys.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    if (!reader.read(len)) return "key batch: truncated key length";
    if (len > kMaxKeyLen) return "key batch: key length over cap";
    std::string_view key;
    if (!reader.read_view(len, key)) return "key batch: truncated key";
    keys.push_back(key);
  }
  if (!reader.exhausted()) return "key batch: trailing bytes";
  return nullptr;
}

inline void append_verdicts(std::string& out,
                            std::span<const std::uint8_t> verdicts) {
  detail::append_pod<std::uint32_t>(
      out, static_cast<std::uint32_t>(verdicts.size()));
  out.append(reinterpret_cast<const char*>(verdicts.data()),
             verdicts.size());
}

[[nodiscard]] inline const char* parse_verdicts(
    std::string_view payload, std::vector<std::uint8_t>& out) {
  out.clear();
  detail::PayloadReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.read(count)) return "verdicts: truncated count";
  if (count > kMaxBatchKeys) return "verdicts: count over cap";
  std::string_view bytes;
  if (!reader.read_view(count, bytes)) return "verdicts: truncated bytes";
  if (!reader.exhausted()) return "verdicts: trailing bytes";
  out.assign(bytes.begin(), bytes.end());
  return nullptr;
}

// --- fixed replies ------------------------------------------------------

/// STATS response payload (packed little-endian, 72 bytes).
struct StatsReply {
  std::uint64_t elements = 0;
  std::uint64_t memory_bits = 0;
  std::uint32_t k = 0;
  std::uint32_t g = 0;
  std::uint32_t b1 = 0;
  std::uint32_t n_max = 0;
  std::uint64_t stash_entries = 0;
  std::uint64_t overflow_events = 0;
  std::uint64_t underflow_events = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t uptime_seconds = 0;  ///< server process uptime
};
static_assert(std::is_trivially_copyable_v<StatsReply> &&
              sizeof(StatsReply) == 72);

/// HEALTH response payload (packed little-endian, 48 bytes). `ready` is
/// the servability bit: 1 while the server accepts work, 0 once it is
/// draining — a load balancer keys on it, `severity` is the filter-
/// saturation classification (metrics::Severity).
struct HealthReply {
  std::uint8_t severity = 0;
  std::uint8_t ready = 0;
  std::uint8_t reserved[6] = {};
  double saturation_score = 0.0;
  double level1_fill = 0.0;
  double measured_fpr = 0.0;
  double fpr_drift = 0.0;
  std::uint64_t elements = 0;
};
static_assert(std::is_trivially_copyable_v<HealthReply> &&
              sizeof(HealthReply) == 48);

/// SNAPSHOT response payload.
struct SnapshotReply {
  std::uint64_t last_seq = 0;
};

// --- replication payloads -----------------------------------------------
//
// REPLICATE request payload (24 bytes): the follower asks for journal
// records at or after `from_seq`. Requesting from N is the ack for
// everything below N — the primary tracks it as the follower's durable
// watermark, so the poll stream needs no separate ack message.
struct ReplicateRequest {
  std::uint64_t follower_id = 0;  ///< stable id for lag accounting
  std::uint64_t from_seq = 1;     ///< first sequence number wanted
  std::uint32_t max_records = 0;  ///< 0 = server default
  std::uint32_t max_bytes = 0;    ///< 0 = server default
};
static_assert(std::is_trivially_copyable_v<ReplicateRequest> &&
              sizeof(ReplicateRequest) == 24);

/// REPLICATE response payload: this header, then `count` records of
/// (seq u64 | op u8 | key_len u32 | key bytes) — the journal's record
/// layout minus the per-record CRC, which the frame CRC subsumes.
struct ReplicateInfo {
  std::uint64_t next_seq = 1;  ///< primary's next journal sequence
  std::uint64_t base_seq = 1;  ///< primary's journal compaction floor
  std::uint32_t count = 0;     ///< records following this header
  std::uint8_t need_snapshot = 0;  ///< 1: from_seq was compacted away
  std::uint8_t reserved[3] = {};
};
static_assert(std::is_trivially_copyable_v<ReplicateInfo> &&
              sizeof(ReplicateInfo) == 24);

/// SNAPFETCH request payload (16 bytes): one chunk of the primary's
/// consistent snapshot image, starting at `offset`.
struct SnapFetchRequest {
  std::uint64_t offset = 0;
  std::uint32_t max_bytes = 0;  ///< 0 = server default
  std::uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<SnapFetchRequest> &&
              sizeof(SnapFetchRequest) == 16);

/// SNAPFETCH response payload: this header, then `len` image bytes.
/// `watermark` identifies the image; a different watermark at a nonzero
/// offset means the image was regenerated and the fetch must restart.
struct SnapFetchInfo {
  std::uint64_t watermark = 0;    ///< journal seq the image captures
  std::uint64_t total_bytes = 0;  ///< full image size
  std::uint64_t offset = 0;       ///< echo of the requested offset
  std::uint32_t len = 0;          ///< bytes following this header
  std::uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<SnapFetchInfo> &&
              sizeof(SnapFetchInfo) == 32);

/// Replication role reported by REPLSTATUS.
enum class ReplRole : std::uint8_t {
  kNone = 0,      ///< memory-only backend, nothing to replicate
  kPrimary = 1,   ///< durable backend serving REPLICATE/SNAPFETCH
  kFollower = 2,  ///< tailing another node's journal
};

/// REPLSTATUS response payload (48 bytes). On a primary, `acked_seq` /
/// `min_acked_seq` / `lag_records` describe the follower fleet; on a
/// follower they describe its own position against its upstream.
struct ReplStatusReply {
  std::uint8_t role = 0;       ///< ReplRole
  std::uint8_t caught_up = 0;  ///< 1 when lag_records == 0
  std::uint8_t reserved[6] = {};
  std::uint64_t next_seq = 1;       ///< local journal next sequence
  std::uint64_t acked_seq = 0;      ///< highest locally durable sequence
  std::uint64_t followers = 0;      ///< registered followers (primary)
  std::uint64_t min_acked_seq = 0;  ///< slowest follower (primary)
  std::uint64_t lag_records = 0;    ///< records not yet fleet-durable
};
static_assert(std::is_trivially_copyable_v<ReplStatusReply> &&
              sizeof(ReplStatusReply) == 48);

/// Payload prefix carried by kFlagSequenced mutations (16 bytes).
struct SequencePrefix {
  std::uint64_t session_id = 0;  ///< random per client session
  std::uint64_t op_seq = 0;      ///< monotonic per session; retries reuse
};
static_assert(std::is_trivially_copyable_v<SequencePrefix> &&
              sizeof(SequencePrefix) == 16);

/// Payload prefix carried by kFlagTraced requests (8 bytes). Retries of
/// one logical operation reuse the trace id, like SequencePrefix::op_seq
/// — the id names the operation, not the attempt.
struct TracePrefix {
  std::uint64_t trace_id = 0;  ///< nonzero, client-chosen
};
static_assert(std::is_trivially_copyable_v<TracePrefix> &&
              sizeof(TracePrefix) == 8);

inline void append_trace_prefix(std::string& out,
                                const TracePrefix& prefix) {
  detail::append_pod(out, prefix);
}

/// Splits a kFlagTraced payload into its TracePrefix and the remainder
/// (which parses exactly as the untraced payload would — key batch,
/// request POD, or empty). `rest` views into `payload`. Returns nullptr
/// on success; a payload shorter than the prefix is rejected byte-for-
/// byte, same as parse_sequenced_key_batch.
[[nodiscard]] inline const char* parse_trace_prefix(
    std::string_view payload, TracePrefix& prefix,
    std::string_view& rest) {
  if (payload.size() < sizeof(TracePrefix)) {
    return "traced request: truncated trace prefix";
  }
  std::memcpy(&prefix, payload.data(), sizeof prefix);
  if (prefix.trace_id == 0) {
    return "traced request: zero trace id";
  }
  rest = payload.substr(sizeof prefix);
  return nullptr;
}

// --- namespaces ---------------------------------------------------------
//
// A namespaced request (kFlagNamespaced) carries its target namespace as
// a payload prefix: u8 name_len | name bytes. Names are restricted to
// [A-Za-z0-9_.-] so they are safe verbatim as Prometheus label values,
// directory-name components (`dir/ns-<name>/`) and log fields — the
// validation happens at decode time, before any registry lookup or
// allocation keyed on the name.

/// True iff `name` is a wire-legal namespace name (1..kMaxNamespaceLen
/// bytes of [A-Za-z0-9_.-], not starting with a dot so `ns-<name>`
/// directories can never be `ns-.` / `ns-..` path tricks).
[[nodiscard]] inline bool namespace_name_valid(
    std::string_view name) noexcept {
  if (name.empty() || name.size() > kMaxNamespaceLen) return false;
  if (name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

inline void append_ns_prefix(std::string& out, std::string_view name) {
  if (!namespace_name_valid(name)) {
    throw std::invalid_argument("append_ns_prefix: invalid namespace name");
  }
  detail::append_pod<std::uint8_t>(out,
                                   static_cast<std::uint8_t>(name.size()));
  out.append(name.data(), name.size());
}

/// Splits a kFlagNamespaced payload into its namespace name and the
/// remainder (which parses exactly as the un-namespaced payload would).
/// Both views alias `payload`. Returns nullptr on success.
[[nodiscard]] inline const char* parse_ns_prefix(std::string_view payload,
                                                 std::string_view& name,
                                                 std::string_view& rest) {
  detail::PayloadReader reader(payload);
  std::uint8_t len = 0;
  if (!reader.read(len)) return "namespaced request: truncated prefix";
  if (!reader.read_view(len, name)) {
    return "namespaced request: truncated name";
  }
  if (!namespace_name_valid(name)) {
    return "namespaced request: invalid namespace name";
  }
  rest = payload.substr(1 + std::size_t{len});
  return nullptr;
}

// EST_COUNT response payload: u32 count, then count x u32 min-counter
// estimates (one per request key, in request order).

inline void append_counts(std::string& out,
                          std::span<const std::uint32_t> counts) {
  if (counts.size() > kMaxBatchKeys) {
    throw std::length_error("append_counts: too many counts");
  }
  detail::append_pod<std::uint32_t>(
      out, static_cast<std::uint32_t>(counts.size()));
  for (const auto c : counts) detail::append_pod<std::uint32_t>(out, c);
}

[[nodiscard]] inline const char* parse_counts(
    std::string_view payload, std::vector<std::uint32_t>& out) {
  out.clear();
  detail::PayloadReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.read(count)) return "counts: truncated count";
  if (count > kMaxBatchKeys) return "counts: count over cap";
  if (payload.size() < sizeof(std::uint32_t) * (1 + std::size_t{count})) {
    return "counts: count exceeds payload";
  }
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t v = 0;
    if (!reader.read(v)) return "counts: truncated value";
    out.push_back(v);
  }
  if (!reader.exhausted()) return "counts: trailing bytes";
  return nullptr;
}

/// Backend kind a namespace is created with (NsConfigWire::kind).
enum class NsKind : std::uint8_t {
  kMemory = 0,         ///< Mpcbf, no persistence
  kDurable = 1,        ///< DurableMpcbf under dir/ns-<name>/
  kDecay = 2,          ///< DecayingMpcbf sliding window, no persistence
  kDurableDecay = 3,   ///< DurableDecayingMpcbf under dir/ns-<name>/
};

/// NSCREATE request payload: u8 name_len | name | NsConfigWire (packed
/// little-endian, 40 bytes). Zero quota fields mean unlimited.
struct NsConfigWire {
  std::uint8_t kind = 0;   ///< NsKind
  std::uint8_t k = 3;      ///< hash functions per element
  std::uint8_t g = 1;      ///< memory accesses per op
  std::uint8_t decay_generations = 0;  ///< sliding-window depth (decay kinds)
  /// Automatic decay cadence: the registry's ticker rotates the window
  /// every this many milliseconds. 0 = manual (NSTICK) only. Ignored for
  /// non-decay kinds.
  std::uint32_t tick_interval_ms = 0;
  std::uint64_t memory_bits = 1u << 20;
  std::uint64_t expected_n = 0;        ///< 0 = derive from memory_bits
  std::uint64_t max_keys = 0;          ///< quota; 0 = unlimited
  std::uint64_t max_memory_bytes = 0;  ///< quota; 0 = unlimited
};
static_assert(std::is_trivially_copyable_v<NsConfigWire> &&
              sizeof(NsConfigWire) == 40);

/// One NSLIST reply row's fixed part (follows u8 name_len | name).
struct NsRowWire {
  std::uint8_t kind = 0;               ///< NsKind
  std::uint8_t decay_generations = 0;
  std::uint8_t reserved[6] = {};
  std::uint64_t elements = 0;
  std::uint64_t memory_bits = 0;
  std::uint64_t max_keys = 0;
  std::uint64_t max_memory_bytes = 0;
  std::uint64_t decay_ticks = 0;
  std::uint64_t quota_rejections = 0;
};
static_assert(std::is_trivially_copyable_v<NsRowWire> &&
              sizeof(NsRowWire) == 56);

inline void append_ns_create(std::string& out, std::string_view name,
                             const NsConfigWire& cfg) {
  append_ns_prefix(out, name);
  detail::append_pod(out, cfg);
}

[[nodiscard]] inline const char* parse_ns_create(std::string_view payload,
                                                 std::string_view& name,
                                                 NsConfigWire& cfg) {
  std::string_view rest;
  if (const char* err = parse_ns_prefix(payload, name, rest)) return err;
  detail::PayloadReader reader(rest);
  if (!reader.read(cfg)) return "nscreate: truncated config";
  if (!reader.exhausted()) return "nscreate: trailing bytes";
  if (cfg.kind > static_cast<std::uint8_t>(NsKind::kDurableDecay)) {
    return "nscreate: unknown backend kind";
  }
  return nullptr;
}

/// NSDROP / NSTICK request payload is exactly a namespace prefix.
[[nodiscard]] inline const char* parse_ns_drop(std::string_view payload,
                                               std::string_view& name) {
  std::string_view rest;
  if (const char* err = parse_ns_prefix(payload, name, rest)) return err;
  if (!rest.empty()) return "nsdrop: trailing bytes";
  return nullptr;
}

/// NSTICK response payload: the tick ordinal the forced decay rotation
/// produced (1-based, monotonic per namespace).
struct NsTickReply {
  std::uint64_t ticks = 0;
};
static_assert(std::is_trivially_copyable_v<NsTickReply> &&
              sizeof(NsTickReply) == 8);

/// One decoded NSLIST row.
struct NsRow {
  std::string name;
  NsRowWire info;
};

inline void append_ns_list_reply(std::string& out,
                                 std::span<const NsRow> rows) {
  if (rows.size() > kMaxNamespaces) {
    throw std::length_error("append_ns_list_reply: too many rows");
  }
  detail::append_pod<std::uint32_t>(
      out, static_cast<std::uint32_t>(rows.size()));
  for (const auto& row : rows) {
    append_ns_prefix(out, row.name);
    detail::append_pod(out, row.info);
  }
}

[[nodiscard]] inline const char* parse_ns_list_reply(
    std::string_view payload, std::vector<NsRow>& rows) {
  rows.clear();
  detail::PayloadReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.read(count)) return "nslist reply: truncated count";
  if (count > kMaxNamespaces) return "nslist reply: count over cap";
  // Each row needs at least its name length byte plus the fixed part.
  if (payload.size() <
      sizeof(std::uint32_t) + (1 + sizeof(NsRowWire)) * std::size_t{count}) {
    return "nslist reply: count exceeds payload";
  }
  rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t len = 0;
    if (!reader.read(len)) return "nslist reply: truncated name length";
    std::string_view name;
    if (!reader.read_view(len, name)) return "nslist reply: truncated name";
    if (!namespace_name_valid(name)) return "nslist reply: invalid name";
    NsRow row;
    row.name.assign(name);
    if (!reader.read(row.info)) return "nslist reply: truncated row";
    rows.push_back(std::move(row));
  }
  if (!reader.exhausted()) return "nslist reply: trailing bytes";
  return nullptr;
}

inline void append_replicate_reply(
    std::string& out, const ReplicateInfo& info,
    std::span<const io::JournalRecord> records) {
  if (records.size() > kMaxReplicateRecords) {
    throw std::length_error("append_replicate_reply: too many records");
  }
  ReplicateInfo header = info;
  header.count = static_cast<std::uint32_t>(records.size());
  detail::append_pod(out, header);
  for (const auto& rec : records) {
    if (rec.key.size() > io::Journal::kMaxKeyLen) {
      throw std::length_error("append_replicate_reply: key too long");
    }
    detail::append_pod<std::uint64_t>(out, rec.seq);
    detail::append_pod<std::uint8_t>(out,
                                     static_cast<std::uint8_t>(rec.op));
    detail::append_pod<std::uint32_t>(
        out, static_cast<std::uint32_t>(rec.key.size()));
    out.append(rec.key);
  }
}

/// Parses a REPLICATE reply. Caps and structural bounds are enforced
/// before the record vector grows; records must carry consecutive
/// sequence numbers (a gap means the stream is not a journal suffix and
/// must be rejected, not applied). Returns nullptr on success.
[[nodiscard]] inline const char* parse_replicate_reply(
    std::string_view payload, ReplicateInfo& info,
    std::vector<io::JournalRecord>& records) {
  records.clear();
  detail::PayloadReader reader(payload);
  if (!reader.read(info)) return "replicate reply: truncated header";
  if (info.count > kMaxReplicateRecords) {
    return "replicate reply: record count over cap";
  }
  // Each record needs at least 13 bytes (seq + op + key_len): a cheap
  // structural bound that rejects absurd counts before reserve().
  if (payload.size() < sizeof(ReplicateInfo) + 13 * std::size_t{info.count}) {
    return "replicate reply: count exceeds payload";
  }
  records.reserve(info.count);
  for (std::uint32_t i = 0; i < info.count; ++i) {
    io::JournalRecord rec;
    std::uint8_t op = 0;
    std::uint32_t len = 0;
    if (!reader.read(rec.seq)) return "replicate reply: truncated seq";
    if (!reader.read(op)) return "replicate reply: truncated op";
    if (!reader.read(len)) return "replicate reply: truncated key length";
    if (op > io::kMaxJournalOp) return "replicate reply: unknown journal op";
    if (len > io::Journal::kMaxKeyLen) {
      return "replicate reply: key length over cap";
    }
    std::string_view key;
    if (!reader.read_view(len, key)) {
      return "replicate reply: truncated key";
    }
    if (!records.empty() && rec.seq != records.back().seq + 1) {
      return "replicate reply: non-consecutive sequence numbers";
    }
    rec.op = static_cast<io::JournalOp>(op);
    rec.key.assign(key);
    records.push_back(std::move(rec));
  }
  if (!reader.exhausted()) return "replicate reply: trailing bytes";
  return nullptr;
}

inline void append_snapfetch_reply(std::string& out,
                                   const SnapFetchInfo& info,
                                   std::string_view bytes) {
  if (bytes.size() > kMaxSnapChunk) {
    throw std::length_error("append_snapfetch_reply: chunk too large");
  }
  SnapFetchInfo header = info;
  header.len = static_cast<std::uint32_t>(bytes.size());
  detail::append_pod(out, header);
  out.append(bytes);
}

/// Parses a SNAPFETCH reply; `bytes` views into `payload`. Returns
/// nullptr on success.
[[nodiscard]] inline const char* parse_snapfetch_reply(
    std::string_view payload, SnapFetchInfo& info,
    std::string_view& bytes) {
  detail::PayloadReader reader(payload);
  if (!reader.read(info)) return "snapfetch reply: truncated header";
  if (info.len > kMaxSnapChunk) return "snapfetch reply: chunk over cap";
  if (info.total_bytes > kMaxSnapshotBytes) {
    return "snapfetch reply: image over cap";
  }
  if (info.offset > info.total_bytes ||
      info.len > info.total_bytes - info.offset) {
    return "snapfetch reply: chunk outside image";
  }
  if (!reader.read_view(info.len, bytes)) {
    return "snapfetch reply: truncated bytes";
  }
  if (!reader.exhausted()) return "snapfetch reply: trailing bytes";
  return nullptr;
}

template <typename Key>
inline void append_sequenced_key_batch(std::string& out,
                                       const SequencePrefix& prefix,
                                       std::span<const Key> keys) {
  detail::append_pod(out, prefix);
  append_key_batch(out, keys);
}

/// Splits a kFlagSequenced mutation payload into its SequencePrefix and
/// the key batch that follows. Returns nullptr on success.
[[nodiscard]] inline const char* parse_sequenced_key_batch(
    std::string_view payload, SequencePrefix& prefix,
    std::vector<std::string_view>& keys) {
  if (payload.size() < sizeof(SequencePrefix)) {
    return "sequenced batch: truncated prefix";
  }
  std::memcpy(&prefix, payload.data(), sizeof prefix);
  return parse_key_batch(payload.substr(sizeof prefix), keys);
}

template <typename Reply>
inline void append_reply_pod(std::string& out, const Reply& reply) {
  static_assert(std::is_trivially_copyable_v<Reply>);
  detail::append_pod(out, reply);
}

template <typename Reply>
[[nodiscard]] inline const char* parse_reply_pod(std::string_view payload,
                                                 Reply& out) {
  static_assert(std::is_trivially_copyable_v<Reply>);
  detail::PayloadReader reader(payload);
  if (!reader.read(out)) return "reply: truncated";
  if (!reader.exhausted()) return "reply: trailing bytes";
  return nullptr;
}

// --- decode-time shard routing ------------------------------------------
//
// Sharded servers (`mpcbfd serve --cores N`) partition the key space
// across N independently-owned filter shards. The routing hash lives
// here, next to the decoders, because the split happens at decode time:
// the moment a batch's keys are parsed out of the read buffer they are
// bucketed into per-shard sub-batches, and only sub-batches travel to
// owning workers. The hash is part of the on-disk contract too — each
// shard's WAL only ever holds keys that route to it, so recovery must
// use the same seed forever.
//
// The routing seed is distinct from the filter's own hash seeds: a key
// must not land on shard i *because* of the bits it will probe inside
// shard i's filter, or shard-local FPR would correlate with placement.

/// Seed for the shard-routing hash (never reused by filter internals).
inline constexpr std::uint64_t kShardRouteSeed = 0xA0761D6478BD642Full;

/// Owning shard for `key` among `shards` equal partitions. Uses the
/// multiply-shift range reduction (no modulo, unbiased for any shard
/// count) over a dedicated xxhash64 seed. shards <= 1 short-circuits so
/// the flat path pays nothing.
[[nodiscard]] inline std::uint32_t shard_of(std::string_view key,
                                            std::uint32_t shards) noexcept {
  if (shards <= 1) return 0;
  const std::uint64_t h = hash::xxhash64(key, kShardRouteSeed);
  return static_cast<std::uint32_t>(
      (static_cast<unsigned __int128>(h) * shards) >> 64);
}

/// Decode-time batch split: per-shard key-index lists, reusable across
/// requests (the vectors keep their capacity between resets, so a busy
/// connection splits batches with no steady-state allocation).
struct ShardSplit {
  /// idx[s] lists positions into the original key batch, in arrival
  /// order — gather uses the same lists to scatter sub-batch verdicts
  /// back into the reply, which is what keeps the wire protocol
  /// byte-identical to the single-shard server.
  std::vector<std::vector<std::uint32_t>> idx;
  /// Number of shards with at least one key (1 => batch is single-shard
  /// and can be served inline with zero copies).
  std::uint32_t active = 0;
  /// The single active shard when active == 1.
  std::uint32_t solo = 0;

  void reset(std::uint32_t shards) {
    idx.resize(shards);
    for (auto& v : idx) v.clear();
    active = 0;
    solo = 0;
  }
};

/// Buckets `keys` into `split` (which must be reset(shards) first).
inline void split_by_shard(std::span<const std::string_view> keys,
                           std::uint32_t shards, ShardSplit& split) {
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t s = shard_of(keys[i], shards);
    if (split.idx[s].empty()) {
      ++split.active;
      split.solo = s;
    }
    split.idx[s].push_back(i);
  }
}

// --- error payload ------------------------------------------------------

inline void append_error(std::string& out, ErrorCode code,
                         std::string_view message) {
  detail::append_pod<std::uint32_t>(out,
                                    static_cast<std::uint32_t>(code));
  const auto len = static_cast<std::uint32_t>(
      std::min<std::size_t>(message.size(), 512));
  detail::append_pod<std::uint32_t>(out, len);
  out.append(message.data(), len);
}

struct WireError {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

[[nodiscard]] inline const char* parse_error(std::string_view payload,
                                             WireError& out) {
  detail::PayloadReader reader(payload);
  std::uint32_t code = 0;
  std::uint32_t len = 0;
  if (!reader.read(code)) return "error reply: truncated code";
  if (!reader.read(len)) return "error reply: truncated length";
  if (len > 512) return "error reply: message over cap";
  std::string_view msg;
  if (!reader.read_view(len, msg)) return "error reply: truncated message";
  out.code = static_cast<ErrorCode>(code);
  out.message.assign(msg);
  return nullptr;
}

}  // namespace mpcbf::net
