// Wire protocol for mpcbfd — the length-prefixed, CRC32C-framed binary
// format the filter server and client library speak.
//
// Every message (request or response) is one frame:
//
//   offset  size  field
//   0       4     frame magic 0x314E504D ("MPN1", little-endian u32)
//   4       1     opcode (Opcode enum)
//   5       1     flags (bit0 = response, bit1 = error)
//   6       2     reserved (must be 0)
//   8       8     request id (u64; a response echoes its request's id)
//   16      4     payload length in bytes (u32)
//   20      4     CRC32C of the payload bytes (u32)
//   24      len   payload
//
// The header is fixed-size so a reader knows exactly how many bytes to
// wait for; the CRC covers the payload, so a frame is either delivered
// intact or rejected before a single payload byte reaches a parser —
// the same discipline io/crc32c.hpp enforces for snapshots. Requests
// are batched (one frame carries up to kMaxBatchKeys keys) because the
// whole point of the serving layer is to amortize the syscall + parse
// cost over the word-engine batch pipeline; see docs/server.md for
// batching guidance.
//
// Hostile-input hardening mirrors the snapshot loaders: every length
// field is validated against a cap *before* any allocation
// (kMaxPayload, kMaxBatchKeys, kMaxKeyLen), and decoded keys are
// string_views into the connection's read buffer — a request batch is
// processed with zero per-key allocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "io/crc32c.hpp"

namespace mpcbf::net {

inline constexpr std::uint32_t kFrameMagic = 0x314E504Du;  // "MPN1"
inline constexpr std::size_t kHeaderSize = 24;
/// Frame payload cap: anything larger is rejected from the header alone,
/// before allocation (a hostile length field must not become an
/// allocation bomb — same rule as io::kMaxFramePayload).
inline constexpr std::uint32_t kMaxPayload = 1u << 24;  // 16 MiB
/// Keys per batched request.
inline constexpr std::uint32_t kMaxBatchKeys = 1u << 16;
/// Bytes per key.
inline constexpr std::uint32_t kMaxKeyLen = 4096;

enum class Opcode : std::uint8_t {
  kQuery = 1,     ///< batched membership; reply = verdict per key
  kInsert = 2,    ///< batched insert; reply = ok flag per key
  kErase = 3,     ///< batched erase; reply = ok flag per key
  kStats = 4,     ///< filter layout + counters (StatsReply)
  kHealth = 5,    ///< readiness + saturation probe (HealthReply)
  kSnapshot = 6,  ///< force a durable snapshot (SnapshotReply)
};

[[nodiscard]] constexpr bool opcode_known(std::uint8_t op) noexcept {
  return op >= 1 && op <= 6;
}

[[nodiscard]] constexpr const char* to_string(Opcode op) noexcept {
  switch (op) {
    case Opcode::kQuery: return "query";
    case Opcode::kInsert: return "insert";
    case Opcode::kErase: return "erase";
    case Opcode::kStats: return "stats";
    case Opcode::kHealth: return "health";
    case Opcode::kSnapshot: return "snapshot";
  }
  return "?";
}

inline constexpr std::uint8_t kFlagResponse = 0x1;
inline constexpr std::uint8_t kFlagError = 0x2;

/// Error codes carried by an error response payload.
enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,    ///< frame was intact but its payload is malformed
  kUnsupported = 2,   ///< opcode not supported by this backend
  kInternal = 3,      ///< backend threw while serving the request
  kShuttingDown = 4,  ///< server is draining; retry against another node
};

struct FrameHeader {
  std::uint8_t opcode = 0;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// A decoded frame; `payload` views into the caller's buffer and is only
/// valid until that buffer is mutated.
struct Frame {
  FrameHeader header;
  std::string_view payload;
};

// --- low-level append/read helpers (little-endian PODs, like io/) -------

namespace detail {

template <typename T>
inline void append_pod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Bounds-checked sequential reader over a payload view. read() returns
/// false on truncation instead of throwing — the decoder turns that into
/// a clean protocol error.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view buf) : buf_(buf) {}

  template <typename T>
  [[nodiscard]] bool read(T& v) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    if (buf_.size() - pos_ < sizeof v) return false;
    std::memcpy(&v, buf_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return true;
  }

  [[nodiscard]] bool read_view(std::size_t len,
                               std::string_view& out) noexcept {
    if (buf_.size() - pos_ < len) return false;
    out = buf_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == buf_.size();
  }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace detail

// --- frame encode -------------------------------------------------------

/// Appends one complete frame (header + payload) to `out`. The payload
/// must already respect kMaxPayload; callers build payloads with the
/// append_* helpers below, which enforce the caps.
inline void append_frame(std::string& out, Opcode op, std::uint8_t flags,
                         std::uint64_t request_id,
                         std::string_view payload) {
  detail::append_pod<std::uint32_t>(out, kFrameMagic);
  detail::append_pod<std::uint8_t>(out, static_cast<std::uint8_t>(op));
  detail::append_pod<std::uint8_t>(out, flags);
  detail::append_pod<std::uint16_t>(out, 0);  // reserved
  detail::append_pod<std::uint64_t>(out, request_id);
  detail::append_pod<std::uint32_t>(
      out, static_cast<std::uint32_t>(payload.size()));
  detail::append_pod<std::uint32_t>(out, io::crc32c(payload));
  out.append(payload);
}

// --- frame decode (incremental) ----------------------------------------

enum class DecodeStatus : std::uint8_t {
  kNeedMore,  ///< buffer holds a prefix of a frame; read more bytes
  kFrame,     ///< one intact frame decoded; drop `consumed` bytes
  kError,     ///< stream is unrecoverable (bad magic / CRC / oversized)
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  Frame frame;               ///< valid when status == kFrame
  std::size_t consumed = 0;  ///< bytes of `buf` the frame occupied
  const char* error = nullptr;  ///< static reason when status == kError
};

/// Attempts to decode one frame from the front of `buf`. Never throws
/// and never allocates: a torn, truncated, oversized or corrupt stream
/// yields kNeedMore or kError. On kError the connection must be closed —
/// after a framing violation the byte stream has no trustworthy
/// resynchronization point.
[[nodiscard]] inline DecodeResult decode_frame(std::string_view buf) {
  DecodeResult r;
  if (buf.size() < kHeaderSize) return r;  // kNeedMore
  detail::PayloadReader reader(buf);
  std::uint32_t magic = 0;
  std::uint16_t reserved = 0;
  FrameHeader& h = r.frame.header;
  (void)reader.read(magic);
  (void)reader.read(h.opcode);
  (void)reader.read(h.flags);
  (void)reader.read(reserved);
  (void)reader.read(h.request_id);
  (void)reader.read(h.payload_len);
  (void)reader.read(h.payload_crc);
  if (magic != kFrameMagic) {
    r.status = DecodeStatus::kError;
    r.error = "bad frame magic";
    return r;
  }
  if (reserved != 0) {
    r.status = DecodeStatus::kError;
    r.error = "nonzero reserved field";
    return r;
  }
  if (h.payload_len > kMaxPayload) {
    // Rejected from the header alone: the payload is never read, let
    // alone buffered, so an attacker cannot force a 4 GiB allocation.
    r.status = DecodeStatus::kError;
    r.error = "payload length over cap";
    return r;
  }
  if (buf.size() < kHeaderSize + h.payload_len) return r;  // kNeedMore
  const std::string_view payload = buf.substr(kHeaderSize, h.payload_len);
  if (io::crc32c(payload) != h.payload_crc) {
    r.status = DecodeStatus::kError;
    r.error = "payload CRC mismatch";
    return r;
  }
  r.frame.payload = payload;
  r.consumed = kHeaderSize + h.payload_len;
  r.status = DecodeStatus::kFrame;
  return r;
}

// --- batch payloads -----------------------------------------------------
//
// QUERY / INSERT / ERASE request payload:
//   u32 count, then count x (u32 key_len, key bytes)
// QUERY / INSERT / ERASE response payload:
//   u32 count, then count verdict/ok bytes (0 or 1)

template <typename Key>
inline void append_key_batch(std::string& out, std::span<const Key> keys) {
  if (keys.size() > kMaxBatchKeys) {
    throw std::length_error("append_key_batch: too many keys");
  }
  detail::append_pod<std::uint32_t>(
      out, static_cast<std::uint32_t>(keys.size()));
  for (const auto& key : keys) {
    if (key.size() > kMaxKeyLen) {
      throw std::length_error("append_key_batch: key too long");
    }
    detail::append_pod<std::uint32_t>(
        out, static_cast<std::uint32_t>(key.size()));
    out.append(key.data(), key.size());
  }
}

/// Parses a key batch into views over `payload` (zero copies — the views
/// feed the word-engine batch path directly). Returns nullptr on
/// success, a static error reason otherwise. Caps are enforced before
/// the output vector grows past them.
[[nodiscard]] inline const char* parse_key_batch(
    std::string_view payload, std::vector<std::string_view>& keys) {
  keys.clear();
  detail::PayloadReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.read(count)) return "key batch: truncated count";
  if (count > kMaxBatchKeys) return "key batch: count over cap";
  // Each key needs at least its 4-byte length prefix: a cheap structural
  // bound that rejects absurd counts before reserve().
  if (payload.size() < sizeof(std::uint32_t) * (1 + std::size_t{count})) {
    return "key batch: count exceeds payload";
  }
  keys.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    if (!reader.read(len)) return "key batch: truncated key length";
    if (len > kMaxKeyLen) return "key batch: key length over cap";
    std::string_view key;
    if (!reader.read_view(len, key)) return "key batch: truncated key";
    keys.push_back(key);
  }
  if (!reader.exhausted()) return "key batch: trailing bytes";
  return nullptr;
}

inline void append_verdicts(std::string& out,
                            std::span<const std::uint8_t> verdicts) {
  detail::append_pod<std::uint32_t>(
      out, static_cast<std::uint32_t>(verdicts.size()));
  out.append(reinterpret_cast<const char*>(verdicts.data()),
             verdicts.size());
}

[[nodiscard]] inline const char* parse_verdicts(
    std::string_view payload, std::vector<std::uint8_t>& out) {
  out.clear();
  detail::PayloadReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.read(count)) return "verdicts: truncated count";
  if (count > kMaxBatchKeys) return "verdicts: count over cap";
  std::string_view bytes;
  if (!reader.read_view(count, bytes)) return "verdicts: truncated bytes";
  if (!reader.exhausted()) return "verdicts: trailing bytes";
  out.assign(bytes.begin(), bytes.end());
  return nullptr;
}

// --- fixed replies ------------------------------------------------------

/// STATS response payload (packed little-endian, 64 bytes).
struct StatsReply {
  std::uint64_t elements = 0;
  std::uint64_t memory_bits = 0;
  std::uint32_t k = 0;
  std::uint32_t g = 0;
  std::uint32_t b1 = 0;
  std::uint32_t n_max = 0;
  std::uint64_t stash_entries = 0;
  std::uint64_t overflow_events = 0;
  std::uint64_t underflow_events = 0;
  std::uint64_t requests_served = 0;
};
static_assert(std::is_trivially_copyable_v<StatsReply> &&
              sizeof(StatsReply) == 64);

/// HEALTH response payload (packed little-endian, 48 bytes). `ready` is
/// the servability bit: 1 while the server accepts work, 0 once it is
/// draining — a load balancer keys on it, `severity` is the filter-
/// saturation classification (metrics::Severity).
struct HealthReply {
  std::uint8_t severity = 0;
  std::uint8_t ready = 0;
  std::uint8_t reserved[6] = {};
  double saturation_score = 0.0;
  double level1_fill = 0.0;
  double measured_fpr = 0.0;
  double fpr_drift = 0.0;
  std::uint64_t elements = 0;
};
static_assert(std::is_trivially_copyable_v<HealthReply> &&
              sizeof(HealthReply) == 48);

/// SNAPSHOT response payload.
struct SnapshotReply {
  std::uint64_t last_seq = 0;
};

template <typename Reply>
inline void append_reply_pod(std::string& out, const Reply& reply) {
  static_assert(std::is_trivially_copyable_v<Reply>);
  detail::append_pod(out, reply);
}

template <typename Reply>
[[nodiscard]] inline const char* parse_reply_pod(std::string_view payload,
                                                 Reply& out) {
  static_assert(std::is_trivially_copyable_v<Reply>);
  detail::PayloadReader reader(payload);
  if (!reader.read(out)) return "reply: truncated";
  if (!reader.exhausted()) return "reply: trailing bytes";
  return nullptr;
}

// --- error payload ------------------------------------------------------

inline void append_error(std::string& out, ErrorCode code,
                         std::string_view message) {
  detail::append_pod<std::uint32_t>(out,
                                    static_cast<std::uint32_t>(code));
  const auto len = static_cast<std::uint32_t>(
      std::min<std::size_t>(message.size(), 512));
  detail::append_pod<std::uint32_t>(out, len);
  out.append(message.data(), len);
}

struct WireError {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

[[nodiscard]] inline const char* parse_error(std::string_view payload,
                                             WireError& out) {
  detail::PayloadReader reader(payload);
  std::uint32_t code = 0;
  std::uint32_t len = 0;
  if (!reader.read(code)) return "error reply: truncated code";
  if (!reader.read(len)) return "error reply: truncated length";
  if (len > 512) return "error reply: message over cap";
  std::string_view msg;
  if (!reader.read_view(len, msg)) return "error reply: truncated message";
  out.code = static_cast<ErrorCode>(code);
  out.message.assign(msg);
  return nullptr;
}

}  // namespace mpcbf::net
