#include "net/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <limits>
#include <utility>

#include "common/log.hpp"
#include "metrics/build_info.hpp"
#include "net/namespace_registry.hpp"
#include "metrics/registry.hpp"
#include "metrics/timer.hpp"
#include "trace/trace.hpp"

namespace mpcbf::net {

namespace {

/// Read chunk size. Large enough that a 64-key batch of short keys
/// arrives in one syscall; small enough that a slow connection does not
/// pin memory.
constexpr std::size_t kReadChunk = 64 * 1024;

/// A read buffer may hold at most one maximal frame plus one read chunk
/// of the next; a peer that streams more without ever completing a
/// frame is hostile or broken.
constexpr std::size_t kMaxReadBuffer =
    kHeaderSize + kMaxPayload + kReadChunk;

/// Sharded mode: run the shard's maintenance hook (elastic compaction
/// step) after this many mutation sub-batches.
constexpr std::uint64_t kMaintainEvery = 64;

/// Per-direction SPSC ring capacity (sub-batch descriptors, not bytes).
constexpr std::size_t kRingCapacity = 1024;

}  // namespace

// Per-op serving metrics, registered once into the global registry (the
// registry owns the cells; references stay valid for the process).
struct Server::ServerMetrics {
  metrics::Counter* requests[4];
  metrics::Counter* keys[4];
  /// Service-time histograms for every served opcode, indexed by
  /// opcode - 1 (REPLICATE/SNAPFETCH/REPLSTATUS included — replication
  /// tail latency is an operator signal, not an implementation detail).
  metrics::Histogram* duration_ns[kMaxOpcode];
  metrics::Counter& connections = metrics::Registry::global().counter(
      "mpcbf_server_connections_total", "Connections accepted");
  metrics::Gauge& active = metrics::Registry::global().gauge(
      "mpcbf_server_active_connections", "Currently open connections");
  metrics::Counter& proto_errors = metrics::Registry::global().counter(
      "mpcbf_server_protocol_errors_total",
      "Connections dropped for framing violations (bad magic/CRC/size)");
  metrics::Counter& request_errors = metrics::Registry::global().counter(
      "mpcbf_server_request_errors_total",
      "Well-framed requests answered with an error reply");
  metrics::Counter& admin_requests = metrics::Registry::global().counter(
      "mpcbf_server_admin_requests_total",
      "STATS/HEALTH/SNAPSHOT requests served");
  metrics::Counter& timeouts = metrics::Registry::global().counter(
      "mpcbf_server_timeouts_total",
      "Connections closed after a partial frame stalled past "
      "frame_timeout");
  metrics::Counter& repl_requests = metrics::Registry::global().counter(
      "mpcbf_server_replication_requests_total",
      "REPLICATE/SNAPFETCH/REPLSTATUS requests served");
  metrics::Counter& deduped = metrics::Registry::global().counter(
      "mpcbf_server_deduped_mutations_total",
      "Sequenced mutations answered from the dedup cache");
  metrics::Histogram& batch_keys = metrics::Registry::global().histogram(
      "mpcbf_server_batch_keys", "Keys per batched request");

  ServerMetrics() {
    static constexpr const char* kOps[4] = {"query", "insert", "erase",
                                            "est_count"};
    for (int i = 0; i < 4; ++i) {
      requests[i] = &metrics::Registry::global().counter(
          "mpcbf_server_requests_total", "Requests served by opcode",
          {{"op", kOps[i]}});
      keys[i] = &metrics::Registry::global().counter(
          "mpcbf_server_keys_total", "Keys processed by opcode",
          {{"op", kOps[i]}});
    }
    for (std::uint8_t op = 1; op <= kMaxOpcode; ++op) {
      duration_ns[op - 1] = &metrics::Registry::global().histogram(
          "mpcbf_server_request_duration_ns",
          "Request service time (decode to encoded reply), ns",
          {{"op", to_string(static_cast<Opcode>(op))}});
    }
  }

  static ServerMetrics& get() {
    static ServerMetrics m;
    return m;
  }
};

// One sub-batch: the slice of a request owned by a single shard. The
// origin worker fills keys/idx, the owner fills the result fields, and
// the SPSC ring crossings (push release / pop acquire) order the two
// sides — no field needs its own synchronization.
struct Server::SubBatch {
  PendingReply* job = nullptr;
  std::uint32_t shard = 0;
  std::uint8_t op = 0;  ///< opcode byte
  /// Key views into the job's keybuf (stable while the job lives).
  std::vector<std::string_view> keys;
  /// Positions in the original batch — the gather map.
  std::vector<std::uint32_t> idx;
  std::vector<std::uint8_t> out;       ///< per-key verdicts
  std::vector<std::uint32_t> counts;   ///< per-key estimates (EST_COUNT)
  // Admin results (one variant used per opcode).
  StatsReply stats{};
  HealthReply health{};
  std::uint64_t watermark = 0;
  ShardBackend::Tail tail;
  std::uint64_t tail_from = 0;
  std::uint32_t tail_max_records = 0;
  std::uint64_t tail_max_bytes = 0;
  /// Nonempty: the shard's hook threw; the job answers kInternal.
  std::string error;
};

// One in-flight request on a connection's reply pipeline. Owned by the
// origin worker; `outstanding` and every field except the sub-batch
// result slots are touched by the origin thread only.
struct Server::PendingReply {
  Connection* conn = nullptr;  ///< null once the connection died
  std::size_t origin = 0;      ///< worker index that decoded the frame
  std::uint8_t opcode = 0;
  std::uint8_t flags = kFlagResponse;
  std::uint64_t request_id = 0;
  std::string payload;
  bool done = false;
  bool sequenced = false;
  SequencePrefix seq_prefix{};
  /// Owned copy of the batch's key bytes — the connection's read buffer
  /// may be compacted while sub-batches are still in flight.
  std::string keybuf;
  std::vector<std::string_view> keys;  ///< views into keybuf
  std::vector<SubBatch> subs;
  int outstanding = 0;
  ReplicateRequest repl_req{};  ///< normalized caps for the merge
  // Timing/diagnostics captured at decode time.
  std::uint64_t t0 = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t peer = 0;
  std::uint32_t batch_keys = 0;
};

struct Server::Connection {
  explicit Connection(Socket s)
      : sock(std::move(s)), peer(peer_id(sock.fd())) {}
  Socket sock;
  std::uint64_t peer = 0;  ///< packed IPv4 ip:port (slow-ring/log form)
  std::string rbuf;
  std::size_t rpos = 0;  ///< parsed prefix of rbuf (compacted lazily)
  std::string wbuf;
  std::size_t wpos = 0;  ///< flushed prefix of wbuf
  // Request-scoped scratch, reused so steady-state serving does not
  // allocate per request.
  std::vector<std::string_view> keys;
  std::vector<std::uint8_t> verdicts;
  std::vector<std::uint32_t> counts;
  std::string payload;
  ShardSplit split;
  /// In-flight requests in arrival order; replies are emitted strictly
  /// front-to-back, which keeps pipelined responses in request order
  /// even when sub-batches complete out of order across shards.
  std::deque<std::unique_ptr<PendingReply>> pipeline;
  bool want_write = false;  ///< EPOLLOUT currently armed
  bool dead = false;
  /// Peer closed its write half; the connection stays up until the
  /// pipeline has flushed, then closes.
  bool eof = false;
  // Slow-loris accounting: when the read buffer ends in a partial
  // frame, the time that partial first appeared. A peer may idle
  // between frames forever; it may not stall *inside* one.
  bool mid_frame = false;
  std::chrono::steady_clock::time_point partial_since{};
};

struct Server::Worker {
  std::size_t index = 0;
  EventLoop loop;
  std::mutex mu;
  std::vector<Socket> intake;  ///< accepted sockets awaiting adoption
  std::vector<std::unique_ptr<Connection>> conns;

  // --- sharded mode state (owner thread only) ---------------------------
  /// Producer-side parking lot, one FIFO per destination, for messages
  /// that found the ring full. Drained (in order, ahead of new pushes)
  /// every loop iteration.
  std::vector<std::deque<RingMsg>> overflow;
  bool has_overflow = false;
  /// Parked *work* messages (not completions). The drain protocol may
  /// not declare this origin finished while one exists — a peer would
  /// otherwise exit without serving it and deadlock the shutdown.
  std::size_t overflow_work = 0;
  /// Jobs whose connection died while sub-batches were still remote;
  /// kept alive until the last completion returns.
  std::vector<std::unique_ptr<PendingReply>> orphans;
  std::uint64_t mutation_subs = 0;  ///< since the last maintain()

  // Per-shard serving metrics (registry-owned; labeled {"shard", i}).
  metrics::Counter* shard_requests = nullptr;
  metrics::Counter* shard_keys = nullptr;
  metrics::Counter* ring_forwards = nullptr;
  metrics::Counter* ring_full = nullptr;

  // Drain state.
  bool draining = false;
  bool origin_done = false;
  std::chrono::steady_clock::time_point drain_deadline{};
};

Server::Server(FilterBackend backend, Options options)
    : backend_(std::move(backend)), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  metrics_ = &ServerMetrics::get();
}

Server::Server(ShardSet shards, Options options)
    : shards_(std::move(shards)),
      sharded_(true),
      options_(std::move(options)) {
  if (shards_.shards.empty()) {
    throw NetError("Server: empty shard set");
  }
  // Thread-per-core is the whole point: one worker owns each shard.
  options_.workers = shards_.shards.size();
  metrics_ = &ServerMetrics::get();
}

Server::~Server() { stop(); }

void Server::set_namespace_registry(
    std::shared_ptr<NamespaceRegistry> registry) {
  if (sharded_) {
    throw NetError(
        "Server: namespaces require the flat server (--cores 1)");
  }
  registry_ = std::move(registry);
}

bool Server::running() const noexcept {
  return started_.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire);
}

std::uint64_t Server::connections_accepted() const noexcept {
  return accepted_.load(std::memory_order_relaxed);
}

std::uint64_t Server::requests_served() const noexcept {
  return served_.load(std::memory_order_relaxed);
}

std::uint64_t Server::loop_iterations() const noexcept {
  std::uint64_t total = accept_loop_ ? accept_loop_->iterations() : 0;
  for (const auto& w : workers_) total += w->loop.iterations();
  return total;
}

void Server::start() {
  if (started_.exchange(true)) {
    throw NetError("Server::start: already started");
  }
  listener_ = listen_tcp(options_.bind_address, options_.port);
  set_nonblocking(listener_.fd(), true);
  port_ = local_port(listener_.fd());
  accept_loop_ = std::make_unique<EventLoop>();
  accept_loop_->add(listener_.fd(), false, nullptr);

  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->index = i;
    if (sharded_) {
      w->overflow.resize(options_.workers);
      auto& reg = metrics::Registry::global();
      const std::string shard = std::to_string(i);
      w->shard_requests = &reg.counter(
          "mpcbf_server_shard_requests_total",
          "Sub-batches executed against this shard", {{"shard", shard}});
      w->shard_keys = &reg.counter(
          "mpcbf_server_shard_keys_total",
          "Keys executed against this shard", {{"shard", shard}});
      w->ring_forwards = &reg.counter(
          "mpcbf_server_shard_ring_forwards_total",
          "Sub-batches forwarded to a peer shard over the SPSC rings",
          {{"shard", shard}});
      w->ring_full = &reg.counter(
          "mpcbf_server_shard_ring_full_total",
          "Ring messages parked on the overflow queue (ring full)",
          {{"shard", shard}});
    }
    workers_.push_back(std::move(w));
  }
  if (sharded_) {
    rings_.resize(options_.workers);
    for (std::size_t dest = 0; dest < options_.workers; ++dest) {
      rings_[dest].resize(options_.workers);
      for (std::size_t src = 0; src < options_.workers; ++src) {
        if (src == dest) continue;
        rings_[dest][src] =
            std::make_unique<SpscRing<RingMsg>>(kRingCapacity);
      }
    }
  }
  pool_ = std::make_unique<util::ThreadPool>(options_.workers);
  for (auto& w : workers_) {
    (void)pool_->submit([this, worker = w.get()] { worker_loop(*worker); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  MPCBF_LOG_INFO("server.start", log::str("bind", options_.bind_address),
                 log::u64("port", port_),
                 log::u64("workers", options_.workers),
                 log::u64("shards", sharded_ ? shards_.shards.size() : 1));
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    // A second caller still has to wait for the joins below, which the
    // first caller performs; make stop() safe to call twice by only
    // joining what is still joinable.
  } else {
    MPCBF_LOG_INFO("server.drain", log::u64("port", port_),
                   log::u64("requests_served", requests_served()));
  }
  if (accept_loop_) accept_loop_->wake();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) w->loop.wake();
  if (pool_) {
    pool_->stop();  // waits for every worker loop to drain and return
    pool_.reset();
    if (sharded_) {
      // All workers have exited (pool joined), so this thread is the
      // sole owner of every shard: take the final per-shard snapshots
      // sequentially and tie them together with the manifest.
      bool durable = false;
      for (const auto& s : shards_.shards) {
        if (s.snapshot) durable = true;
      }
      if (durable) {
        try {
          std::vector<std::uint64_t> marks;
          marks.reserve(shards_.shards.size());
          for (const auto& s : shards_.shards) {
            marks.push_back(s.snapshot ? s.snapshot() : 0);
          }
          if (shards_.manifest) shards_.manifest(marks);
        } catch (const std::exception& e) {
          MPCBF_LOG_ERROR("server.final_snapshot_failed",
                          log::str("error", e.what()));
        }
      }
    }
  }
  listener_.close();
}

void Server::acceptor_loop() {
  std::vector<EventLoop::Event> events;
  std::size_t next_worker = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    (void)accept_loop_->wait(events, -1);
    if (stopping_.load(std::memory_order_acquire)) break;
    for (;;) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN (or transient): back to the loop
      Socket conn(fd);
      set_nonblocking(fd, true);
      accepted_.fetch_add(1, std::memory_order_relaxed);
      metrics_->connections.inc();
      Worker& w = *workers_[next_worker];
      next_worker = (next_worker + 1) % workers_.size();
      {
        std::lock_guard<std::mutex> lock(w.mu);
        w.intake.push_back(std::move(conn));
      }
      w.loop.wake();
    }
  }
}

void Server::worker_loop(Worker& w) {
  std::vector<EventLoop::Event> events;
  for (;;) {
    // Adopt connections handed over by the acceptor.
    {
      std::lock_guard<std::mutex> lock(w.mu);
      for (auto& sock : w.intake) {
        auto c = std::make_unique<Connection>(std::move(sock));
        w.loop.add(c->sock.fd(), false, c.get());
        w.conns.push_back(std::move(c));
        metrics_->active.add(1.0);
      }
      w.intake.clear();
    }

    // Peer work first: remote sub-batches to execute, completions to
    // gather, parked ring messages to retry.
    if (sharded_) {
      (void)drain_rings(w);
      if (w.mutation_subs >= kMaintainEvery &&
          shards_.shards[w.index].maintain) {
        w.mutation_subs = 0;
        try {
          shards_.shards[w.index].maintain();
        } catch (const std::exception& e) {
          MPCBF_LOG_ERROR("server.maintain_failed",
                          log::u64("shard", w.index),
                          log::str("error", e.what()));
        }
      }
    }

    const auto now = std::chrono::steady_clock::now();
    if (stopping_.load(std::memory_order_acquire) && !w.draining) {
      w.draining = true;
      w.drain_deadline = now + options_.drain_timeout;
    }
    if (w.draining) {
      // In-flight work is whatever bytes arrived before the drain began;
      // serve it, wait for its sub-batches, flush it, close. Past the
      // deadline, close regardless (incomplete jobs become orphans and
      // are freed when their completions return).
      const bool expired = now >= w.drain_deadline;
      for (auto& c : w.conns) {
        if (c->dead) continue;
        try {
          if (!drain_frames(w, *c) || !flush_writes(*c)) c->dead = true;
        } catch (const NetError&) {
          c->dead = true;
        }
        if (expired ||
            (c->pipeline.empty() && c->wpos == c->wbuf.size())) {
          c->dead = true;
        }
      }
    }
    sweep_stalled(w);
    // Reap dead connections, orphaning jobs whose sub-batches are still
    // at peer shards (the job memory must outlive the completions).
    std::erase_if(w.conns, [&](const auto& c) {
      if (!c->dead) return false;
      for (auto& job : c->pipeline) {
        if (!job->done && job->outstanding > 0) {
          job->conn = nullptr;
          w.orphans.push_back(std::move(job));
        }
      }
      c->pipeline.clear();
      w.loop.del(c->sock.fd());
      metrics_->active.add(-1.0);
      return true;
    });

    if (w.draining) {
      if (!sharded_) {
        if (w.conns.empty()) return;
      } else {
        // Two-phase sharded drain. Phase 1 ends when this origin has no
        // connections left and no parked *work* for peers — from then
        // on it only produces completions. Phase 2 (serving-only) ends
        // when every origin is done, our inbound rings are empty, no
        // message of ours is parked, and every orphan has been freed:
        // at that point no sub-batch of ours is anywhere in the system.
        if (!w.origin_done && w.conns.empty() && w.overflow_work == 0) {
          w.origin_done = true;
          drained_origins_.fetch_add(1, std::memory_order_acq_rel);
          for (auto& other : workers_) {
            if (other.get() != &w) other->loop.wake();
          }
        }
        if (w.origin_done &&
            drained_origins_.load(std::memory_order_acquire) ==
                workers_.size() &&
            !w.has_overflow && w.orphans.empty()) {
          bool rings_empty = true;
          for (std::size_t src = 0; src < workers_.size(); ++src) {
            if (src != w.index && !rings_[w.index][src]->empty()) {
              rings_empty = false;
              break;
            }
          }
          if (rings_empty) {
            if (shards_.shards[w.index].wal_flush) {
              try {
                shards_.shards[w.index].wal_flush();
              } catch (const std::exception& e) {
                MPCBF_LOG_ERROR("server.wal_flush_failed",
                                log::u64("shard", w.index),
                                log::str("error", e.what()));
              }
            }
            return;
          }
        }
      }
    }

    // Idle means block forever: wakes come from the acceptor hand-off,
    // peer ring pushes and stop(). Finite timeouts exist only to retry
    // full rings, re-check drain progress, and sweep stalled frames.
    int timeout_ms = -1;
    if (w.has_overflow) {
      timeout_ms = 1;
    } else if (w.draining) {
      timeout_ms = 10;
    } else if (options_.frame_timeout.count() > 0) {
      auto earliest = std::chrono::steady_clock::time_point::max();
      for (const auto& c : w.conns) {
        if (!c->dead && c->mid_frame) {
          earliest =
              std::min(earliest, c->partial_since + options_.frame_timeout);
        }
      }
      if (earliest != std::chrono::steady_clock::time_point::max()) {
        const auto wait_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(earliest -
                                                                  now)
                .count() +
            1;
        timeout_ms = static_cast<int>(std::clamp<long long>(
            wait_ms, 1, std::numeric_limits<int>::max()));
      }
    }
    (void)w.loop.wait(events, timeout_ms);
    for (const auto& e : events) {
      auto* c = static_cast<Connection*>(e.data);
      if (c == nullptr || c->dead) continue;
      service_connection(w, *c, e.readable, e.error);
    }
  }
}

void Server::service_connection(Worker& w, Connection& c, bool readable,
                                bool broken) {
  try {
    if (readable || broken) {
      for (;;) {
        const std::size_t old = c.rbuf.size();
        if (old + kReadChunk > kMaxReadBuffer) {
          // One frame can never legitimately need this much buffer.
          metrics_->proto_errors.inc();
          c.dead = true;
          return;
        }
        c.rbuf.resize(old + kReadChunk);
        const std::ptrdiff_t n =
            read_some(c.sock.fd(), c.rbuf.data() + old, kReadChunk);
        c.rbuf.resize(old + (n > 0 ? static_cast<std::size_t>(n) : 0));
        if (n == 0) {  // EOF: serve what we have, then close
          c.eof = true;
          if (!drain_frames(w, c)) {
            c.dead = true;
            return;
          }
          // Stop watching the fd (level-triggered EOF would spin);
          // in-flight sub-batches finish via the rings and
          // pump_replies closes once the pipeline empties.
          w.loop.del(c.sock.fd());
          if (c.pipeline.empty()) {
            (void)flush_writes(c);
            c.dead = true;
          }
          return;
        }
        if (n < 0) break;  // EAGAIN: drained the socket
      }
      if (!drain_frames(w, c)) {
        c.dead = true;
        return;
      }
    }
    if (!flush_writes(c)) {
      c.dead = true;
      return;
    }
    update_write_interest(w, c);
  } catch (const NetError&) {
    c.dead = true;
  }
}

bool Server::drain_frames(Worker& w, Connection& c) {
  for (;;) {
    const std::string_view unparsed =
        std::string_view(c.rbuf).substr(c.rpos);
    const DecodeResult r = decode_frame(unparsed);
    if (r.status == DecodeStatus::kError) {
      // The byte stream lost framing; there is no safe resync point.
      metrics_->proto_errors.inc();
      MPCBF_LOG_WARN("server.protocol_error",
                     log::str("reason", r.error),
                     log::str("peer", format_peer(c.peer)));
      return false;
    }
    if (r.status == DecodeStatus::kNeedMore) break;
    if (sharded_) {
      serve_frame_sharded(w, c, r.frame);
    } else {
      serve_frame(w, c, r.frame);
    }
    c.rpos += r.consumed;
  }
  if (c.rpos > 0) {
    // Safe even with sub-batches in flight: a cross-shard scatter owns
    // a copy of its key bytes, and single-shard batches complete inline
    // before reaching this point.
    c.rbuf.erase(0, c.rpos);
    c.rpos = 0;
  }
  // Partial-frame deadline bookkeeping: the clock starts when a partial
  // frame first appears and resets whenever the buffer is drained to a
  // frame boundary.
  if (c.rbuf.empty()) {
    c.mid_frame = false;
  } else if (!c.mid_frame) {
    c.mid_frame = true;
    c.partial_since = std::chrono::steady_clock::now();
  }
  return true;
}

void Server::sweep_stalled(Worker& w) {
  if (options_.frame_timeout.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& c : w.conns) {
    if (c->dead || !c->mid_frame) continue;
    if (now - c->partial_since >= options_.frame_timeout) {
      // A peer stalled mid-frame left the stream in an ambiguous state;
      // the only safe move is to drop the connection — never to retry
      // the partial read into the next request.
      metrics_->timeouts.inc();
      MPCBF_LOG_WARN("server.frame_timeout",
                     log::str("peer", format_peer(c->peer)),
                     log::u64("buffered_bytes", c->rbuf.size()));
      c->dead = true;
    }
  }
}

void Server::serve_frame(Worker& w, Connection& c, const Frame& frame) {
  MPCBF_TRACE_SPAN(span, kNet, "net.request");
  const bool slow_capture = options_.slow_request_threshold.count() >= 0;
  const std::uint64_t t0 =
      (metrics::kStatsEnabled || slow_capture) ? metrics::now_ns() : 0;
  served_.fetch_add(1, std::memory_order_relaxed);
  const FrameHeader& h = frame.header;
  if ((h.flags & kFlagResponse) != 0 || !opcode_known(h.opcode)) {
    reply_error(w, c, frame, ErrorCode::kBadRequest,
                (h.flags & kFlagResponse) != 0
                    ? "response flag set on a request"
                    : "unknown opcode");
    return;
  }
  const auto op = static_cast<Opcode>(h.opcode);
  span.set_arg("opcode", h.opcode);
  // Traced requests carry the client's trace id as the first payload
  // bytes; strip the prefix so every downstream parser sees the plain
  // payload, and open the request span under the propagated id.
  Frame f = frame;
  TracePrefix trace;
  if ((h.flags & kFlagTraced) != 0) {
    std::string_view rest;
    if (const char* err = parse_trace_prefix(frame.payload, trace, rest);
        err != nullptr) {
      reply_error(w, c, frame, ErrorCode::kBadRequest, err);
      return;
    }
    f.payload = rest;
    span.set_arg("trace_id", trace.trace_id);
  }
  // Namespaced routing: strip the NamespacePrefix and resolve the
  // target backend. The resolved shared_ptr pins the namespace for the
  // rest of the request, so a concurrent NSDROP cannot free filter
  // state under a hook that is still running.
  const FilterBackend* be = &backend_;
  std::shared_ptr<const FilterBackend> ns_backend;
  std::string_view ns_name;
  if ((h.flags & kFlagNamespaced) != 0) {
    std::string_view rest;
    if (const char* err = parse_ns_prefix(f.payload, ns_name, rest);
        err != nullptr) {
      reply_error(w, c, frame, ErrorCode::kBadRequest, err);
      return;
    }
    f.payload = rest;
    if (op == Opcode::kNsCreate || op == Opcode::kNsDrop ||
        op == Opcode::kNsList || op == Opcode::kNsTick) {
      reply_error(w, c, frame, ErrorCode::kBadRequest,
                  "namespace admin opcodes are not namespaced");
      return;
    }
    if (registry_ == nullptr) {
      reply_error(w, c, frame, ErrorCode::kUnsupported,
                  "server has no namespace registry");
      return;
    }
    ns_backend = registry_->resolve(ns_name);
    if (ns_backend == nullptr) {
      reply_error(w, c, frame, ErrorCode::kUnknownNamespace,
                  "unknown namespace");
      return;
    }
    be = ns_backend.get();
  }
  c.payload.clear();
  std::size_t batch_keys = 0;
  try {
    switch (op) {
      case Opcode::kQuery:
      case Opcode::kInsert:
      case Opcode::kErase: {
        if ((h.flags & kFlagSequenced) != 0) {
          if (op == Opcode::kQuery) {
            reply_error(w, c, frame, ErrorCode::kBadRequest,
                        "sequenced flag on an idempotent opcode");
            return;
          }
          // Dedup path: fills c.payload (fresh apply or cached replay);
          // on false an error reply has already been sent.
          if (!serve_sequenced(w, c, f, op, *be)) return;
          batch_keys = c.keys.size();
          break;
        }
        if (const char* err = parse_key_batch(f.payload, c.keys);
            err != nullptr) {
          reply_error(w, c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        const auto& hook = op == Opcode::kQuery ? be->contains_batch
                           : op == Opcode::kInsert ? be->insert_batch
                                                   : be->erase_batch;
        if (!hook) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "opcode not supported by this backend");
          return;
        }
        if (op == Opcode::kInsert && be->admit) {
          if (const char* err = be->admit(c.keys.size());
              err != nullptr) {
            reply_error(w, c, frame, ErrorCode::kQuotaExceeded, err);
            return;
          }
        }
        c.verdicts.assign(c.keys.size(), 0);
        hook(c.keys, c.verdicts);
        append_verdicts(c.payload, c.verdicts);
        batch_keys = c.keys.size();
        const int idx = op == Opcode::kQuery ? 0
                        : op == Opcode::kInsert ? 1
                                                : 2;
        metrics_->requests[idx]->inc();
        metrics_->keys[idx]->inc(c.keys.size());
        metrics_->batch_keys.record(c.keys.size());
        break;
      }
      case Opcode::kStats: {
        if (!be->stats) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "stats not supported by this backend");
          return;
        }
        StatsReply s = be->stats();
        s.requests_served = served_.load(std::memory_order_relaxed);
        s.uptime_seconds = static_cast<std::uint64_t>(
            metrics::process_uptime_seconds());
        append_reply_pod(c.payload, s);
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kHealth: {
        if (!be->health) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "health not supported by this backend");
          return;
        }
        HealthReply r = be->health();
        // The backend's readiness veto (a follower still catching up)
        // ANDs with the server's own lifecycle bit.
        r.ready = running() && (!be->ready || be->ready()) ? 1 : 0;
        append_reply_pod(c.payload, r);
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kSnapshot: {
        if (!be->snapshot) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "backend has no durable storage");
          return;
        }
        SnapshotReply r;
        r.last_seq = be->snapshot();
        append_reply_pod(c.payload, r);
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kReplicate: {
        if (!be->replicate) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "replication requires a durable backend");
          return;
        }
        ReplicateRequest req;
        if (const char* err = parse_reply_pod(f.payload, req);
            err != nullptr) {
          reply_error(w, c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        if (const char* err = be->replicate(req, c.payload);
            err != nullptr) {
          reply_error(w, c, frame, ErrorCode::kInternal, err);
          return;
        }
        metrics_->repl_requests.inc();
        break;
      }
      case Opcode::kSnapFetch: {
        if (!be->snap_fetch) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "replication requires a durable backend");
          return;
        }
        SnapFetchRequest req;
        if (const char* err = parse_reply_pod(f.payload, req);
            err != nullptr) {
          reply_error(w, c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        if (const char* err = be->snap_fetch(req, c.payload);
            err != nullptr) {
          reply_error(w, c, frame, ErrorCode::kInternal, err);
          return;
        }
        metrics_->repl_requests.inc();
        break;
      }
      case Opcode::kReplStatus: {
        if (!be->repl_status) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "replication status requires a durable backend");
          return;
        }
        append_reply_pod(c.payload, be->repl_status());
        metrics_->repl_requests.inc();
        break;
      }
      case Opcode::kEstCount: {
        if (const char* err = parse_key_batch(f.payload, c.keys);
            err != nullptr) {
          reply_error(w, c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        if (!be->est_count) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "count estimation not supported by this backend");
          return;
        }
        c.counts.assign(c.keys.size(), 0);
        be->est_count(c.keys, c.counts);
        append_counts(c.payload, c.counts);
        batch_keys = c.keys.size();
        metrics_->requests[3]->inc();
        metrics_->keys[3]->inc(c.keys.size());
        metrics_->batch_keys.record(c.keys.size());
        break;
      }
      case Opcode::kNsCreate: {
        if (registry_ == nullptr) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "server has no namespace registry");
          return;
        }
        std::string_view name;
        NsConfigWire cfg;
        if (const char* err = parse_ns_create(f.payload, name, cfg);
            err != nullptr) {
          reply_error(w, c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        ErrorCode code = ErrorCode::kBadRequest;
        if (const std::string err = registry_->create(name, cfg, code);
            !err.empty()) {
          reply_error(w, c, frame, code, err);
          return;
        }
        metrics_->admin_requests.inc();
        break;  // success reply has an empty payload
      }
      case Opcode::kNsDrop: {
        if (registry_ == nullptr) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "server has no namespace registry");
          return;
        }
        std::string_view name;
        if (const char* err = parse_ns_drop(f.payload, name);
            err != nullptr) {
          reply_error(w, c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        ErrorCode code = ErrorCode::kBadRequest;
        if (const std::string err = registry_->drop(name, code);
            !err.empty()) {
          reply_error(w, c, frame, code, err);
          return;
        }
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kNsList: {
        if (registry_ == nullptr) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "server has no namespace registry");
          return;
        }
        if (!f.payload.empty()) {
          reply_error(w, c, frame, ErrorCode::kBadRequest,
                      "nslist: trailing bytes");
          return;
        }
        append_ns_list_reply(c.payload, registry_->list());
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kNsTick: {
        if (registry_ == nullptr) {
          reply_error(w, c, frame, ErrorCode::kUnsupported,
                      "server has no namespace registry");
          return;
        }
        std::string_view name;
        if (const char* err = parse_ns_drop(f.payload, name);
            err != nullptr) {
          reply_error(w, c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        NsTickReply r;
        ErrorCode code = ErrorCode::kBadRequest;
        if (const std::string err = registry_->tick(name, r.ticks, code);
            !err.empty()) {
          reply_error(w, c, frame, code, err);
          return;
        }
        append_reply_pod(c.payload, r);
        metrics_->admin_requests.inc();
        break;
      }
    }
  } catch (const std::exception& e) {
    MPCBF_LOG_ERROR("server.request_failed",
                    log::str("op", to_string(op)),
                    log::str("error", e.what()),
                    log::hex("trace_id", trace.trace_id),
                    log::str("peer", format_peer(c.peer)));
    reply_error(w, c, frame, ErrorCode::kInternal, e.what());
    return;
  }
  append_frame(c.wbuf, op, kFlagResponse, h.request_id, c.payload);
  const std::uint64_t dur =
      (metrics::kStatsEnabled || slow_capture) ? metrics::now_ns() - t0
                                               : 0;
  if (metrics::kStatsEnabled) {
    metrics_->duration_ns[h.opcode - 1]->record(dur);
  }
  if (slow_capture &&
      dur >= static_cast<std::uint64_t>(
                 options_.slow_request_threshold.count()) *
                 1000) {
    SlowRequest r;
    r.start_ns = t0;
    r.duration_ns = dur;
    r.trace_id = trace.trace_id;
    r.peer = c.peer;
    r.batch_keys = static_cast<std::uint32_t>(batch_keys);
    r.opcode = h.opcode;
    slow_ring_.record(r);
    MPCBF_LOG_WARN("server.slow_request", log::str("op", to_string(op)),
                   log::u64("duration_ns", dur),
                   log::u64("batch_keys", r.batch_keys),
                   log::hex("trace_id", trace.trace_id),
                   log::str("peer", format_peer(c.peer)));
  }
}

bool Server::serve_sequenced(Worker& w, Connection& c, const Frame& frame,
                             Opcode op, const FilterBackend& be) {
  SequencePrefix prefix;
  if (const char* err =
          parse_sequenced_key_batch(frame.payload, prefix, c.keys);
      err != nullptr) {
    reply_error(w, c, frame, ErrorCode::kBadRequest, err);
    return false;
  }
  const auto& hook =
      op == Opcode::kInsert ? be.insert_batch : be.erase_batch;
  if (!hook) {
    reply_error(w, c, frame, ErrorCode::kUnsupported,
                "opcode not supported by this backend");
    return false;
  }
  // The dedup lock is held across the apply so two concurrent retries
  // of the same op cannot both pass the check; mutations are already
  // serialized by the backend's exclusive lock, so this adds no new
  // contention. Lock order is dedup → backend, nowhere reversed.
  std::lock_guard<std::mutex> lock(dedup_mu_);
  auto it = dedup_.find(prefix.session_id);
  if (it != dedup_.end() && it->second.op_seq == prefix.op_seq) {
    if (it->second.opcode != static_cast<std::uint8_t>(op)) {
      reply_error(w, c, frame, ErrorCode::kBadRequest,
                  "sequence number reused across opcodes");
      return false;
    }
    c.payload = it->second.reply;  // retry: replay, never re-apply
    metrics_->deduped.inc();
    return true;
  }
  if (it != dedup_.end() && prefix.op_seq < it->second.op_seq) {
    reply_error(w, c, frame, ErrorCode::kBadRequest,
                "stale sequence number");
    return false;
  }
  // Quota-gate after the replay check: a retry of an already-applied
  // insert replays its cached reply and must never be re-judged.
  if (op == Opcode::kInsert && be.admit) {
    if (const char* err = be.admit(c.keys.size()); err != nullptr) {
      reply_error(w, c, frame, ErrorCode::kQuotaExceeded, err);
      return false;
    }
  }
  c.verdicts.assign(c.keys.size(), 0);
  hook(c.keys, c.verdicts);
  append_verdicts(c.payload, c.verdicts);
  if (it == dedup_.end()) {
    if (dedup_.size() >= kMaxDedupSessions) {
      // Bounded by eviction: correctness degrades to at-least-once for
      // a session idle long enough to be evicted, never unbounded RAM.
      dedup_.erase(dedup_.begin());
    }
    it = dedup_.emplace(prefix.session_id, DedupEntry{}).first;
  }
  it->second.op_seq = prefix.op_seq;
  it->second.opcode = static_cast<std::uint8_t>(op);
  it->second.reply = c.payload;
  const int idx = op == Opcode::kInsert ? 1 : 2;
  metrics_->requests[idx]->inc();
  metrics_->keys[idx]->inc(c.keys.size());
  metrics_->batch_keys.record(c.keys.size());
  return true;
}

void Server::reply_error(Worker& w, Connection& c, const Frame& frame,
                         ErrorCode code, std::string_view message) {
  metrics_->request_errors.inc();
  const Opcode op = opcode_known(frame.header.opcode)
                        ? static_cast<Opcode>(frame.header.opcode)
                        : Opcode::kQuery;
  if (sharded_) {
    // Sharded replies flow through the pipeline so an error emitted
    // while earlier requests are still scattered cannot jump the queue.
    std::string payload;
    append_error(payload, code, message);
    complete_now(w, c, static_cast<std::uint8_t>(op),
                 kFlagResponse | kFlagError, frame.header.request_id,
                 std::move(payload));
    return;
  }
  c.payload.clear();
  append_error(c.payload, code, message);
  append_frame(c.wbuf, op, kFlagResponse | kFlagError,
               frame.header.request_id, c.payload);
}

bool Server::flush_writes(Connection& c) {
  while (c.wpos < c.wbuf.size()) {
    const std::ptrdiff_t n = write_some(
        c.sock.fd(), c.wbuf.data() + c.wpos, c.wbuf.size() - c.wpos);
    if (n < 0) break;  // EAGAIN: the loop will report writability
    c.wpos += static_cast<std::size_t>(n);
  }
  if (c.wpos == c.wbuf.size()) {
    c.wbuf.clear();
    c.wpos = 0;
  } else if (c.wpos > (1u << 20)) {
    c.wbuf.erase(0, c.wpos);
    c.wpos = 0;
  }
  return true;
}

void Server::update_write_interest(Worker& w, Connection& c) {
  if (c.dead || c.eof) return;  // eof: the fd is already deregistered
  const bool want = c.wpos < c.wbuf.size();
  if (want != c.want_write) {
    c.want_write = want;
    w.loop.mod(c.sock.fd(), want, &c);
  }
}

// --- sharded mode --------------------------------------------------------

void Server::serve_frame_sharded(Worker& w, Connection& c,
                                 const Frame& frame) {
  MPCBF_TRACE_SPAN(span, kNet, "net.request");
  const bool slow_capture = options_.slow_request_threshold.count() >= 0;
  const std::uint64_t t0 =
      (metrics::kStatsEnabled || slow_capture) ? metrics::now_ns() : 0;
  served_.fetch_add(1, std::memory_order_relaxed);
  const FrameHeader& h = frame.header;
  if ((h.flags & kFlagResponse) != 0 || !opcode_known(h.opcode)) {
    reply_error(w, c, frame, ErrorCode::kBadRequest,
                (h.flags & kFlagResponse) != 0
                    ? "response flag set on a request"
                    : "unknown opcode");
    return;
  }
  const auto op = static_cast<Opcode>(h.opcode);
  span.set_arg("opcode", h.opcode);
  Frame f = frame;
  TracePrefix trace;
  if ((h.flags & kFlagTraced) != 0) {
    std::string_view rest;
    if (const char* err = parse_trace_prefix(frame.payload, trace, rest);
        err != nullptr) {
      reply_error(w, c, frame, ErrorCode::kBadRequest, err);
      return;
    }
    f.payload = rest;
    span.set_arg("trace_id", trace.trace_id);
  }
  if ((h.flags & kFlagNamespaced) != 0) {
    // Namespaces are a flat-server feature: shard ownership and the
    // registry's per-namespace locking do not compose (yet).
    reply_error(w, c, frame, ErrorCode::kUnsupported,
                "sharded server does not support namespaces");
    return;
  }

  // Synchronous completions (inline fast path, admin replies served
  // from this thread) share one timing recorder; scattered jobs record
  // in note_served() instead.
  const auto record = [&](std::uint32_t batch_keys) {
    const std::uint64_t dur =
        (metrics::kStatsEnabled || slow_capture) ? metrics::now_ns() - t0
                                                 : 0;
    if (metrics::kStatsEnabled) {
      metrics_->duration_ns[h.opcode - 1]->record(dur);
    }
    if (slow_capture &&
        dur >= static_cast<std::uint64_t>(
                   options_.slow_request_threshold.count()) *
                   1000) {
      SlowRequest r;
      r.start_ns = t0;
      r.duration_ns = dur;
      r.trace_id = trace.trace_id;
      r.peer = c.peer;
      r.batch_keys = batch_keys;
      r.opcode = h.opcode;
      slow_ring_.record(r);
      MPCBF_LOG_WARN("server.slow_request",
                     log::str("op", to_string(op)),
                     log::u64("duration_ns", dur),
                     log::u64("batch_keys", r.batch_keys),
                     log::hex("trace_id", trace.trace_id),
                     log::str("peer", format_peer(c.peer)));
    }
  };

  const auto nshards = static_cast<std::uint32_t>(shards_.shards.size());
  const ShardBackend& own = shards_.shards[w.index];

  // Builds the scatter job skeleton; the caller fills per-sub fields
  // and dispatches. Returned raw pointer is owned by the pipeline.
  const auto new_job = [&]() {
    auto job = std::make_unique<PendingReply>();
    job->conn = &c;
    job->origin = w.index;
    job->opcode = h.opcode;
    job->request_id = h.request_id;
    job->t0 = t0;
    job->trace_id = trace.trace_id;
    job->peer = c.peer;
    return job;
  };
  // Dispatches a fully built job: remote subs over the rings, the own
  // shard's sub (if any) inline. Must run after the job is in the
  // pipeline so an inline completion finds it there.
  const auto dispatch = [&](PendingReply* job) {
    job->outstanding = static_cast<int>(job->subs.size());
    SubBatch* own_sub = nullptr;
    for (auto& sub : job->subs) {
      if (sub.shard == w.index) {
        own_sub = &sub;
        continue;
      }
      send_to(w, sub.shard, RingMsg{&sub, false});
    }
    if (own_sub != nullptr) {
      execute_sub(w, *own_sub);
      complete_sub(w, *own_sub);
    } else if (job->subs.empty()) {
      finalize_job(w, *job);
    }
  };

  switch (op) {
    case Opcode::kQuery:
    case Opcode::kInsert:
    case Opcode::kErase: {
      const bool sequenced = (h.flags & kFlagSequenced) != 0;
      SequencePrefix prefix{};
      const char* err =
          sequenced
              ? (op == Opcode::kQuery
                     ? "sequenced flag on an idempotent opcode"
                     : parse_sequenced_key_batch(f.payload, prefix,
                                                 c.keys))
              : parse_key_batch(f.payload, c.keys);
      if (err != nullptr) {
        reply_error(w, c, frame, ErrorCode::kBadRequest, err);
        return;
      }
      const auto& hook = op == Opcode::kQuery  ? own.contains_batch
                         : op == Opcode::kInsert ? own.insert_batch
                                                 : own.erase_batch;
      if (!hook) {
        reply_error(w, c, frame, ErrorCode::kUnsupported,
                    "opcode not supported by this backend");
        return;
      }
      if (sequenced) {
        // Dedup check + inflight claim, all under the lock. The apply
        // itself happens outside (scattered); a concurrent retry during
        // the flight gets a retryable error rather than a second apply.
        std::lock_guard<std::mutex> lock(dedup_mu_);
        auto it = dedup_.find(prefix.session_id);
        if (it != dedup_.end() && it->second.op_seq == prefix.op_seq) {
          if (it->second.opcode != static_cast<std::uint8_t>(op)) {
            reply_error(w, c, frame, ErrorCode::kBadRequest,
                        "sequence number reused across opcodes");
            return;
          }
          if (it->second.inflight) {
            reply_error(w, c, frame, ErrorCode::kInternal,
                        "sequenced mutation still in flight; retry");
            return;
          }
          metrics_->deduped.inc();
          complete_now(w, c, h.opcode, kFlagResponse, h.request_id,
                       it->second.reply);
          record(0);
          return;
        }
        if (it != dedup_.end() && prefix.op_seq < it->second.op_seq) {
          reply_error(w, c, frame, ErrorCode::kBadRequest,
                      "stale sequence number");
          return;
        }
        if (it == dedup_.end()) {
          if (dedup_.size() >= kMaxDedupSessions) {
            dedup_.erase(dedup_.begin());
          }
          it = dedup_.emplace(prefix.session_id, DedupEntry{}).first;
        }
        it->second.op_seq = prefix.op_seq;
        it->second.opcode = static_cast<std::uint8_t>(op);
        it->second.inflight = true;
        it->second.reply.clear();
      }
      c.split.reset(nshards);
      split_by_shard(c.keys, nshards, c.split);
      const int idx = op == Opcode::kQuery ? 0
                      : op == Opcode::kInsert ? 1
                                              : 2;
      metrics_->requests[idx]->inc();
      metrics_->keys[idx]->inc(c.keys.size());
      metrics_->batch_keys.record(c.keys.size());

      // Fast path: every key lives in this worker's shard (or the batch
      // is empty) — serve on the read-buffer views, zero copies, no job
      // allocation. Sequenced ops always take the job path so the reply
      // caching happens in exactly one place (finalize_job).
      if (!sequenced &&
          (c.keys.empty() ||
           (c.split.active == 1 && c.split.solo == w.index))) {
        c.verdicts.assign(c.keys.size(), 0);
        try {
          if (!c.keys.empty()) hook(c.keys, c.verdicts);
        } catch (const std::exception& e) {
          MPCBF_LOG_ERROR("server.request_failed",
                          log::str("op", to_string(op)),
                          log::str("error", e.what()),
                          log::hex("trace_id", trace.trace_id),
                          log::str("peer", format_peer(c.peer)));
          reply_error(w, c, frame, ErrorCode::kInternal, e.what());
          return;
        }
        if (op != Opcode::kQuery) ++w.mutation_subs;
        w.shard_requests->inc();
        w.shard_keys->inc(c.keys.size());
        c.payload.clear();
        append_verdicts(c.payload, c.verdicts);
        complete_now(w, c, h.opcode, kFlagResponse, h.request_id,
                     c.payload);
        record(static_cast<std::uint32_t>(c.keys.size()));
        return;
      }

      // Scatter: copy the key bytes into job-owned storage (views into
      // the read buffer cannot outlive this call), then one sub-batch
      // per active shard.
      auto job = new_job();
      job->sequenced = sequenced;
      job->seq_prefix = prefix;
      job->batch_keys = static_cast<std::uint32_t>(c.keys.size());
      std::size_t total = 0;
      for (const auto key : c.keys) total += key.size();
      job->keybuf.reserve(total);
      for (const auto key : c.keys) job->keybuf.append(key);
      job->keys.reserve(c.keys.size());
      std::size_t off = 0;
      for (const auto key : c.keys) {
        job->keys.emplace_back(job->keybuf.data() + off, key.size());
        off += key.size();
      }
      job->subs.reserve(c.split.active);
      for (std::uint32_t s = 0; s < nshards; ++s) {
        if (c.split.idx[s].empty()) continue;
        job->subs.emplace_back();
        SubBatch& sub = job->subs.back();
        sub.job = job.get();
        sub.shard = s;
        sub.op = h.opcode;
        sub.idx = c.split.idx[s];
        sub.keys.reserve(sub.idx.size());
        for (const auto i : sub.idx) sub.keys.push_back(job->keys[i]);
        sub.out.assign(sub.idx.size(), 0);
      }
      PendingReply* jp = job.get();
      c.pipeline.push_back(std::move(job));
      dispatch(jp);
      return;
    }
    case Opcode::kStats:
    case Opcode::kHealth: {
      auto job = new_job();
      job->subs.reserve(nshards);
      for (std::uint32_t s = 0; s < nshards; ++s) {
        job->subs.emplace_back();
        job->subs.back().job = job.get();
        job->subs.back().shard = s;
        job->subs.back().op = h.opcode;
      }
      PendingReply* jp = job.get();
      c.pipeline.push_back(std::move(job));
      dispatch(jp);
      return;
    }
    case Opcode::kSnapshot: {
      if (!own.snapshot) {
        reply_error(w, c, frame, ErrorCode::kUnsupported,
                    "backend has no durable storage");
        return;
      }
      auto job = new_job();
      job->subs.reserve(nshards);
      for (std::uint32_t s = 0; s < nshards; ++s) {
        job->subs.emplace_back();
        job->subs.back().job = job.get();
        job->subs.back().shard = s;
        job->subs.back().op = h.opcode;
      }
      PendingReply* jp = job.get();
      c.pipeline.push_back(std::move(job));
      dispatch(jp);
      return;
    }
    case Opcode::kReplicate: {
      if (!own.journal_tail) {
        reply_error(w, c, frame, ErrorCode::kUnsupported,
                    "replication requires a durable backend");
        return;
      }
      ReplicateRequest req;
      if (const char* err = parse_reply_pod(f.payload, req);
          err != nullptr) {
        reply_error(w, c, frame, ErrorCode::kBadRequest, err);
        return;
      }
      auto job = new_job();
      job->repl_req = req;
      job->repl_req.max_records =
          std::min(req.max_records != 0 ? req.max_records
                                        : kMaxReplicateRecords,
                   kMaxReplicateRecords);
      job->repl_req.max_bytes = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(
              req.max_bytes != 0 ? req.max_bytes : (1u << 20),
              kMaxPayload / 2));
      job->subs.reserve(nshards);
      for (std::uint32_t s = 0; s < nshards; ++s) {
        job->subs.emplace_back();
        SubBatch& sub = job->subs.back();
        sub.job = job.get();
        sub.shard = s;
        sub.op = h.opcode;
        sub.tail_from = req.from_seq;
        // Each shard gets the full caps; the merge truncates. The
        // per-shard page is bounded by kMaxReplicateRecords either way.
        sub.tail_max_records = job->repl_req.max_records;
        sub.tail_max_bytes = job->repl_req.max_bytes;
      }
      PendingReply* jp = job.get();
      c.pipeline.push_back(std::move(job));
      dispatch(jp);
      return;
    }
    case Opcode::kSnapFetch: {
      // A consistent full-image snapshot would require freezing all
      // shards at one sequence point — deliberately unsupported.
      // Followers bootstrap by starting before the primary's journals
      // compact (from_seq 1 replays the full merged stream).
      reply_error(w, c, frame, ErrorCode::kUnsupported,
                  "sharded primary cannot serve snapshot bootstrap; "
                  "start followers before the journal is compacted");
      return;
    }
    case Opcode::kReplStatus: {
      if (!shards_.seq_counter) {
        reply_error(w, c, frame, ErrorCode::kUnsupported,
                    "replication status requires a durable backend");
        return;
      }
      const std::uint64_t next_seq =
          shards_.seq_counter->load(std::memory_order_relaxed) + 1;
      c.payload.clear();
      append_reply_pod(c.payload, repl_source_.status(next_seq));
      metrics_->repl_requests.inc();
      complete_now(w, c, h.opcode, kFlagResponse, h.request_id,
                   c.payload);
      record(0);
      return;
    }
    case Opcode::kEstCount: {
      if (const char* err = parse_key_batch(f.payload, c.keys);
          err != nullptr) {
        reply_error(w, c, frame, ErrorCode::kBadRequest, err);
        return;
      }
      if (!own.est_count) {
        reply_error(w, c, frame, ErrorCode::kUnsupported,
                    "count estimation not supported by this backend");
        return;
      }
      c.split.reset(nshards);
      split_by_shard(c.keys, nshards, c.split);
      metrics_->requests[3]->inc();
      metrics_->keys[3]->inc(c.keys.size());
      metrics_->batch_keys.record(c.keys.size());

      // Same fast path as kQuery: all keys owned here → serve inline.
      if (c.keys.empty() ||
          (c.split.active == 1 && c.split.solo == w.index)) {
        c.counts.assign(c.keys.size(), 0);
        try {
          if (!c.keys.empty()) own.est_count(c.keys, c.counts);
        } catch (const std::exception& e) {
          MPCBF_LOG_ERROR("server.request_failed",
                          log::str("op", to_string(op)),
                          log::str("error", e.what()),
                          log::hex("trace_id", trace.trace_id),
                          log::str("peer", format_peer(c.peer)));
          reply_error(w, c, frame, ErrorCode::kInternal, e.what());
          return;
        }
        w.shard_requests->inc();
        w.shard_keys->inc(c.keys.size());
        c.payload.clear();
        append_counts(c.payload, c.counts);
        complete_now(w, c, h.opcode, kFlagResponse, h.request_id,
                     c.payload);
        record(static_cast<std::uint32_t>(c.keys.size()));
        return;
      }

      auto job = new_job();
      job->batch_keys = static_cast<std::uint32_t>(c.keys.size());
      std::size_t total = 0;
      for (const auto key : c.keys) total += key.size();
      job->keybuf.reserve(total);
      for (const auto key : c.keys) job->keybuf.append(key);
      job->keys.reserve(c.keys.size());
      std::size_t off = 0;
      for (const auto key : c.keys) {
        job->keys.emplace_back(job->keybuf.data() + off, key.size());
        off += key.size();
      }
      job->subs.reserve(c.split.active);
      for (std::uint32_t s = 0; s < nshards; ++s) {
        if (c.split.idx[s].empty()) continue;
        job->subs.emplace_back();
        SubBatch& sub = job->subs.back();
        sub.job = job.get();
        sub.shard = s;
        sub.op = h.opcode;
        sub.idx = c.split.idx[s];
        sub.keys.reserve(sub.idx.size());
        for (const auto i : sub.idx) sub.keys.push_back(job->keys[i]);
        sub.counts.assign(sub.idx.size(), 0);
      }
      PendingReply* jp = job.get();
      c.pipeline.push_back(std::move(job));
      dispatch(jp);
      return;
    }
    case Opcode::kNsCreate:
    case Opcode::kNsDrop:
    case Opcode::kNsList:
    case Opcode::kNsTick: {
      reply_error(w, c, frame, ErrorCode::kUnsupported,
                  "namespace administration requires the flat server");
      return;
    }
  }
}

void Server::execute_sub(Worker& w, SubBatch& sub) {
  const ShardBackend& s = shards_.shards[w.index];
  try {
    switch (static_cast<Opcode>(sub.op)) {
      case Opcode::kQuery:
        s.contains_batch(sub.keys, sub.out);
        w.shard_requests->inc();
        w.shard_keys->inc(sub.keys.size());
        break;
      case Opcode::kInsert:
        s.insert_batch(sub.keys, sub.out);
        w.shard_requests->inc();
        w.shard_keys->inc(sub.keys.size());
        ++w.mutation_subs;
        break;
      case Opcode::kErase:
        s.erase_batch(sub.keys, sub.out);
        w.shard_requests->inc();
        w.shard_keys->inc(sub.keys.size());
        ++w.mutation_subs;
        break;
      case Opcode::kStats:
        sub.stats = s.stats();
        break;
      case Opcode::kHealth:
        sub.health = s.health();
        break;
      case Opcode::kSnapshot:
        sub.watermark = s.snapshot();
        break;
      case Opcode::kReplicate:
        sub.tail = s.journal_tail(sub.tail_from, sub.tail_max_records,
                                  sub.tail_max_bytes);
        break;
      case Opcode::kEstCount:
        s.est_count(sub.keys, sub.counts);
        w.shard_requests->inc();
        w.shard_keys->inc(sub.keys.size());
        break;
      default:
        sub.error = "internal: unexpected sub-batch opcode";
        break;
    }
  } catch (const std::exception& e) {
    sub.error = e.what();
  }
}

void Server::send_to(Worker& w, std::size_t dest, RingMsg msg) {
  auto& ring = *rings_[dest][w.index];
  // FIFO per (src, dest) is what preserves per-key operation order, so
  // a new message may not overtake ones already parked.
  if (!msg.completion) w.ring_forwards->inc();
  if (w.overflow[dest].empty() && ring.push(msg)) {
    workers_[dest]->loop.wake();
    return;
  }
  w.ring_full->inc();
  w.overflow[dest].push_back(msg);
  w.has_overflow = true;
  if (!msg.completion) ++w.overflow_work;
  workers_[dest]->loop.wake();
}

bool Server::drain_rings(Worker& w) {
  bool did = false;
  RingMsg msg;
  for (std::size_t src = 0; src < workers_.size(); ++src) {
    if (src == w.index) continue;
    auto& ring = *rings_[w.index][src];
    while (ring.pop(msg)) {
      did = true;
      if (msg.completion) {
        complete_sub(w, *msg.sub);
      } else {
        execute_sub(w, *msg.sub);
        send_to(w, msg.sub->job->origin, RingMsg{msg.sub, true});
      }
    }
  }
  // Retry parked messages: peers may have drained their rings since.
  if (w.has_overflow) {
    w.has_overflow = false;
    for (std::size_t dest = 0; dest < workers_.size(); ++dest) {
      auto& q = w.overflow[dest];
      while (!q.empty() && rings_[dest][w.index]->push(q.front())) {
        if (!q.front().completion) --w.overflow_work;
        q.pop_front();
        workers_[dest]->loop.wake();
        did = true;
      }
      if (!q.empty()) w.has_overflow = true;
    }
  }
  return did;
}

void Server::complete_sub(Worker& w, SubBatch& sub) {
  PendingReply& job = *sub.job;
  // `outstanding` is touched only by the origin thread (us); the ring
  // pop's acquire ordered the remote result fields before this read.
  if (--job.outstanding == 0) finalize_job(w, job);
}

void Server::finalize_job(Worker& w, PendingReply& job) {
  std::string& out = job.payload;
  out.clear();
  const auto op = static_cast<Opcode>(job.opcode);
  std::string error;
  for (const auto& sub : job.subs) {
    if (!sub.error.empty()) {
      error = sub.error;
      break;
    }
  }
  if (!error.empty()) {
    MPCBF_LOG_ERROR("server.request_failed",
                    log::str("op", to_string(op)),
                    log::str("error", error),
                    log::hex("trace_id", job.trace_id),
                    log::str("peer", format_peer(job.peer)));
    metrics_->request_errors.inc();
    job.flags = kFlagResponse | kFlagError;
    append_error(out, ErrorCode::kInternal, error);
  } else {
    switch (op) {
      case Opcode::kQuery:
      case Opcode::kInsert:
      case Opcode::kErase: {
        // Gather: scatter each sub's verdicts back to the original key
        // positions — the reply is byte-identical to a flat server's.
        std::vector<std::uint8_t> verdicts(job.batch_keys, 0);
        for (const auto& sub : job.subs) {
          for (std::size_t i = 0; i < sub.idx.size(); ++i) {
            verdicts[sub.idx[i]] = sub.out[i];
          }
        }
        append_verdicts(out, verdicts);
        break;
      }
      case Opcode::kEstCount: {
        std::vector<std::uint32_t> counts(job.batch_keys, 0);
        for (const auto& sub : job.subs) {
          for (std::size_t i = 0; i < sub.idx.size(); ++i) {
            counts[sub.idx[i]] = sub.counts[i];
          }
        }
        append_counts(out, counts);
        break;
      }
      case Opcode::kStats: {
        StatsReply total{};
        bool first = true;
        for (const auto& sub : job.subs) {
          if (first) {
            total = sub.stats;  // layout params from shard 0
            first = false;
            continue;
          }
          total.elements += sub.stats.elements;
          total.memory_bits += sub.stats.memory_bits;
          total.stash_entries += sub.stats.stash_entries;
          total.overflow_events += sub.stats.overflow_events;
          total.underflow_events += sub.stats.underflow_events;
        }
        total.requests_served = served_.load(std::memory_order_relaxed);
        total.uptime_seconds = static_cast<std::uint64_t>(
            metrics::process_uptime_seconds());
        append_reply_pod(out, total);
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kHealth: {
        // Worst-shard severity/scores, summed elements: one saturated
        // shard degrades the whole server's health, which is exactly
        // what an operator needs to see.
        HealthReply hr{};
        bool first = true;
        for (const auto& sub : job.subs) {
          const HealthReply& s = sub.health;
          if (first) {
            hr = s;
            first = false;
            continue;
          }
          hr.severity = std::max(hr.severity, s.severity);
          hr.saturation_score =
              std::max(hr.saturation_score, s.saturation_score);
          hr.level1_fill = std::max(hr.level1_fill, s.level1_fill);
          hr.measured_fpr = std::max(hr.measured_fpr, s.measured_fpr);
          hr.fpr_drift = std::max(hr.fpr_drift, s.fpr_drift);
          hr.elements += s.elements;
        }
        hr.ready = running() ? 1 : 0;
        append_reply_pod(out, hr);
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kSnapshot: {
        std::vector<std::uint64_t> marks;
        marks.reserve(job.subs.size());
        std::uint64_t last = 0;
        for (const auto& sub : job.subs) {
          marks.push_back(sub.watermark);
          last = std::max(last, sub.watermark);
        }
        bool manifest_ok = true;
        if (shards_.manifest) {
          try {
            shards_.manifest(marks);
          } catch (const std::exception& e) {
            manifest_ok = false;
            metrics_->request_errors.inc();
            job.flags = kFlagResponse | kFlagError;
            append_error(out, ErrorCode::kInternal, e.what());
          }
        }
        if (manifest_ok) {
          SnapshotReply r;
          r.last_seq = last;
          append_reply_pod(out, r);
          metrics_->admin_requests.inc();
        }
        break;
      }
      case Opcode::kReplicate: {
        // Merge the per-shard journal tails into one ordered stream and
        // truncate at the first gap: the union of shard WALs is the
        // consecutive global stream, but a record may be momentarily
        // missing (scanned shard A before shard B flushed a lower seq).
        // The follower simply re-polls from the gap.
        std::vector<io::JournalRecord> merged;
        std::uint64_t base = 1;
        std::uint64_t next = 1;
        for (auto& sub : job.subs) {
          base = std::max(base, sub.tail.base_seq);
          next = std::max(next, sub.tail.next_seq);
          for (auto& rec : sub.tail.records) {
            merged.push_back(std::move(rec));
          }
        }
        std::sort(merged.begin(), merged.end(),
                  [](const io::JournalRecord& a,
                     const io::JournalRecord& b) { return a.seq < b.seq; });
        std::vector<io::JournalRecord> keep;
        std::uint64_t expected = job.repl_req.from_seq;
        std::uint64_t bytes = 0;
        for (auto& rec : merged) {
          if (rec.seq != expected) break;
          // 13 = seq u64 + op u8 + key_len u32 (wire framing per record).
          if (keep.size() >= job.repl_req.max_records ||
              bytes + 13 + rec.key.size() > job.repl_req.max_bytes) {
            break;
          }
          bytes += 13 + rec.key.size();
          keep.push_back(std::move(rec));
          ++expected;
        }
        ReplicateInfo info;
        info.next_seq = next;
        info.base_seq = base;
        info.need_snapshot =
            job.repl_req.from_seq < base ? 1 : 0;
        if (info.need_snapshot != 0) keep.clear();
        append_replicate_reply(out, info, keep);
        repl_source_.note_follower(
            job.repl_req.follower_id,
            job.repl_req.from_seq > 0 ? job.repl_req.from_seq - 1 : 0,
            next);
        metrics_->repl_requests.inc();
        break;
      }
      default: {
        metrics_->request_errors.inc();
        job.flags = kFlagResponse | kFlagError;
        append_error(out, ErrorCode::kInternal,
                     "internal: unexpected scattered opcode");
        break;
      }
    }
  }
  if (job.sequenced) {
    // Cache the reply (error replies included: sub-batches may have
    // partially applied, so a blind re-apply on retry would double
    // count — at-most-once is the safe degradation) and release the
    // inflight claim.
    std::lock_guard<std::mutex> lock(dedup_mu_);
    auto it = dedup_.find(job.seq_prefix.session_id);
    if (it != dedup_.end() &&
        it->second.op_seq == job.seq_prefix.op_seq) {
      it->second.inflight = false;
      it->second.reply = job.payload;
    }
  }
  job.done = true;
  note_served(job);
  if (job.conn != nullptr) {
    pump_replies(w, *job.conn);
  } else {
    // Orphan: the connection died while subs were remote; the job only
    // existed to keep the sub-batch memory alive. Free it.
    std::erase_if(w.orphans, [&](const std::unique_ptr<PendingReply>& p) {
      return p.get() == &job;
    });
  }
}

void Server::pump_replies(Worker& w, Connection& c) {
  bool wrote = false;
  while (!c.pipeline.empty() && c.pipeline.front()->done) {
    const std::unique_ptr<PendingReply> job =
        std::move(c.pipeline.front());
    c.pipeline.pop_front();
    append_frame(c.wbuf, static_cast<Opcode>(job->opcode), job->flags,
                 job->request_id, job->payload);
    wrote = true;
  }
  if (!wrote) return;
  if (!flush_writes(c)) {
    c.dead = true;
    return;
  }
  if (c.eof) {
    // The fd is deregistered; once the pipeline empties the connection
    // closes (best-effort flush above — a half-closed peer with a full
    // socket buffer forfeits the tail).
    if (c.pipeline.empty()) c.dead = true;
    return;
  }
  update_write_interest(w, c);
}

void Server::complete_now(Worker& w, Connection& c, std::uint8_t opcode,
                          std::uint8_t flags, std::uint64_t request_id,
                          std::string payload) {
  if (c.pipeline.empty()) {
    append_frame(c.wbuf, static_cast<Opcode>(opcode), flags, request_id,
                 payload);
    return;
  }
  // Earlier requests are still in flight: queue behind them so replies
  // stay in request order.
  auto job = std::make_unique<PendingReply>();
  job->conn = &c;
  job->origin = w.index;
  job->opcode = opcode;
  job->flags = flags;
  job->request_id = request_id;
  job->payload = std::move(payload);
  job->done = true;
  c.pipeline.push_back(std::move(job));
}

void Server::note_served(PendingReply& job) {
  const bool slow_capture = options_.slow_request_threshold.count() >= 0;
  if (!metrics::kStatsEnabled && !slow_capture) return;
  const std::uint64_t dur = metrics::now_ns() - job.t0;
  if (metrics::kStatsEnabled && job.opcode >= 1 &&
      job.opcode <= kMaxOpcode) {
    metrics_->duration_ns[job.opcode - 1]->record(dur);
  }
  if (slow_capture &&
      dur >= static_cast<std::uint64_t>(
                 options_.slow_request_threshold.count()) *
                 1000) {
    SlowRequest r;
    r.start_ns = job.t0;
    r.duration_ns = dur;
    r.trace_id = job.trace_id;
    r.peer = job.peer;
    r.batch_keys = job.batch_keys;
    r.opcode = job.opcode;
    slow_ring_.record(r);
    MPCBF_LOG_WARN("server.slow_request",
                   log::str("op",
                            to_string(static_cast<Opcode>(job.opcode))),
                   log::u64("duration_ns", dur),
                   log::u64("batch_keys", r.batch_keys),
                   log::hex("trace_id", job.trace_id),
                   log::str("peer", format_peer(job.peer)));
  }
}

}  // namespace mpcbf::net
