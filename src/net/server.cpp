#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/log.hpp"
#include "metrics/build_info.hpp"
#include "metrics/registry.hpp"
#include "metrics/timer.hpp"
#include "trace/trace.hpp"

namespace mpcbf::net {

namespace {

/// Read chunk size. Large enough that a 64-key batch of short keys
/// arrives in one syscall; small enough that a slow connection does not
/// pin memory.
constexpr std::size_t kReadChunk = 64 * 1024;

/// A read buffer may hold at most one maximal frame plus one read chunk
/// of the next; a peer that streams more without ever completing a
/// frame is hostile or broken.
constexpr std::size_t kMaxReadBuffer =
    kHeaderSize + kMaxPayload + kReadChunk;

}  // namespace

// Per-op serving metrics, registered once into the global registry (the
// registry owns the cells; references stay valid for the process).
struct Server::ServerMetrics {
  metrics::Counter* requests[3];
  metrics::Counter* keys[3];
  /// Service-time histograms for every served opcode, indexed by
  /// opcode - 1 (REPLICATE/SNAPFETCH/REPLSTATUS included — replication
  /// tail latency is an operator signal, not an implementation detail).
  metrics::Histogram* duration_ns[9];
  metrics::Counter& connections = metrics::Registry::global().counter(
      "mpcbf_server_connections_total", "Connections accepted");
  metrics::Gauge& active = metrics::Registry::global().gauge(
      "mpcbf_server_active_connections", "Currently open connections");
  metrics::Counter& proto_errors = metrics::Registry::global().counter(
      "mpcbf_server_protocol_errors_total",
      "Connections dropped for framing violations (bad magic/CRC/size)");
  metrics::Counter& request_errors = metrics::Registry::global().counter(
      "mpcbf_server_request_errors_total",
      "Well-framed requests answered with an error reply");
  metrics::Counter& admin_requests = metrics::Registry::global().counter(
      "mpcbf_server_admin_requests_total",
      "STATS/HEALTH/SNAPSHOT requests served");
  metrics::Counter& timeouts = metrics::Registry::global().counter(
      "mpcbf_server_timeouts_total",
      "Connections closed after a partial frame stalled past "
      "frame_timeout");
  metrics::Counter& repl_requests = metrics::Registry::global().counter(
      "mpcbf_server_replication_requests_total",
      "REPLICATE/SNAPFETCH/REPLSTATUS requests served");
  metrics::Counter& deduped = metrics::Registry::global().counter(
      "mpcbf_server_deduped_mutations_total",
      "Sequenced mutations answered from the dedup cache");
  metrics::Histogram& batch_keys = metrics::Registry::global().histogram(
      "mpcbf_server_batch_keys", "Keys per batched request");

  ServerMetrics() {
    static constexpr const char* kOps[3] = {"query", "insert", "erase"};
    for (int i = 0; i < 3; ++i) {
      requests[i] = &metrics::Registry::global().counter(
          "mpcbf_server_requests_total", "Requests served by opcode",
          {{"op", kOps[i]}});
      keys[i] = &metrics::Registry::global().counter(
          "mpcbf_server_keys_total", "Keys processed by opcode",
          {{"op", kOps[i]}});
    }
    for (std::uint8_t op = 1; op <= 9; ++op) {
      duration_ns[op - 1] = &metrics::Registry::global().histogram(
          "mpcbf_server_request_duration_ns",
          "Request service time (decode to encoded reply), ns",
          {{"op", to_string(static_cast<Opcode>(op))}});
    }
  }

  static ServerMetrics& get() {
    static ServerMetrics m;
    return m;
  }
};

struct Server::Connection {
  explicit Connection(Socket s)
      : sock(std::move(s)), peer(peer_id(sock.fd())) {}
  Socket sock;
  std::uint64_t peer = 0;  ///< packed IPv4 ip:port (slow-ring/log form)
  std::string rbuf;
  std::size_t rpos = 0;  ///< parsed prefix of rbuf (compacted lazily)
  std::string wbuf;
  std::size_t wpos = 0;  ///< flushed prefix of wbuf
  // Request-scoped scratch, reused so steady-state serving does not
  // allocate per request.
  std::vector<std::string_view> keys;
  std::vector<std::uint8_t> verdicts;
  std::string payload;
  bool dead = false;
  // Slow-loris accounting: when the read buffer ends in a partial
  // frame, the time that partial first appeared. A peer may idle
  // between frames forever; it may not stall *inside* one.
  bool mid_frame = false;
  std::chrono::steady_clock::time_point partial_since{};
};

struct Server::Worker {
  std::mutex mu;
  std::vector<Socket> intake;  ///< accepted sockets awaiting adoption
  int wake_read = -1;          ///< self-pipe: acceptor/stop -> worker
  int wake_write = -1;
  std::vector<std::unique_ptr<Connection>> conns;

  ~Worker() {
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
  }

  void wake() const noexcept {
    const char b = 1;
    [[maybe_unused]] const auto n = ::write(wake_write, &b, 1);
  }
};

Server::Server(FilterBackend backend, Options options)
    : backend_(std::move(backend)), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  metrics_ = &ServerMetrics::get();
}

Server::~Server() { stop(); }

bool Server::running() const noexcept {
  return started_.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire);
}

std::uint64_t Server::connections_accepted() const noexcept {
  return accepted_.load(std::memory_order_relaxed);
}

std::uint64_t Server::requests_served() const noexcept {
  return served_.load(std::memory_order_relaxed);
}

void Server::start() {
  if (started_.exchange(true)) {
    throw NetError("Server::start: already started");
  }
  listener_ = listen_tcp(options_.bind_address, options_.port);
  set_nonblocking(listener_.fd(), true);
  port_ = local_port(listener_.fd());

  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    auto w = std::make_unique<Worker>();
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
      throw NetError(std::string("pipe: ") + std::strerror(errno));
    }
    w->wake_read = pipefd[0];
    w->wake_write = pipefd[1];
    set_nonblocking(w->wake_read, true);
    workers_.push_back(std::move(w));
  }
  pool_ = std::make_unique<util::ThreadPool>(options_.workers);
  for (auto& w : workers_) {
    (void)pool_->submit([this, worker = w.get()] { worker_loop(*worker); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  MPCBF_LOG_INFO("server.start", log::str("bind", options_.bind_address),
                 log::u64("port", port_),
                 log::u64("workers", options_.workers));
}

void Server::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    // A second caller still has to wait for the joins below, which the
    // first caller performs; make stop() safe to call twice by only
    // joining what is still joinable.
  } else {
    MPCBF_LOG_INFO("server.drain", log::u64("port", port_),
                   log::u64("requests_served", requests_served()));
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) w->wake();
  if (pool_) {
    pool_->stop();  // waits for every worker loop to drain and return
    pool_.reset();
  }
  listener_.close();
}

void Server::acceptor_loop() {
  std::size_t next_worker = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 50);
    if (rc <= 0) continue;  // timeout/EINTR: re-check the stop flag
    for (;;) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN (or transient): back to poll
      Socket conn(fd);
      set_nonblocking(fd, true);
      accepted_.fetch_add(1, std::memory_order_relaxed);
      metrics_->connections.inc();
      Worker& w = *workers_[next_worker];
      next_worker = (next_worker + 1) % workers_.size();
      {
        std::lock_guard<std::mutex> lock(w.mu);
        w.intake.push_back(std::move(conn));
      }
      w.wake();
    }
  }
}

void Server::worker_loop(Worker& w) {
  std::vector<pollfd> pfds;
  const auto drain_deadline_for = [&] {
    return std::chrono::steady_clock::now() + options_.drain_timeout;
  };
  std::chrono::steady_clock::time_point drain_deadline{};
  bool draining = false;

  for (;;) {
    // Adopt connections handed over by the acceptor.
    {
      std::lock_guard<std::mutex> lock(w.mu);
      for (auto& sock : w.intake) {
        w.conns.push_back(
            std::make_unique<Connection>(std::move(sock)));
        metrics_->active.add(1.0);
      }
      w.intake.clear();
    }

    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && !draining) {
      draining = true;
      drain_deadline = drain_deadline_for();
    }
    if (draining) {
      // In-flight work is whatever bytes arrived before the drain began;
      // serve it, flush it, close. Past the deadline, close regardless.
      const bool expired =
          std::chrono::steady_clock::now() >= drain_deadline;
      for (auto& c : w.conns) {
        if (c->dead) continue;
        try {
          if (!drain_frames(*c) || !flush_writes(*c)) c->dead = true;
        } catch (const NetError&) {
          c->dead = true;
        }
        if (expired || c->wpos == c->wbuf.size()) c->dead = true;
      }
    }
    sweep_stalled(w);
    // Reap dead connections.
    std::erase_if(w.conns, [this](const auto& c) {
      if (c->dead) metrics_->active.add(-1.0);
      return c->dead;
    });
    if (draining && w.conns.empty()) return;

    pfds.clear();
    pfds.push_back({w.wake_read, POLLIN, 0});
    for (const auto& c : w.conns) {
      short events = POLLIN;
      if (c->wpos < c->wbuf.size()) events |= POLLOUT;
      pfds.push_back({c->sock.fd(), events, 0});
    }
    const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                          draining ? 10 : 100);
    if (rc < 0 && errno != EINTR) return;  // poll failure: give up loop
    if (rc <= 0) continue;

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(w.wake_read, buf, sizeof buf) > 0) {
      }
    }
    for (std::size_t i = 0; i < w.conns.size(); ++i) {
      const short revents = pfds[i + 1].revents;
      if (revents == 0) continue;
      service_connection(w, *w.conns[i], revents);
    }
  }
}

void Server::service_connection(Worker& w, Connection& c, short revents) {
  (void)w;
  if ((revents & (POLLERR | POLLNVAL)) != 0) {
    c.dead = true;
    return;
  }
  try {
    if ((revents & (POLLIN | POLLHUP)) != 0) {
      for (;;) {
        const std::size_t old = c.rbuf.size();
        if (old + kReadChunk > kMaxReadBuffer) {
          // One frame can never legitimately need this much buffer.
          metrics_->proto_errors.inc();
          c.dead = true;
          return;
        }
        c.rbuf.resize(old + kReadChunk);
        const std::ptrdiff_t n =
            read_some(c.sock.fd(), c.rbuf.data() + old, kReadChunk);
        c.rbuf.resize(old + (n > 0 ? static_cast<std::size_t>(n) : 0));
        if (n == 0) {  // EOF: serve what we have, then close
          if (!drain_frames(c)) {
            c.dead = true;
            return;
          }
          (void)flush_writes(c);
          c.dead = true;
          return;
        }
        if (n < 0) break;  // EAGAIN: drained the socket
      }
      if (!drain_frames(c)) {
        c.dead = true;
        return;
      }
    }
    if (!flush_writes(c)) c.dead = true;
  } catch (const NetError&) {
    c.dead = true;
  }
}

bool Server::drain_frames(Connection& c) {
  for (;;) {
    const std::string_view unparsed =
        std::string_view(c.rbuf).substr(c.rpos);
    const DecodeResult r = decode_frame(unparsed);
    if (r.status == DecodeStatus::kError) {
      // The byte stream lost framing; there is no safe resync point.
      metrics_->proto_errors.inc();
      MPCBF_LOG_WARN("server.protocol_error",
                     log::str("reason", r.error),
                     log::str("peer", format_peer(c.peer)));
      return false;
    }
    if (r.status == DecodeStatus::kNeedMore) break;
    serve_frame(c, r.frame);
    c.rpos += r.consumed;
  }
  if (c.rpos > 0) {
    c.rbuf.erase(0, c.rpos);
    c.rpos = 0;
  }
  // Partial-frame deadline bookkeeping: the clock starts when a partial
  // frame first appears and resets whenever the buffer is drained to a
  // frame boundary.
  if (c.rbuf.empty()) {
    c.mid_frame = false;
  } else if (!c.mid_frame) {
    c.mid_frame = true;
    c.partial_since = std::chrono::steady_clock::now();
  }
  return true;
}

void Server::sweep_stalled(Worker& w) {
  if (options_.frame_timeout.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& c : w.conns) {
    if (c->dead || !c->mid_frame) continue;
    if (now - c->partial_since >= options_.frame_timeout) {
      // A peer stalled mid-frame left the stream in an ambiguous state;
      // the only safe move is to drop the connection — never to retry
      // the partial read into the next request.
      metrics_->timeouts.inc();
      MPCBF_LOG_WARN("server.frame_timeout",
                     log::str("peer", format_peer(c->peer)),
                     log::u64("buffered_bytes", c->rbuf.size()));
      c->dead = true;
    }
  }
}

void Server::serve_frame(Connection& c, const Frame& frame) {
  MPCBF_TRACE_SPAN(span, kNet, "net.request");
  const bool slow_capture = options_.slow_request_threshold.count() >= 0;
  const std::uint64_t t0 =
      (metrics::kStatsEnabled || slow_capture) ? metrics::now_ns() : 0;
  served_.fetch_add(1, std::memory_order_relaxed);
  const FrameHeader& h = frame.header;
  if ((h.flags & kFlagResponse) != 0 || !opcode_known(h.opcode)) {
    reply_error(c, frame, ErrorCode::kBadRequest,
                (h.flags & kFlagResponse) != 0
                    ? "response flag set on a request"
                    : "unknown opcode");
    return;
  }
  const auto op = static_cast<Opcode>(h.opcode);
  span.set_arg("opcode", h.opcode);
  // Traced requests carry the client's trace id as the first payload
  // bytes; strip the prefix so every downstream parser sees the plain
  // payload, and open the request span under the propagated id.
  Frame f = frame;
  TracePrefix trace;
  if ((h.flags & kFlagTraced) != 0) {
    std::string_view rest;
    if (const char* err = parse_trace_prefix(frame.payload, trace, rest);
        err != nullptr) {
      reply_error(c, frame, ErrorCode::kBadRequest, err);
      return;
    }
    f.payload = rest;
    span.set_arg("trace_id", trace.trace_id);
  }
  c.payload.clear();
  std::size_t batch_keys = 0;
  try {
    switch (op) {
      case Opcode::kQuery:
      case Opcode::kInsert:
      case Opcode::kErase: {
        if ((h.flags & kFlagSequenced) != 0) {
          if (op == Opcode::kQuery) {
            reply_error(c, frame, ErrorCode::kBadRequest,
                        "sequenced flag on an idempotent opcode");
            return;
          }
          // Dedup path: fills c.payload (fresh apply or cached replay);
          // on false an error reply has already been sent.
          if (!serve_sequenced(c, f, op)) return;
          batch_keys = c.keys.size();
          break;
        }
        if (const char* err = parse_key_batch(f.payload, c.keys);
            err != nullptr) {
          reply_error(c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        const auto& hook = op == Opcode::kQuery ? backend_.contains_batch
                           : op == Opcode::kInsert ? backend_.insert_batch
                                                   : backend_.erase_batch;
        if (!hook) {
          reply_error(c, frame, ErrorCode::kUnsupported,
                      "opcode not supported by this backend");
          return;
        }
        c.verdicts.assign(c.keys.size(), 0);
        hook(c.keys, c.verdicts);
        append_verdicts(c.payload, c.verdicts);
        batch_keys = c.keys.size();
        const int idx = op == Opcode::kQuery ? 0
                        : op == Opcode::kInsert ? 1
                                                : 2;
        metrics_->requests[idx]->inc();
        metrics_->keys[idx]->inc(c.keys.size());
        metrics_->batch_keys.record(c.keys.size());
        break;
      }
      case Opcode::kStats: {
        if (!backend_.stats) {
          reply_error(c, frame, ErrorCode::kUnsupported,
                      "stats not supported by this backend");
          return;
        }
        StatsReply s = backend_.stats();
        s.requests_served = served_.load(std::memory_order_relaxed);
        s.uptime_seconds = static_cast<std::uint64_t>(
            metrics::process_uptime_seconds());
        append_reply_pod(c.payload, s);
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kHealth: {
        if (!backend_.health) {
          reply_error(c, frame, ErrorCode::kUnsupported,
                      "health not supported by this backend");
          return;
        }
        HealthReply r = backend_.health();
        // The backend's readiness veto (a follower still catching up)
        // ANDs with the server's own lifecycle bit.
        r.ready =
            running() && (!backend_.ready || backend_.ready()) ? 1 : 0;
        append_reply_pod(c.payload, r);
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kSnapshot: {
        if (!backend_.snapshot) {
          reply_error(c, frame, ErrorCode::kUnsupported,
                      "backend has no durable storage");
          return;
        }
        SnapshotReply r;
        r.last_seq = backend_.snapshot();
        append_reply_pod(c.payload, r);
        metrics_->admin_requests.inc();
        break;
      }
      case Opcode::kReplicate: {
        if (!backend_.replicate) {
          reply_error(c, frame, ErrorCode::kUnsupported,
                      "replication requires a durable backend");
          return;
        }
        ReplicateRequest req;
        if (const char* err = parse_reply_pod(f.payload, req);
            err != nullptr) {
          reply_error(c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        if (const char* err = backend_.replicate(req, c.payload);
            err != nullptr) {
          reply_error(c, frame, ErrorCode::kInternal, err);
          return;
        }
        metrics_->repl_requests.inc();
        break;
      }
      case Opcode::kSnapFetch: {
        if (!backend_.snap_fetch) {
          reply_error(c, frame, ErrorCode::kUnsupported,
                      "replication requires a durable backend");
          return;
        }
        SnapFetchRequest req;
        if (const char* err = parse_reply_pod(f.payload, req);
            err != nullptr) {
          reply_error(c, frame, ErrorCode::kBadRequest, err);
          return;
        }
        if (const char* err = backend_.snap_fetch(req, c.payload);
            err != nullptr) {
          reply_error(c, frame, ErrorCode::kInternal, err);
          return;
        }
        metrics_->repl_requests.inc();
        break;
      }
      case Opcode::kReplStatus: {
        if (!backend_.repl_status) {
          reply_error(c, frame, ErrorCode::kUnsupported,
                      "replication status requires a durable backend");
          return;
        }
        append_reply_pod(c.payload, backend_.repl_status());
        metrics_->repl_requests.inc();
        break;
      }
    }
  } catch (const std::exception& e) {
    MPCBF_LOG_ERROR("server.request_failed",
                    log::str("op", to_string(op)),
                    log::str("error", e.what()),
                    log::hex("trace_id", trace.trace_id),
                    log::str("peer", format_peer(c.peer)));
    reply_error(c, frame, ErrorCode::kInternal, e.what());
    return;
  }
  append_frame(c.wbuf, op, kFlagResponse, h.request_id, c.payload);
  const std::uint64_t dur =
      (metrics::kStatsEnabled || slow_capture) ? metrics::now_ns() - t0
                                               : 0;
  if (metrics::kStatsEnabled) {
    metrics_->duration_ns[h.opcode - 1]->record(dur);
  }
  if (slow_capture &&
      dur >= static_cast<std::uint64_t>(
                 options_.slow_request_threshold.count()) *
                 1000) {
    SlowRequest r;
    r.start_ns = t0;
    r.duration_ns = dur;
    r.trace_id = trace.trace_id;
    r.peer = c.peer;
    r.batch_keys = static_cast<std::uint32_t>(batch_keys);
    r.opcode = h.opcode;
    slow_ring_.record(r);
    MPCBF_LOG_WARN("server.slow_request", log::str("op", to_string(op)),
                   log::u64("duration_ns", dur),
                   log::u64("batch_keys", r.batch_keys),
                   log::hex("trace_id", trace.trace_id),
                   log::str("peer", format_peer(c.peer)));
  }
}

bool Server::serve_sequenced(Connection& c, const Frame& frame,
                             Opcode op) {
  SequencePrefix prefix;
  if (const char* err =
          parse_sequenced_key_batch(frame.payload, prefix, c.keys);
      err != nullptr) {
    reply_error(c, frame, ErrorCode::kBadRequest, err);
    return false;
  }
  const auto& hook =
      op == Opcode::kInsert ? backend_.insert_batch : backend_.erase_batch;
  if (!hook) {
    reply_error(c, frame, ErrorCode::kUnsupported,
                "opcode not supported by this backend");
    return false;
  }
  // The dedup lock is held across the apply so two concurrent retries
  // of the same op cannot both pass the check; mutations are already
  // serialized by the backend's exclusive lock, so this adds no new
  // contention. Lock order is dedup → backend, nowhere reversed.
  std::lock_guard<std::mutex> lock(dedup_mu_);
  auto it = dedup_.find(prefix.session_id);
  if (it != dedup_.end() && it->second.op_seq == prefix.op_seq) {
    if (it->second.opcode != static_cast<std::uint8_t>(op)) {
      reply_error(c, frame, ErrorCode::kBadRequest,
                  "sequence number reused across opcodes");
      return false;
    }
    c.payload = it->second.reply;  // retry: replay, never re-apply
    metrics_->deduped.inc();
    return true;
  }
  if (it != dedup_.end() && prefix.op_seq < it->second.op_seq) {
    reply_error(c, frame, ErrorCode::kBadRequest,
                "stale sequence number");
    return false;
  }
  c.verdicts.assign(c.keys.size(), 0);
  hook(c.keys, c.verdicts);
  append_verdicts(c.payload, c.verdicts);
  if (it == dedup_.end()) {
    if (dedup_.size() >= kMaxDedupSessions) {
      // Bounded by eviction: correctness degrades to at-least-once for
      // a session idle long enough to be evicted, never unbounded RAM.
      dedup_.erase(dedup_.begin());
    }
    it = dedup_.emplace(prefix.session_id, DedupEntry{}).first;
  }
  it->second.op_seq = prefix.op_seq;
  it->second.opcode = static_cast<std::uint8_t>(op);
  it->second.reply = c.payload;
  const int idx = op == Opcode::kInsert ? 1 : 2;
  metrics_->requests[idx]->inc();
  metrics_->keys[idx]->inc(c.keys.size());
  metrics_->batch_keys.record(c.keys.size());
  return true;
}

void Server::reply_error(Connection& c, const Frame& frame,
                         ErrorCode code, std::string_view message) {
  metrics_->request_errors.inc();
  c.payload.clear();
  append_error(c.payload, code, message);
  append_frame(c.wbuf,
               opcode_known(frame.header.opcode)
                   ? static_cast<Opcode>(frame.header.opcode)
                   : Opcode::kQuery,
               kFlagResponse | kFlagError, frame.header.request_id,
               c.payload);
}

bool Server::flush_writes(Connection& c) {
  while (c.wpos < c.wbuf.size()) {
    const std::ptrdiff_t n = write_some(
        c.sock.fd(), c.wbuf.data() + c.wpos, c.wbuf.size() - c.wpos);
    if (n < 0) break;  // EAGAIN: poll will report POLLOUT
    c.wpos += static_cast<std::size_t>(n);
  }
  if (c.wpos == c.wbuf.size()) {
    c.wbuf.clear();
    c.wpos = 0;
  } else if (c.wpos > (1u << 20)) {
    c.wbuf.erase(0, c.wpos);
    c.wpos = 0;
  }
  return true;
}

}  // namespace mpcbf::net
