#include "net/client.hpp"

#include <thread>

#include "trace/trace.hpp"

namespace mpcbf::net {

void Client::connect() {
  if (sock_.valid()) return;
  NetError last("connect: no attempts made");
  for (unsigned attempt = 0; attempt < options_.connect_attempts;
       ++attempt) {
    if (attempt != 0) std::this_thread::sleep_for(options_.retry_backoff);
    try {
      sock_ = connect_tcp(options_.host, options_.port,
                          options_.io_timeout);
      return;
    } catch (const NetError& e) {
      last = e;
    }
  }
  throw last;
}

std::string Client::round_trip(Opcode op, std::string_view payload) {
  MPCBF_TRACE_SPAN(span, kNet, "client.round_trip");
  connect();
  const std::uint64_t id = next_id_++;
  sendbuf_.clear();
  append_frame(sendbuf_, op, 0, id, payload);
  try {
    write_all(sock_.fd(), sendbuf_.data(), sendbuf_.size());
    recvbuf_.clear();
    for (;;) {
      const DecodeResult r = decode_frame(recvbuf_);
      if (r.status == DecodeStatus::kError) {
        close();
        throw NetError(std::string("response frame: ") + r.error);
      }
      if (r.status == DecodeStatus::kFrame) {
        const FrameHeader& h = r.frame.header;
        if ((h.flags & kFlagResponse) == 0 || h.request_id != id ||
            h.opcode != static_cast<std::uint8_t>(op)) {
          close();
          throw NetError("response frame does not match request");
        }
        if ((h.flags & kFlagError) != 0) {
          WireError we;
          if (const char* err = parse_error(r.frame.payload, we);
              err != nullptr) {
            close();
            throw NetError(err);
          }
          // The connection stays usable after a server-side error
          // reply; only the operation failed.
          throw RemoteError(we.code, we.message);
        }
        return std::string(r.frame.payload);
      }
      char chunk[16 * 1024];
      const std::ptrdiff_t n = read_some(sock_.fd(), chunk, sizeof chunk);
      if (n == 0) {
        close();
        throw NetError("server closed the connection mid-response");
      }
      if (n < 0) {
        close();
        throw NetError("response timed out");
      }
      recvbuf_.append(chunk, static_cast<std::size_t>(n));
    }
  } catch (const RemoteError&) {
    throw;
  } catch (const NetError&) {
    close();  // transport state is unknown; force a reconnect
    throw;
  }
}

template <typename Key>
std::vector<std::uint8_t> Client::batch_op(Opcode op,
                                           std::span<const Key> keys) {
  std::string payload;
  append_key_batch(payload, keys);
  const std::string reply = round_trip(op, payload);
  std::vector<std::uint8_t> verdicts;
  if (const char* err = parse_verdicts(reply, verdicts); err != nullptr) {
    throw NetError(err);
  }
  if (verdicts.size() != keys.size()) {
    throw NetError("verdict count does not match key count");
  }
  return verdicts;
}

std::vector<std::uint8_t> Client::query(
    std::span<const std::string> keys) {
  return batch_op(Opcode::kQuery, keys);
}
std::vector<std::uint8_t> Client::query(
    std::span<const std::string_view> keys) {
  return batch_op(Opcode::kQuery, keys);
}
std::vector<std::uint8_t> Client::insert(
    std::span<const std::string> keys) {
  return batch_op(Opcode::kInsert, keys);
}
std::vector<std::uint8_t> Client::insert(
    std::span<const std::string_view> keys) {
  return batch_op(Opcode::kInsert, keys);
}
std::vector<std::uint8_t> Client::erase(
    std::span<const std::string> keys) {
  return batch_op(Opcode::kErase, keys);
}
std::vector<std::uint8_t> Client::erase(
    std::span<const std::string_view> keys) {
  return batch_op(Opcode::kErase, keys);
}

StatsReply Client::stats() {
  const std::string reply = round_trip(Opcode::kStats, {});
  StatsReply s;
  if (const char* err = parse_reply_pod(reply, s); err != nullptr) {
    throw NetError(err);
  }
  return s;
}

HealthReply Client::health() {
  const std::string reply = round_trip(Opcode::kHealth, {});
  HealthReply h;
  if (const char* err = parse_reply_pod(reply, h); err != nullptr) {
    throw NetError(err);
  }
  return h;
}

std::uint64_t Client::snapshot() {
  const std::string reply = round_trip(Opcode::kSnapshot, {});
  SnapshotReply s;
  if (const char* err = parse_reply_pod(reply, s); err != nullptr) {
    throw NetError(err);
  }
  return s.last_seq;
}

}  // namespace mpcbf::net
