#include "net/client.hpp"

#include <random>
#include <thread>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace mpcbf::net {

void Client::connect() {
  if (sock_.valid()) return;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.connect_deadline;
  Backoff backoff(options_.initial_backoff, options_.max_backoff,
                  options_.backoff_seed);
  NetError last("connect: no attempts made");
  for (;;) {
    try {
      sock_ = connect_tcp(options_.host, options_.port,
                          options_.io_timeout);
      return;
    } catch (const NetError& e) {
      last = e;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) throw last;
    // Jittered exponential spacing, clipped to the remaining budget —
    // the deadline is a hard ceiling, not a hint.
    const auto delay = std::min(
        backoff.next(), std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now));
    std::this_thread::sleep_for(delay);
  }
}

std::uint64_t Client::next_trace_id() noexcept {
  if (trace_state_ == 0) {
    trace_state_ = options_.trace_seed != 0 ? options_.trace_seed
                                            : Backoff::entropy_seed();
  }
  trace_state_ += 0x9E3779B97F4A7C15ull;  // SplitMix64 stream increment
  const std::uint64_t id = util::SplitMix64::mix(trace_state_);
  return id != 0 ? id : 1;
}

std::string Client::round_trip(Opcode op, std::string_view payload,
                               std::uint8_t flags,
                               std::uint64_t trace_id) {
  MPCBF_TRACE_SPAN(span, kNet, "client.round_trip");
  connect();
  const std::uint64_t id = next_id_++;
  if (trace_id == 0 && options_.stamp_trace_ids) {
    trace_id = next_trace_id();
  }
  sendbuf_.clear();
  if (trace_id != 0) {
    // The trace id rides as the first payload bytes under kFlagTraced;
    // the server strips it before parsing the real payload.
    last_trace_id_ = trace_id;
    span.set_arg("trace_id", trace_id);
    tracebuf_.clear();
    append_trace_prefix(tracebuf_, TracePrefix{trace_id});
    tracebuf_.append(payload);
    append_frame(sendbuf_, op, flags | kFlagTraced, id, tracebuf_);
  } else {
    append_frame(sendbuf_, op, flags, id, payload);
  }
  try {
    write_all(sock_.fd(), sendbuf_.data(), sendbuf_.size());
    recvbuf_.clear();
    for (;;) {
      const DecodeResult r = decode_frame(recvbuf_);
      if (r.status == DecodeStatus::kError) {
        close();
        throw NetError(std::string("response frame: ") + r.error);
      }
      if (r.status == DecodeStatus::kFrame) {
        const FrameHeader& h = r.frame.header;
        if ((h.flags & kFlagResponse) == 0 || h.request_id != id ||
            h.opcode != static_cast<std::uint8_t>(op)) {
          close();
          throw NetError("response frame does not match request");
        }
        if ((h.flags & kFlagError) != 0) {
          WireError we;
          if (const char* err = parse_error(r.frame.payload, we);
              err != nullptr) {
            close();
            throw NetError(err);
          }
          // The connection stays usable after a server-side error
          // reply; only the operation failed.
          throw RemoteError(we.code, we.message);
        }
        return std::string(r.frame.payload);
      }
      char chunk[16 * 1024];
      const std::ptrdiff_t n = read_some(sock_.fd(), chunk, sizeof chunk);
      if (n == 0) {
        close();
        throw NetError("server closed the connection mid-response");
      }
      if (n < 0) {
        close();
        throw NetError("response timed out");
      }
      recvbuf_.append(chunk, static_cast<std::size_t>(n));
    }
  } catch (const RemoteError&) {
    throw;
  } catch (const NetError&) {
    close();  // transport state is unknown; force a reconnect
    throw;
  }
}

std::string Client::scoped_payload(std::uint8_t& flags) const {
  std::string payload;
  if (!ns_.empty()) {
    append_ns_prefix(payload, ns_);
    flags |= kFlagNamespaced;
  }
  return payload;
}

template <typename Key>
std::vector<std::uint8_t> Client::batch_op(Opcode op,
                                           std::span<const Key> keys) {
  std::uint8_t flags = 0;
  std::string payload = scoped_payload(flags);
  append_key_batch(payload, keys);
  const std::string reply = round_trip(op, payload, flags);
  std::vector<std::uint8_t> verdicts;
  if (const char* err = parse_verdicts(reply, verdicts); err != nullptr) {
    throw NetError(err);
  }
  if (verdicts.size() != keys.size()) {
    throw NetError("verdict count does not match key count");
  }
  return verdicts;
}

std::vector<std::uint8_t> Client::query(
    std::span<const std::string> keys) {
  return batch_op(Opcode::kQuery, keys);
}
std::vector<std::uint8_t> Client::query(
    std::span<const std::string_view> keys) {
  return batch_op(Opcode::kQuery, keys);
}
std::vector<std::uint8_t> Client::insert(
    std::span<const std::string> keys) {
  return batch_op(Opcode::kInsert, keys);
}
std::vector<std::uint8_t> Client::insert(
    std::span<const std::string_view> keys) {
  return batch_op(Opcode::kInsert, keys);
}
std::vector<std::uint8_t> Client::erase(
    std::span<const std::string> keys) {
  return batch_op(Opcode::kErase, keys);
}
std::vector<std::uint8_t> Client::erase(
    std::span<const std::string_view> keys) {
  return batch_op(Opcode::kErase, keys);
}

template <typename Key>
std::vector<std::uint32_t> Client::count_op(std::span<const Key> keys) {
  std::uint8_t flags = 0;
  std::string payload = scoped_payload(flags);
  append_key_batch(payload, keys);
  const std::string reply = round_trip(Opcode::kEstCount, payload, flags);
  std::vector<std::uint32_t> counts;
  if (const char* err = parse_counts(reply, counts); err != nullptr) {
    throw NetError(err);
  }
  if (counts.size() != keys.size()) {
    throw NetError("count count does not match key count");
  }
  return counts;
}

std::vector<std::uint32_t> Client::est_count(
    std::span<const std::string> keys) {
  return count_op(keys);
}
std::vector<std::uint32_t> Client::est_count(
    std::span<const std::string_view> keys) {
  return count_op(keys);
}

void Client::ns_create(std::string_view name, const NsConfigWire& cfg) {
  std::string payload;
  append_ns_create(payload, name, cfg);
  const std::string reply = round_trip(Opcode::kNsCreate, payload);
  if (!reply.empty()) {
    throw NetError("nscreate reply: unexpected payload");
  }
}

void Client::ns_drop(std::string_view name) {
  std::string payload;
  append_ns_prefix(payload, name);
  const std::string reply = round_trip(Opcode::kNsDrop, payload);
  if (!reply.empty()) {
    throw NetError("nsdrop reply: unexpected payload");
  }
}

std::vector<NsRow> Client::ns_list() {
  const std::string reply = round_trip(Opcode::kNsList, {});
  std::vector<NsRow> rows;
  if (const char* err = parse_ns_list_reply(reply, rows); err != nullptr) {
    throw NetError(err);
  }
  return rows;
}

std::uint64_t Client::ns_tick(std::string_view name) {
  std::string payload;
  append_ns_prefix(payload, name);
  const std::string reply = round_trip(Opcode::kNsTick, payload);
  NsTickReply r;
  if (const char* err = parse_reply_pod(reply, r); err != nullptr) {
    throw NetError(err);
  }
  return r.ticks;
}

StatsReply Client::stats() {
  std::uint8_t flags = 0;
  const std::string payload = scoped_payload(flags);
  const std::string reply = round_trip(Opcode::kStats, payload, flags);
  StatsReply s;
  if (const char* err = parse_reply_pod(reply, s); err != nullptr) {
    throw NetError(err);
  }
  return s;
}

HealthReply Client::health() {
  std::uint8_t flags = 0;
  const std::string payload = scoped_payload(flags);
  const std::string reply = round_trip(Opcode::kHealth, payload, flags);
  HealthReply h;
  if (const char* err = parse_reply_pod(reply, h); err != nullptr) {
    throw NetError(err);
  }
  return h;
}

std::uint64_t Client::snapshot() {
  std::uint8_t flags = 0;
  const std::string payload = scoped_payload(flags);
  const std::string reply = round_trip(Opcode::kSnapshot, payload, flags);
  SnapshotReply s;
  if (const char* err = parse_reply_pod(reply, s); err != nullptr) {
    throw NetError(err);
  }
  return s.last_seq;
}

ReplicateInfo Client::replicate(const ReplicateRequest& req,
                                std::vector<io::JournalRecord>& records) {
  std::string payload;
  append_reply_pod(payload, req);
  const std::string reply = round_trip(Opcode::kReplicate, payload);
  ReplicateInfo info;
  if (const char* err = parse_replicate_reply(reply, info, records);
      err != nullptr) {
    throw NetError(err);
  }
  return info;
}

SnapFetchInfo Client::snap_fetch(const SnapFetchRequest& req,
                                 std::string& bytes) {
  std::string payload;
  append_reply_pod(payload, req);
  const std::string reply = round_trip(Opcode::kSnapFetch, payload);
  SnapFetchInfo info;
  std::string_view view;
  if (const char* err = parse_snapfetch_reply(reply, info, view);
      err != nullptr) {
    throw NetError(err);
  }
  bytes.assign(view);
  return info;
}

ReplStatusReply Client::repl_status() {
  const std::string reply = round_trip(Opcode::kReplStatus, {});
  ReplStatusReply r;
  if (const char* err = parse_reply_pod(reply, r); err != nullptr) {
    throw NetError(err);
  }
  return r;
}

// --- FailoverClient -----------------------------------------------------

FailoverClient::FailoverClient(Options options)
    : options_(std::move(options)) {
  if (options_.endpoints.empty()) {
    throw NetError("FailoverClient: no endpoints");
  }
  session_id_ = options_.session_id;
  if (session_id_ == 0) {
    std::random_device rd;
    session_id_ = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    if (session_id_ == 0) session_id_ = 1;
  }
}

std::uint64_t FailoverClient::next_trace_id() noexcept {
  trace_state_ += 0x9E3779B97F4A7C15ull;
  const std::uint64_t id =
      util::SplitMix64::mix(session_id_ ^ trace_state_);
  return id != 0 ? id : 1;
}

Client& FailoverClient::ensure_client() {
  if (!client_ || !client_->connected()) {
    const Endpoint& ep = options_.endpoints[active_];
    Client::Options co;
    co.host = ep.host;
    co.port = ep.port;
    co.connect_deadline = options_.connect_deadline;
    co.initial_backoff = options_.initial_backoff;
    co.max_backoff = options_.max_backoff;
    co.backoff_seed = options_.backoff_seed;
    co.io_timeout = options_.io_timeout;
    // The failover layer stamps one id per logical op itself; the
    // inner client must not burn ids per attempt.
    co.stamp_trace_ids = options_.stamp_trace_ids;
    client_.emplace(std::move(co));
  }
  return *client_;
}

void FailoverClient::rotate() {
  client_.reset();
  active_ = (active_ + 1) % options_.endpoints.size();
  ++failovers_;
}

template <typename Fn>
auto FailoverClient::with_failover(Fn&& fn)
    -> decltype(fn(std::declval<Client&>())) {
  const auto deadline =
      std::chrono::steady_clock::now() + options_.op_deadline;
  // Seed 0 keeps Backoff's per-instance entropy. An explicit seed is
  // mixed with the session id through SplitMix64 so concurrent sessions
  // sharing one configured seed still jitter apart — the old plain XOR
  // collapsed to the sentinel whenever the two values collided.
  std::uint64_t seed = 0;
  if (options_.backoff_seed != 0) {
    seed = util::SplitMix64::mix(options_.backoff_seed ^ session_id_);
    if (seed == 0) seed = 1;
  }
  Backoff backoff(options_.initial_backoff, options_.max_backoff, seed);
  NetError last("failover: no attempts made");
  for (;;) {
    try {
      return fn(ensure_client());
    } catch (const RemoteError& e) {
      // The server answered: every code but "I'm draining, go away" is
      // an authoritative verdict on the operation itself.
      if (e.code() != ErrorCode::kShuttingDown) throw;
      last = e;
    } catch (const NetError& e) {
      last = e;
    }
    rotate();
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) throw last;
    const auto delay = std::min(
        backoff.next(), std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now));
    std::this_thread::sleep_for(delay);
  }
}

template <typename Key>
std::vector<std::uint8_t> FailoverClient::query_impl(
    std::span<const Key> keys) {
  std::string payload;
  append_key_batch(payload, keys);
  // One trace id per logical query: every failover retry resends the
  // same id, so the server-side spans of all attempts correlate.
  const std::uint64_t tid =
      options_.stamp_trace_ids ? next_trace_id() : 0;
  if (tid != 0) last_trace_id_ = tid;
  return with_failover([&](Client& c) {
    const std::string reply =
        c.round_trip(Opcode::kQuery, payload, 0, tid);
    std::vector<std::uint8_t> verdicts;
    if (const char* err = parse_verdicts(reply, verdicts);
        err != nullptr) {
      throw NetError(err);
    }
    if (verdicts.size() != keys.size()) {
      throw NetError("verdict count does not match key count");
    }
    return verdicts;
  });
}

template <typename Key>
std::vector<std::uint8_t> FailoverClient::mutate(
    Opcode op, std::span<const Key> keys) {
  // One op_seq per logical mutation: every retry resends the same
  // sequence number, so the server applies once and replays the cached
  // reply for the duplicates.
  const SequencePrefix prefix{session_id_, ++next_op_seq_};
  std::string payload;
  append_sequenced_key_batch(payload, prefix, keys);
  const std::uint64_t tid =
      options_.stamp_trace_ids ? next_trace_id() : 0;
  if (tid != 0) last_trace_id_ = tid;
  return with_failover([&](Client& c) {
    const std::string reply =
        c.round_trip(op, payload, kFlagSequenced, tid);
    std::vector<std::uint8_t> verdicts;
    if (const char* err = parse_verdicts(reply, verdicts);
        err != nullptr) {
      throw NetError(err);
    }
    if (verdicts.size() != keys.size()) {
      throw NetError("verdict count does not match key count");
    }
    return verdicts;
  });
}

std::vector<std::uint8_t> FailoverClient::query(
    std::span<const std::string> keys) {
  return query_impl(keys);
}
std::vector<std::uint8_t> FailoverClient::query(
    std::span<const std::string_view> keys) {
  return query_impl(keys);
}
std::vector<std::uint8_t> FailoverClient::insert(
    std::span<const std::string> keys) {
  return mutate(Opcode::kInsert, keys);
}
std::vector<std::uint8_t> FailoverClient::insert(
    std::span<const std::string_view> keys) {
  return mutate(Opcode::kInsert, keys);
}
std::vector<std::uint8_t> FailoverClient::erase(
    std::span<const std::string> keys) {
  return mutate(Opcode::kErase, keys);
}
std::vector<std::uint8_t> FailoverClient::erase(
    std::span<const std::string_view> keys) {
  return mutate(Opcode::kErase, keys);
}

StatsReply FailoverClient::stats() {
  return with_failover([](Client& c) { return c.stats(); });
}

HealthReply FailoverClient::health() {
  return with_failover([](Client& c) { return c.health(); });
}

ReplStatusReply FailoverClient::repl_status() {
  return with_failover([](Client& c) { return c.repl_status(); });
}

}  // namespace mpcbf::net
