// Bounded lock-free single-producer / single-consumer ring.
//
// The scatter/gather layer wires every pair of workers with two of
// these (one per direction): worker A pushes sub-batch descriptors into
// ring[B][A], worker B pops them, executes against the shard it owns,
// and pushes a completion back through ring[A][B]. One producer and one
// consumer per ring means plain loads/stores with release/acquire
// ordering suffice — no CAS, no locks, no contention on the data path.
//
// This is deliberately NOT the slow_ring.hpp seqlock: that ring is a
// lossy diagnostics buffer where the writer may overwrite unread slots
// and readers tolerate torn snapshots. Cross-worker work hand-off must
// be lossless, so this ring refuses pushes when full (the producer
// parks the message on a local overflow queue and retries after waking
// the consumer) and a pop transfers exactly-once ownership.
//
// Memory ordering contract: everything the producer wrote before
// push()'s release store is visible to the consumer after pop()'s
// acquire load — this is what lets a remote worker fill verdict bytes
// in a sub-batch and hand the whole struct back without further
// synchronization.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace mpcbf::net {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two; the ring holds
  /// capacity - 1 elements (one slot distinguishes full from empty).
  explicit SpscRing(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(SpscRing&&) = delete;
  SpscRing(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full (nothing is
  /// written); the caller keeps ownership of `value`.
  bool push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_.load(std::memory_order_acquire)) {
      return false;  // full
    }
    slots_[tail] = value;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    out = slots_[head];
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (exact for the consumer; a producer
  /// sees a possibly stale answer).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Head and tail on separate cache lines so the producer's stores do
  // not invalidate the consumer's line on every push.
  alignas(64) std::atomic<std::size_t> head_{0};  // next pop
  alignas(64) std::atomic<std::size_t> tail_{0};  // next push
};

}  // namespace mpcbf::net
