// Multi-tenant namespace registry — one mpcbfd, many independently
// configured, bounded-lifetime workloads.
//
// Each namespace owns a complete backend stack: a concrete filter of a
// wire-selected kind (NsKind — plain, durable, decaying, or durable
// decaying), its own shared_mutex, its own HealthProber (health series
// labeled {filter="ns-<name>"}), its own quota gate and its own durable
// directory `root/ns-<name>/`. The registry maps wire names to those
// backends:
//
//   frame (kFlagNamespaced) ──parse_ns_prefix──▶ resolve(name)
//                                                   │
//                              ┌────────────────────┼──────────────┐
//                              ▼                    ▼              ▼
//                        ns "sessions"        ns "abuse"     ns "urls"
//                        DecayingMpcbf        DurableMpcbf   Mpcbf
//                        4 gens, 30s tick     max_keys=1e6   unbounded
//
// Isolation properties the tests pin down:
//   - verdict parity: a namespaced request answers byte-identically to
//     the same request against a standalone server of the same config;
//   - quota isolation: one tenant exhausting its key quota gets clean
//     kQuotaExceeded rejections while sibling namespaces stay healthy;
//   - lifecycle: NSDROP removes the namespace *and* its durable
//     directory — a bounded-lifetime workload leaves nothing behind.
//
// Decay ("TTL") integration: namespaces of a decay kind rotate their
// sliding window either on demand (NSTICK) or automatically — the
// registry's ticker thread fires a decay_tick() every
// NsConfigWire::tick_interval_ms. Durable decay namespaces journal each
// tick (io::JournalOp::kDecayTick), so recovery replays rotations at
// their exact sequence positions.
//
// Thread safety: resolve()/list()/status_lines() take the registry lock
// shared; create()/drop() exclusive. A resolved backend is a
// shared_ptr, so a namespace dropped mid-request stays alive until the
// last in-flight request releases it. Per-request serialization happens
// inside the backend (make_backend's shared_mutex), not here.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/server.hpp"

namespace mpcbf::net {

class NamespaceRegistry {
 public:
  struct Options {
    /// Parent directory for durable namespaces (`root_dir/ns-<name>/`).
    /// Empty rejects durable kinds at create time.
    std::string root_dir;
    /// NSCREATE past this count is rejected (kQuotaExceeded).
    std::size_t max_namespaces = kMaxNamespaces;
    /// Per-namespace HealthProber FPR probe count.
    std::size_t health_fpr_probes = 512;
    /// Ticker granularity: automatic decay intervals are checked (and
    /// per-namespace metrics republished) this often.
    std::chrono::milliseconds ticker_period{200};
    /// Spawn the background ticker thread. Disable in tests that want
    /// fully deterministic tick placement.
    bool start_ticker = true;
  };

  // A delegating default ctor instead of `Options options = {}`: gcc
  // rejects brace default args for a nested aggregate whose default
  // member inits are not yet parsed (bug 88165); deferred function
  // bodies have no such restriction.
  NamespaceRegistry() : NamespaceRegistry(Options()) {}
  explicit NamespaceRegistry(Options options);
  ~NamespaceRegistry();

  NamespaceRegistry(const NamespaceRegistry&) = delete;
  NamespaceRegistry& operator=(const NamespaceRegistry&) = delete;

  /// Creates a namespace from its wire config. Returns an empty string
  /// on success; otherwise the error message with `code` set to the
  /// wire error to reply with. Validation (name, kind, cap, duplicate,
  /// memory quota vs. configured footprint) happens before any
  /// allocation or directory creation.
  std::string create(std::string_view name, const NsConfigWire& cfg,
                     ErrorCode& code);

  /// Drops a namespace: unregisters it and deletes its durable
  /// directory (bounded-lifetime workloads leave nothing behind).
  /// In-flight requests holding the resolved backend finish safely.
  std::string drop(std::string_view name, ErrorCode& code);

  /// Forces one decay tick; `ticks` receives the new ordinal. Fails on
  /// unknown namespaces and on kinds without decay.
  std::string tick(std::string_view name, std::uint64_t& ticks,
                   ErrorCode& code);

  /// One NSLIST row per namespace, name-sorted.
  [[nodiscard]] std::vector<NsRow> list() const;

  /// The named namespace's backend, or null when unknown.
  [[nodiscard]] std::shared_ptr<const FilterBackend> resolve(
      std::string_view name) const;

  [[nodiscard]] std::size_t size() const;

  /// Appends one human-readable line per namespace (the /statusz hook).
  void status_lines(std::string& out) const;

  /// Publishes per-namespace series into the global metrics registry:
  /// mpcbf_ns_elements / mpcbf_ns_memory_bits gauges and
  /// mpcbf_ns_decay_ticks_total / mpcbf_ns_quota_rejections_total
  /// counters, all labeled {ns="<name>"}. The ticker calls this every
  /// period; call it manually before a scrape when the ticker is off.
  void publish_metrics();

  /// Runs every automatic decay tick whose interval has elapsed.
  /// Returns the number of namespaces ticked. The ticker calls this;
  /// exposed for deterministic tests.
  std::size_t tick_elapsed();

 private:
  struct Entry;

  [[nodiscard]] std::shared_ptr<Entry> find(std::string_view name) const;
  void ticker_loop();

  Options options_;
  mutable std::shared_mutex mu_;
  std::vector<std::shared_ptr<Entry>> entries_;  ///< name-sorted

  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
  std::thread ticker_;
};

}  // namespace mpcbf::net
