// MurmurHash3 (Austin Appleby, public domain), x64 128-bit and x86 32-bit
// variants. The 128-bit variant is the primary key hash for every filter in
// this repository: its two 64-bit halves seed the HashBitStream that doles
// out word-selector and in-word position bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mpcbf::hash {

struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
};

/// MurmurHash3_x64_128 over an arbitrary byte range.
[[nodiscard]] Hash128 murmur3_128(const void* data, std::size_t len,
                                  std::uint64_t seed) noexcept;

[[nodiscard]] inline Hash128 murmur3_128(std::string_view key,
                                         std::uint64_t seed) noexcept {
  return murmur3_128(key.data(), key.size(), seed);
}

/// MurmurHash3_x86_32 — used by tests as an independent reference and by
/// the d-left CBF for its cheap per-subtable fingerprints.
[[nodiscard]] std::uint32_t murmur3_32(const void* data, std::size_t len,
                                       std::uint32_t seed) noexcept;

[[nodiscard]] inline std::uint32_t murmur3_32(std::string_view key,
                                              std::uint32_t seed) noexcept {
  return murmur3_32(key.data(), key.size(), seed);
}

}  // namespace mpcbf::hash
