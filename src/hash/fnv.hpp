// FNV-1a — tiny non-cryptographic hash, used where a cheap independent
// mixer is convenient (test vectors, striping keys across shards).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mpcbf::hash {

constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ULL;

[[nodiscard]] constexpr std::uint64_t fnv1a64(const char* data,
                                              std::size_t len,
                                              std::uint64_t seed =
                                                  kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= kFnvPrime64;
  }
  return h;
}

[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view key,
                                              std::uint64_t seed =
                                                  kFnvOffset64) noexcept {
  return fnv1a64(key.data(), key.size(), seed);
}

}  // namespace mpcbf::hash
