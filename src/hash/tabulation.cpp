#include "hash/tabulation.hpp"

#include <cstring>

#include "common/rng.hpp"

namespace mpcbf::hash {

TabulationHash::TabulationHash(std::uint64_t seed) {
  util::SplitMix64 sm(seed);
  for (auto& table : tables_) {
    for (auto& entry : table) entry = sm.next();
  }
}

std::uint64_t TabulationHash::operator()(std::string_view key) const noexcept {
  std::uint64_t folded = 0;
  std::size_t i = 0;
  while (i + 8 <= key.size()) {
    std::uint64_t chunk;
    std::memcpy(&chunk, key.data() + i, 8);
    folded ^= chunk;
    i += 8;
  }
  std::uint64_t tail = 0;
  for (std::size_t j = 0; i + j < key.size(); ++j) {
    tail |= static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(key[i + j]))
            << (8 * j);
  }
  // Mix length so "ab" and "ab\0" fold differently.
  folded ^= tail ^ (static_cast<std::uint64_t>(key.size()) << 56);
  return hash_u64(folded);
}

}  // namespace mpcbf::hash
