// HashBitStream — the single source of hash bits for every filter.
//
// The paper characterizes each scheme by its *access bandwidth*: how many
// hash bits an operation consumes (log2(l) to pick a word, k*log2(b1) to
// pick bits inside it, ...). This class makes that metric measurable: it
// serves raw bits from successive MurmurHash3 128-bit blocks of the key
// (rehashing with an incremented seed when a block is exhausted, so the
// supply is unbounded) and separately accounts the paper-defined bandwidth
// of every request.
//
// Determinism: the bit sequence depends only on (key bytes, seed), so an
// insert and a later delete of the same key derive identical positions —
// the property CBF correctness rests on.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <string_view>

#include "hash/murmur3.hpp"

namespace mpcbf::hash {

/// Default hash seed for every filter in the library: the 64-bit golden
/// ratio (2^64/φ), the standard odd constant with well-mixed bits. One
/// definition so configs, convenience constructors, and tools can't
/// drift apart; serialization records the seed, so changing a filter's
/// seed is a layout change, not a cosmetic one.
inline constexpr std::uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ULL;

/// ceil(log2(x)) for x >= 1; 0 for x <= 1. This is the paper's accounting
/// unit for addressing a structure of x slots.
[[nodiscard]] constexpr unsigned ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return static_cast<unsigned>(64 - std::countl_zero(x - 1));
}

class HashBitStream {
 public:
  /// Starts a stream over `key`. The view must outlive the stream (filters
  /// construct one per operation, so this holds trivially).
  HashBitStream(std::string_view key, std::uint64_t seed) noexcept
      : key_(key), seed_(seed) {
    refill();
  }

  /// Uniform index in [0, bound). Accounts ceil_log2(bound) bits of access
  /// bandwidth — the paper's cost of addressing `bound` slots. For
  /// non-power-of-two bounds, uses a multiply-shift over
  /// ceil_log2(bound)+12 raw bits: the relative bias is < 2^-12,
  /// invisible next to the sampling noise of any experiment here, while
  /// keeping entropy consumption low enough that a whole operation's
  /// indices fit in one 128-bit hash block (this is what keeps MPCBF's
  /// software query cost at/below CBF's, Sec. IV-B).
  std::size_t next_index(std::size_t bound) noexcept {
    assert(bound > 0);
    const unsigned log2_bound = ceil_log2(bound);
    accounted_bits_ += log2_bound;
    if (std::has_single_bit(bound)) {
      return log2_bound == 0
                 ? 0
                 : static_cast<std::size_t>(raw_bits(log2_bound));
    }
    const unsigned width = std::min(48u, log2_bound + 12);
    const std::uint64_t v = raw_bits(width);
    return static_cast<std::size_t>(
        (static_cast<__uint128_t>(v) * bound) >> width);
  }

  /// `width` raw bits (1..64), accounted at face value.
  std::uint64_t next_bits(unsigned width) noexcept {
    accounted_bits_ += width;
    return raw_bits(width);
  }

  /// Paper-metric access bandwidth consumed so far, in bits.
  [[nodiscard]] std::uint64_t accounted_bits() const noexcept {
    return accounted_bits_;
  }

 private:
  void refill() noexcept {
    const Hash128 h = murmur3_128(key_, seed_ + block_);
    lanes_[0] = h.lo;
    lanes_[1] = h.hi;
    lane_ = 0;
    lane_used_ = 0;
    ++block_;
  }

  std::uint64_t raw_bits(unsigned width) noexcept {
    assert(width >= 1 && width <= 64);
    if (lane_used_ + width > 64) {
      if (lane_ == 0) {
        lane_ = 1;
        lane_used_ = 0;
      } else {
        refill();
      }
    }
    const std::uint64_t v = lanes_[lane_] >> lane_used_;
    lane_used_ += width;
    return width == 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
  }

  std::string_view key_;
  std::uint64_t seed_;
  std::uint64_t lanes_[2] = {0, 0};
  unsigned lane_ = 0;
  unsigned lane_used_ = 0;
  std::uint64_t block_ = 0;
  std::uint64_t accounted_bits_ = 0;
};

/// Kirsch–Mitzenmacher double hashing: k positions from two base hashes,
/// g_i(x) = h1 + i*h2 (mod m). Used by the classic Bloom/CBF baselines when
/// `use_double_hashing` is configured; accounted as 2*log2(m) bits total,
/// per the "less hashing, same performance" scheme the paper cites as [22].
class DoubleHasher {
 public:
  DoubleHasher(std::string_view key, std::uint64_t seed,
               std::size_t m) noexcept
      : m_(m) {
    const Hash128 h = murmur3_128(key, seed);
    h1_ = h.lo % m;
    h2_ = h.hi % m;
    if (h2_ == 0) h2_ = 1;  // step must be non-zero to visit k slots
  }

  /// i-th derived position, i = 0..k-1.
  [[nodiscard]] std::size_t position(std::size_t i) const noexcept {
    return static_cast<std::size_t>(
        (h1_ + static_cast<__uint128_t>(i) * h2_) % m_);
  }

  [[nodiscard]] std::uint64_t accounted_bits() const noexcept {
    return 2ULL * ceil_log2(m_);
  }

 private:
  std::uint64_t h1_;
  std::uint64_t h2_;
  std::size_t m_;
};

}  // namespace mpcbf::hash
