// Simple tabulation hashing (Zobrist / Patrascu–Thorup).
//
// 3-independent and empirically excellent for hashing fixed-width keys;
// used by the benches as the "hardware hashing" stand-in because a
// tabulation lookup is what an FPGA hash unit would implement (Sec. IV-B of
// the paper motivates hardware hashing). Keys are hashed byte-wise against
// 8 tables of 256 random 64-bit entries.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mpcbf::hash {

class TabulationHash {
 public:
  explicit TabulationHash(std::uint64_t seed);

  /// Hashes up to the first 8 bytes of `key` (longer keys are folded with a
  /// running XOR so all bytes still influence the result).
  [[nodiscard]] std::uint64_t operator()(std::string_view key) const noexcept;

  [[nodiscard]] std::uint64_t hash_u64(std::uint64_t key) const noexcept {
    std::uint64_t h = 0;
    for (int b = 0; b < 8; ++b) {
      h ^= tables_[static_cast<std::size_t>(b)]
                  [static_cast<std::uint8_t>(key >> (8 * b))];
    }
    return h;
  }

 private:
  std::array<std::array<std::uint64_t, 256>, 8> tables_;
};

}  // namespace mpcbf::hash
