// xxHash64 (Yann Collet, BSD) — an independent 64-bit hash used to
// cross-check hash-quality-sensitive results and as the second hash of the
// Kirsch–Mitzenmacher double-hashing scheme.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mpcbf::hash {

[[nodiscard]] std::uint64_t xxhash64(const void* data, std::size_t len,
                                     std::uint64_t seed) noexcept;

[[nodiscard]] inline std::uint64_t xxhash64(std::string_view key,
                                            std::uint64_t seed) noexcept {
  return xxhash64(key.data(), key.size(), seed);
}

}  // namespace mpcbf::hash
