// Longest Prefix Matching with per-length membership filters —
// Dharmapurikar, Krishnamurthy & Taylor's scheme (SIGCOMM 2003, the
// paper's ref. [4]), built here over MPCBF.
//
// One filter per prefix length summarizes the prefixes of that length;
// the exact routes live in per-length hash tables (the scheme's off-chip
// memory). A lookup queries the filters for every length (on a line card:
// in parallel, on-chip), then probes the exact tables only for lengths
// whose filter answered positive, from longest to shortest, stopping at
// the first real match. Filters never cause wrong results — a false
// positive costs one wasted off-chip probe, a property the lookup
// statistics expose.
//
// Route updates (BGP add/withdraw) delete from the filters, which is why
// the scheme needs *counting* filters — and why the paper's fast, accurate
// CBF replacement matters here: the filter probes are the on-chip
// bottleneck, and MPCBF answers each in one memory access.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/mpcbf.hpp"
#include "workload/route_table.hpp"

namespace mpcbf::apps {

struct LpmConfig {
  /// Supported prefix lengths (inclusive).
  unsigned min_length = 8;
  unsigned max_length = 32;
  /// Filter memory per prefix length, in bits.
  std::size_t filter_bits_per_length = 1 << 16;
  /// Expected prefixes per length (for the filters' capacity heuristic).
  std::size_t expected_per_length = 4000;
  unsigned k = 3;
  unsigned g = 1;
  std::uint64_t seed = 0x10F4;
};

struct LpmStats {
  std::uint64_t lookups = 0;
  std::uint64_t filter_positives = 0;  ///< lengths flagged by filters
  std::uint64_t table_probes = 0;      ///< exact (off-chip) probes actually made
  std::uint64_t wasted_probes = 0;     ///< probes caused by filter false positives
  std::uint64_t hits = 0;

  [[nodiscard]] double probes_per_lookup() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(table_probes) /
                              static_cast<double>(lookups);
  }
};

class LpmTable {
 public:
  explicit LpmTable(const LpmConfig& cfg) : cfg_(cfg) {
    if (cfg.min_length < 1 || cfg.max_length > 32 ||
        cfg.min_length > cfg.max_length) {
      throw std::invalid_argument("LpmTable: bad length range");
    }
    const unsigned lengths = cfg.max_length - cfg.min_length + 1;
    filters_.reserve(lengths);
    for (unsigned i = 0; i < lengths; ++i) {
      core::MpcbfConfig mcfg;
      mcfg.memory_bits = cfg.filter_bits_per_length;
      mcfg.k = cfg.k;
      mcfg.g = cfg.g;
      mcfg.expected_n = cfg.expected_per_length;
      mcfg.seed = cfg.seed + i;
      // Losing a route to word overflow would black-hole traffic.
      mcfg.policy = core::OverflowPolicy::kStash;
      filters_.emplace_back(mcfg);
    }
    tables_.resize(lengths);
  }

  /// Installs a route. Duplicate (prefix, length) updates the next hop
  /// without re-inserting into the filter.
  void add_route(std::uint32_t prefix, unsigned length,
                 std::uint32_t next_hop) {
    check_length(length);
    prefix &= workload::RouteTable::mask_of(length);
    auto& table = tables_[index_of(length)];
    const auto [it, inserted] = table.try_emplace(prefix, next_hop);
    if (!inserted) {
      it->second = next_hop;
      return;
    }
    filters_[index_of(length)].insert(key_of(prefix));
    ++num_routes_;
  }

  /// Withdraws a route; returns false if it was not installed.
  bool remove_route(std::uint32_t prefix, unsigned length) {
    check_length(length);
    prefix &= workload::RouteTable::mask_of(length);
    auto& table = tables_[index_of(length)];
    const auto it = table.find(prefix);
    if (it == table.end()) return false;
    table.erase(it);
    filters_[index_of(length)].erase(key_of(prefix));
    --num_routes_;
    return true;
  }

  /// Longest-prefix lookup. Exact by construction; `stats` (optional)
  /// accumulates the probe accounting.
  [[nodiscard]] std::optional<std::uint32_t> lookup(
      std::uint32_t addr, LpmStats* stats = nullptr) const {
    if (stats != nullptr) ++stats->lookups;
    // Phase 1 (on-chip): query every length's filter.
    // Phase 2 (off-chip): probe flagged lengths, longest first.
    std::optional<std::uint32_t> result;
    for (unsigned length = cfg_.max_length;; --length) {
      const std::uint32_t prefix =
          addr & workload::RouteTable::mask_of(length);
      if (filters_[index_of(length)].contains(key_of(prefix))) {
        if (stats != nullptr) ++stats->filter_positives;
        const auto& table = tables_[index_of(length)];
        if (stats != nullptr) ++stats->table_probes;
        const auto it = table.find(prefix);
        if (it != table.end()) {
          result = it->second;
          if (stats != nullptr) ++stats->hits;
          break;
        }
        if (stats != nullptr) ++stats->wasted_probes;
      }
      if (length == cfg_.min_length) break;
    }
    return result;
  }

  [[nodiscard]] std::size_t num_routes() const noexcept {
    return num_routes_;
  }
  [[nodiscard]] std::size_t filter_memory_bits() const {
    std::size_t total = 0;
    for (const auto& f : filters_) total += f.memory_bits();
    return total;
  }
  [[nodiscard]] const core::Mpcbf<64>& filter_for(unsigned length) const {
    check_length(length);
    return filters_[index_of(length)];
  }

 private:
  void check_length(unsigned length) const {
    if (length < cfg_.min_length || length > cfg_.max_length) {
      throw std::invalid_argument("LpmTable: prefix length out of range");
    }
  }
  [[nodiscard]] unsigned index_of(unsigned length) const noexcept {
    return length - cfg_.min_length;
  }
  [[nodiscard]] static std::string_view key_of(
      const std::uint32_t& prefix) noexcept {
    return {reinterpret_cast<const char*>(&prefix), sizeof(prefix)};
  }

  LpmConfig cfg_;
  std::vector<core::Mpcbf<64>> filters_;
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> tables_;
  std::size_t num_routes_ = 0;
};

}  // namespace mpcbf::apps
