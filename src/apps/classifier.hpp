// Packet classification by tuple-space search with per-tuple membership
// filters — the second line-card application in the paper's introduction
// ("packet forwarding and packet classification at line-speed"), in the
// style of Yu & Mahapatra's multi-predicate Bloom-filter classifier (the
// paper's ref. [9]).
//
// Rules match (source prefix, destination prefix) pairs. Rules sharing
// the same (src_len, dst_len) *tuple* live in one exact hash table keyed
// by the masked pair; a tuple-space lookup probes every tuple's table.
// The filters fix that cost: each tuple carries an MPCBF over its keys,
// checked before the expensive table probe — misses are skipped, false
// positives cost one wasted probe, and rule updates (add/remove) work
// because the filters are counting filters.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/mpcbf.hpp"
#include "workload/route_table.hpp"

namespace mpcbf::apps {

struct ClassifierRule {
  std::uint32_t src_prefix = 0;
  unsigned src_len = 0;  ///< 0..32
  std::uint32_t dst_prefix = 0;
  unsigned dst_len = 0;  ///< 0..32
  /// Higher wins among matching rules.
  std::uint32_t priority = 0;
  std::uint32_t action = 0;
};

struct ClassifierStats {
  std::uint64_t lookups = 0;
  std::uint64_t tuples_scanned = 0;   ///< filters consulted
  std::uint64_t table_probes = 0;     ///< exact probes actually made
  std::uint64_t wasted_probes = 0;    ///< probes with no matching rule
  std::uint64_t matches = 0;

  [[nodiscard]] double probes_per_lookup() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(table_probes) /
                              static_cast<double>(lookups);
  }
};

class TupleSpaceClassifier {
 public:
  struct Config {
    std::size_t filter_bits_per_tuple = 1 << 14;
    std::size_t expected_rules_per_tuple = 500;
    unsigned k = 3;
    std::uint64_t seed = 0xC1A55;
  };

  TupleSpaceClassifier() = default;
  explicit TupleSpaceClassifier(const Config& cfg) : cfg_(cfg) {}

  void add_rule(const ClassifierRule& rule) {
    validate_rule(rule);
    ClassifierRule r = rule;
    r.src_prefix &= workload::RouteTable::mask_of(r.src_len);
    r.dst_prefix &= workload::RouteTable::mask_of(r.dst_len);
    Tuple& tuple = tuple_for(r.src_len, r.dst_len);
    auto& bucket = tuple.rules[key_of(r.src_prefix, r.dst_prefix)];
    bucket.push_back(r);
    if (bucket.size() == 1) {
      // First rule on this key: announce it to the tuple's filter.
      const auto key = key_of(r.src_prefix, r.dst_prefix);
      tuple.filter->insert(key_view(key));
    }
    ++num_rules_;
  }

  /// Removes one rule matching all fields; returns false if absent.
  bool remove_rule(const ClassifierRule& rule) {
    ClassifierRule r = rule;
    r.src_prefix &= workload::RouteTable::mask_of(r.src_len);
    r.dst_prefix &= workload::RouteTable::mask_of(r.dst_len);
    const auto tuple_it = tuples_.find(tuple_id(r.src_len, r.dst_len));
    if (tuple_it == tuples_.end()) return false;
    Tuple& tuple = tuple_it->second;
    const std::uint64_t key = key_of(r.src_prefix, r.dst_prefix);
    const auto bucket_it = tuple.rules.find(key);
    if (bucket_it == tuple.rules.end()) return false;
    auto& bucket = bucket_it->second;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].priority == r.priority &&
          bucket[i].action == r.action) {
        bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(i));
        if (bucket.empty()) {
          tuple.rules.erase(bucket_it);
          tuple.filter->erase(key_view(key));
        }
        --num_rules_;
        return true;
      }
    }
    return false;
  }

  /// Highest-priority matching rule's action for a packet header.
  [[nodiscard]] std::optional<std::uint32_t> classify(
      std::uint32_t src, std::uint32_t dst,
      ClassifierStats* stats = nullptr) const {
    if (stats != nullptr) ++stats->lookups;
    const ClassifierRule* best = nullptr;
    for (const auto& [id, tuple] : tuples_) {
      if (stats != nullptr) ++stats->tuples_scanned;
      const unsigned src_len = id >> 8;
      const unsigned dst_len = id & 0xFF;
      const std::uint64_t key =
          key_of(src & workload::RouteTable::mask_of(src_len),
                 dst & workload::RouteTable::mask_of(dst_len));
      if (!tuple.filter->contains(key_view(key))) continue;
      if (stats != nullptr) ++stats->table_probes;
      const auto it = tuple.rules.find(key);
      if (it == tuple.rules.end()) {
        if (stats != nullptr) ++stats->wasted_probes;
        continue;
      }
      for (const auto& r : it->second) {
        if (best == nullptr || r.priority > best->priority) {
          best = &r;
        }
      }
    }
    if (best == nullptr) return std::nullopt;
    if (stats != nullptr) ++stats->matches;
    return best->action;
  }

  [[nodiscard]] std::size_t num_rules() const noexcept { return num_rules_; }
  [[nodiscard]] std::size_t num_tuples() const noexcept {
    return tuples_.size();
  }
  [[nodiscard]] std::size_t filter_memory_bits() const {
    std::size_t total = 0;
    for (const auto& [id, tuple] : tuples_) {
      total += tuple.filter->memory_bits();
    }
    return total;
  }

 private:
  struct Tuple {
    std::unique_ptr<core::Mpcbf<64>> filter;
    // key -> rules on that exact (src, dst) prefix pair.
    std::unordered_map<std::uint64_t, std::vector<ClassifierRule>> rules;
  };

  static void validate_rule(const ClassifierRule& r) {
    if (r.src_len > 32 || r.dst_len > 32) {
      throw std::invalid_argument("ClassifierRule: prefix length > 32");
    }
  }

  [[nodiscard]] static unsigned tuple_id(unsigned src_len,
                                         unsigned dst_len) noexcept {
    return (src_len << 8) | dst_len;
  }

  [[nodiscard]] static std::uint64_t key_of(std::uint32_t src,
                                            std::uint32_t dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  [[nodiscard]] static std::string_view key_view(
      const std::uint64_t& key) noexcept {
    return {reinterpret_cast<const char*>(&key), sizeof(key)};
  }

  Tuple& tuple_for(unsigned src_len, unsigned dst_len) {
    auto [it, inserted] = tuples_.try_emplace(tuple_id(src_len, dst_len));
    if (inserted) {
      core::MpcbfConfig mcfg;
      mcfg.memory_bits = cfg_.filter_bits_per_tuple;
      mcfg.k = cfg_.k;
      mcfg.g = 1;
      mcfg.expected_n = cfg_.expected_rules_per_tuple;
      mcfg.seed = cfg_.seed + tuple_id(src_len, dst_len);
      mcfg.policy = core::OverflowPolicy::kStash;  // never drop a rule
      it->second.filter = std::make_unique<core::Mpcbf<64>>(mcfg);
    }
    return it->second;
  }

  Config cfg_{};
  // Ordered map: deterministic tuple scan order.
  std::map<unsigned, Tuple> tuples_;
  std::size_t num_rules_ = 0;
};

}  // namespace mpcbf::apps
