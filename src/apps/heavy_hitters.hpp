// Heavy-hitter detection on top of MPCBF multiplicity estimates — the
// "flow measurement system" application the paper's Sec. IV-D simulates
// (its trace protocol "simulates a flow measurement system that measures
// the Internet traffic of 200K flows in CBF").
//
// The sketch counts every key occurrence in an MPCBF (count() gives a
// conservative, never-undercounting estimate, exactly like a count-min
// row) and tracks the current top-k candidates in a small exact map that
// admits a key once its estimate crosses the running threshold. Decay is
// supported by erasing old occurrences (the counting filter's raison
// d'être — a plain Bloom filter cannot age anything out).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/mpcbf.hpp"

namespace mpcbf::apps {

struct HeavyHitter {
  std::string key;
  std::uint64_t estimate = 0;  ///< conservative (never an undercount)
};

class HeavyHitterSketch {
 public:
  struct Config {
    std::size_t memory_bits = 1 << 20;
    unsigned k = 3;
    unsigned g = 1;
    std::size_t expected_distinct = 10000;
    /// Keys whose estimate reaches this multiplicity become candidates.
    std::uint64_t threshold = 8;
    std::uint64_t seed = 0x4EA11;
  };

  explicit HeavyHitterSketch(const Config& cfg)
      : threshold_(cfg.threshold), filter_(make_filter(cfg)) {}

  /// Records one occurrence of `key`.
  void add(std::string_view key) {
    ++total_;
    (void)filter_.insert(key);
    const std::uint32_t estimate = filter_.count(key);
    if (estimate >= threshold_) {
      auto [it, inserted] = candidates_.try_emplace(std::string(key), 0);
      it->second = std::max<std::uint64_t>(it->second, estimate);
    }
  }

  /// Ages out one previously added occurrence (sliding-window decay).
  void remove(std::string_view key) {
    if (total_ > 0) --total_;
    (void)filter_.erase(key);
    auto it = candidates_.find(std::string(key));
    if (it != candidates_.end()) {
      const std::uint32_t estimate = filter_.count(key);
      if (estimate < threshold_) {
        candidates_.erase(it);
      } else {
        it->second = estimate;
      }
    }
  }

  /// The current top-n candidates by (refreshed) estimate, descending.
  [[nodiscard]] std::vector<HeavyHitter> top(std::size_t n) const {
    std::vector<HeavyHitter> out;
    out.reserve(candidates_.size());
    for (const auto& [key, recorded] : candidates_) {
      out.push_back(HeavyHitter{key, filter_.count(key)});
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
      return a.estimate != b.estimate ? a.estimate > b.estimate
                                      : a.key < b.key;
    });
    if (out.size() > n) out.resize(n);
    return out;
  }

  [[nodiscard]] std::uint64_t total_occurrences() const noexcept {
    return total_;
  }
  [[nodiscard]] std::size_t candidate_count() const noexcept {
    return candidates_.size();
  }
  [[nodiscard]] std::uint64_t threshold() const noexcept {
    return threshold_;
  }
  [[nodiscard]] const core::Mpcbf<64>& filter() const noexcept {
    return filter_;
  }

 private:
  static core::Mpcbf<64> make_filter(const Config& cfg) {
    core::MpcbfConfig mcfg;
    mcfg.memory_bits = cfg.memory_bits;
    mcfg.k = cfg.k;
    mcfg.g = cfg.g;
    mcfg.expected_n = cfg.expected_distinct;
    mcfg.seed = cfg.seed;
    // Hot keys stack many increments into their words; the stash absorbs
    // what the heuristic capacity cannot, so estimates stay conservative
    // rather than silently dropping occurrences.
    mcfg.policy = core::OverflowPolicy::kStash;
    return core::Mpcbf<64>(mcfg);
  }

  std::uint64_t threshold_;
  std::uint64_t total_ = 0;
  core::Mpcbf<64> filter_;
  std::unordered_map<std::string, std::uint64_t> candidates_;
};

}  // namespace mpcbf::apps
