// Cycle-approximate SRAM line-card model — the substitution for the
// FPGA/ASIC platform the paper targets ("we are currently building such a
// hardware platform", Sec. IV-B; see DESIGN.md §4).
//
// The paper's entire argument is that in hardware the bottleneck is
// *memory accesses to on-chip SRAM*, not hash computation: a CBF query
// needs k reads of scattered words, an MPCBF-g query needs g. This module
// makes that claim measurable with a deterministic queueing model of a
// banked SRAM behind a lookup pipeline:
//
//   * B single-port banks, fully pipelined: each bank accepts one request
//     per cycle and answers `access_latency` cycles later;
//   * a word address maps to bank (word_index mod B);
//   * the front end dispatches up to `dispatch_width` operations per
//     cycle; an operation issues all its word requests as early as bank
//     ports allow (hardware parallelism — unlike software, the k reads of
//     one CBF query go out concurrently when they hit distinct banks);
//   * an operation completes when its last request returns; hashing adds
//     a fixed pipeline latency but no throughput cost (a hardware hash
//     unit is itself pipelined — exactly the paper's assumption).
//
// The simulator executes a trace of operations (each a list of word
// indices, produced by the *real* filters' target derivation so bank
// conflict patterns are authentic) and reports sustained throughput and
// latency percentiles.
#pragma once

#include <cstdint>
#include <vector>

namespace mpcbf::hwsim {

struct SramConfig {
  unsigned banks = 4;
  unsigned access_latency = 2;   ///< cycles from issue to data
  unsigned dispatch_width = 1;   ///< operations entering the pipeline per cycle
  unsigned hash_latency = 3;     ///< fixed pipeline stages before first issue
  double clock_ghz = 1.0;
};

/// One filter operation: the distinct memory words it must touch. An
/// update is a read-modify-write per word — the bank port is occupied for
/// two slots (read issue + writeback) and completion waits for the
/// writeback, which is how counter updates cost more than queries even in
/// hardware.
struct MemoryOp {
  std::vector<std::uint64_t> words;
  bool read_modify_write = false;
};

struct SimResult {
  std::uint64_t operations = 0;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t bank_conflict_stalls = 0;  ///< requests delayed by busy banks
  double avg_latency_cycles = 0.0;
  std::uint64_t max_latency_cycles = 0;

  /// Sustained throughput at the configured clock.
  [[nodiscard]] double mops_per_second(double clock_ghz) const {
    return total_cycles == 0
               ? 0.0
               : static_cast<double>(operations) /
                     (static_cast<double>(total_cycles) / clock_ghz / 1e3);
  }

  /// Can this configuration sustain `packet_rate_mpps` million lookups/s?
  [[nodiscard]] bool sustains(double packet_rate_mpps,
                              double clock_ghz) const {
    return mops_per_second(clock_ghz) >= packet_rate_mpps;
  }
};

class SramPipeline {
 public:
  explicit SramPipeline(const SramConfig& cfg);

  /// Runs the trace to completion and returns aggregate statistics.
  [[nodiscard]] SimResult run(const std::vector<MemoryOp>& trace) const;

  [[nodiscard]] const SramConfig& config() const noexcept { return cfg_; }

 private:
  SramConfig cfg_;
};

}  // namespace mpcbf::hwsim
