// Memory-operation trace extraction: converts a key stream into the
// per-lookup word-address lists each filter would issue to the SRAM,
// using the same hash derivation as the software filters so the bank
// conflict patterns the simulator sees are the real ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hwsim/sram_pipeline.hpp"

namespace mpcbf::hwsim {

/// CBF query: k counter reads scattered over the vector; the word address
/// of a counter is its index / counters-per-word (4-bit counters in
/// `word_bits`-bit SRAM words). Duplicate words within one op are merged
/// (one read suffices).
[[nodiscard]] std::vector<MemoryOp> cbf_query_trace(
    const std::vector<std::string>& keys, std::size_t num_counters,
    unsigned k, std::uint64_t seed, unsigned word_bits = 64);

/// MPCBF-g query: g word reads. `b1` must match the filter so the
/// position bits are consumed identically (address sequence fidelity).
[[nodiscard]] std::vector<MemoryOp> mpcbf_query_trace(
    const std::vector<std::string>& keys, std::size_t num_words, unsigned k,
    unsigned g, unsigned b1, std::uint64_t seed);

/// Marks every op in a trace as a read-modify-write (insert/delete) —
/// addresses are identical to the query trace; only the port/latency cost
/// changes.
[[nodiscard]] std::vector<MemoryOp> as_updates(std::vector<MemoryOp> trace);

}  // namespace mpcbf::hwsim
