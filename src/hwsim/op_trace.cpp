#include "hwsim/op_trace.hpp"

#include <algorithm>

#include "hash/hash_stream.hpp"
#include "model/fpr_model.hpp"

namespace mpcbf::hwsim {

std::vector<MemoryOp> cbf_query_trace(const std::vector<std::string>& keys,
                                      std::size_t num_counters, unsigned k,
                                      std::uint64_t seed,
                                      unsigned word_bits) {
  const std::size_t counters_per_word = word_bits / 4;
  std::vector<MemoryOp> trace;
  trace.reserve(keys.size());
  for (const auto& key : keys) {
    hash::HashBitStream stream(key, seed);
    MemoryOp op;
    op.words.reserve(k);
    for (unsigned i = 0; i < k; ++i) {
      const std::uint64_t word =
          stream.next_index(num_counters) / counters_per_word;
      if (std::find(op.words.begin(), op.words.end(), word) ==
          op.words.end()) {
        op.words.push_back(word);
      }
    }
    trace.push_back(std::move(op));
  }
  return trace;
}

std::vector<MemoryOp> mpcbf_query_trace(const std::vector<std::string>& keys,
                                        std::size_t num_words, unsigned k,
                                        unsigned g, unsigned b1,
                                        std::uint64_t seed) {
  std::vector<MemoryOp> trace;
  trace.reserve(keys.size());
  for (const auto& key : keys) {
    hash::HashBitStream stream(key, seed);
    MemoryOp op;
    op.words.reserve(g);
    for (unsigned t = 0; t < g; ++t) {
      const std::uint64_t word = stream.next_index(num_words);
      if (std::find(op.words.begin(), op.words.end(), word) ==
          op.words.end()) {
        op.words.push_back(word);
      }
      // Consume the in-word position bits exactly as the filter does so
      // subsequent word selectors match the software implementation.
      const unsigned kw = model::hashes_per_word(k, g, t);
      for (unsigned i = 0; i < kw; ++i) {
        (void)stream.next_index(b1);
      }
    }
    trace.push_back(std::move(op));
  }
  return trace;
}

std::vector<MemoryOp> as_updates(std::vector<MemoryOp> trace) {
  for (auto& op : trace) {
    op.read_modify_write = true;
  }
  return trace;
}

}  // namespace mpcbf::hwsim
