#include "hwsim/sram_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpcbf::hwsim {

SramPipeline::SramPipeline(const SramConfig& cfg) : cfg_(cfg) {
  if (cfg.banks == 0 || cfg.dispatch_width == 0) {
    throw std::invalid_argument(
        "SramPipeline: need banks >= 1 and dispatch_width >= 1");
  }
}

SimResult SramPipeline::run(const std::vector<MemoryOp>& trace) const {
  SimResult result;
  result.operations = trace.size();
  if (trace.empty()) return result;

  // Per-bank time of the next free request slot (banks are fully
  // pipelined: one new request per cycle each).
  std::vector<std::uint64_t> bank_free(cfg_.banks, 0);

  std::uint64_t dispatch_cycle = 0;
  unsigned dispatched_this_cycle = 0;
  std::uint64_t last_completion = 0;
  std::uint64_t latency_sum = 0;

  for (const MemoryOp& op : trace) {
    // Front end: dispatch_width ops enter per cycle, in order.
    if (dispatched_this_cycle == cfg_.dispatch_width) {
      ++dispatch_cycle;
      dispatched_this_cycle = 0;
    }
    ++dispatched_this_cycle;

    const std::uint64_t ready = dispatch_cycle + cfg_.hash_latency;
    std::uint64_t completion = ready;  // ops with no requests finish at once
    const unsigned port_slots = op.read_modify_write ? 2 : 1;
    const unsigned extra_latency = op.read_modify_write ? 1 : 0;
    for (const std::uint64_t word : op.words) {
      const std::size_t bank = word % cfg_.banks;
      const std::uint64_t issue = std::max(ready, bank_free[bank]);
      if (issue > ready) {
        result.bank_conflict_stalls += issue - ready;
      }
      bank_free[bank] = issue + port_slots;
      completion = std::max(completion,
                            issue + cfg_.access_latency + extra_latency);
      ++result.total_requests;
    }
    const std::uint64_t latency = completion - dispatch_cycle;
    latency_sum += latency;
    result.max_latency_cycles =
        std::max(result.max_latency_cycles, latency);
    last_completion = std::max(last_completion, completion);
  }

  result.total_cycles = last_completion;
  result.avg_latency_cycles =
      static_cast<double>(latency_sum) / static_cast<double>(trace.size());
  return result;
}

}  // namespace mpcbf::hwsim
