#include "filters/vicbf.hpp"

#include <bit>
#include <stdexcept>

#include "filters/word_set.hpp"
#include "hash/hash_stream.hpp"

namespace mpcbf::filters {

Vicbf::Vicbf(const VicbfConfig& cfg)
    : counters_(cfg.memory_bits / cfg.counter_bits, cfg.counter_bits),
      k_(cfg.k),
      L_(cfg.L),
      counter_max_((std::uint32_t{1} << cfg.counter_bits) - 1),
      seed_(cfg.seed),
      short_circuit_(cfg.short_circuit) {
  if (cfg.k == 0) throw std::invalid_argument("Vicbf: k must be >= 1");
  if (!std::has_single_bit(cfg.L)) {
    throw std::invalid_argument("Vicbf: L must be a power of two");
  }
  if (counters_.size() == 0) {
    throw std::invalid_argument("Vicbf: memory smaller than one counter");
  }
}

void Vicbf::insert(std::string_view key) {
  hash::HashBitStream stream(key, seed_);
  WordSet touched;
  const unsigned v_bits = hash::ceil_log2(L_);
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t pos = stream.next_index(counters_.size());
    const auto v = static_cast<std::uint32_t>(
        L_ + (v_bits ? stream.next_bits(v_bits) : 0));
    const std::uint32_t c = counters_.get(pos);
    if (c > counter_max_ - v) {
      // Sticky saturation, as in CBF: the counter stays pinned at max and
      // is excluded from future decrements.
      counters_.set(pos, counter_max_);
      ++saturations_;
    } else {
      counters_.set(pos, c + v);
    }
    touched.add(pos * counters_.bits_per_counter() / 64);
  }
  ++size_;
  stats_.record(metrics::OpClass::kInsert, touched.count,
                stream.accounted_bits());
}

bool Vicbf::contains(std::string_view key) const {
  hash::HashBitStream stream(key, seed_);
  WordSet touched;
  const unsigned v_bits = hash::ceil_log2(L_);
  bool positive = true;
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t pos = stream.next_index(counters_.size());
    const auto v = static_cast<std::uint32_t>(
        L_ + (v_bits ? stream.next_bits(v_bits) : 0));
    touched.add(pos * counters_.bits_per_counter() / 64);
    const std::uint32_t c = counters_.get(pos);
    // A saturated counter must stay conservative (could contain anything).
    if (c != counter_max_ && !position_positive(c, v)) {
      positive = false;
      if (short_circuit_) break;
    }
  }
  stats_.record(positive ? metrics::OpClass::kQueryPositive
                         : metrics::OpClass::kQueryNegative,
                touched.count, stream.accounted_bits());
  return positive;
}

bool Vicbf::erase(std::string_view key) {
  hash::HashBitStream stream(key, seed_);
  WordSet touched;
  const unsigned v_bits = hash::ceil_log2(L_);
  bool ok = true;
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t pos = stream.next_index(counters_.size());
    const auto v = static_cast<std::uint32_t>(
        L_ + (v_bits ? stream.next_bits(v_bits) : 0));
    touched.add(pos * counters_.bits_per_counter() / 64);
    const std::uint32_t c = counters_.get(pos);
    if (c == counter_max_) continue;  // sticky
    if (c < v) {
      ok = false;
      continue;
    }
    counters_.set(pos, c - v);
  }
  if (size_ > 0) --size_;
  stats_.record(metrics::OpClass::kDelete, touched.count,
                stream.accounted_bits());
  return ok;
}

void Vicbf::clear() {
  counters_.reset();
  size_ = 0;
  saturations_ = 0;
}

}  // namespace mpcbf::filters
