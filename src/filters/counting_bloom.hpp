// Standard Counting Bloom Filter (Fan et al. 2000) — the paper's primary
// baseline.
//
// m 4-bit saturating counters, k hash positions per key scattered over the
// whole vector, so a query or update touches up to k distinct machine
// words. Queries short-circuit at the first zero counter by default, which
// is why measured query accesses average below k (Table III's 2.1 for
// k=3). Optionally uses Kirsch–Mitzenmacher double hashing (the paper's
// ref. [22]) to derive the k positions from two hashes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "bitvec/counter_vector.hpp"
#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"

namespace mpcbf::filters {

struct CbfConfig {
  /// Total memory in bits; the counter count is m = memory_bits / counter_bits.
  std::size_t memory_bits = 1 << 20;
  unsigned k = 3;
  unsigned counter_bits = 4;
  std::uint64_t seed = hash::kDefaultSeed;
  bool short_circuit = true;
  /// Derive positions as h1 + i*h2 instead of k independent hashes.
  bool double_hashing = false;
};

class CountingBloomFilter {
 public:
  explicit CountingBloomFilter(const CbfConfig& cfg);

  /// Convenience: memory_bits of 4-bit counters with k independent hashes.
  CountingBloomFilter(std::size_t memory_bits, unsigned k,
                      std::uint64_t seed = hash::kDefaultSeed);

  void insert(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Deletes one prior insert; deleting a never-inserted key is a contract
  /// violation (may create false negatives), as in any CBF. Returns false
  /// and records an underflow if a target counter was already zero.
  bool erase(std::string_view key);

  /// Multiplicity estimate: min of the key's counters (never undercounts
  /// correctly inserted keys; saturated counters cap the estimate).
  [[nodiscard]] std::uint32_t count(std::string_view key) const;

  void clear();

  [[nodiscard]] std::size_t num_counters() const noexcept {
    return counters_.size();
  }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return counters_.memory_bits();
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t saturations() const noexcept {
    return counters_.saturations();
  }
  [[nodiscard]] double fill_ratio() const noexcept;
  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }

  /// True iff `other` indexes positions identically (mergeable).
  [[nodiscard]] bool compatible(const CountingBloomFilter& other) const noexcept;

  /// Counter-wise saturating union with `other` (multiset union of the
  /// represented sets). Returns false (untouched) if layouts differ.
  bool merge(const CountingBloomFilter& other);

  /// Binary persistence (v2 CRC-framed; bare v1 streams still load);
  /// metrics are not persisted.
  void save(std::ostream& os) const;
  static CountingBloomFilter load(std::istream& is);

 private:
  /// Parses the v1 payload body (after the CBF magic).
  static CountingBloomFilter load_body(std::istream& is);

  /// Machine-word id of a counter for access accounting.
  [[nodiscard]] std::size_t word_id(std::size_t counter_index) const noexcept {
    return counter_index * counters_.bits_per_counter() / 64;
  }

  template <typename Fn>
  void for_each_position(std::string_view key, std::uint64_t& bits_used,
                         Fn&& fn) const;

  bits::CounterVector counters_;
  unsigned k_;
  std::uint64_t seed_;
  bool short_circuit_;
  bool double_hashing_;
  std::size_t size_ = 0;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::filters
