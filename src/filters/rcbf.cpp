#include "filters/rcbf.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpcbf::filters {

Rcbf::Rcbf(const RcbfConfig& cfg)
    : buckets_(cfg.num_buckets),
      k_(cfg.k),
      fp_bits_(cfg.fingerprint_bits),
      fp_mask_((std::uint32_t{1} << cfg.fingerprint_bits) - 1),
      counter_bits_(cfg.counter_bits),
      counter_max_((std::uint32_t{1} << cfg.counter_bits) - 1),
      seed_(cfg.seed) {
  if (cfg.num_buckets == 0 || cfg.k == 0) {
    throw std::invalid_argument("Rcbf: need buckets >= 1 and k >= 1");
  }
  if (cfg.fingerprint_bits == 0 || cfg.fingerprint_bits > 30) {
    throw std::invalid_argument("Rcbf: fingerprint_bits out of range");
  }
}

void Rcbf::probes(std::string_view key, std::vector<std::size_t>& buckets,
                  std::uint32_t& fingerprint,
                  std::uint64_t& hash_bits) const {
  hash::HashBitStream stream(key, seed_);
  fingerprint =
      static_cast<std::uint32_t>(stream.next_bits(fp_bits_)) & fp_mask_;
  if (fingerprint == 0) fingerprint = 1;  // 0 is reserved (no item)
  buckets.clear();
  buckets.reserve(k_);
  for (unsigned i = 0; i < k_; ++i) {
    buckets.push_back(stream.next_index(buckets_.size()));
  }
  hash_bits = stream.accounted_bits();
}

void Rcbf::insert(std::string_view key) {
  std::vector<std::size_t> targets;
  std::uint32_t fp = 0;
  std::uint64_t hash_bits = 0;
  probes(key, targets, fp, hash_bits);
  for (const std::size_t b : targets) {
    auto& items = buckets_[b].items;
    auto it = std::find_if(items.begin(), items.end(), [&](const Item& i) {
      return i.fingerprint == fp;
    });
    if (it != items.end()) {
      if (it->repetitions < counter_max_) ++it->repetitions;
    } else {
      items.push_back(Item{fp, 1});
      ++total_items_;
    }
  }
  ++size_;
  stats_.record(metrics::OpClass::kInsert, k_, hash_bits);
}

bool Rcbf::contains(std::string_view key) const {
  std::vector<std::size_t> targets;
  std::uint32_t fp = 0;
  std::uint64_t hash_bits = 0;
  probes(key, targets, fp, hash_bits);
  bool positive = true;
  std::size_t probed = 0;
  for (const std::size_t b : targets) {
    ++probed;
    const auto& items = buckets_[b].items;
    const bool found =
        std::any_of(items.begin(), items.end(), [&](const Item& i) {
          return i.fingerprint == fp;
        });
    if (!found) {
      positive = false;
      break;
    }
  }
  stats_.record(positive ? metrics::OpClass::kQueryPositive
                         : metrics::OpClass::kQueryNegative,
                probed, hash_bits);
  return positive;
}

bool Rcbf::erase(std::string_view key) {
  std::vector<std::size_t> targets;
  std::uint32_t fp = 0;
  std::uint64_t hash_bits = 0;
  probes(key, targets, fp, hash_bits);
  bool ok = true;
  for (const std::size_t b : targets) {
    auto& items = buckets_[b].items;
    auto it = std::find_if(items.begin(), items.end(), [&](const Item& i) {
      return i.fingerprint == fp;
    });
    if (it == items.end()) {
      ok = false;
      continue;
    }
    // A saturated repetition counter is sticky, as in every CBF variant.
    if (it->repetitions == counter_max_) continue;
    if (--it->repetitions == 0) {
      items.erase(it);
      --total_items_;
    }
  }
  if (size_ > 0) --size_;
  stats_.record(metrics::OpClass::kDelete, k_, hash_bits);
  return ok;
}

std::uint32_t Rcbf::count(std::string_view key) const {
  std::vector<std::size_t> targets;
  std::uint32_t fp = 0;
  std::uint64_t hash_bits = 0;
  probes(key, targets, fp, hash_bits);
  std::uint32_t min_c = ~std::uint32_t{0};
  for (const std::size_t b : targets) {
    const auto& items = buckets_[b].items;
    auto it = std::find_if(items.begin(), items.end(), [&](const Item& i) {
      return i.fingerprint == fp;
    });
    min_c = std::min<std::uint32_t>(
        min_c, it == items.end() ? 0 : it->repetitions);
    if (min_c == 0) break;
  }
  return min_c;
}

void Rcbf::clear() {
  for (auto& b : buckets_) {
    b.items.clear();
  }
  size_ = 0;
  total_items_ = 0;
}

std::size_t Rcbf::memory_bits() const {
  // Occupancy bitmap (1 bit per bucket) + hierarchical rank index
  // (~2 bits/bucket for block sums at ML-CCBF/RCBF-like rates) + per-item
  // fingerprint and repetition counter.
  const std::size_t index_bits = buckets_.size() * 3;
  return index_bits + total_items_ * (fp_bits_ + counter_bits_);
}

}  // namespace mpcbf::filters
