// Spectral Bloom Filter (Cohen & Matias — SIGMOD 2003), the paper's
// ref. [12]: a CBF used as a multiplicity sketch, with the *minimum
// increase* optimization — an insert increments only the positions
// currently holding the minimum of the key's counters, since only they
// constrain the count estimate. This keeps counters (and collision-driven
// overcounts) smaller than plain CBF at the same memory.
//
// Minimum increase famously forfeits deletion: a colliding key may have
// skipped a counter this key shares, so any decrement scheme (symmetric
// or plain) can zero a counter another live key needs — a false negative.
// Cohen & Matias accept this (their deletable variants drop the
// optimization). We are faithful: with `minimum_increase` on, `erase`
// refuses (returns false, filter untouched); switch it off to get plain
// CBF increments and working deletion. This trade-off is itself a data
// point for the paper's Sec. II-B survey: MPCBF keeps deletion *and*
// improves accuracy, which none of the increment-tweaking variants do
// without losing something.
#pragma once

#include <cstdint>
#include <string_view>

#include "bitvec/counter_vector.hpp"
#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"

namespace mpcbf::filters {

struct SpectralConfig {
  std::size_t memory_bits = 1 << 20;
  unsigned k = 3;
  unsigned counter_bits = 4;
  std::uint64_t seed = hash::kDefaultSeed;
  /// Disable to get plain-CBF increment behaviour (for A/B comparison).
  bool minimum_increase = true;
};

class SpectralBloomFilter {
 public:
  explicit SpectralBloomFilter(const SpectralConfig& cfg);

  void insert(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const;
  /// Only functional with minimum_increase == false (see class comment);
  /// otherwise returns false and leaves the filter untouched.
  bool erase(std::string_view key);
  /// Multiplicity estimate (the structure's purpose): min of the key's
  /// counters; never undercounts under the insert/erase contract.
  [[nodiscard]] std::uint32_t count(std::string_view key) const;

  void clear();

  [[nodiscard]] std::size_t num_counters() const noexcept {
    return counters_.size();
  }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return counters_.memory_bits();
  }
  /// Total counter mass — the quantity minimum increase shrinks.
  [[nodiscard]] std::uint64_t counter_mass() const;
  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }

 private:
  template <typename Fn>
  void for_each_position(std::string_view key, Fn&& fn) const;

  bits::CounterVector counters_;
  unsigned k_;
  std::uint64_t seed_;
  bool minimum_increase_;
  std::size_t size_ = 0;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::filters
