#include "filters/dlcbf.hpp"

#include <algorithm>
#include <stdexcept>

#include "hash/hash_stream.hpp"

namespace mpcbf::filters {

Dlcbf::Dlcbf(const DlcbfConfig& cfg)
    : d_(cfg.subtables),
      bucket_cells_(cfg.bucket_cells),
      fp_bits_(cfg.fingerprint_bits),
      fp_mask_((std::uint32_t{1} << cfg.fingerprint_bits) - 1),
      counter_max_((std::uint32_t{1} << cfg.counter_bits) - 1),
      cell_bits_(cfg.fingerprint_bits + cfg.counter_bits),
      seed_(cfg.seed) {
  if (d_ == 0 || bucket_cells_ == 0) {
    throw std::invalid_argument("Dlcbf: need subtables >= 1, cells >= 1");
  }
  if (fp_bits_ == 0 || fp_bits_ > 30) {
    throw std::invalid_argument("Dlcbf: fingerprint_bits out of range");
  }
  const std::size_t total_cells = cfg.memory_bits / cell_bits_;
  buckets_per_subtable_ =
      total_cells / (static_cast<std::size_t>(d_) * bucket_cells_);
  if (buckets_per_subtable_ == 0) {
    throw std::invalid_argument("Dlcbf: memory smaller than one bucket row");
  }
  cells_.assign(static_cast<std::size_t>(d_) * buckets_per_subtable_ *
                    bucket_cells_,
                Cell{});
}

std::size_t Dlcbf::memory_bits() const noexcept {
  return cells_.size() * cell_bits_;
}

void Dlcbf::candidates(std::string_view key,
                       std::vector<Candidate>& out) const {
  hash::HashBitStream stream(key, seed_);
  // A fingerprint of 0 marks an empty cell, so remap it.
  std::uint32_t fp =
      static_cast<std::uint32_t>(stream.next_bits(fp_bits_)) & fp_mask_;
  if (fp == 0) fp = 1;
  out.clear();
  out.reserve(d_);
  for (unsigned t = 0; t < d_; ++t) {
    const std::size_t b = stream.next_index(buckets_per_subtable_);
    const std::size_t base =
        (static_cast<std::size_t>(t) * buckets_per_subtable_ + b) *
        bucket_cells_;
    out.push_back(Candidate{base, fp});
  }
}

unsigned Dlcbf::bucket_load(std::size_t base) const noexcept {
  unsigned load = 0;
  for (unsigned c = 0; c < bucket_cells_; ++c) {
    if (cells_[base + c].counter != 0) ++load;
  }
  return load;
}

bool Dlcbf::insert(std::string_view key) {
  std::vector<Candidate> cand;
  candidates(key, cand);

  // Existing-fingerprint fast path: share the cell, bump its counter.
  for (const auto& c : cand) {
    for (unsigned i = 0; i < bucket_cells_; ++i) {
      Cell& cell = cells_[c.bucket_base + i];
      if (cell.counter != 0 && cell.fingerprint == c.fingerprint) {
        if (cell.counter < counter_max_) ++cell.counter;
        ++size_;
        stats_.record(metrics::OpClass::kInsert, d_,
                      fp_bits_ + d_ * hash::ceil_log2(buckets_per_subtable_));
        return true;
      }
    }
  }

  // d-left placement: least-loaded candidate bucket, leftmost on ties.
  std::size_t best = 0;
  unsigned best_load = bucket_cells_ + 1;
  for (std::size_t t = 0; t < cand.size(); ++t) {
    const unsigned load = bucket_load(cand[t].bucket_base);
    if (load < best_load) {
      best_load = load;
      best = t;
    }
  }
  if (best_load >= bucket_cells_) {
    ++overflow_events_;
    stats_.record(metrics::OpClass::kInsert, d_,
                  fp_bits_ + d_ * hash::ceil_log2(buckets_per_subtable_));
    return false;
  }
  for (unsigned i = 0; i < bucket_cells_; ++i) {
    Cell& cell = cells_[cand[best].bucket_base + i];
    if (cell.counter == 0) {
      cell.fingerprint = cand[best].fingerprint;
      cell.counter = 1;
      break;
    }
  }
  ++size_;
  stats_.record(metrics::OpClass::kInsert, d_,
                fp_bits_ + d_ * hash::ceil_log2(buckets_per_subtable_));
  return true;
}

bool Dlcbf::contains(std::string_view key) const {
  std::vector<Candidate> cand;
  candidates(key, cand);
  std::size_t probed = 0;
  bool positive = false;
  for (const auto& c : cand) {
    ++probed;
    for (unsigned i = 0; i < bucket_cells_; ++i) {
      const Cell& cell = cells_[c.bucket_base + i];
      if (cell.counter != 0 && cell.fingerprint == c.fingerprint) {
        positive = true;
        break;
      }
    }
    if (positive) break;
  }
  stats_.record(positive ? metrics::OpClass::kQueryPositive
                         : metrics::OpClass::kQueryNegative,
                probed, fp_bits_ + probed * hash::ceil_log2(buckets_per_subtable_));
  return positive;
}

bool Dlcbf::erase(std::string_view key) {
  std::vector<Candidate> cand;
  candidates(key, cand);
  for (const auto& c : cand) {
    for (unsigned i = 0; i < bucket_cells_; ++i) {
      Cell& cell = cells_[c.bucket_base + i];
      if (cell.counter != 0 && cell.fingerprint == c.fingerprint) {
        // A saturated counter is sticky, as in CBF, to avoid false
        // negatives from lost multiplicity.
        if (cell.counter < counter_max_) --cell.counter;
        if (size_ > 0) --size_;
        stats_.record(metrics::OpClass::kDelete, d_,
                      fp_bits_ + d_ * hash::ceil_log2(buckets_per_subtable_));
        return true;
      }
    }
  }
  stats_.record(metrics::OpClass::kDelete, d_,
                fp_bits_ + d_ * hash::ceil_log2(buckets_per_subtable_));
  return false;
}

std::uint32_t Dlcbf::count(std::string_view key) const {
  std::vector<Candidate> cand;
  candidates(key, cand);
  for (const auto& c : cand) {
    for (unsigned i = 0; i < bucket_cells_; ++i) {
      const Cell& cell = cells_[c.bucket_base + i];
      if (cell.counter != 0 && cell.fingerprint == c.fingerprint) {
        return cell.counter;
      }
    }
  }
  return 0;
}

void Dlcbf::clear() {
  std::fill(cells_.begin(), cells_.end(), Cell{});
  size_ = 0;
  overflow_events_ = 0;
}

}  // namespace mpcbf::filters
