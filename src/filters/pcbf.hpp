// PCBF — Partitioned Counting Bloom Filter (Sec. III-A), the paper's
// "naive" one-memory-access strawman.
//
// The counter vector is split into l words of w bits = w/4 4-bit counters.
// An element picks g words (one for PCBF-1) and ⌈k/g⌉ counters inside each.
// Fast (g accesses) but *less* accurate than CBF (eq. 2/3 and Fig. 2): it
// hashes into the short range w/4 instead of the full vector. MPCBF exists
// to fix exactly this.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "bitvec/counter_vector.hpp"
#include "core/word_engine.hpp"
#include "filters/word_set.hpp"
#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"
#include "model/fpr_model.hpp"

namespace mpcbf::filters {

struct PcbfConfig {
  std::size_t memory_bits = 1 << 20;
  unsigned k = 3;
  unsigned g = 1;          ///< memory accesses (words per element)
  unsigned word_bits = 64;
  unsigned counter_bits = 4;
  std::uint64_t seed = hash::kDefaultSeed;
  bool short_circuit = true;
};

class Pcbf {
 public:
  explicit Pcbf(const PcbfConfig& cfg)
      : counters_(cfg.memory_bits / cfg.counter_bits, cfg.counter_bits),
        counters_per_word_(cfg.word_bits / cfg.counter_bits),
        num_words_(cfg.memory_bits / cfg.word_bits),
        k_(cfg.k),
        g_(cfg.g),
        word_bits_(cfg.word_bits),
        seed_(cfg.seed),
        short_circuit_(cfg.short_circuit) {
    core::engine::validate_shape(cfg.k, cfg.g, "Pcbf");
    if (num_words_ == 0) {
      throw std::invalid_argument("Pcbf: memory smaller than one word");
    }
  }

  Pcbf(std::size_t memory_bits, unsigned k, unsigned g = 1,
       std::uint64_t seed = hash::kDefaultSeed)
      : Pcbf(PcbfConfig{memory_bits, k, g, 64, 4, seed, true}) {}

  void insert(std::string_view key) {
    core::engine::Targets t;
    hash::HashBitStream stream(key, seed_);
    deriver().derive_all(stream, t);
    for (unsigned i = 0; i < t.total_positions; ++i) {
      counters_.increment(counter_index(t.word_of[i], t.pos[i]));
    }
    ++size_;
    stats_.record(metrics::OpClass::kInsert, t.distinct_words,
                  stream.accounted_bits());
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    hash::HashBitStream stream(key, seed_);
    WordSet touched;
    bool positive = true;
    for (unsigned t = 0; t < g_; ++t) {
      if (!positive && short_circuit_) break;
      const std::size_t w = stream.next_index(num_words_);
      touched.add(w);
      const unsigned kw = model::hashes_per_word(k_, g_, t);
      for (unsigned i = 0; i < kw; ++i) {
        const std::size_t c =
            w * counters_per_word_ + stream.next_index(counters_per_word_);
        if (counters_.get(c) == 0) {
          positive = false;
          if (short_circuit_) break;
        }
      }
    }
    stats_.record(positive ? metrics::OpClass::kQueryPositive
                           : metrics::OpClass::kQueryNegative,
                  touched.count, stream.accounted_bits());
    return positive;
  }

  bool erase(std::string_view key) {
    core::engine::Targets t;
    hash::HashBitStream stream(key, seed_);
    deriver().derive_all(stream, t);
    bool ok = true;
    for (unsigned i = 0; i < t.total_positions; ++i) {
      ok &= counters_.decrement(counter_index(t.word_of[i], t.pos[i]));
    }
    if (size_ > 0) --size_;
    stats_.record(metrics::OpClass::kDelete, t.distinct_words,
                  stream.accounted_bits());
    return ok;
  }

  [[nodiscard]] std::uint32_t count(std::string_view key) const {
    core::engine::Targets t;
    hash::HashBitStream stream(key, seed_);
    deriver().derive_all(stream, t);
    std::uint32_t min_c = ~std::uint32_t{0};
    for (unsigned i = 0; i < t.total_positions; ++i) {
      min_c = std::min(min_c, counters_.get(counter_index(t.word_of[i],
                                                          t.pos[i])));
    }
    return min_c;
  }

  void clear() {
    counters_.reset();
    size_ = 0;
  }

  [[nodiscard]] std::size_t num_words() const noexcept { return num_words_; }
  [[nodiscard]] unsigned counters_per_word() const noexcept {
    return counters_per_word_;
  }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned g() const noexcept { return g_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return num_words_ * word_bits_;
  }
  [[nodiscard]] std::uint64_t saturations() const noexcept {
    return counters_.saturations();
  }
  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }

 private:
  /// Shared target derivation (core/word_engine.hpp): a PCBF "position"
  /// is a counter slot within a word, so b1 = counters_per_word. Used on
  /// the full-stream paths (insert/erase/count); contains() keeps the
  /// lazy stream so short-circuiting saves its hash bits.
  [[nodiscard]] core::engine::TargetDeriver deriver() const noexcept {
    return core::engine::TargetDeriver(num_words_, k_, g_,
                                       counters_per_word_);
  }

  [[nodiscard]] std::size_t counter_index(std::size_t word,
                                          unsigned slot) const noexcept {
    return word * counters_per_word_ + slot;
  }

  bits::CounterVector counters_;
  unsigned counters_per_word_;
  std::size_t num_words_;
  unsigned k_;
  unsigned g_;
  unsigned word_bits_;
  std::uint64_t seed_;
  bool short_circuit_;
  std::size_t size_ = 0;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::filters
