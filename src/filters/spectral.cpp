#include "filters/spectral.hpp"

#include <algorithm>
#include <stdexcept>

#include "filters/word_set.hpp"
#include "hash/hash_stream.hpp"

namespace mpcbf::filters {

SpectralBloomFilter::SpectralBloomFilter(const SpectralConfig& cfg)
    : counters_(cfg.memory_bits / cfg.counter_bits, cfg.counter_bits),
      k_(cfg.k),
      seed_(cfg.seed),
      minimum_increase_(cfg.minimum_increase) {
  if (cfg.k == 0) throw std::invalid_argument("Spectral: k must be >= 1");
  if (counters_.size() == 0) {
    throw std::invalid_argument("Spectral: memory smaller than one counter");
  }
}

template <typename Fn>
void SpectralBloomFilter::for_each_position(std::string_view key,
                                            Fn&& fn) const {
  hash::HashBitStream stream(key, seed_);
  for (unsigned i = 0; i < k_; ++i) {
    fn(stream.next_index(counters_.size()));
  }
}

void SpectralBloomFilter::insert(std::string_view key) {
  std::size_t pos[64];
  unsigned n = 0;
  for_each_position(key, [&](std::size_t p) { pos[n++] = p; });

  WordSet touched;
  if (minimum_increase_) {
    std::uint32_t min_v = ~std::uint32_t{0};
    for (unsigned i = 0; i < n; ++i) {
      min_v = std::min(min_v, counters_.get(pos[i]));
    }
    for (unsigned i = 0; i < n; ++i) {
      if (counters_.get(pos[i]) == min_v) {
        counters_.increment(pos[i]);
      }
      touched.add(pos[i] * counters_.bits_per_counter() / 64);
    }
  } else {
    for (unsigned i = 0; i < n; ++i) {
      counters_.increment(pos[i]);
      touched.add(pos[i] * counters_.bits_per_counter() / 64);
    }
  }
  ++size_;
  stats_.record(metrics::OpClass::kInsert, touched.count, 0);
}

bool SpectralBloomFilter::contains(std::string_view key) const {
  bool positive = true;
  std::size_t words = 0;
  WordSet touched;
  for_each_position(key, [&](std::size_t p) {
    touched.add(p * counters_.bits_per_counter() / 64);
    if (counters_.get(p) == 0) positive = false;
  });
  words = touched.count;
  stats_.record(positive ? metrics::OpClass::kQueryPositive
                         : metrics::OpClass::kQueryNegative,
                words, 0);
  return positive;
}

bool SpectralBloomFilter::erase(std::string_view key) {
  if (minimum_increase_) {
    // No safe decrement exists once increments were skipped (see class
    // comment); refuse rather than risk false negatives.
    return false;
  }
  bool ok = true;
  for_each_position(key,
                    [&](std::size_t p) { ok &= counters_.decrement(p); });
  if (size_ > 0) --size_;
  stats_.record(metrics::OpClass::kDelete, k_, 0);
  return ok;
}

std::uint32_t SpectralBloomFilter::count(std::string_view key) const {
  std::uint32_t min_v = ~std::uint32_t{0};
  for_each_position(key, [&](std::size_t p) {
    min_v = std::min(min_v, counters_.get(p));
  });
  return min_v;
}

void SpectralBloomFilter::clear() {
  counters_.reset();
  size_ = 0;
}

std::uint64_t SpectralBloomFilter::counter_mass() const {
  std::uint64_t mass = 0;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    mass += counters_.get(i);
  }
  return mass;
}

}  // namespace mpcbf::filters
