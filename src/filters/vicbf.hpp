// Variable-Increment Counting Bloom Filter (Rottenstreich, Kanizo,
// Keslassy — INFOCOM 2012), the paper's ref. [23].
//
// Instead of adding 1 to each hashed counter, VI-CBF adds a per-(key,
// position) increment v drawn from the D_L set {L, ..., 2L-1}. A queried
// position supports membership only if its counter C could contain v:
// C >= v and (C == v or C - v >= L). Sums that cannot decompose that way
// expose non-members that plain CBF would miss, lowering the FPR at the
// cost of wider counters — but still k scattered memory accesses, which is
// the axis MPCBF improves on.
#pragma once

#include <cstdint>
#include <string_view>

#include "bitvec/counter_vector.hpp"
#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"

namespace mpcbf::filters {

struct VicbfConfig {
  std::size_t memory_bits = 1 << 20;
  unsigned k = 3;
  unsigned counter_bits = 8;  ///< wide enough for several D_L increments
  unsigned L = 4;             ///< D_L = {L, ..., 2L-1}; must be a power of two
  std::uint64_t seed = hash::kDefaultSeed;
  bool short_circuit = true;
};

class Vicbf {
 public:
  explicit Vicbf(const VicbfConfig& cfg);

  void insert(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Deletes one prior insert. Deleting a never-inserted key is a
  /// contract violation, as in any CBF variant.
  bool erase(std::string_view key);

  void clear();

  [[nodiscard]] std::size_t num_counters() const noexcept {
    return counters_.size();
  }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned L() const noexcept { return L_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return counters_.memory_bits();
  }
  [[nodiscard]] std::uint64_t saturations() const noexcept {
    return saturations_;
  }
  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }

 private:
  /// True iff counter value C is consistent with an increment v being part
  /// of the sum (the VI-CBF membership rule).
  [[nodiscard]] bool position_positive(std::uint32_t c,
                                       std::uint32_t v) const noexcept {
    return c >= v && (c == v || c - v >= L_);
  }

  bits::CounterVector counters_;
  unsigned k_;
  unsigned L_;
  std::uint32_t counter_max_;
  std::uint64_t seed_;
  bool short_circuit_;
  std::size_t size_ = 0;
  std::uint64_t saturations_ = 0;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::filters
