// d-left Counting Bloom Filter (Bonomi, Mitzenmacher, Panigrahy, Singh,
// Varghese — ESA 2006), the paper's ref. [17].
//
// Elements are reduced to a fingerprint and stored in one of d subtables,
// each an array of fixed-capacity buckets; insertion picks the least-loaded
// of the d candidate buckets (leftmost on ties — "d-left"). Identical
// fingerprints share a cell whose small counter tracks multiplicity, which
// both enables deletion and is the structure's false-positive source.
//
// Included as a memory-efficiency baseline: dlCBF beats CBF on bits per
// element at equal FPR but still costs up to d memory accesses per query
// and cannot trade accesses for accuracy the way MPCBF-g can.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"

namespace mpcbf::filters {

struct DlcbfConfig {
  std::size_t memory_bits = 1 << 20;
  unsigned subtables = 4;      ///< d
  unsigned bucket_cells = 8;   ///< cells per bucket
  unsigned fingerprint_bits = 14;
  unsigned counter_bits = 2;   ///< per-cell multiplicity counter
  std::uint64_t seed = hash::kDefaultSeed;
};

class Dlcbf {
 public:
  explicit Dlcbf(const DlcbfConfig& cfg);

  /// Inserts `key`. Returns false when all d candidate buckets are full
  /// and the cell cannot be placed (counted as an overflow event).
  bool insert(std::string_view key);

  [[nodiscard]] bool contains(std::string_view key) const;

  /// Deletes one prior insert (decrements or frees the matching cell).
  /// Returns false if no candidate bucket holds the fingerprint.
  bool erase(std::string_view key);

  [[nodiscard]] std::uint32_t count(std::string_view key) const;

  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t memory_bits() const noexcept;
  [[nodiscard]] std::size_t buckets_per_subtable() const noexcept {
    return buckets_per_subtable_;
  }
  [[nodiscard]] unsigned subtables() const noexcept { return d_; }
  [[nodiscard]] std::uint64_t overflow_events() const noexcept {
    return overflow_events_;
  }
  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }

 private:
  struct Cell {
    std::uint32_t fingerprint = 0;
    std::uint32_t counter = 0;  // 0 == empty
  };

  struct Candidate {
    std::size_t bucket_base;  // index of the bucket's first cell
    std::uint32_t fingerprint;
  };

  void candidates(std::string_view key,
                  std::vector<Candidate>& out) const;
  [[nodiscard]] unsigned bucket_load(std::size_t base) const noexcept;

  std::vector<Cell> cells_;  // [subtable][bucket][cell] flattened
  std::size_t buckets_per_subtable_;
  unsigned d_;
  unsigned bucket_cells_;
  unsigned fp_bits_;
  std::uint32_t fp_mask_;
  std::uint32_t counter_max_;
  unsigned cell_bits_;
  std::uint64_t seed_;
  std::size_t size_ = 0;
  std::uint64_t overflow_events_ = 0;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::filters
