// Multilayer Compressed Counting Bloom Filter (Ficara, Giordano, Procissi,
// Vitucci — INFOCOM 2008), the paper's ref. [19] and the origin of the
// hierarchical counter idea MPCBF applies per word.
//
// Counters are Huffman-coded in unary across layers: layer 1 is a plain
// bit vector of m membership bits; a set bit at layer j with rank r (ones
// before it in layer j) owns bit r of layer j+1, which is set iff the
// counter exceeds j. A counter of value c therefore occupies c+1 bits
// total across layers — compressed storage proportional to the actual
// counts rather than CBF's fixed 4 bits per counter.
//
// The global-layer layout makes queries cheap (layer 1 only) but updates
// expensive: flipping a bit at layer j shifts layer j+1, an O(m) vector
// splice. ML-CCBF is therefore a *lookup-oriented* structure; this
// implementation supports incremental insert/erase with that documented
// cost and is used by the related-work memory bench, where its
// memory-per-element at equal FPR is the quantity of interest. MPCBF's
// contribution is precisely confining this hierarchy inside one word so
// the shifts become register operations.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"

namespace mpcbf::filters {

class MlCcbf {
 public:
  /// `m` layer-1 bits, `k` hash functions.
  MlCcbf(std::size_t m, unsigned k,
         std::uint64_t seed = hash::kDefaultSeed);

  void insert(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const;
  /// Deletes one prior insert (the usual CBF contract caveats apply).
  bool erase(std::string_view key);
  /// Exact counter of hashed position minimum (conservative estimate).
  [[nodiscard]] std::uint32_t count(std::string_view key) const;

  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t layer1_bits() const noexcept { return m_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] std::size_t num_layers() const noexcept {
    return layers_.size();
  }

  /// Actual storage in use: layer-1 bits plus every allocated hierarchy
  /// bit — the structure's whole point is that this tracks the counter
  /// mass, not a fixed per-counter width.
  [[nodiscard]] std::size_t memory_bits() const;

  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }

  /// Structural invariant: |layer j+1| == popcount(layer j).
  [[nodiscard]] bool validate() const;

 private:
  /// One dynamically sized bit layer with rank (ones-before) queries.
  /// Layers are small and updates splice anyway, so a plain byte-per-bit
  /// representation keeps the code simple; memory_bits() reports the
  /// *logical* compressed size the scheme would occupy.
  struct Layer {
    std::vector<std::uint8_t> bits;

    [[nodiscard]] std::size_t rank(std::size_t pos) const {
      std::size_t r = 0;
      for (std::size_t i = 0; i < pos; ++i) r += bits[i];
      return r;
    }
    [[nodiscard]] std::size_t ones() const {
      std::size_t r = 0;
      for (const auto b : bits) r += b;
      return r;
    }
  };

  /// Returns the chain depth (counter value) at layer-1 position `pos`.
  [[nodiscard]] unsigned counter_at(std::size_t pos) const;
  void increment_at(std::size_t pos);
  bool decrement_at(std::size_t pos);

  std::size_t m_;
  unsigned k_;
  std::uint64_t seed_;
  std::vector<Layer> layers_;  // layers_[0] is layer 1, fixed size m_
  std::size_t size_ = 0;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::filters
