// Small helper shared by the filters: counts the *distinct* machine words
// an operation touches, which is the paper's "number of memory accesses"
// metric (two counters in the same 64-bit word cost one access).
#pragma once

#include <cstddef>

namespace mpcbf::filters {

struct WordSet {
  std::size_t ids[64];
  std::size_t count = 0;

  void add(std::size_t id) noexcept {
    for (std::size_t i = 0; i < count; ++i) {
      if (ids[i] == id) return;
    }
    if (count < 64) ids[count++] = id;
  }
};

}  // namespace mpcbf::filters
