// Standard Bloom filter (Bloom 1970) — the reference point of eq. (1).
//
// m bits, k hash positions per key, no deletion. Included both as the
// ancestor baseline and to let tests cross-check the empirical fill ratio
// and FPR against the analytic model at configurations where CBF and BF
// coincide (a CBF is a Bloom filter over "counter > 0").
#pragma once

#include <cstdint>
#include <string_view>

#include "bitvec/bit_vector.hpp"
#include "filters/word_set.hpp"
#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"

namespace mpcbf::filters {

class BloomFilter {
 public:
  /// `num_bits` filter bits, `k` hash functions.
  BloomFilter(std::size_t num_bits, unsigned k,
              std::uint64_t seed = hash::kDefaultSeed,
              bool short_circuit = true)
      : bits_(num_bits), k_(k), seed_(seed), short_circuit_(short_circuit) {}

  void insert(std::string_view key) {
    hash::HashBitStream stream(key, seed_);
    WordSet touched;
    for (unsigned i = 0; i < k_; ++i) {
      const std::size_t pos = stream.next_index(bits_.size());
      bits_.set(pos);
      touched.add(pos / 64);
    }
    stats_.record(metrics::OpClass::kInsert, touched.count,
                  stream.accounted_bits());
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    hash::HashBitStream stream(key, seed_);
    WordSet touched;
    bool positive = true;
    for (unsigned i = 0; i < k_; ++i) {
      const std::size_t pos = stream.next_index(bits_.size());
      touched.add(pos / 64);
      if (!bits_.test(pos)) {
        positive = false;
        if (short_circuit_) break;
      }
    }
    stats_.record(positive ? metrics::OpClass::kQueryPositive
                           : metrics::OpClass::kQueryNegative,
                  touched.count, stream.accounted_bits());
    return positive;
  }

  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return bits_.memory_bits();
  }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] double fill_ratio() const noexcept {
    return bits_.fill_ratio();
  }
  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }
  void clear() { bits_.reset(); }

 private:
  bits::BitVector bits_;
  unsigned k_;
  std::uint64_t seed_;
  bool short_circuit_;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::filters
