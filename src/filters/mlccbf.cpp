#include "filters/mlccbf.hpp"

#include <stdexcept>

namespace mpcbf::filters {

MlCcbf::MlCcbf(std::size_t m, unsigned k, std::uint64_t seed)
    : m_(m), k_(k), seed_(seed) {
  if (m == 0 || k == 0) {
    throw std::invalid_argument("MlCcbf: need m >= 1 and k >= 1");
  }
  layers_.emplace_back();
  layers_[0].bits.assign(m_, 0);
}

unsigned MlCcbf::counter_at(std::size_t pos) const {
  if (!layers_[0].bits[pos]) return 0;
  std::size_t p = pos;
  unsigned depth = 1;
  for (std::size_t layer = 0;; ++layer) {
    const std::size_t next = layers_[layer].rank(p);
    if (layer + 1 >= layers_.size() ||
        next >= layers_[layer + 1].bits.size() ||
        !layers_[layer + 1].bits[next]) {
      return depth;
    }
    p = next;
    ++depth;
  }
}

void MlCcbf::increment_at(std::size_t pos) {
  // Walk the chain to its first zero, flip it, and open a zero slot for
  // the new bit in the layer below (creating that layer if needed).
  std::size_t layer = 0;
  std::size_t p = pos;
  for (;;) {
    if (!layers_[layer].bits[p]) {
      layers_[layer].bits[p] = 1;
      const std::size_t slot = layers_[layer].rank(p);
      if (layer + 1 >= layers_.size()) {
        layers_.emplace_back();
      }
      auto& next = layers_[layer + 1].bits;
      next.insert(next.begin() + static_cast<std::ptrdiff_t>(slot), 0);
      return;
    }
    const std::size_t next = layers_[layer].rank(p);
    p = next;
    ++layer;
  }
}

bool MlCcbf::decrement_at(std::size_t pos) {
  if (!layers_[0].bits[pos]) return false;
  // Find the last set bit of the chain.
  std::size_t layer = 0;
  std::size_t p = pos;
  for (;;) {
    const std::size_t next = layers_[layer].rank(p);
    const bool deeper = layer + 1 < layers_.size() &&
                        next < layers_[layer + 1].bits.size() &&
                        layers_[layer + 1].bits[next];
    if (!deeper) {
      // `p` at `layer` is the chain's last 1: remove its (zero) slot in
      // the next layer and clear it.
      if (layer + 1 < layers_.size()) {
        auto& below = layers_[layer + 1].bits;
        below.erase(below.begin() + static_cast<std::ptrdiff_t>(next));
      }
      layers_[layer].bits[p] = 0;
      // Drop empty trailing layers.
      while (layers_.size() > 1 && layers_.back().bits.empty()) {
        layers_.pop_back();
      }
      return true;
    }
    p = next;
    ++layer;
  }
}

void MlCcbf::insert(std::string_view key) {
  hash::HashBitStream stream(key, seed_);
  for (unsigned i = 0; i < k_; ++i) {
    increment_at(stream.next_index(m_));
  }
  ++size_;
  stats_.record(metrics::OpClass::kInsert, k_, stream.accounted_bits());
}

bool MlCcbf::contains(std::string_view key) const {
  hash::HashBitStream stream(key, seed_);
  bool positive = true;
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t pos = stream.next_index(m_);
    if (!layers_[0].bits[pos]) {
      positive = false;
      break;
    }
  }
  stats_.record(positive ? metrics::OpClass::kQueryPositive
                         : metrics::OpClass::kQueryNegative,
                k_, stream.accounted_bits());
  return positive;
}

bool MlCcbf::erase(std::string_view key) {
  hash::HashBitStream stream(key, seed_);
  bool ok = true;
  for (unsigned i = 0; i < k_; ++i) {
    ok &= decrement_at(stream.next_index(m_));
  }
  if (size_ > 0) --size_;
  stats_.record(metrics::OpClass::kDelete, k_, stream.accounted_bits());
  return ok;
}

std::uint32_t MlCcbf::count(std::string_view key) const {
  hash::HashBitStream stream(key, seed_);
  std::uint32_t min_c = ~std::uint32_t{0};
  for (unsigned i = 0; i < k_; ++i) {
    min_c = std::min<std::uint32_t>(min_c,
                                    counter_at(stream.next_index(m_)));
    if (min_c == 0) break;
  }
  return min_c;
}

void MlCcbf::clear() {
  layers_.clear();
  layers_.emplace_back();
  layers_[0].bits.assign(m_, 0);
  size_ = 0;
}

std::size_t MlCcbf::memory_bits() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    total += layer.bits.size();
  }
  return total;
}

bool MlCcbf::validate() const {
  if (layers_[0].bits.size() != m_) return false;
  for (std::size_t j = 0; j + 1 < layers_.size(); ++j) {
    if (layers_[j + 1].bits.size() != layers_[j].ones()) return false;
  }
  // The deepest layer holds only terminator zeros: any 1 there would
  // require a slot in a layer that does not exist.
  return layers_.back().ones() == 0;
}

}  // namespace mpcbf::filters
