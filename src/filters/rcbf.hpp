// Rank-Indexed Counting Bloom Filter (Hua, Zhao, Lin, Xu — ICNP 2008),
// the paper's ref. [18] and the other ancestor of MPCBF's hierarchy idea.
//
// Instead of counters, RCBF stores the *fingerprints* of the keys hashed
// to each bucket, chained without pointers via a hierarchical rank index:
// a bucket's items are located by ranking the occupancy bitmaps. The
// memory win over CBF comes from replacing k 4-bit counters per key with
// one small fingerprint per (key, bucket) pair plus O(1) index bits.
//
// This implementation keeps the scheme's structure — an occupancy bitmap
// ranked to index into a compact fingerprint store, per-item repetition
// counts for multiset semantics — with the rank acceleration done by
// block-summed ranks over the bitmap. memory_bits() reports the logical
// compressed footprint (bitmap + index + fingerprints + counts), the
// quantity the related-work memory bench compares; the in-RAM layout
// favours clarity over bit-packing.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"

namespace mpcbf::filters {

struct RcbfConfig {
  std::size_t num_buckets = 1 << 16;
  unsigned k = 3;                 ///< buckets probed per key
  unsigned fingerprint_bits = 8;  ///< stored per (key, bucket) item
  unsigned counter_bits = 4;      ///< per-item repetition counter
  std::uint64_t seed = hash::kDefaultSeed;
};

class Rcbf {
 public:
  explicit Rcbf(const RcbfConfig& cfg);

  void insert(std::string_view key);
  [[nodiscard]] bool contains(std::string_view key) const;
  /// Deletes one prior insert; never-inserted keys report false.
  bool erase(std::string_view key);
  [[nodiscard]] std::uint32_t count(std::string_view key) const;

  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] unsigned k() const noexcept { return k_; }

  /// Logical compressed footprint: occupancy bitmap (1 bit/bucket) +
  /// rank index + per-item (fingerprint + repetition counter) bits.
  [[nodiscard]] std::size_t memory_bits() const;

  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }

 private:
  struct Item {
    std::uint32_t fingerprint;
    std::uint32_t repetitions;
  };

  struct Bucket {
    std::vector<Item> items;
  };

  /// Derives the k (bucket, fingerprint) probes of a key. Fingerprints
  /// never collide with the empty marker (0 remapped).
  void probes(std::string_view key, std::vector<std::size_t>& buckets,
              std::uint32_t& fingerprint,
              std::uint64_t& hash_bits) const;

  std::vector<Bucket> buckets_;
  unsigned k_;
  unsigned fp_bits_;
  std::uint32_t fp_mask_;
  unsigned counter_bits_;
  std::uint32_t counter_max_;
  std::uint64_t seed_;
  std::size_t size_ = 0;
  std::size_t total_items_ = 0;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::filters
