#include "filters/counting_bloom.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "filters/word_set.hpp"
#include "hash/hash_stream.hpp"
#include "io/binary.hpp"
#include "io/crc32c.hpp"

namespace mpcbf::filters {

CountingBloomFilter::CountingBloomFilter(const CbfConfig& cfg)
    : counters_(cfg.memory_bits / cfg.counter_bits, cfg.counter_bits),
      k_(cfg.k),
      seed_(cfg.seed),
      short_circuit_(cfg.short_circuit),
      double_hashing_(cfg.double_hashing) {
  if (cfg.k == 0) throw std::invalid_argument("CBF: k must be >= 1");
  if (counters_.size() == 0) {
    throw std::invalid_argument("CBF: memory smaller than one counter");
  }
}

CountingBloomFilter::CountingBloomFilter(std::size_t memory_bits, unsigned k,
                                         std::uint64_t seed)
    : CountingBloomFilter(CbfConfig{memory_bits, k, 4, seed, true, false}) {}

template <typename Fn>
void CountingBloomFilter::for_each_position(std::string_view key,
                                            std::uint64_t& bits_used,
                                            Fn&& fn) const {
  if (double_hashing_) {
    hash::DoubleHasher dh(key, seed_, counters_.size());
    bits_used = dh.accounted_bits();
    for (unsigned i = 0; i < k_; ++i) {
      if (!fn(dh.position(i))) return;
    }
  } else {
    hash::HashBitStream stream(key, seed_);
    for (unsigned i = 0; i < k_; ++i) {
      const std::size_t pos = stream.next_index(counters_.size());
      bits_used = stream.accounted_bits();
      if (!fn(pos)) return;
    }
  }
}

void CountingBloomFilter::insert(std::string_view key) {
  WordSet touched;
  std::uint64_t bits_used = 0;
  for_each_position(key, bits_used, [&](std::size_t pos) {
    counters_.increment(pos);
    touched.add(word_id(pos));
    return true;
  });
  ++size_;
  stats_.record(metrics::OpClass::kInsert, touched.count, bits_used);
}

bool CountingBloomFilter::contains(std::string_view key) const {
  WordSet touched;
  std::uint64_t bits_used = 0;
  bool positive = true;
  for_each_position(key, bits_used, [&](std::size_t pos) {
    touched.add(word_id(pos));
    if (counters_.get(pos) == 0) {
      positive = false;
      return !short_circuit_;
    }
    return true;
  });
  stats_.record(positive ? metrics::OpClass::kQueryPositive
                         : metrics::OpClass::kQueryNegative,
                touched.count, bits_used);
  return positive;
}

bool CountingBloomFilter::erase(std::string_view key) {
  WordSet touched;
  std::uint64_t bits_used = 0;
  bool ok = true;
  for_each_position(key, bits_used, [&](std::size_t pos) {
    ok &= counters_.decrement(pos);
    touched.add(word_id(pos));
    return true;
  });
  if (size_ > 0) --size_;
  stats_.record(metrics::OpClass::kDelete, touched.count, bits_used);
  return ok;
}

std::uint32_t CountingBloomFilter::count(std::string_view key) const {
  std::uint64_t bits_used = 0;
  std::uint32_t min_c = ~std::uint32_t{0};
  for_each_position(key, bits_used, [&](std::size_t pos) {
    min_c = std::min(min_c, counters_.get(pos));
    return min_c != 0;
  });
  return min_c;
}

void CountingBloomFilter::clear() {
  counters_.reset();
  size_ = 0;
}

bool CountingBloomFilter::compatible(
    const CountingBloomFilter& other) const noexcept {
  return k_ == other.k_ && seed_ == other.seed_ &&
         double_hashing_ == other.double_hashing_ &&
         counters_.size() == other.counters_.size() &&
         counters_.bits_per_counter() == other.counters_.bits_per_counter();
}

bool CountingBloomFilter::merge(const CountingBloomFilter& other) {
  if (!compatible(other)) return false;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    const std::uint32_t sum = counters_.get(i) + other.counters_.get(i);
    counters_.set(i, std::min(sum, counters_.max_value()));
  }
  size_ += other.size_;
  return true;
}

namespace {
constexpr char kCbfMagic[9] = "MPCBCBF1";
}  // namespace

CountingBloomFilter CountingBloomFilter::load_body(std::istream& is) {
  CbfConfig cfg;
  cfg.k = io::read_pod<std::uint32_t>(is);
  if (cfg.k == 0 || cfg.k > 64) {
    throw std::runtime_error("CBF::load: k out of range");
  }
  cfg.seed = io::read_pod<std::uint64_t>(is);
  cfg.short_circuit = io::read_pod<std::uint8_t>(is) != 0;
  cfg.double_hashing = io::read_pod<std::uint8_t>(is) != 0;
  const auto size = io::read_pod<std::uint64_t>(is);
  bits::CounterVector counters = bits::CounterVector::load(is);
  cfg.counter_bits = counters.bits_per_counter();
  cfg.memory_bits = counters.memory_bits();
  CountingBloomFilter f(cfg);
  f.counters_ = std::move(counters);
  f.size_ = size;
  return f;
}

void CountingBloomFilter::save(std::ostream& os) const {
  std::ostringstream payload;
  io::write_magic(payload, kCbfMagic);
  io::write_pod<std::uint32_t>(payload, k_);
  io::write_pod<std::uint64_t>(payload, seed_);
  io::write_pod<std::uint8_t>(payload, short_circuit_ ? 1 : 0);
  io::write_pod<std::uint8_t>(payload, double_hashing_ ? 1 : 0);
  io::write_pod<std::uint64_t>(payload, size_);
  counters_.save(payload);
  io::write_frame(os, payload.str());
}

CountingBloomFilter CountingBloomFilter::load(std::istream& is) {
  const auto magic = io::read_raw_magic(is);
  if (io::magic_equals(magic, io::kFrameMagic)) {
    std::istringstream payload(io::read_frame_payload_after_magic(is));
    io::expect_magic(payload, kCbfMagic);
    return load_body(payload);
  }
  if (io::magic_equals(magic, kCbfMagic)) {
    return load_body(is);  // legacy v1 stream
  }
  throw std::runtime_error("CBF::load: unrecognized magic");
}

double CountingBloomFilter::fill_ratio() const noexcept {
  return counters_.size() == 0
             ? 0.0
             : static_cast<double>(counters_.nonzero_count()) /
                   static_cast<double>(counters_.size());
}

}  // namespace mpcbf::filters
