// Blocked Bloom filter — BF-1 / BF-g of Qiao, Li & Chen (INFOCOM 2011),
// the work the paper generalizes from bits to counters.
//
// The bit vector is split into l words of w bits; an element picks g words
// and sets ⌈k/g⌉ bits in each. One memory access per word, no deletion.
// Kept as a baseline so the ablation benches can show how much of MPCBF's
// gain comes from the hierarchy versus from plain word-partitioning.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "bitvec/bit_vector.hpp"
#include "filters/word_set.hpp"
#include "hash/hash_stream.hpp"
#include "metrics/access_stats.hpp"
#include "model/fpr_model.hpp"

namespace mpcbf::filters {

class BlockedBloomFilter {
 public:
  /// `memory_bits` total, w-bit blocks, k bits per key split over g blocks.
  BlockedBloomFilter(std::size_t memory_bits, unsigned k, unsigned g = 1,
                     unsigned word_bits = 64,
                     std::uint64_t seed = hash::kDefaultSeed)
      : bits_(memory_bits / word_bits * word_bits),
        num_words_(memory_bits / word_bits),
        word_bits_(word_bits),
        k_(k),
        g_(g),
        seed_(seed) {
    if (k == 0 || g == 0 || g > k) {
      throw std::invalid_argument("BlockedBloom: need 1 <= g <= k");
    }
    if (num_words_ == 0) {
      throw std::invalid_argument("BlockedBloom: memory smaller than a word");
    }
  }

  void insert(std::string_view key) {
    hash::HashBitStream stream(key, seed_);
    WordSet touched;
    for (unsigned t = 0; t < g_; ++t) {
      const std::size_t w = stream.next_index(num_words_);
      touched.add(w);
      const unsigned kw = model::hashes_per_word(k_, g_, t);
      for (unsigned i = 0; i < kw; ++i) {
        bits_.set(w * word_bits_ + stream.next_index(word_bits_));
      }
    }
    stats_.record(metrics::OpClass::kInsert, touched.count,
                  stream.accounted_bits());
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    hash::HashBitStream stream(key, seed_);
    WordSet touched;
    bool positive = true;
    for (unsigned t = 0; t < g_ && positive; ++t) {
      const std::size_t w = stream.next_index(num_words_);
      touched.add(w);
      const unsigned kw = model::hashes_per_word(k_, g_, t);
      for (unsigned i = 0; i < kw; ++i) {
        if (!bits_.test(w * word_bits_ + stream.next_index(word_bits_))) {
          positive = false;
          break;
        }
      }
    }
    stats_.record(positive ? metrics::OpClass::kQueryPositive
                           : metrics::OpClass::kQueryNegative,
                  touched.count, stream.accounted_bits());
    return positive;
  }

  void clear() { bits_.reset(); }

  [[nodiscard]] std::size_t num_words() const noexcept { return num_words_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] unsigned g() const noexcept { return g_; }
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return bits_.memory_bits();
  }
  [[nodiscard]] double fill_ratio() const noexcept {
    return bits_.fill_ratio();
  }
  [[nodiscard]] metrics::AccessStats& stats() const noexcept {
    return stats_;
  }

 private:
  bits::BitVector bits_;
  std::size_t num_words_;
  unsigned word_bits_;
  unsigned k_;
  unsigned g_;
  std::uint64_t seed_;
  mutable metrics::AccessStats stats_;
};

}  // namespace mpcbf::filters
