// Word-overflow probability models — eqs. (6) and (10) and exact tails.
//
// An HCBF word of width w with first-level size b1 = w - ⌈k/g⌉·n_max can
// absorb at most n_max element-mappings; overflow means more than n_max
// elements hash into one word. The paper bounds this with the classic
// balls-in-bins Chernoff-style bound (en/(n_max·l))^{n_max}; we also expose
// the exact binomial tail and the union bound over all l words so Fig. 6
// can be plotted from either.
#pragma once

#include <cstdint>

namespace mpcbf::model {

/// Eq. (6) upper bound on P[one given word receives >= n_max elements]:
/// C(n, n_max) (1/l)^{n_max} <= (e*n / (n_max*l))^{n_max}.
[[nodiscard]] double overflow_bound(std::uint64_t n, std::uint64_t l,
                                    unsigned n_max);

/// Eq. (10): the same bound for MPCBF-g (g*n mappings thrown at l words):
/// (e*g*n / (n_max'*l))^{n_max'}.
[[nodiscard]] double overflow_bound_g(std::uint64_t n, std::uint64_t l,
                                      unsigned g, unsigned n_max);

/// Exact P[Binomial(n_mappings, 1/l) > n_max] for one word, where
/// n_mappings = g*n. (Strictly more than n_max elements overflow the word;
/// exactly n_max still fit.)
[[nodiscard]] double overflow_exact(std::uint64_t n, std::uint64_t l,
                                    unsigned g, unsigned n_max);

/// Union bound over all l words: l * overflow_exact (capped at 1).
[[nodiscard]] double overflow_any_word(std::uint64_t n, std::uint64_t l,
                                       unsigned g, unsigned n_max);

}  // namespace mpcbf::model
