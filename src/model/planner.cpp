#include "model/planner.hpp"

#include <stdexcept>

#include "model/fpr_model.hpp"
#include "model/optimal_k.hpp"
#include "model/overflow_model.hpp"

namespace mpcbf::model {
namespace {

/// Smallest memory in [lo, hi] (bits, word-granular) whose best
/// achievable FPR under `evaluate` meets the target; 0 if even hi fails.
template <typename Evaluate>
std::size_t search_memory(std::size_t lo, std::size_t hi, unsigned word_bits,
                          double target, const Evaluate& evaluate) {
  if (evaluate(hi) > target) return 0;
  while (lo < hi) {
    // Word-granular midpoint to keep configurations realizable.
    std::size_t mid = lo + (hi - lo) / 2;
    mid -= mid % word_bits;
    if (mid <= lo) mid = lo + word_bits;
    if (mid >= hi) {
      break;
    }
    if (evaluate(mid) <= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

FilterPlan plan_mpcbf(const PlanRequirements& req) {
  if (req.expected_n == 0) {
    throw std::invalid_argument("plan_mpcbf: expected_n required");
  }
  if (req.max_accesses == 0) {
    throw std::invalid_argument("plan_mpcbf: need max_accesses >= 1");
  }
  FilterPlan best;
  const std::size_t floor_bits =
      std::max<std::size_t>(req.word_bits, req.expected_n);  // >= 1 bit/elt
  for (unsigned g = 1; g <= req.max_accesses; ++g) {
    const auto fpr_at = [&](std::size_t memory) {
      return optimal_k_mpcbf(memory, req.word_bits, req.expected_n, g).fpr;
    };
    const std::size_t memory = search_memory(
        floor_bits, req.max_memory_bits, req.word_bits, req.target_fpr,
        fpr_at);
    if (memory == 0) continue;
    const OptimalK opt =
        optimal_k_mpcbf(memory, req.word_bits, req.expected_n, g);
    if (opt.k == 0) continue;
    if (!best.feasible || memory < best.memory_bits) {
      best.feasible = true;
      best.memory_bits = memory;
      best.k = opt.k;
      best.g = g;
      best.n_max = opt.n_max;
      best.b1 = opt.b1;
      best.predicted_fpr = opt.fpr;
      best.expected_overflowing_words =
          static_cast<double>(memory / req.word_bits) *
          overflow_exact(req.expected_n, memory / req.word_bits, g,
                         opt.n_max);
    }
  }
  return best;
}

FilterPlan plan_cbf(const PlanRequirements& req) {
  if (req.expected_n == 0) {
    throw std::invalid_argument("plan_cbf: expected_n required");
  }
  const auto fpr_at = [&](std::size_t memory) {
    return optimal_k_cbf(memory, req.expected_n).fpr;
  };
  FilterPlan plan;
  const std::size_t floor_bits =
      std::max<std::size_t>(64, req.expected_n);
  const std::size_t memory = search_memory(
      floor_bits, req.max_memory_bits, 64, req.target_fpr, fpr_at);
  if (memory == 0) return plan;
  const OptimalK opt = optimal_k_cbf(memory, req.expected_n);
  plan.feasible = true;
  plan.memory_bits = memory;
  plan.k = opt.k;
  plan.g = opt.k;  // CBF touches ~k words per update
  plan.predicted_fpr = opt.fpr;
  return plan;
}

}  // namespace mpcbf::model
