#include "model/combinatorics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mpcbf::model {
namespace {

// Truncation threshold for expectation sums: terms are probabilities in
// [0,1], the pmf tail bounds the remaining contribution.
constexpr double kTailEpsilon = 1e-16;

// glibc's lgamma writes the process-global `signgam`, so concurrent
// health probes from shard workers race on it. All arguments here are
// >= 1, where the gamma function is positive, so the sign output of the
// reentrant variant can be discarded.
double lgamma_safe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double log_binomial_coefficient(std::uint64_t n, std::uint64_t j) {
  if (j > n) throw std::invalid_argument("log_binomial_coefficient: j > n");
  return lgamma_safe(static_cast<double>(n) + 1.0) -
         lgamma_safe(static_cast<double>(j) + 1.0) -
         lgamma_safe(static_cast<double>(n - j) + 1.0);
}

double binomial_pmf(std::uint64_t n, double p, std::uint64_t j) {
  if (j > n || p < 0.0 || p > 1.0) return 0.0;
  if (p == 0.0) return j == 0 ? 1.0 : 0.0;
  if (p == 1.0) return j == n ? 1.0 : 0.0;
  const double lp = log_binomial_coefficient(n, j) +
                    static_cast<double>(j) * std::log(p) +
                    static_cast<double>(n - j) * std::log1p(-p);
  return std::exp(lp);
}

double binomial_sf(std::uint64_t n, double p, std::uint64_t j) {
  if (j == 0) return 1.0;
  if (j > n) return 0.0;
  // Sum the smaller side for accuracy.
  const double mean = static_cast<double>(n) * p;
  if (static_cast<double>(j) > mean) {
    double s = 0.0;
    for (std::uint64_t i = j; i <= n; ++i) {
      const double t = binomial_pmf(n, p, i);
      s += t;
      if (t < kTailEpsilon * (s + kTailEpsilon) &&
          static_cast<double>(i) > mean) {
        break;
      }
    }
    return std::min(1.0, s);
  }
  double s = 0.0;
  for (std::uint64_t i = 0; i < j; ++i) {
    s += binomial_pmf(n, p, i);
  }
  return std::clamp(1.0 - s, 0.0, 1.0);
}

double poisson_pmf(double lambda, std::uint64_t j) {
  if (lambda < 0.0) return 0.0;
  if (lambda == 0.0) return j == 0 ? 1.0 : 0.0;
  const double lp = static_cast<double>(j) * std::log(lambda) - lambda -
                    lgamma_safe(static_cast<double>(j) + 1.0);
  return std::exp(lp);
}

double poisson_cdf(double lambda, std::uint64_t j) {
  double s = 0.0;
  for (std::uint64_t i = 0; i <= j; ++i) {
    s += poisson_pmf(lambda, i);
  }
  return std::min(1.0, s);
}

double poisson_sf(double lambda, std::uint64_t j) {
  if (j == 0) return 1.0;
  return std::clamp(1.0 - poisson_cdf(lambda, j - 1), 0.0, 1.0);
}

std::uint64_t poisson_inv(double p, double lambda) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("poisson_inv: p");
  if (lambda < 0.0) throw std::invalid_argument("poisson_inv: lambda");
  double cdf = 0.0;
  std::uint64_t x = 0;
  // The quantile is O(lambda + sqrt(lambda) * Phi^{-1}(p)); the loop bound
  // is generous enough for any configuration we evaluate and guards
  // against p so close to 1 that cdf never reaches it in double precision.
  const std::uint64_t limit =
      static_cast<std::uint64_t>(lambda + 64.0 * (std::sqrt(lambda) + 1.0)) +
      64;
  for (;;) {
    cdf += poisson_pmf(lambda, x);
    if (cdf >= p || x >= limit) return x;
    ++x;
  }
}

double expect_binomial(std::uint64_t n, double p,
                       const std::function<double(std::uint64_t)>& phi) {
  if (n == 0 || p <= 0.0) return phi(0);
  if (p >= 1.0) return phi(n);
  const auto mode = static_cast<std::uint64_t>(
      std::min(static_cast<double>(n), (static_cast<double>(n) + 1.0) * p));
  // Walk down from the mode, then up, with pmf computed by ratio updates
  // so the whole expectation is O(width of the distribution).
  const double log_q = std::log1p(-p);
  const double log_p = std::log(p);
  double acc = 0.0;

  double lpmf = log_binomial_coefficient(n, mode) +
                static_cast<double>(mode) * log_p +
                static_cast<double>(n - mode) * log_q;
  // Downward: pmf(j-1) = pmf(j) * j*(1-p) / ((n-j+1)*p)
  {
    double l = lpmf;
    for (std::uint64_t j = mode;; --j) {
      const double w = std::exp(l);
      acc += w * phi(j);
      if (w < kTailEpsilon || j == 0) break;
      l += std::log(static_cast<double>(j)) + log_q -
           std::log(static_cast<double>(n - j + 1)) - log_p;
    }
  }
  // Upward: pmf(j+1) = pmf(j) * (n-j)*p / ((j+1)*(1-p))
  {
    double l = lpmf;
    for (std::uint64_t j = mode; j < n;) {
      l += std::log(static_cast<double>(n - j)) + log_p -
           std::log(static_cast<double>(j + 1)) - log_q;
      ++j;
      const double w = std::exp(l);
      acc += w * phi(j);
      if (w < kTailEpsilon) break;
    }
  }
  return acc;
}

double expect_poisson(double lambda,
                      const std::function<double(std::uint64_t)>& phi) {
  if (lambda <= 0.0) return phi(0);
  const auto mode = static_cast<std::uint64_t>(lambda);
  double acc = 0.0;
  const double log_lambda = std::log(lambda);
  const double lpmf_mode = static_cast<double>(mode) * log_lambda - lambda -
                           lgamma_safe(static_cast<double>(mode) + 1.0);
  {
    double l = lpmf_mode;
    for (std::uint64_t j = mode;; --j) {
      const double w = std::exp(l);
      acc += w * phi(j);
      if (w < kTailEpsilon || j == 0) break;
      l += std::log(static_cast<double>(j)) - log_lambda;
    }
  }
  {
    double l = lpmf_mode;
    for (std::uint64_t j = mode;;) {
      l += log_lambda - std::log(static_cast<double>(j + 1));
      ++j;
      const double w = std::exp(l);
      acc += w * phi(j);
      if (w < kTailEpsilon) break;
    }
  }
  return acc;
}

}  // namespace mpcbf::model
