#include "model/fpr_model.hpp"

#include <algorithm>
#include <cmath>

#include "model/combinatorics.hpp"

namespace mpcbf::model {
namespace {

/// (1 - (1 - 1/b)^{j*kw})^{kw} — the conditional false positive probability
/// for one word holding j element-mappings of kw hashes each over b slots.
double word_conditional_fpr(std::uint64_t j, double b, double kw) {
  if (j == 0) return 0.0;
  if (b <= 1.0) return 1.0;
  const double miss = std::exp(static_cast<double>(j) * kw *
                               std::log1p(-1.0 / b));
  return std::pow(1.0 - miss, kw);
}

}  // namespace

double fpr_bloom(std::uint64_t n, std::uint64_t m, unsigned k) {
  if (m == 0) return 1.0;
  if (n == 0 || k == 0) return 0.0;
  const double fill = 1.0 - std::exp(static_cast<double>(k) *
                                     static_cast<double>(n) *
                                     std::log1p(-1.0 / static_cast<double>(m)));
  return std::pow(fill, static_cast<double>(k));
}

unsigned optimal_k_bloom(std::uint64_t n, std::uint64_t m) {
  if (n == 0) return 1;
  unsigned best_k = 1;
  double best_f = fpr_bloom(n, m, 1);
  for (unsigned k = 2; k <= 64; ++k) {
    const double f = fpr_bloom(n, m, k);
    if (f < best_f) {
      best_f = f;
      best_k = k;
    }
  }
  return best_k;
}

double fpr_pcbf1(std::uint64_t n, std::uint64_t l,
                 unsigned counters_per_word, unsigned k) {
  if (l == 0) return 1.0;
  const double b = counters_per_word;
  const double kw = k;
  return expect_binomial(n, 1.0 / static_cast<double>(l),
                         [&](std::uint64_t j) {
                           return word_conditional_fpr(j, b, kw);
                         });
}

double fpr_pcbf_g(std::uint64_t n, std::uint64_t l,
                  unsigned counters_per_word, unsigned k, unsigned g) {
  if (g == 0) return 1.0;
  if (g == 1) return fpr_pcbf1(n, l, counters_per_word, k);
  if (l == 0) return 1.0;
  const double b = counters_per_word;
  const double kw = static_cast<double>(k) / static_cast<double>(g);
  const double per_word =
      expect_binomial(g * n, 1.0 / static_cast<double>(l),
                      [&](std::uint64_t j) {
                        return word_conditional_fpr(j, b, kw);
                      });
  return std::pow(per_word, static_cast<double>(g));
}

double fpr_mpcbf1(std::uint64_t n, std::uint64_t l, unsigned b1, unsigned k) {
  if (l == 0 || b1 == 0) return 1.0;
  const double b = b1;
  const double kw = k;
  return expect_binomial(n, 1.0 / static_cast<double>(l),
                         [&](std::uint64_t j) {
                           return word_conditional_fpr(j, b, kw);
                         });
}

double fpr_mpcbf_g(std::uint64_t n, std::uint64_t l, unsigned b1, unsigned k,
                   unsigned g) {
  if (g == 0) return 1.0;
  if (g == 1) return fpr_mpcbf1(n, l, b1, k);
  if (l == 0 || b1 == 0) return 1.0;
  const double b = b1;
  const double kw = static_cast<double>(k) / static_cast<double>(g);
  const double per_word =
      expect_binomial(g * n, 1.0 / static_cast<double>(l),
                      [&](std::uint64_t j) {
                        return word_conditional_fpr(j, b, kw);
                      });
  return std::pow(per_word, static_cast<double>(g));
}

double fpr_blocked_bloom(std::uint64_t n, std::uint64_t l,
                         unsigned word_bits, unsigned k, unsigned g) {
  return fpr_mpcbf_g(n, l, word_bits, k, g);
}

unsigned b1_improved(unsigned w, unsigned k, unsigned g, unsigned n_max) {
  const unsigned per_word_hashes = (k + g - 1) / g;
  const unsigned reserve = per_word_hashes * n_max;
  return reserve >= w ? 0 : w - reserve;
}

unsigned n_max_heuristic(std::uint64_t n, std::uint64_t l, unsigned g) {
  if (l == 0) return 0;
  const double lambda = static_cast<double>(g) * static_cast<double>(n) /
                        static_cast<double>(l);
  const double p = 1.0 - 1.0 / static_cast<double>(l);
  return static_cast<unsigned>(poisson_inv(p, lambda));
}

unsigned b1_average(unsigned w, unsigned k, std::uint64_t n, std::uint64_t l) {
  if (l == 0) return 0;
  const double reserve = static_cast<double>(k) * static_cast<double>(n) /
                         static_cast<double>(l);
  const double b1 = static_cast<double>(w) - reserve;
  return b1 <= 0.0 ? 0 : static_cast<unsigned>(b1);
}

double efficiency_ratio_lower_bound(unsigned w, unsigned k, unsigned n_max) {
  if (n_max == 0) return 0.0;
  return static_cast<double>(w) / static_cast<double>(n_max) -
         static_cast<double>(k);
}

}  // namespace mpcbf::model
