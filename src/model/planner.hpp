// Configuration planner — turns Sec. III-B.4's design discussion ("by
// choosing correctly the parameters w, n_max, and m/n, one can design
// MPCBF-1 so that it has a bounded false positive rate as well as an
// acceptable overflow probability") into an executable tool.
//
// Given a target FPR, an expected cardinality, and an access budget g,
// plan_mpcbf() searches memory sizes and hash counts (via the optimal-k
// search and the eq.-(11) capacity heuristic) for the cheapest feasible
// configuration; plan_cbf() answers the same question for the baseline so
// the memory cost of CBF's extra accesses is directly comparable.
#pragma once

#include <cstdint>

namespace mpcbf::model {

struct PlanRequirements {
  std::size_t expected_n = 0;
  double target_fpr = 1e-3;
  /// Memory accesses allowed per query (the g budget); the planner may
  /// choose any g in [1, max_accesses].
  unsigned max_accesses = 1;
  unsigned word_bits = 64;
  /// Search ceiling; a plan needing more memory is reported infeasible.
  std::size_t max_memory_bits = 1ull << 33;  // 1 GiB
};

struct FilterPlan {
  bool feasible = false;
  std::size_t memory_bits = 0;
  unsigned k = 0;
  unsigned g = 0;       ///< accesses per query (CBF plans report k here)
  unsigned n_max = 0;   ///< 0 for CBF
  unsigned b1 = 0;      ///< 0 for CBF
  double predicted_fpr = 1.0;
  /// Expected number of overflowing words (union-bound estimate); the
  /// eq.-(11) heuristic keeps this O(1).
  double expected_overflowing_words = 0.0;
  /// Bits per stored element at the planned size.
  [[nodiscard]] double bits_per_element(std::size_t n) const {
    return n == 0 ? 0.0
                  : static_cast<double>(memory_bits) /
                        static_cast<double>(n);
  }
};

/// Cheapest MPCBF-g (g <= max_accesses) meeting the target FPR.
[[nodiscard]] FilterPlan plan_mpcbf(const PlanRequirements& req);

/// Cheapest standard CBF (4-bit counters, optimal k) meeting the target.
[[nodiscard]] FilterPlan plan_cbf(const PlanRequirements& req);

}  // namespace mpcbf::model
