#include "model/overflow_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "model/combinatorics.hpp"

namespace mpcbf::model {

double overflow_bound(std::uint64_t n, std::uint64_t l, unsigned n_max) {
  return overflow_bound_g(n, l, 1, n_max);
}

double overflow_bound_g(std::uint64_t n, std::uint64_t l, unsigned g,
                        unsigned n_max) {
  if (n_max == 0) return 1.0;
  if (l == 0) return 1.0;
  const double ratio = std::numbers::e * static_cast<double>(g) *
                       static_cast<double>(n) /
                       (static_cast<double>(n_max) * static_cast<double>(l));
  // Work in log space: ratio^{n_max} underflows double for large n_max.
  const double lp = static_cast<double>(n_max) * std::log(ratio);
  if (lp >= 0.0) return 1.0;
  return std::exp(lp);
}

double overflow_exact(std::uint64_t n, std::uint64_t l, unsigned g,
                      unsigned n_max) {
  if (l == 0) return 1.0;
  const std::uint64_t mappings = static_cast<std::uint64_t>(g) * n;
  return binomial_sf(mappings, 1.0 / static_cast<double>(l), n_max + 1);
}

double overflow_any_word(std::uint64_t n, std::uint64_t l, unsigned g,
                         unsigned n_max) {
  return std::min(1.0, static_cast<double>(l) * overflow_exact(n, l, g, n_max));
}

}  // namespace mpcbf::model
