// Brute-force optimal-k search (Sec. IV-C, Fig. 9/10).
//
// For CBF the optimum is the classic (m/n)·ln2; for MPCBF-g the paper notes
// optimizing eq. (8) analytically is hard and uses exhaustive search over
// the (small, discrete) k range — we do the same. For each candidate k the
// configuration is re-derived end to end: n_max from the PoissInv heuristic
// (which does not depend on k), b1 = w − ⌈k/g⌉·n_max, then the average FPR
// from eq. (8) with that b1.
#pragma once

#include <cstdint>

namespace mpcbf::model {

struct OptimalK {
  unsigned k = 0;
  double fpr = 1.0;
  unsigned b1 = 0;     ///< 0 for CBF (not applicable)
  unsigned n_max = 0;  ///< 0 for CBF
};

/// Optimal k for a standard CBF of `memory_bits` total (4-bit counters,
/// so m = memory_bits/4 counters) holding n elements.
[[nodiscard]] OptimalK optimal_k_cbf(std::uint64_t memory_bits,
                                     std::uint64_t n);

/// Optimal k for MPCBF-g with word width w over the same memory. Searches
/// k in [g, k_limit]; configurations whose b1 collapses to zero are
/// skipped.
[[nodiscard]] OptimalK optimal_k_mpcbf(std::uint64_t memory_bits, unsigned w,
                                       std::uint64_t n, unsigned g,
                                       unsigned k_limit = 32);

}  // namespace mpcbf::model
