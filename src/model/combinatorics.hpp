// Numeric building blocks for the analytic model: log-space binomial and
// Poisson distributions and stable expectations over them.
//
// The paper's false-positive formulas (eqs. 2-5, 8-9) are expectations of
// the form E_j[phi(j)] with j ~ Binomial(n, 1/l) for n up to 10^5 and l up
// to ~10^6; naive binomial coefficients overflow long before that, so all
// pmf evaluation happens in log space via lgamma, and expectations iterate
// outward from the distribution mode with early termination once terms stop
// mattering.
#pragma once

#include <cstdint>
#include <functional>

namespace mpcbf::model {

/// ln C(n, j). Requires 0 <= j <= n.
[[nodiscard]] double log_binomial_coefficient(std::uint64_t n,
                                              std::uint64_t j);

/// Binomial(n, p) pmf at j, computed in log space.
[[nodiscard]] double binomial_pmf(std::uint64_t n, double p, std::uint64_t j);

/// P[Binomial(n, p) >= j] (survival function), exact log-space summation.
[[nodiscard]] double binomial_sf(std::uint64_t n, double p, std::uint64_t j);

/// Poisson(lambda) pmf at j.
[[nodiscard]] double poisson_pmf(double lambda, std::uint64_t j);

/// P[Poisson(lambda) <= j].
[[nodiscard]] double poisson_cdf(double lambda, std::uint64_t j);

/// P[Poisson(lambda) >= j].
[[nodiscard]] double poisson_sf(double lambda, std::uint64_t j);

/// Inverse Poisson CDF: the smallest x with P[Poisson(lambda) <= x] >= p.
/// This is the paper's PoissInv(p, lambda) used by the n_max heuristic
/// (eq. 11).
[[nodiscard]] std::uint64_t poisson_inv(double p, double lambda);

/// E[phi(J)] for J ~ Binomial(n, p). phi must be bounded in [0, 1] (all our
/// integrands are probabilities). Iterates outward from the mode and stops
/// once the remaining probability mass cannot change the result at double
/// precision.
[[nodiscard]] double expect_binomial(std::uint64_t n, double p,
                                     const std::function<double(std::uint64_t)>& phi);

/// E[phi(J)] for J ~ Poisson(lambda), same contract as expect_binomial.
[[nodiscard]] double expect_poisson(double lambda,
                                    const std::function<double(std::uint64_t)>& phi);

}  // namespace mpcbf::model
