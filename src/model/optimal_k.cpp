#include "model/optimal_k.hpp"

#include "model/fpr_model.hpp"

namespace mpcbf::model {

OptimalK optimal_k_cbf(std::uint64_t memory_bits, std::uint64_t n) {
  const std::uint64_t m = memory_bits / 4;  // 4-bit counters
  OptimalK best;
  for (unsigned k = 1; k <= 64; ++k) {
    const double f = fpr_bloom(n, m, k);
    if (best.k == 0 || f < best.fpr) {
      best.k = k;
      best.fpr = f;
    }
  }
  return best;
}

OptimalK optimal_k_mpcbf(std::uint64_t memory_bits, unsigned w,
                         std::uint64_t n, unsigned g, unsigned k_limit) {
  const std::uint64_t l = memory_bits / w;
  const unsigned n_max = n_max_heuristic(n, l, g);
  OptimalK best;
  for (unsigned k = g; k <= k_limit; ++k) {
    const unsigned b1 = b1_improved(w, k, g, n_max);
    if (b1 == 0) continue;
    const double f = fpr_mpcbf_g(n, l, b1, k, g);
    if (best.k == 0 || f < best.fpr) {
      best.k = k;
      best.fpr = f;
      best.b1 = b1;
      best.n_max = n_max;
    }
  }
  return best;
}

}  // namespace mpcbf::model
