// Occupancy models for the HCBF word: the distributions behind the
// capacity discussion of Sec. III-B.4 — how many elements land in a word,
// how deep individual counters grow, and how much hierarchy storage a
// configuration really uses. These close the loop between the design
// formulas (b1 = w − k·n_max) and what a built filter measurably contains;
// tests validate them against live filters.
#pragma once

#include <cstdint>

namespace mpcbf::model {

/// P[a given word receives exactly j element-mappings] for MPCBF-g:
/// Binomial(g·n, 1/l), evaluated exactly.
[[nodiscard]] double word_load_pmf(std::uint64_t n, std::uint64_t l,
                                   unsigned g, std::uint64_t j);

/// Expected hierarchy bits per word: every insert spends exactly one
/// hierarchy bit per hash, so E = k·n/l regardless of collisions.
[[nodiscard]] double expected_hierarchy_bits_per_word(std::uint64_t n,
                                                      std::uint64_t l,
                                                      unsigned k);

/// P[the counter at a given level-1 position has value c]. A position's
/// increments cluster by word — its word holds J ~ Binomial(n, 1/l)
/// elements, each throwing k increments over the b1 positions — so the
/// exact law is the mixture E_J[Binomial(J·k, 1/b1) at c], which is
/// overdispersed relative to the naive thinned Poisson (visibly so at
/// c >= 2; the tests check this).
[[nodiscard]] double counter_value_pmf(std::uint64_t n, std::uint64_t l,
                                       unsigned k, unsigned b1,
                                       std::uint64_t c);

/// Expected number of elements whose insert overflows its word (and so
/// lands in the stash under OverflowPolicy::kStash): n · P[an arriving
/// element finds its word at capacity], estimated via the load tail.
[[nodiscard]] double expected_stashed_elements(std::uint64_t n,
                                               std::uint64_t l, unsigned g,
                                               unsigned n_max);

}  // namespace mpcbf::model
