// Closed-form false-positive-rate models — equations (1)-(5) and (8)-(9)
// of the paper, plus the configuration helpers shared with the filters.
//
// Conventions (matching Sec. III):
//   M  total memory in bits ("memory consumption")
//   n  number of stored elements
//   k  total hash functions per element
//   g  memory accesses (words an element maps to); g=1 unless stated
//   w  word width in bits
//   l  number of words, l = M / w
//   b1 first-level sub-vector size of an HCBF word
//   counters per word of a PCBF word = w / 4 (4-bit counters)
#pragma once

#include <cstdint>

namespace mpcbf::model {

/// Eq. (1): standard Bloom/CBF false positive rate
/// f = (1 - (1 - 1/m)^{kn})^k, with m slots (bits for BF, counters for CBF).
[[nodiscard]] double fpr_bloom(std::uint64_t n, std::uint64_t m, unsigned k);

/// Optimal k for eq. (1): (m/n) ln 2, evaluated over the integer
/// neighbourhood. Returns the k minimizing f.
[[nodiscard]] unsigned optimal_k_bloom(std::uint64_t n, std::uint64_t m);

/// Eq. (2): PCBF-1 — one word of `counters_per_word` counters holds
/// j ~ Binomial(n, 1/l) elements, each setting k counters:
/// f = E_j[(1 - (1 - 1/cpw)^{jk})^k].
[[nodiscard]] double fpr_pcbf1(std::uint64_t n, std::uint64_t l,
                               unsigned counters_per_word, unsigned k);

/// Eq. (3): PCBF-g — each element selects g words, k/g hashes each:
/// f = (E_{j~Binomial(gn,1/l)}[(1 - (1 - 1/cpw)^{jk/g})^{k/g}])^g.
/// k/g is treated as a real number, as in the paper's analysis.
[[nodiscard]] double fpr_pcbf_g(std::uint64_t n, std::uint64_t l,
                                unsigned counters_per_word, unsigned k,
                                unsigned g);

/// Eqs. (4)/(5): MPCBF-1 with first-level size b1:
/// f = E_{j~Binomial(n,1/l)}[(1 - (1 - 1/b1)^{jk})^k].
[[nodiscard]] double fpr_mpcbf1(std::uint64_t n, std::uint64_t l, unsigned b1,
                                unsigned k);

/// Eqs. (8)/(9): MPCBF-g:
/// f = (E_{j~Binomial(gn,1/l)}[(1 - (1 - 1/b1)^{jk/g})^{k/g}])^g.
[[nodiscard]] double fpr_mpcbf_g(std::uint64_t n, std::uint64_t l, unsigned b1,
                                 unsigned k, unsigned g);

/// Blocked Bloom filter BF-1/BF-g (Qiao et al., the paper's ref. [11]):
/// the PCBF formula with w *bits* per word instead of w/4 counters —
/// structurally identical to fpr_mpcbf_g with b1 = w.
[[nodiscard]] double fpr_blocked_bloom(std::uint64_t n, std::uint64_t l,
                                       unsigned word_bits, unsigned k,
                                       unsigned g);

/// Hashes assigned to one of the g words: ⌈k/g⌉ for the first g-1 words,
/// the remainder for the last (Sec. III-C). Inline constexpr: this sits on
/// every filter's per-operation hot path.
[[nodiscard]] constexpr unsigned hashes_per_word(unsigned k, unsigned g,
                                                 unsigned word_index) {
  if (g == 0) return 0;
  const unsigned base = (k + g - 1) / g;  // ⌈k/g⌉
  if (word_index + 1 < g) return base;
  const unsigned assigned = base * (g - 1);
  return k > assigned ? k - assigned : 0;
}

/// Improved-HCBF first-level size (Sec. III-B.3): b1 = w - ⌈k/g⌉ * n_max.
/// Returns 0 when the configuration leaves no membership bits.
[[nodiscard]] unsigned b1_improved(unsigned w, unsigned k, unsigned g,
                                   unsigned n_max);

/// Eq. (11) heuristic: n_max = PoissInv(1 - 1/l, g*n/l) — the per-word
/// element capacity such that no word overflows with probability ~1 - 1/l
/// per word.
[[nodiscard]] unsigned n_max_heuristic(std::uint64_t n, std::uint64_t l,
                                       unsigned g);

/// "Average" first-level size used for the f^avg curves (Fig. 5): each
/// word holds n/l elements on average, so b1 = w - k*n/l (real-valued,
/// floored; clamped at 0).
[[nodiscard]] unsigned b1_average(unsigned w, unsigned k, std::uint64_t n,
                                  std::uint64_t l);

/// Lower bound on the efficiency ratio m/n of MPCBF-1 (eq. 7):
/// m/n >= w/n_max - k (in counter units; w, k, n_max as above).
[[nodiscard]] double efficiency_ratio_lower_bound(unsigned w, unsigned k,
                                                  unsigned n_max);

}  // namespace mpcbf::model
