#include "model/occupancy.hpp"

#include <cmath>

#include "model/combinatorics.hpp"

namespace mpcbf::model {

double word_load_pmf(std::uint64_t n, std::uint64_t l, unsigned g,
                     std::uint64_t j) {
  if (l == 0) return 0.0;
  return binomial_pmf(static_cast<std::uint64_t>(g) * n,
                      1.0 / static_cast<double>(l), j);
}

double expected_hierarchy_bits_per_word(std::uint64_t n, std::uint64_t l,
                                        unsigned k) {
  if (l == 0) return 0.0;
  return static_cast<double>(k) * static_cast<double>(n) /
         static_cast<double>(l);
}

double counter_value_pmf(std::uint64_t n, std::uint64_t l, unsigned k,
                         unsigned b1, std::uint64_t c) {
  if (l == 0 || b1 == 0) return 0.0;
  return expect_binomial(
      n, 1.0 / static_cast<double>(l), [&](std::uint64_t j) {
        return binomial_pmf(j * k, 1.0 / static_cast<double>(b1), c);
      });
}

double expected_stashed_elements(std::uint64_t n, std::uint64_t l,
                                 unsigned g, unsigned n_max) {
  if (l == 0) return static_cast<double>(n);
  // An element overflows if any of its g words already holds >= n_max
  // elements; union-bound each word by the stationary load tail.
  const double p_word_full =
      binomial_sf(static_cast<std::uint64_t>(g) * n,
                  1.0 / static_cast<double>(l), n_max);
  const double p_overflow =
      1.0 - std::pow(1.0 - p_word_full, static_cast<double>(g));
  return static_cast<double>(n) * p_overflow;
}

}  // namespace mpcbf::model
