#include "io/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <istream>
#include <stdexcept>

#include "common/log.hpp"
#include "io/binary.hpp"
#include "io/crc32c.hpp"
#include "metrics/registry.hpp"
#include "metrics/timer.hpp"
#include "trace/trace.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace mpcbf::io {

namespace {

// Journal activity is process-global and low-frequency (one flush per
// group commit, one scan per recovery), so it records straight into the
// global registry — unlike the per-filter hot paths, which stay
// instance-local (see metrics/export.hpp).
struct JournalMetrics {
  metrics::Counter& appends =
      metrics::Registry::global().counter(
          "mpcbf_journal_appends_total", "Records appended to the WAL");
  metrics::Counter& flushes = metrics::Registry::global().counter(
      "mpcbf_journal_flushes_total", "WAL flushes (buffered)");
  metrics::Counter& syncs = metrics::Registry::global().counter(
      "mpcbf_journal_syncs_total", "WAL flushes that also fsynced");
  metrics::Histogram& flush_ns = metrics::Registry::global().histogram(
      "mpcbf_journal_flush_duration_ns",
      "WAL flush (+fsync when requested) latency in nanoseconds");
  metrics::Counter& replayed = metrics::Registry::global().counter(
      "mpcbf_journal_records_replayed_total",
      "Valid records decoded by journal scans");
  metrics::Counter& repaired = metrics::Registry::global().counter(
      "mpcbf_journal_repaired_bytes_total",
      "Torn-tail bytes truncated on journal open");
  metrics::Counter& resets = metrics::Registry::global().counter(
      "mpcbf_journal_resets_total",
      "Journal truncations after snapshot (group-commit watermark)");

  static JournalMetrics& get() {
    static JournalMetrics m;
    return m;
  }
};

/// fsync the file at `path` (POSIX); a no-op elsewhere. Opening a second
/// descriptor just to sync is the portable way to pair with ofstream.
void sync_file(const std::string& path) {
#ifdef __unix__
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

JournalScan Journal::scan(const std::string& path) {
  JournalScan result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return result;  // missing file == empty journal
  }
  in.seekg(0, std::ios::end);
  result.total_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);
  if (result.total_bytes == 0) {
    return result;  // empty file == empty journal
  }
  if (result.total_bytes < kHeaderBytes) {
    throw std::runtime_error("journal: truncated header");
  }
  expect_magic(in, kMagic);
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("journal: unsupported version " +
                             std::to_string(version));
  }
  (void)read_pod<std::uint32_t>(in);  // reserved
  result.base_seq = read_pod<std::uint64_t>(in);
  result.valid_bytes = kHeaderBytes;

  // Sequence numbers must be strictly increasing from base_seq but may
  // skip values: a sharded server's per-shard WALs share one global
  // counter, so each file holds a gappy subsequence. A *decrease* is
  // still corruption and ends the valid prefix.
  std::uint64_t expected_seq = result.base_seq;
  while (static_cast<std::uint64_t>(in.tellg()) < result.total_bytes) {
    JournalRecord rec;
    try {
      ChecksumReader reader(in);
      rec.seq = reader.read_pod<std::uint64_t>();
      const auto op = reader.read_pod<std::uint8_t>();
      const auto key_len = reader.read_pod<std::uint32_t>();
      if (op > kMaxJournalOp || key_len > kMaxKeyLen ||
          rec.seq < expected_seq) {
        break;  // corrupt or out-of-sequence: tail ends here
      }
      rec.op = static_cast<JournalOp>(op);
      rec.key.resize(key_len);
      reader.read(rec.key.data(), key_len);
      const auto body_crc = reader.crc();
      if (read_pod<std::uint32_t>(in) != body_crc) {
        break;
      }
    } catch (const std::runtime_error&) {
      break;  // truncated mid-record
    }
    expected_seq = rec.seq + 1;
    result.records.push_back(std::move(rec));
    result.valid_bytes = static_cast<std::uint64_t>(in.tellg());
  }
  result.next_seq = expected_seq;
  result.tail_torn = result.valid_bytes != result.total_bytes;
  JournalMetrics::get().replayed.inc(result.records.size());
  return result;
}

std::vector<JournalRecord> Journal::replay(const std::string& path) {
  return scan(path).records;
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  const JournalScan s = scan(path_);
  if (s.total_bytes == 0) {
    write_header(1);
    base_seq_ = 1;
    next_seq_ = 1;
    return;
  }
  if (s.tail_torn) {
    std::filesystem::resize_file(path_, s.valid_bytes);
    repaired_bytes_ = s.total_bytes - s.valid_bytes;
    JournalMetrics::get().repaired.inc(repaired_bytes_);
    MPCBF_LOG_WARN("journal.tail_repaired", log::str("path", path_),
                   log::u64("truncated_bytes", repaired_bytes_),
                   log::u64("valid_bytes", s.valid_bytes),
                   log::u64("records_kept", s.records.size()));
  }
  base_seq_ = s.base_seq;
  next_seq_ = s.next_seq;
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("journal: cannot open for append: " + path_);
  }
}

void Journal::write_header(std::uint64_t base_seq) {
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("journal: cannot create: " + path_);
  }
  write_magic(out_, kMagic);
  write_pod<std::uint32_t>(out_, kVersion);
  write_pod<std::uint32_t>(out_, 0);  // reserved
  write_pod<std::uint64_t>(out_, base_seq);
  out_.flush();
  sync_file(path_);
  if (!out_) {
    throw std::runtime_error("journal: header write failed: " + path_);
  }
}

std::uint64_t Journal::append(JournalOp op, std::string_view key) {
  const std::uint64_t seq = next_seq_;
  append_at(seq, op, key);
  return seq;
}

void Journal::append_at(std::uint64_t seq, JournalOp op,
                        std::string_view key) {
  if (key.size() > kMaxKeyLen) {
    throw std::invalid_argument("journal: key too long");
  }
  if (seq < next_seq_) {
    throw std::invalid_argument("journal: sequence going backwards");
  }
  ChecksumWriter writer(out_);
  writer.write_pod<std::uint64_t>(seq);
  writer.write_pod<std::uint8_t>(static_cast<std::uint8_t>(op));
  writer.write_pod<std::uint32_t>(static_cast<std::uint32_t>(key.size()));
  writer.write(key.data(), key.size());
  write_pod<std::uint32_t>(out_, writer.crc());
  if (!out_) {
    throw std::runtime_error("journal: append failed: " + path_);
  }
  next_seq_ = seq + 1;
  JournalMetrics::get().appends.inc();
}

void Journal::flush(bool sync) {
  auto& m = JournalMetrics::get();
  const std::uint64_t t0 = metrics::kStatsEnabled ? metrics::now_ns() : 0;
  out_.flush();
  if (!out_) {
    throw std::runtime_error("journal: flush failed: " + path_);
  }
  if (sync) {
    MPCBF_TRACE_SPAN(span, kIo, "journal.fsync");
    sync_file(path_);
    m.syncs.inc();
  }
  m.flushes.inc();
  if (metrics::kStatsEnabled) m.flush_ns.record(metrics::now_ns() - t0);
}

void Journal::reset(std::uint64_t base_seq) {
  write_header(base_seq);
  base_seq_ = base_seq;
  next_seq_ = base_seq;
  repaired_bytes_ = 0;
  JournalMetrics::get().resets.inc();
}

}  // namespace mpcbf::io
