// Minimal binary (de)serialization helpers for filter persistence.
//
// Format conventions: little-endian PODs written byte-for-byte (all
// supported targets are little-endian; a static_assert guards the
// assumption), strings as u64 length + bytes, containers as u64 count +
// elements. Readers validate as they go and throw std::runtime_error on
// truncation or corruption — a filter must never load into a silently
// broken state.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace mpcbf::io {

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host");

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!is) {
    throw std::runtime_error("binary read: truncated stream");
  }
  return value;
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& is, std::uint64_t max_len) {
  const auto len = read_pod<std::uint64_t>(is);
  if (len > max_len) {
    throw std::runtime_error("binary read: string length out of range");
  }
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is) {
    throw std::runtime_error("binary read: truncated string");
  }
  return s;
}

template <typename T>
void write_pod_vector(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_pod_vector(std::istream& is, std::uint64_t max_count) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto count = read_pod<std::uint64_t>(is);
  if (count > max_count) {
    throw std::runtime_error("binary read: vector length out of range");
  }
  std::vector<T> v(count);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!is) {
    throw std::runtime_error("binary read: truncated vector");
  }
  return v;
}

/// Writes/checks a 8-byte magic tag; mismatch throws with both tags in
/// the message.
inline void write_magic(std::ostream& os, const char (&magic)[9]) {
  os.write(magic, 8);
}

inline void expect_magic(std::istream& is, const char (&magic)[9]) {
  char buf[9] = {};
  is.read(buf, 8);
  if (!is || std::memcmp(buf, magic, 8) != 0) {
    throw std::runtime_error(std::string("binary read: expected magic '") +
                             magic + "', got '" + buf + "'");
  }
}

}  // namespace mpcbf::io
