// Append-only write-ahead op journal for durable filters.
//
// A journal file is a fixed header followed by a sequence of records:
//
//   header:  magic "MPCBJNL1" (8) | version u32 | reserved u32 | base_seq u64
//   record:  seq u64 | op u8 | key_len u32 | key bytes | crc32c u32
//
// The record CRC covers seq..key bytes. Records carry strictly
// increasing sequence numbers starting at or above the header's
// base_seq; a snapshot that compacts the journal rewrites the header
// with the next sequence number, so replay after a crash between
// snapshot-rename and journal-truncate can tell already-applied records
// apart (they fall at or below the snapshot's watermark). A flat
// filter's journal numbers records consecutively (append()); the
// per-shard WALs of a sharded server share one global sequence counter,
// so each shard's file holds a strictly increasing but *gappy*
// subsequence (append_at()) — the union across shards is the
// consecutive stream.
//
// Torn-tail semantics: a crash mid-append leaves a partial or
// CRC-broken record at the end of the file. open() replays the longest
// valid prefix — every record must parse, CRC-check, and carry a
// sequence number no lower than expected — and physically truncates
// whatever follows. A corrupted *header* is not repairable and throws:
// silently treating it as empty would forget acknowledged writes.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace mpcbf::io {

enum class JournalOp : std::uint8_t {
  kInsert = 0,
  kErase = 1,
  /// Topology records (ElasticMpcbf): the key field carries an encoded
  /// segment descriptor, not a filter key. Consumers that only
  /// understand keyed ops must reject these rather than misapply them.
  kSegmentAdd = 2,
  kSegmentRetire = 3,
  /// Decay-tick record (DecayingMpcbf): the key field carries the LE u64
  /// tick ordinal. Replay rotates the sliding window exactly where the
  /// live filter did, so recovery is byte-identical; like the topology
  /// ops, keyed-only consumers must reject it.
  kDecayTick = 4,
};

/// Highest op value scan() accepts; anything above is a corrupt tail.
inline constexpr std::uint8_t kMaxJournalOp =
    static_cast<std::uint8_t>(JournalOp::kDecayTick);

struct JournalRecord {
  std::uint64_t seq = 0;
  JournalOp op = JournalOp::kInsert;
  std::string key;

  friend bool operator==(const JournalRecord&,
                         const JournalRecord&) = default;
};

/// Result of scanning a journal file without modifying it.
struct JournalScan {
  std::vector<JournalRecord> records;  ///< longest valid prefix
  std::uint64_t base_seq = 1;          ///< header watermark
  std::uint64_t next_seq = 1;          ///< last record's seq + 1 (or base_seq)
  std::uint64_t valid_bytes = 0;       ///< offset where the valid prefix ends
  std::uint64_t total_bytes = 0;       ///< physical file size
  bool tail_torn = false;              ///< bytes past valid_bytes existed
};

class Journal {
 public:
  static constexpr char kMagic[9] = "MPCBJNL1";
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint64_t kMaxKeyLen = 1ull << 20;
  static constexpr std::uint64_t kHeaderBytes = 8 + 4 + 4 + 8;

  /// Opens (or creates) the journal at `path` for appending. An existing
  /// file has its tail repaired: the longest valid record prefix is kept
  /// and trailing garbage truncated. Throws std::runtime_error if the
  /// header itself is corrupt.
  explicit Journal(std::string path);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one record and returns its sequence number. Buffered; call
  /// flush() to make it durable.
  std::uint64_t append(JournalOp op, std::string_view key);

  /// Appends one record under an externally assigned sequence number —
  /// the sharded server's per-shard WALs draw from one global counter,
  /// so a shard file advances in strictly increasing but non-contiguous
  /// steps. `seq` must be >= next_seq(); going backwards would break the
  /// monotonicity the scanner (and replication) rely on.
  void append_at(std::uint64_t seq, JournalOp op, std::string_view key);

  /// Flushes buffered appends to the OS; with `sync`, fsyncs to stable
  /// storage as well.
  void flush(bool sync);

  /// Truncates the journal to an empty record set with a fresh
  /// `base_seq` watermark (called after a snapshot has captured all
  /// records below it). Durable before return.
  void reset(std::uint64_t base_seq);

  /// Sequence number the next append will get.
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  [[nodiscard]] std::uint64_t base_seq() const noexcept { return base_seq_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Bytes discarded by tail repair at open time (diagnostics).
  [[nodiscard]] std::uint64_t repaired_bytes() const noexcept {
    return repaired_bytes_;
  }

  /// Scans `path` read-only: parses the header (throws if corrupt) and
  /// returns the longest valid record prefix. A missing or empty file
  /// scans as an empty journal with base_seq 1.
  static JournalScan scan(const std::string& path);

  /// Convenience: scan().records.
  static std::vector<JournalRecord> replay(const std::string& path);

 private:
  void write_header(std::uint64_t base_seq);

  std::string path_;
  std::ofstream out_;
  std::uint64_t base_seq_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t repaired_bytes_ = 0;
};

}  // namespace mpcbf::io
