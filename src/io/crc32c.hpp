// CRC32C (Castagnoli) and the framed container format every snapshot in
// this repository is wrapped in.
//
// The polynomial (0x1EDC6F41, reflected 0x82F63B78) is the one iSCSI,
// ext4 and LevelDB use — chosen over CRC32 (Ethernet) for its better
// Hamming distance at the block sizes filters serialize to. The
// implementation is software slice-by-8: eight table lookups per 8 input
// bytes, ~1 byte/cycle, no SSE4.2 dependency so the same bytes verify on
// any host a snapshot is shipped to.
//
// Frame format v2 (docs/persistence.md has the byte-level spec):
//
//   offset  size  field
//   0       8     frame magic "MPCBFRM2"
//   8       4     format version (u32, currently 2)
//   12      8     payload length in bytes (u64)
//   20      4     CRC32C of the payload bytes (u32)
//   24      len   payload (starts with the wrapped type's own magic)
//
// Writers buffer the payload to compute its CRC before emitting the
// header; readers verify length and CRC before handing a single payload
// byte to a parser, so corrupt snapshots are rejected up front instead
// of half-deserialized. v1 streams (no frame, payload only) remain
// loadable: loaders dispatch on the leading 8-byte magic.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "io/binary.hpp"

namespace mpcbf::io {

namespace detail {

/// 8 slice tables, built once at first use (constexpr-buildable, but a
/// function-local static keeps header-only usage ODR-clean and lazy).
inline const std::array<std::array<std::uint32_t, 256>, 8>& crc32c_tables() {
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace detail

/// Incremental CRC32C accumulator (slice-by-8).
class Crc32c {
 public:
  void update(const void* data, std::size_t len) noexcept {
    const auto& t = detail::crc32c_tables();
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t crc = state_;
    while (len >= 8) {
      std::uint64_t chunk;
      std::memcpy(&chunk, p, 8);
      chunk ^= crc;
      crc = t[7][chunk & 0xFF] ^ t[6][(chunk >> 8) & 0xFF] ^
            t[5][(chunk >> 16) & 0xFF] ^ t[4][(chunk >> 24) & 0xFF] ^
            t[3][(chunk >> 32) & 0xFF] ^ t[2][(chunk >> 40) & 0xFF] ^
            t[1][(chunk >> 48) & 0xFF] ^ t[0][(chunk >> 56) & 0xFF];
      p += 8;
      len -= 8;
    }
    while (len-- > 0) {
      crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    }
    state_ = crc;
  }

  void reset() noexcept { state_ = ~std::uint32_t{0}; }

  /// Finalized (inverted) CRC of everything updated so far; the
  /// accumulator stays usable for further updates.
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }

 private:
  std::uint32_t state_ = ~std::uint32_t{0};
};

/// One-shot CRC32C of a buffer.
[[nodiscard]] inline std::uint32_t crc32c(const void* data, std::size_t len) {
  Crc32c c;
  c.update(data, len);
  return c.value();
}

[[nodiscard]] inline std::uint32_t crc32c(std::string_view s) {
  return crc32c(s.data(), s.size());
}

/// Ostream adapter that forwards writes while accumulating their CRC32C
/// — lets record writers emit payload bytes once and append the checksum
/// without buffering.
class ChecksumWriter {
 public:
  explicit ChecksumWriter(std::ostream& os) : os_(os) {}

  void write(const void* data, std::size_t len) {
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(len));
    crc_.update(data, len);
    bytes_ += len;
  }

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(&value, sizeof value);
  }

  [[nodiscard]] std::uint32_t crc() const noexcept { return crc_.value(); }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_;
  }

 private:
  std::ostream& os_;
  Crc32c crc_;
  std::uint64_t bytes_ = 0;
};

/// Istream adapter that accumulates the CRC32C of everything read, so a
/// parser can consume a record and then compare against a stored
/// checksum. Throws on truncation like read_pod.
class ChecksumReader {
 public:
  explicit ChecksumReader(std::istream& is) : is_(is) {}

  void read(void* data, std::size_t len) {
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
    if (!is_) {
      throw std::runtime_error("checksum read: truncated stream");
    }
    crc_.update(data, len);
    bytes_ += len;
  }

  template <typename T>
  [[nodiscard]] T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read(&value, sizeof value);
    return value;
  }

  [[nodiscard]] std::uint32_t crc() const noexcept { return crc_.value(); }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept { return bytes_; }

 private:
  std::istream& is_;
  Crc32c crc_;
  std::uint64_t bytes_ = 0;
};

// --- framed container (snapshot format v2) --------------------------------

inline constexpr char kFrameMagic[9] = "MPCBFRM2";
inline constexpr std::uint32_t kFrameVersion = 2;
/// Upper bound on a frame payload; anything larger is rejected before
/// allocation (hostile length fields must not become allocation bombs).
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 31;

/// Wraps `payload` in a v2 frame: magic, version, length, CRC32C,
/// payload bytes.
inline void write_frame(std::ostream& os, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error("write_frame: payload too large");
  }
  write_magic(os, kFrameMagic);
  write_pod<std::uint32_t>(os, kFrameVersion);
  write_pod<std::uint64_t>(os, payload.size());
  write_pod<std::uint32_t>(os, crc32c(payload));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

/// Reads the remainder of a v2 frame after its 8-byte magic has been
/// consumed, verifies version, length and CRC, and returns the payload.
/// Throws std::runtime_error on any mismatch — no payload byte reaches a
/// parser unless the whole frame checks out.
inline std::string read_frame_payload_after_magic(std::istream& is) {
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kFrameVersion) {
    throw std::runtime_error("frame read: unsupported format version " +
                             std::to_string(version));
  }
  const auto len = read_pod<std::uint64_t>(is);
  if (len > kMaxFramePayload) {
    throw std::runtime_error("frame read: payload length out of range");
  }
  const auto stored_crc = read_pod<std::uint32_t>(is);
  std::string payload(len, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(len));
  if (!is) {
    throw std::runtime_error("frame read: truncated payload");
  }
  if (crc32c(payload) != stored_crc) {
    throw std::runtime_error("frame read: payload CRC mismatch");
  }
  return payload;
}

/// Reads a whole frame (magic included) and returns the verified payload.
inline std::string read_frame(std::istream& is) {
  expect_magic(is, kFrameMagic);
  return read_frame_payload_after_magic(is);
}

/// Reads an 8-byte magic tag without interpreting it — loaders use this
/// to dispatch between the v2 frame and legacy v1 payloads.
inline std::array<char, 8> read_raw_magic(std::istream& is) {
  std::array<char, 8> m{};
  is.read(m.data(), 8);
  if (!is) {
    throw std::runtime_error("binary read: truncated magic");
  }
  return m;
}

[[nodiscard]] inline bool magic_equals(const std::array<char, 8>& m,
                                       const char (&tag)[9]) noexcept {
  return std::memcmp(m.data(), tag, 8) == 0;
}

}  // namespace mpcbf::io
