#include "workload/string_sets.hpp"

#include <stdexcept>
#include <unordered_set>

#include "common/rng.hpp"

namespace mpcbf::workload {
namespace {

constexpr char kAlphabet[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
constexpr std::size_t kAlphabetSize = 52;

std::string random_string(util::Xoshiro256& rng, std::size_t length) {
  std::string s(length, '\0');
  for (auto& c : s) {
    c = kAlphabet[rng.bounded(kAlphabetSize)];
  }
  return s;
}

}  // namespace

std::vector<std::string> generate_unique_strings(std::size_t count,
                                                 std::size_t length,
                                                 std::uint64_t seed) {
  // Guard against impossible requests (52^length distinct strings exist).
  double space = 1.0;
  for (std::size_t i = 0; i < length && space < 1e18; ++i) {
    space *= static_cast<double>(kAlphabetSize);
  }
  if (static_cast<double>(count) > space * 0.5) {
    throw std::invalid_argument(
        "generate_unique_strings: count too large for string length");
  }

  util::Xoshiro256 rng(seed);
  std::unordered_set<std::string> seen;
  seen.reserve(count * 2);
  std::vector<std::string> out;
  out.reserve(count);
  while (out.size() < count) {
    std::string s = random_string(rng, length);
    if (seen.insert(s).second) {
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::size_t QuerySet::member_count() const {
  std::size_t c = 0;
  for (const bool b : is_member) {
    if (b) ++c;
  }
  return c;
}

QuerySet build_query_set(const std::vector<std::string>& members,
                         std::size_t total, double member_fraction,
                         std::uint64_t seed) {
  if (members.empty() && member_fraction > 0.0) {
    throw std::invalid_argument("build_query_set: no members to sample");
  }
  util::Xoshiro256 rng(seed);
  std::unordered_set<std::string> member_set(members.begin(), members.end());
  const std::size_t length = members.empty() ? 5 : members.front().size();

  QuerySet qs;
  qs.queries.reserve(total);
  qs.is_member.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    if (rng.uniform01() < member_fraction) {
      qs.queries.push_back(members[rng.bounded(members.size())]);
      qs.is_member.push_back(true);
    } else {
      std::string s = random_string(rng, length);
      while (member_set.contains(s)) {
        s = random_string(rng, length);
      }
      qs.queries.push_back(std::move(s));
      qs.is_member.push_back(false);
    }
  }
  return qs;
}

double measured_fpr(const QuerySet& qs, const std::vector<bool>& results) {
  if (results.size() != qs.queries.size()) {
    throw std::invalid_argument("measured_fpr: size mismatch");
  }
  std::size_t fp = 0;
  std::size_t non_members = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!qs.is_member[i]) {
      ++non_members;
      if (results[i]) ++fp;
    }
  }
  return non_members == 0
             ? 0.0
             : static_cast<double>(fp) / static_cast<double>(non_members);
}

}  // namespace mpcbf::workload
