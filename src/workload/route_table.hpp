// Synthetic IPv4 route table and lookup trace — the workload for the
// longest-prefix-matching application (the paper's refs. [4-6] motivate
// MPCBF with exactly this: "IP route lookup" on line cards).
//
// Prefix lengths follow the well-known BGP table shape (mass concentrated
// at /24 and /16-/22); lookup traces mix addresses that hit routes (drawn
// under existing prefixes) with misses, plus optional locality (repeated
// destinations), deterministically from a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpcbf::workload {

struct Route {
  std::uint32_t prefix = 0;   ///< network-order-agnostic host int, masked
  unsigned length = 0;        ///< 8..32
  std::uint32_t next_hop = 0;
};

struct RouteTableConfig {
  std::size_t num_routes = 50'000;
  std::uint64_t seed = 0x40075;
};

struct LookupTraceConfig {
  std::size_t num_lookups = 200'000;
  /// Fraction of lookups guaranteed to match some route.
  double hit_fraction = 0.8;
  std::uint64_t seed = 0x100C09;
};

class RouteTable {
 public:
  [[nodiscard]] static RouteTable generate(const RouteTableConfig& cfg);

  [[nodiscard]] const std::vector<Route>& routes() const noexcept {
    return routes_;
  }

  /// Reference LPM: linear scan over all routes, longest match. O(n) —
  /// the oracle the fast path is tested against.
  [[nodiscard]] const Route* lookup_reference(std::uint32_t addr) const;

  /// Addresses to look up, per LookupTraceConfig.
  [[nodiscard]] std::vector<std::uint32_t> make_lookup_trace(
      const LookupTraceConfig& cfg) const;

  /// Mask for a prefix length (len in 0..32).
  [[nodiscard]] static std::uint32_t mask_of(unsigned len) noexcept {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
  }

 private:
  std::vector<Route> routes_;
};

}  // namespace mpcbf::workload
