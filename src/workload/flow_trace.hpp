// Synthetic IPv4 flow trace — the stand-in for the CAIDA Equinix-Chicago
// 2011 traces of Sec. IV-D (see DESIGN.md §4 for the substitution
// rationale).
//
// The paper's trace has 5,585,633 packets over 292,363 unique 2-tuple
// (srcIP, dstIP) flows. What the filters actually observe is a stream of
// 8-byte flow keys with a heavy-tailed popularity profile; we reproduce
// that with a Zipf(s) flow-size distribution over uniformly random flow
// keys, guaranteeing the unique-flow count exactly (every flow appears at
// least once). Scale defaults to 1/8 of the paper for CI speed; the
// benches expose --full for paper-sized runs.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace mpcbf::workload {

struct FlowTraceConfig {
  std::uint64_t total_packets = 5'585'633 / 8;
  std::uint64_t unique_flows = 292'363 / 8;
  /// Zipf exponent of the flow-size distribution; ~1 matches the
  /// heavy-tailed shape of backbone traces.
  double zipf_s = 1.02;
  std::uint64_t seed = 0xCA1DA;

  [[nodiscard]] static FlowTraceConfig paper_scale() {
    return FlowTraceConfig{5'585'633, 292'363, 1.02, 0xCA1DA};
  }
};

/// A generated trace. Flow keys are 64-bit (srcIP << 32 | dstIP) values;
/// key_view() exposes the 8 raw bytes as the string_view the filters hash.
class FlowTrace {
 public:
  [[nodiscard]] static FlowTrace generate(const FlowTraceConfig& cfg);

  [[nodiscard]] const std::vector<std::uint64_t>& packets() const noexcept {
    return packets_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& unique_flows()
      const noexcept {
    return unique_;
  }

  /// The 8-byte key of packet i, viewing the stored integer in place.
  [[nodiscard]] std::string_view packet_key(std::size_t i) const noexcept {
    return key_view(packets_[i]);
  }

  [[nodiscard]] static std::string_view key_view(
      const std::uint64_t& flow) noexcept {
    return {reinterpret_cast<const char*>(&flow), sizeof(flow)};
  }

  /// Top-heavy sanity metric for tests: fraction of packets carried by the
  /// most popular `top` flows.
  [[nodiscard]] double head_fraction(std::size_t top) const;

 private:
  std::vector<std::uint64_t> packets_;
  std::vector<std::uint64_t> unique_;
};

}  // namespace mpcbf::workload
