// Update-period driver — the paper's churn protocol (Sec. IV-A): each
// period deletes a batch of random live elements from the filter and
// inserts the same number of fresh ones, keeping the live cardinality
// constant while exercising the delete path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace mpcbf::workload {

struct ChurnStats {
  std::size_t deletes = 0;
  std::size_t inserts = 0;
  std::size_t failed_inserts = 0;  ///< rejected by overflow policy
  std::size_t failed_deletes = 0;
};

/// Removes `batch` random elements of `live` from `filter` and inserts
/// `batch` replacements taken from `replacements` (consumed from
/// `replacement_cursor` onward). `live` is updated in place to remain the
/// ground-truth membership list.
///
/// Works with any filter exposing bool-or-void insert(string_view) and
/// erase(string_view).
template <typename Filter>
ChurnStats run_churn_round(Filter& filter, std::vector<std::string>& live,
                           const std::vector<std::string>& replacements,
                           std::size_t& replacement_cursor, std::size_t batch,
                           util::Xoshiro256& rng) {
  ChurnStats stats;
  for (std::size_t i = 0; i < batch && !live.empty(); ++i) {
    const std::size_t victim = rng.bounded(live.size());
    bool ok = true;
    if constexpr (std::is_void_v<decltype(filter.erase(live[victim]))>) {
      filter.erase(live[victim]);
    } else {
      ok = filter.erase(live[victim]);
    }
    if (!ok) ++stats.failed_deletes;
    ++stats.deletes;
    live[victim] = std::move(live.back());
    live.pop_back();
  }
  for (std::size_t i = 0;
       i < batch && replacement_cursor < replacements.size(); ++i) {
    const std::string& fresh = replacements[replacement_cursor++];
    bool ok = true;
    if constexpr (std::is_void_v<decltype(filter.insert(fresh))>) {
      filter.insert(fresh);
    } else {
      ok = filter.insert(fresh);
    }
    if (!ok) {
      ++stats.failed_inserts;
    }
    // Ground truth tracks what we *attempted* to keep live; a rejected
    // insert is excluded so FPR measurement stays exact.
    if (ok) live.push_back(fresh);
    ++stats.inserts;
  }
  return stats;
}

}  // namespace mpcbf::workload
