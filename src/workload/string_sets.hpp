// Synthetic string workloads — Sec. IV-A's "synthetic experiments".
//
// The paper synthesizes a test set of 100K unique five-byte strings over
// the alphabet [a-zA-Z] and a query set of 1M strings of which 80% are
// members; an update period deletes 20K members and inserts 20K fresh
// strings. These helpers generate exactly those artifacts, deterministically
// from a seed, with every size configurable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpcbf::workload {

/// `count` distinct strings of `length` characters drawn uniformly from
/// [a-zA-Z]. Uniqueness is guaranteed (duplicates are redrawn).
[[nodiscard]] std::vector<std::string> generate_unique_strings(
    std::size_t count, std::size_t length, std::uint64_t seed);

struct QuerySet {
  std::vector<std::string> queries;
  /// Ground truth per query: true iff queries[i] is a member of the test
  /// set the query set was built against.
  std::vector<bool> is_member;

  [[nodiscard]] std::size_t member_count() const;
  [[nodiscard]] std::size_t non_member_count() const {
    return queries.size() - member_count();
  }
};

/// Builds a query set of `total` strings: `member_fraction` of them are
/// sampled (with repetition) from `members`, the rest are fresh strings of
/// the same length guaranteed not to collide with `members`.
[[nodiscard]] QuerySet build_query_set(const std::vector<std::string>& members,
                                       std::size_t total,
                                       double member_fraction,
                                       std::uint64_t seed);

/// Measured false positive rate: fraction of non-member queries a filter
/// answered positively. `results[i]` is the filter's verdict on
/// `qs.queries[i]`.
[[nodiscard]] double measured_fpr(const QuerySet& qs,
                                  const std::vector<bool>& results);

/// Convenience: run `filter.contains` over the whole query set, verify
/// there are no false negatives (aborting the experiment loudly if the
/// filter is broken), and return the measured FPR.
template <typename Filter>
double evaluate_fpr(const Filter& filter, const QuerySet& qs,
                    std::size_t* false_negatives = nullptr) {
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t non_members = 0;
  for (std::size_t i = 0; i < qs.queries.size(); ++i) {
    const bool hit = filter.contains(qs.queries[i]);
    if (qs.is_member[i]) {
      if (!hit) ++fn;
    } else {
      ++non_members;
      if (hit) ++fp;
    }
  }
  if (false_negatives != nullptr) {
    *false_negatives = fn;
  }
  return non_members == 0 ? 0.0
                          : static_cast<double>(fp) /
                                static_cast<double>(non_members);
}

}  // namespace mpcbf::workload
