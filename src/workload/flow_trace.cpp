#include "workload/flow_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"

namespace mpcbf::workload {

FlowTrace FlowTrace::generate(const FlowTraceConfig& cfg) {
  if (cfg.unique_flows == 0 || cfg.total_packets < cfg.unique_flows) {
    throw std::invalid_argument(
        "FlowTrace: need total_packets >= unique_flows >= 1");
  }
  util::Xoshiro256 rng(cfg.seed);
  FlowTrace trace;

  // Distinct random flow keys (src<<32 | dst). Collisions at these sizes
  // are rare but handled.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(cfg.unique_flows * 2);
  trace.unique_.reserve(cfg.unique_flows);
  while (trace.unique_.size() < cfg.unique_flows) {
    const std::uint64_t flow = rng.next();
    if (seen.insert(flow).second) {
      trace.unique_.push_back(flow);
    }
  }

  // Zipf(s) popularity over flow ranks: cumulative table + binary search
  // per draw. Rank 0 is the most popular flow.
  std::vector<double> cdf(cfg.unique_flows);
  double total = 0.0;
  for (std::uint64_t r = 0; r < cfg.unique_flows; ++r) {
    total += std::pow(static_cast<double>(r + 1), -cfg.zipf_s);
    cdf[r] = total;
  }
  for (auto& c : cdf) c /= total;

  trace.packets_.reserve(cfg.total_packets);
  // Every flow appears at least once so the unique count is exact.
  for (const std::uint64_t flow : trace.unique_) {
    trace.packets_.push_back(flow);
  }
  const std::uint64_t remaining = cfg.total_packets - cfg.unique_flows;
  for (std::uint64_t i = 0; i < remaining; ++i) {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto rank = static_cast<std::size_t>(it - cdf.begin());
    trace.packets_.push_back(trace.unique_[std::min(
        rank, trace.unique_.size() - 1)]);
  }

  // Interleave repeats with first occurrences as a real trace would.
  std::shuffle(trace.packets_.begin(), trace.packets_.end(), rng);
  return trace;
}

double FlowTrace::head_fraction(std::size_t top) const {
  if (packets_.empty()) return 0.0;
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  counts.reserve(unique_.size() * 2);
  for (const auto p : packets_) ++counts[p];
  std::vector<std::uint64_t> sizes;
  sizes.reserve(counts.size());
  for (const auto& [flow, c] : counts) sizes.push_back(c);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  std::uint64_t head = 0;
  for (std::size_t i = 0; i < std::min(top, sizes.size()); ++i) {
    head += sizes[i];
  }
  return static_cast<double>(head) / static_cast<double>(packets_.size());
}

}  // namespace mpcbf::workload
