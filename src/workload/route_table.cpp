#include "workload/route_table.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/rng.hpp"

namespace mpcbf::workload {
namespace {

// BGP-like prefix-length distribution: cumulative per-mille thresholds
// for lengths 8..32, dominated by /24 (~55%) with mass at /16..{/22,/23}.
struct LengthBucket {
  unsigned length;
  unsigned permille;  // cumulative
};

constexpr LengthBucket kLengthCdf[] = {
    {8, 5},    {10, 10},  {12, 20},  {14, 35},  {16, 120}, {17, 150},
    {18, 190}, {19, 260}, {20, 330}, {21, 400}, {22, 480}, {23, 440 + 110},
    {24, 990}, {28, 995}, {32, 1000},
};

unsigned draw_length(util::Xoshiro256& rng) {
  const auto p = static_cast<unsigned>(rng.bounded(1000));
  for (const auto& bucket : kLengthCdf) {
    if (p < bucket.permille) return bucket.length;
  }
  return 24;
}

}  // namespace

RouteTable RouteTable::generate(const RouteTableConfig& cfg) {
  if (cfg.num_routes == 0) {
    throw std::invalid_argument("RouteTable: need at least one route");
  }
  util::Xoshiro256 rng(cfg.seed);
  RouteTable table;
  table.routes_.reserve(cfg.num_routes);
  std::unordered_set<std::uint64_t> seen;  // (prefix, length) pairs
  seen.reserve(cfg.num_routes * 2);
  while (table.routes_.size() < cfg.num_routes) {
    const unsigned len = draw_length(rng);
    const auto addr = static_cast<std::uint32_t>(rng.next());
    const std::uint32_t prefix = addr & mask_of(len);
    const std::uint64_t id =
        (static_cast<std::uint64_t>(prefix) << 6) | len;
    if (!seen.insert(id).second) continue;
    Route r;
    r.prefix = prefix;
    r.length = len;
    r.next_hop = static_cast<std::uint32_t>(rng.bounded(256));
    table.routes_.push_back(r);
  }
  return table;
}

const Route* RouteTable::lookup_reference(std::uint32_t addr) const {
  const Route* best = nullptr;
  for (const auto& r : routes_) {
    if ((addr & mask_of(r.length)) == r.prefix &&
        (best == nullptr || r.length > best->length)) {
      best = &r;
    }
  }
  return best;
}

std::vector<std::uint32_t> RouteTable::make_lookup_trace(
    const LookupTraceConfig& cfg) const {
  util::Xoshiro256 rng(cfg.seed);
  std::vector<std::uint32_t> trace;
  trace.reserve(cfg.num_lookups);
  for (std::size_t i = 0; i < cfg.num_lookups; ++i) {
    if (rng.uniform01() < cfg.hit_fraction && !routes_.empty()) {
      // An address under a random existing prefix.
      const Route& r = routes_[rng.bounded(routes_.size())];
      const std::uint32_t host_bits =
          static_cast<std::uint32_t>(rng.next()) & ~mask_of(r.length);
      trace.push_back(r.prefix | host_bits);
    } else {
      trace.push_back(static_cast<std::uint32_t>(rng.next()));
    }
  }
  return trace;
}

}  // namespace mpcbf::workload
