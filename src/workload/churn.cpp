#include "workload/churn.hpp"

// run_churn_round is a template; this translation unit anchors the header
// in the library build.
namespace mpcbf::workload {}
