#include "workload/patent_data.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace mpcbf::workload {
namespace {

// NBER patent ids are 7-digit numbers; keep primary keys and miss keys in
// disjoint ranges so the ground truth is exact without a lookup table.
constexpr std::uint64_t kPrimaryBase = 3'000'000;
constexpr std::uint64_t kMissBase = 8'000'000;
constexpr std::uint64_t kMissRange = 1'000'000;

std::string patent_id(std::uint64_t n) { return std::to_string(n); }

}  // namespace

PatentData PatentData::generate(const PatentDataConfig& cfg) {
  if (cfg.num_patents == 0) {
    throw std::invalid_argument("PatentData: need at least one patent");
  }
  if (cfg.hit_fraction < 0.0 || cfg.hit_fraction > 1.0) {
    throw std::invalid_argument("PatentData: hit_fraction out of [0,1]");
  }
  util::Xoshiro256 rng(cfg.seed);
  PatentData data;

  data.patents.reserve(cfg.num_patents);
  for (std::uint64_t i = 0; i < cfg.num_patents; ++i) {
    PatentRecord rec;
    rec.id = patent_id(kPrimaryBase + i);
    // Synthetic attributes in the spirit of pat63_99.txt columns:
    // grant year, country, number of claims.
    rec.attrs = std::to_string(1963 + rng.bounded(37)) + ",US," +
                std::to_string(1 + rng.bounded(40));
    data.patents.push_back(std::move(rec));
  }

  data.citations.reserve(cfg.num_citations);
  data.citation_hits.reserve(cfg.num_citations);
  for (std::uint64_t i = 0; i < cfg.num_citations; ++i) {
    CitationRecord rec;
    rec.citing = patent_id(kPrimaryBase + rng.bounded(cfg.num_patents));
    const bool hit = rng.uniform01() < cfg.hit_fraction;
    if (hit) {
      rec.cited = patent_id(kPrimaryBase + rng.bounded(cfg.num_patents));
    } else {
      rec.cited = patent_id(kMissBase + rng.bounded(kMissRange));
    }
    data.citations.push_back(std::move(rec));
    data.citation_hits.push_back(hit);
  }
  return data;
}

std::size_t PatentData::hit_count() const {
  std::size_t c = 0;
  for (const bool b : citation_hits) {
    if (b) ++c;
  }
  return c;
}

}  // namespace mpcbf::workload
