// Synthetic NBER-like patent data — the stand-in for cite75_99.txt /
// pat63_99.txt used by the paper's MapReduce reduce-side join (Sec. V).
// See DESIGN.md §4: the join's behaviour depends on the record counts and
// the fraction of citation records whose cited patent hits the primary key
// set, both of which are configurable here; the paper's full scale
// (71,661 keys, 16,522,438 citations) is available via paper_scale().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpcbf::workload {

struct PatentDataConfig {
  std::uint64_t num_patents = 71'661;
  std::uint64_t num_citations = 16'522'438 / 16;
  /// Fraction of citations whose cited patent is in the patents table
  /// (i.e., the fraction of map outputs a perfect filter would keep).
  double hit_fraction = 0.45;
  std::uint64_t seed = 0x9A7E47;

  [[nodiscard]] static PatentDataConfig paper_scale() {
    return PatentDataConfig{71'661, 16'522'438, 0.45, 0x9A7E47};
  }
};

/// One record of each input file.
struct PatentRecord {
  std::string id;       ///< 7-digit patent number, the join key
  std::string attrs;    ///< synthetic attribute payload (grant year etc.)
};

struct CitationRecord {
  std::string citing;   ///< citing patent id
  std::string cited;    ///< cited patent id, the join key probed by filters
};

struct PatentData {
  std::vector<PatentRecord> patents;
  std::vector<CitationRecord> citations;
  /// Ground truth: citations[i].cited is in the patents table.
  std::vector<bool> citation_hits;

  [[nodiscard]] static PatentData generate(const PatentDataConfig& cfg);

  [[nodiscard]] std::size_t hit_count() const;
};

}  // namespace mpcbf::workload
