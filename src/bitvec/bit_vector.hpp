// Packed bit vector — the membership vector of the plain Bloom filter and
// the per-word layout unit of the blocked (BF-1/BF-g) filters.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpcbf::bits {

class BitVector {
 public:
  BitVector() = default;

  explicit BitVector(std::size_t num_bits)
      : num_bits_(num_bits), limbs_((num_bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return num_bits_; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    assert(i < num_bits_);
    return (limbs_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i) noexcept {
    assert(i < num_bits_);
    limbs_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void clear(std::size_t i) noexcept {
    assert(i < num_bits_);
    limbs_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void reset() noexcept {
    for (auto& l : limbs_) l = 0;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (auto l : limbs_) c += static_cast<std::size_t>(std::popcount(l));
    return c;
  }

  /// Fill ratio (set bits / total bits); the quantity the Bloom FPR
  /// formula (1 - e^{-kn/m})^k estimates.
  [[nodiscard]] double fill_ratio() const noexcept {
    return num_bits_ == 0
               ? 0.0
               : static_cast<double>(count()) / static_cast<double>(num_bits_);
  }

  /// Memory footprint of the payload in bits (what the paper calls
  /// "memory consumption").
  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return limbs_.size() * 64;
  }

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> limbs_;
};

}  // namespace mpcbf::bits
