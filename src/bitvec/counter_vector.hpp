// Packed c-bit saturating counter vector — the membership structure of the
// standard CBF and of the partitioned PCBF baselines.
//
// Counters saturate at 2^c - 1 on increment; a saturated counter is never
// decremented (the standard CBF overflow discipline: once a counter sticks
// at max it stays there, trading a permanent false-positive contribution
// for never producing a false negative). Saturation events are counted so
// experiments can report them.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace mpcbf::bits {

class CounterVector {
 public:
  CounterVector() = default;

  /// `num_counters` counters of `bits_per_counter` (1..16) bits each.
  CounterVector(std::size_t num_counters, unsigned bits_per_counter)
      : num_counters_(num_counters),
        bits_(bits_per_counter),
        max_value_((std::uint32_t{1} << bits_per_counter) - 1),
        limbs_((num_counters * bits_per_counter + 63) / 64, 0) {
    assert(bits_per_counter >= 1 && bits_per_counter <= 16);
  }

  [[nodiscard]] std::size_t size() const noexcept { return num_counters_; }
  [[nodiscard]] unsigned bits_per_counter() const noexcept { return bits_; }
  [[nodiscard]] std::uint32_t max_value() const noexcept { return max_value_; }

  [[nodiscard]] std::uint32_t get(std::size_t i) const noexcept {
    assert(i < num_counters_);
    const std::size_t bit = i * bits_;
    const std::size_t limb = bit >> 6;
    const unsigned off = bit & 63;
    std::uint64_t v = limbs_[limb] >> off;
    if (off + bits_ > 64) {
      v |= limbs_[limb + 1] << (64 - off);
    }
    return static_cast<std::uint32_t>(v) & max_value_;
  }

  void set(std::size_t i, std::uint32_t value) noexcept {
    assert(i < num_counters_ && value <= max_value_);
    const std::size_t bit = i * bits_;
    const std::size_t limb = bit >> 6;
    const unsigned off = bit & 63;
    const std::uint64_t mask = static_cast<std::uint64_t>(max_value_) << off;
    limbs_[limb] = (limbs_[limb] & ~mask) |
                   (static_cast<std::uint64_t>(value) << off);
    if (off + bits_ > 64) {
      const unsigned spill = off + bits_ - 64;
      const std::uint64_t hi_mask = (std::uint64_t{1} << spill) - 1;
      limbs_[limb + 1] = (limbs_[limb + 1] & ~hi_mask) |
                         (static_cast<std::uint64_t>(value) >> (bits_ - spill));
    }
  }

  /// Saturating increment; returns the new value. Records a saturation
  /// event when the counter was already at max.
  std::uint32_t increment(std::size_t i) noexcept {
    const std::uint32_t v = get(i);
    if (v == max_value_) {
      ++saturations_;
      return v;
    }
    set(i, v + 1);
    return v + 1;
  }

  /// Decrement honoring the saturation discipline: a counter at max is
  /// left untouched, a counter at zero reports underflow via the return
  /// value (false) and is left at zero.
  bool decrement(std::size_t i) noexcept {
    const std::uint32_t v = get(i);
    if (v == max_value_) return true;  // sticky — see class comment
    if (v == 0) {
      ++underflows_;
      return false;
    }
    set(i, v - 1);
    return true;
  }

  void reset() noexcept {
    for (auto& l : limbs_) l = 0;
    saturations_ = 0;
    underflows_ = 0;
  }

  [[nodiscard]] std::uint64_t saturations() const noexcept {
    return saturations_;
  }
  [[nodiscard]] std::uint64_t underflows() const noexcept {
    return underflows_;
  }

  /// Counters currently non-zero.
  [[nodiscard]] std::size_t nonzero_count() const noexcept;

  [[nodiscard]] std::size_t memory_bits() const noexcept {
    return num_counters_ * bits_;
  }

  /// Binary persistence (layout + payload + saturation/underflow counts).
  void save(std::ostream& os) const;
  static CounterVector load(std::istream& is);

 private:
  std::size_t num_counters_ = 0;
  unsigned bits_ = 4;
  std::uint32_t max_value_ = 15;
  std::vector<std::uint64_t> limbs_;
  std::uint64_t saturations_ = 0;
  std::uint64_t underflows_ = 0;
};

}  // namespace mpcbf::bits
