// WordBitset<W> — a fixed-width bitset with *positional insertion and
// removal*, the mutation primitive of the hierarchical CBF.
//
// The HCBF (Sec. III-B of the paper) packs variable-size hierarchy levels
// contiguously inside one machine word. Incrementing a counter inserts a
// zero bit at some position and shifts the tail right; decrementing removes
// a bit and shifts the tail left. This class provides exactly those
// operations on a W-bit value stored in ⌈W/64⌉ limbs, plus the ranged
// popcount the level traversal needs.
//
// Bit order: bit 0 is the least significant bit of limb 0. All bits at
// index >= W are maintained as zero (class invariant).
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>

namespace mpcbf::bits {

template <unsigned W>
class WordBitset {
  static_assert(W >= 8 && W <= 512, "word width out of supported range");

 public:
  static constexpr unsigned kBits = W;
  static constexpr unsigned kLimbs = (W + 63) / 64;

  constexpr WordBitset() noexcept : limbs_{} {}

  [[nodiscard]] constexpr bool test(unsigned i) const noexcept {
    assert(i < W);
    return (limbs_[i >> 6] >> (i & 63)) & 1;
  }

  constexpr void set(unsigned i) noexcept {
    assert(i < W);
    limbs_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  constexpr void clear(unsigned i) noexcept {
    assert(i < W);
    limbs_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  constexpr void reset() noexcept {
    for (auto& l : limbs_) l = 0;
  }

  /// Number of ones in [lo, hi).
  [[nodiscard]] constexpr unsigned popcount_range(unsigned lo,
                                                  unsigned hi) const noexcept {
    assert(lo <= hi && hi <= W);
    if (lo == hi) return 0;
    unsigned count = 0;
    unsigned limb_lo = lo >> 6;
    const unsigned limb_hi = (hi - 1) >> 6;
    for (unsigned j = limb_lo; j <= limb_hi; ++j) {
      std::uint64_t v = limbs_[j];
      if (j == limb_lo && (lo & 63) != 0) {
        v &= ~std::uint64_t{0} << (lo & 63);
      }
      if (j == limb_hi && (hi & 63) != 0) {
        v &= ~std::uint64_t{0} >> (64 - (hi & 63));
      }
      count += static_cast<unsigned>(std::popcount(v));
    }
    return count;
  }

  [[nodiscard]] constexpr unsigned count() const noexcept {
    unsigned c = 0;
    for (auto l : limbs_) c += static_cast<unsigned>(std::popcount(l));
    return c;
  }

  /// Inserts a zero bit at `pos`: bits [pos, W-1) move to [pos+1, W) and
  /// the previous bit W-1 is discarded. The HCBF guarantees that bit is
  /// unused before calling (capacity check happens a level up).
  constexpr void insert_zero_at(unsigned pos) noexcept {
    assert(pos < W);
    const unsigned limb_i = pos >> 6;
    const unsigned off = pos & 63;
    // Top-down so each limb reads its lower neighbour's original bit 63.
    for (unsigned j = kLimbs - 1; j > limb_i; --j) {
      limbs_[j] = (limbs_[j] << 1) | (limbs_[j - 1] >> 63);
    }
    const std::uint64_t keep_mask =
        off == 0 ? 0 : (~std::uint64_t{0} >> (64 - off));
    const std::uint64_t keep = limbs_[limb_i] & keep_mask;
    limbs_[limb_i] = keep | ((limbs_[limb_i] & ~keep_mask) << 1);
    mask_top();
  }

  /// Removes the bit at `pos`: bits (pos, W) move to [pos, W-1) and bit
  /// W-1 becomes zero. Returns the removed bit's value.
  constexpr bool remove_bit_at(unsigned pos) noexcept {
    assert(pos < W);
    const bool removed = test(pos);
    const unsigned limb_i = pos >> 6;
    const unsigned off = pos & 63;
    const std::uint64_t keep_mask =
        off == 0 ? 0 : (~std::uint64_t{0} >> (64 - off));
    std::uint64_t merged = (limbs_[limb_i] & keep_mask) |
                           ((limbs_[limb_i] >> 1) & ~keep_mask);
    if (limb_i + 1 < kLimbs) {
      merged = (merged & ~(std::uint64_t{1} << 63)) |
               ((limbs_[limb_i + 1] & 1) << 63);
    } else {
      merged &= ~(std::uint64_t{1} << 63);
    }
    limbs_[limb_i] = merged;
    for (unsigned j = limb_i + 1; j < kLimbs; ++j) {
      limbs_[j] >>= 1;
      if (j + 1 < kLimbs) {
        limbs_[j] |= (limbs_[j + 1] & 1) << 63;
      }
    }
    mask_top();
    return removed;
  }

  /// Raw limb access for the concurrent variant (W == 64 only) and tests.
  [[nodiscard]] constexpr std::uint64_t limb(unsigned j) const noexcept {
    return limbs_[j];
  }
  constexpr void set_limb(unsigned j, std::uint64_t v) noexcept {
    limbs_[j] = v;
    mask_top();
  }

  friend constexpr bool operator==(const WordBitset&,
                                   const WordBitset&) noexcept = default;

  /// "0101..." with bit 0 leftmost — matches how the paper's Fig. 3 reads.
  [[nodiscard]] std::string to_string() const {
    std::string s;
    s.reserve(W);
    for (unsigned i = 0; i < W; ++i) s.push_back(test(i) ? '1' : '0');
    return s;
  }

 private:
  constexpr void mask_top() noexcept {
    constexpr unsigned rem = W & 63;
    if constexpr (rem != 0) {
      limbs_[kLimbs - 1] &= ~std::uint64_t{0} >> (64 - rem);
    }
  }

  std::array<std::uint64_t, kLimbs> limbs_;
};

}  // namespace mpcbf::bits
