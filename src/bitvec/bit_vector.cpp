#include "bitvec/bit_vector.hpp"

// BitVector is fully inline; this translation unit exists so the target has
// a home for future out-of-line additions and to anchor the header's
// compilation in the library build.
namespace mpcbf::bits {}
