#include "bitvec/counter_vector.hpp"

#include <stdexcept>

#include "io/binary.hpp"

namespace mpcbf::bits {

namespace {
constexpr char kMagic[9] = "MPCBCNT1";
}  // namespace

void CounterVector::save(std::ostream& os) const {
  io::write_magic(os, kMagic);
  io::write_pod<std::uint64_t>(os, num_counters_);
  io::write_pod<std::uint32_t>(os, bits_);
  io::write_pod<std::uint64_t>(os, saturations_);
  io::write_pod<std::uint64_t>(os, underflows_);
  io::write_pod_vector(os, limbs_);
}

CounterVector CounterVector::load(std::istream& is) {
  io::expect_magic(is, kMagic);
  const auto num_counters = io::read_pod<std::uint64_t>(is);
  const auto bits = io::read_pod<std::uint32_t>(is);
  if (bits < 1 || bits > 16) {
    throw std::runtime_error("CounterVector::load: bad counter width");
  }
  // Cap the allocation a hostile length field can trigger (2 GiB).
  constexpr std::uint64_t kMaxLimbs = (1ull << 31) / sizeof(std::uint64_t);
  if (num_counters > kMaxLimbs * 64 / bits) {  // overflow-safe form
    throw std::runtime_error("CounterVector::load: size out of range");
  }
  CounterVector v(num_counters, bits);
  v.saturations_ = io::read_pod<std::uint64_t>(is);
  v.underflows_ = io::read_pod<std::uint64_t>(is);
  auto limbs = io::read_pod_vector<std::uint64_t>(is, kMaxLimbs);
  if (limbs.size() != v.limbs_.size()) {
    throw std::runtime_error("CounterVector::load: payload size mismatch");
  }
  v.limbs_ = std::move(limbs);
  return v;
}

std::size_t CounterVector::nonzero_count() const noexcept {
  std::size_t c = 0;
  for (std::size_t i = 0; i < num_counters_; ++i) {
    if (get(i) != 0) ++c;
  }
  return c;
}

}  // namespace mpcbf::bits
