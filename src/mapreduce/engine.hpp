// In-process MapReduce engine — the Hadoop stand-in for the paper's Sec. V
// (see DESIGN.md §4).
//
// A Job runs the canonical three phases over a vector of input records:
//
//   map:     inputs are split into num_map_tasks chunks; each task runs the
//            user mapper, emitting (K2, V2) pairs into per-reducer buckets
//            selected by hash-partitioning on K2 (Hadoop's default
//            HashPartitioner);
//   shuffle: each reducer's buckets from all map tasks are concatenated and
//            sorted by key — the engine's analogue of Hadoop's fetch+merge,
//            with moved bytes accounted in JobCounters.shuffle_bytes;
//   reduce:  consecutive equal-key runs are handed to the user reducer.
//
// Map tasks and reduce partitions run on a shared ThreadPool. Counters
// mirror the Hadoop counters the paper's Table IV is stated in (map output
// records, phase wall-clock). The "DistributedCache" used to broadcast a
// Bloom filter to all mappers is simply a const object captured by the
// mapper closure — same semantics (read-only, visible to every map task).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "metrics/registry.hpp"
#include "trace/trace.hpp"

namespace mpcbf::mr {

struct JobConfig {
  unsigned num_map_tasks = 8;
  unsigned num_reducers = 4;
  unsigned threads = 0;  ///< 0 = hardware concurrency
};

struct JobCounters {
  std::uint64_t map_input_records = 0;
  std::uint64_t map_output_records = 0;
  std::uint64_t combine_output_records = 0;  ///< records after the combiner
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t reduce_input_groups = 0;
  std::uint64_t reduce_output_records = 0;
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;
  double total_seconds = 0.0;

  [[nodiscard]] std::string to_string() const;

  /// Mirrors the Hadoop-style counters into the process registry
  /// (mpcbf_mr_* series). Job::run() calls this once per job; call it
  /// yourself only for counters accumulated outside run().
  void publish(metrics::Registry& reg) const;
};

namespace detail {

/// Shuffle-byte estimate of a value: payload size for strings, object size
/// otherwise — enough to compare configurations, which is all Table IV
/// needs.
template <typename T>
std::uint64_t byte_size(const T& v) {
  if constexpr (requires { v.size(); v.data(); }) {
    return static_cast<std::uint64_t>(v.size());
  } else if constexpr (requires { v.byte_size(); }) {
    return v.byte_size();
  } else {
    return sizeof(T);
  }
}

}  // namespace detail

template <typename Input, typename K2, typename V2, typename Out>
class Job {
 public:
  /// Map-side emitter: partitions each pair to a reducer bucket.
  class Emitter {
   public:
    Emitter(std::vector<std::vector<std::pair<K2, V2>>>& buckets,
            std::uint64_t& records, std::uint64_t& bytes)
        : buckets_(buckets), records_(records), bytes_(bytes) {}

    void emit(K2 key, V2 value) {
      const std::size_t r = std::hash<K2>{}(key) % buckets_.size();
      ++records_;
      bytes_ += detail::byte_size(key) + detail::byte_size(value);
      buckets_[r].emplace_back(std::move(key), std::move(value));
    }

   private:
    std::vector<std::vector<std::pair<K2, V2>>>& buckets_;
    std::uint64_t& records_;
    std::uint64_t& bytes_;
  };

  /// Reduce-side collector. In count-only mode (materialize == false) the
  /// output records are counted but not stored — Table IV's paper-scale
  /// join produces tens of millions of rows that nobody reads back.
  class Collector {
   public:
    Collector(std::vector<Out>* sink, std::uint64_t& count)
        : sink_(sink), count_(count) {}

    void emit(Out value) {
      ++count_;
      if (sink_ != nullptr) sink_->push_back(std::move(value));
    }

   private:
    std::vector<Out>* sink_;
    std::uint64_t& count_;
  };

  using MapFn = std::function<void(const Input&, Emitter&)>;
  using ReduceFn =
      std::function<void(const K2&, const std::vector<V2>&, Collector&)>;
  /// Hadoop-style combiner: folds one key's map-local values into a
  /// single value before the shuffle (must be associative/commutative
  /// with respect to the reducer's semantics).
  using CombineFn = std::function<V2(const K2&, std::vector<V2>&&)>;

  Job(MapFn mapper, ReduceFn reducer, JobConfig cfg = {})
      : mapper_(std::move(mapper)),
        reducer_(std::move(reducer)),
        cfg_(cfg) {
    if (cfg_.num_map_tasks == 0) cfg_.num_map_tasks = 1;
    if (cfg_.num_reducers == 0) cfg_.num_reducers = 1;
  }

  /// Installs a combiner; call before run().
  void set_combiner(CombineFn combiner) { combiner_ = std::move(combiner); }

  /// Runs the job. When `materialize_output` is false the returned vector
  /// is empty and only counters report the output cardinality.
  std::vector<Out> run(const std::vector<Input>& inputs,
                       JobCounters& counters,
                       bool materialize_output = true) {
    // Callers accumulate across runs; the registry must only see this
    // run's contribution, so publish the before/after delta at the end.
    const JobCounters before = counters;
    MPCBF_TRACE_SPAN(job_span, kMapReduce, "mr.job");
    job_span.set_arg("inputs", inputs.size());
    util::Stopwatch total;
    const unsigned threads =
        cfg_.threads != 0 ? cfg_.threads
                          : static_cast<unsigned>(
                                util::ThreadPool::default_threads());
    util::ThreadPool pool(threads);

    const unsigned m = cfg_.num_map_tasks;
    const unsigned r = cfg_.num_reducers;

    // --- map ------------------------------------------------------------
    util::Stopwatch map_watch;
    // buckets[task][reducer] -> pairs
    std::vector<std::vector<std::vector<std::pair<K2, V2>>>> buckets(
        m, std::vector<std::vector<std::pair<K2, V2>>>(r));
    std::vector<std::uint64_t> task_records(m, 0);
    std::vector<std::uint64_t> task_bytes(m, 0);

    const std::size_t chunk = (inputs.size() + m - 1) / m;
    std::vector<std::uint64_t> task_combined(m, 0);
    {
      MPCBF_TRACE_SPAN(map_span, kMapReduce, "mr.map");
      map_span.set_arg("tasks", m);
      util::parallel_for(pool, m, [&](std::size_t t) {
      const std::size_t lo = t * chunk;
      const std::size_t hi = std::min(inputs.size(), lo + chunk);
      Emitter emitter(buckets[t], task_records[t], task_bytes[t]);
      for (std::size_t i = lo; i < hi; ++i) {
        mapper_(inputs[i], emitter);
      }
      if (combiner_) {
        // Map-local fold per reducer bucket: sort, group, combine each
        // key's values into one record. Shuffle bytes are recomputed from
        // the combined output (that is the combiner's whole point).
        task_bytes[t] = 0;
        for (auto& bucket : buckets[t]) {
          std::stable_sort(bucket.begin(), bucket.end(),
                           [](const auto& a, const auto& b) {
                             return a.first < b.first;
                           });
          std::vector<std::pair<K2, V2>> combined;
          std::size_t i = 0;
          while (i < bucket.size()) {
            std::size_t j = i;
            std::vector<V2> values;
            while (j < bucket.size() &&
                   bucket[j].first == bucket[i].first) {
              values.push_back(std::move(bucket[j].second));
              ++j;
            }
            V2 folded = combiner_(bucket[i].first, std::move(values));
            task_bytes[t] += detail::byte_size(bucket[i].first) +
                             detail::byte_size(folded);
            combined.emplace_back(bucket[i].first, std::move(folded));
            i = j;
          }
          task_combined[t] += combined.size();
          bucket = std::move(combined);
        }
      }
    });
    }
    counters.map_input_records += inputs.size();
    for (unsigned t = 0; t < m; ++t) {
      counters.map_output_records += task_records[t];
      counters.combine_output_records += task_combined[t];
      counters.shuffle_bytes += task_bytes[t];
    }
    counters.map_seconds += map_watch.elapsed_seconds();

    // --- shuffle ----------------------------------------------------------
    util::Stopwatch shuffle_watch;
    std::vector<std::vector<std::pair<K2, V2>>> partitions(r);
    {
    MPCBF_TRACE_SPAN(shuffle_span, kMapReduce, "mr.shuffle");
    shuffle_span.set_arg("partitions", r);
    util::parallel_for(pool, r, [&](std::size_t p) {
      std::size_t total_pairs = 0;
      for (unsigned t = 0; t < m; ++t) total_pairs += buckets[t][p].size();
      partitions[p].reserve(total_pairs);
      for (unsigned t = 0; t < m; ++t) {
        auto& b = buckets[t][p];
        std::move(b.begin(), b.end(), std::back_inserter(partitions[p]));
        b.clear();
        b.shrink_to_fit();
      }
      std::stable_sort(
          partitions[p].begin(), partitions[p].end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
    });
    }
    counters.shuffle_seconds += shuffle_watch.elapsed_seconds();

    // --- reduce -----------------------------------------------------------
    util::Stopwatch reduce_watch;
    std::vector<std::vector<Out>> outputs(r);
    std::vector<std::uint64_t> out_counts(r, 0);
    std::vector<std::uint64_t> group_counts(r, 0);
    {
    MPCBF_TRACE_SPAN(reduce_span, kMapReduce, "mr.reduce");
    reduce_span.set_arg("partitions", r);
    util::parallel_for(pool, r, [&](std::size_t p) {
      auto& part = partitions[p];
      Collector collector(materialize_output ? &outputs[p] : nullptr,
                          out_counts[p]);
      std::size_t i = 0;
      std::vector<V2> values;
      while (i < part.size()) {
        std::size_t j = i;
        values.clear();
        while (j < part.size() && part[j].first == part[i].first) {
          values.push_back(std::move(part[j].second));
          ++j;
        }
        ++group_counts[p];
        reducer_(part[i].first, values, collector);
        i = j;
      }
      part.clear();
      part.shrink_to_fit();
    });
    }
    for (unsigned p = 0; p < r; ++p) {
      counters.reduce_input_groups += group_counts[p];
      counters.reduce_output_records += out_counts[p];
    }
    counters.reduce_seconds += reduce_watch.elapsed_seconds();
    counters.total_seconds += total.elapsed_seconds();

    JobCounters delta;
    delta.map_input_records =
        counters.map_input_records - before.map_input_records;
    delta.map_output_records =
        counters.map_output_records - before.map_output_records;
    delta.combine_output_records =
        counters.combine_output_records - before.combine_output_records;
    delta.shuffle_bytes = counters.shuffle_bytes - before.shuffle_bytes;
    delta.reduce_input_groups =
        counters.reduce_input_groups - before.reduce_input_groups;
    delta.reduce_output_records =
        counters.reduce_output_records - before.reduce_output_records;
    delta.map_seconds = counters.map_seconds - before.map_seconds;
    delta.shuffle_seconds =
        counters.shuffle_seconds - before.shuffle_seconds;
    delta.reduce_seconds = counters.reduce_seconds - before.reduce_seconds;
    delta.total_seconds = counters.total_seconds - before.total_seconds;
    delta.publish(metrics::Registry::global());

    std::vector<Out> result;
    if (materialize_output) {
      std::size_t total_out = 0;
      for (const auto& o : outputs) total_out += o.size();
      result.reserve(total_out);
      for (auto& o : outputs) {
        std::move(o.begin(), o.end(), std::back_inserter(result));
      }
    }
    return result;
  }

 private:
  MapFn mapper_;
  ReduceFn reducer_;
  CombineFn combiner_;
  JobConfig cfg_;
};

}  // namespace mpcbf::mr
