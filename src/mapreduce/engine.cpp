#include "mapreduce/engine.hpp"

#include <sstream>

namespace mpcbf::mr {

std::string JobCounters::to_string() const {
  std::ostringstream os;
  os << "map_input=" << map_input_records
     << " map_output=" << map_output_records
     << " combined=" << combine_output_records
     << " shuffle_bytes=" << shuffle_bytes
     << " reduce_groups=" << reduce_input_groups
     << " reduce_output=" << reduce_output_records << " map_s=" << map_seconds
     << " shuffle_s=" << shuffle_seconds << " reduce_s=" << reduce_seconds
     << " total_s=" << total_seconds;
  return os.str();
}

void JobCounters::publish(metrics::Registry& reg) const {
  reg.counter("mpcbf_mr_jobs_total", "MapReduce jobs completed").inc();
  reg.counter("mpcbf_mr_records_total", "Records flowing through jobs",
              {{"stage", "map_input"}})
      .inc(map_input_records);
  reg.counter("mpcbf_mr_records_total", {}, {{"stage", "map_output"}})
      .inc(map_output_records);
  reg.counter("mpcbf_mr_records_total", {}, {{"stage", "combine_output"}})
      .inc(combine_output_records);
  reg.counter("mpcbf_mr_records_total", {}, {{"stage", "reduce_groups"}})
      .inc(reduce_input_groups);
  reg.counter("mpcbf_mr_records_total", {}, {{"stage", "reduce_output"}})
      .inc(reduce_output_records);
  reg.counter("mpcbf_mr_shuffle_bytes_total",
              "Bytes moved by the shuffle phase")
      .inc(shuffle_bytes);
  const auto to_ns = [](double s) {
    return s <= 0.0 ? std::uint64_t{0}
                    : static_cast<std::uint64_t>(s * 1e9);
  };
  reg.histogram("mpcbf_mr_phase_duration_ns",
                "Per-job phase wall time in nanoseconds",
                {{"phase", "map"}})
      .record(to_ns(map_seconds));
  reg.histogram("mpcbf_mr_phase_duration_ns", {}, {{"phase", "shuffle"}})
      .record(to_ns(shuffle_seconds));
  reg.histogram("mpcbf_mr_phase_duration_ns", {}, {{"phase", "reduce"}})
      .record(to_ns(reduce_seconds));
  reg.histogram("mpcbf_mr_phase_duration_ns", {}, {{"phase", "total"}})
      .record(to_ns(total_seconds));
}

}  // namespace mpcbf::mr
