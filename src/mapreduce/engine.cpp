#include "mapreduce/engine.hpp"

#include <sstream>

namespace mpcbf::mr {

std::string JobCounters::to_string() const {
  std::ostringstream os;
  os << "map_input=" << map_input_records
     << " map_output=" << map_output_records
     << " combined=" << combine_output_records
     << " shuffle_bytes=" << shuffle_bytes
     << " reduce_groups=" << reduce_input_groups
     << " reduce_output=" << reduce_output_records << " map_s=" << map_seconds
     << " shuffle_s=" << shuffle_seconds << " reduce_s=" << reduce_seconds
     << " total_s=" << total_seconds;
  return os.str();
}

}  // namespace mpcbf::mr
