// Reduce-side join with Bloom-filter pushdown — the application of Sec. V
// and Fig. 13.
//
// Two inputs (a small "dimension" table of patents and a large "fact"
// stream of citations) are tagged in the map phase and joined on the cited
// patent id in the reduce phase. An optional membership filter — built
// over the dimension keys and broadcast to every mapper, the paper's
// DistributedCache trick — drops fact records whose join key cannot match,
// cutting map outputs and shuffle volume. The filter's false positives
// survive to the reducer, where the missing dimension row eliminates them
// (so the join stays exact; the filter only costs, never corrupts).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "mapreduce/engine.hpp"
#include "workload/patent_data.hpp"

namespace mpcbf::mr {

/// Membership predicate broadcast to mappers; nullptr = no filtering.
using Prefilter = std::function<bool(std::string_view)>;

struct JoinStats {
  JobCounters counters;
  std::uint64_t filter_probes = 0;   ///< citation records checked
  std::uint64_t filter_passes = 0;   ///< records the filter let through
  std::uint64_t joined_rows = 0;     ///< exact join output cardinality
};

/// Runs the reduce-side join of `data.citations` against `data.patents`
/// on the cited patent id. When `prefilter` is set, citation records
/// failing it are dropped map-side.
[[nodiscard]] JoinStats run_reduce_side_join(
    const workload::PatentData& data, const Prefilter& prefilter,
    const JobConfig& config = {});

/// Map-side (broadcast hash) join baseline: the whole dimension table is
/// replicated to every map task as an exact hash map, so no dimension
/// rows are shuffled and no reducer is needed for matching. This is the
/// alternative Blanas et al. (the paper's ref. [27]) compare reduce-side
/// joins against — viable only while the dimension table fits in memory,
/// which is precisely the niche the Bloom-filter pushdown of Sec. V
/// extends: the filter is a lossy, far smaller broadcast.
[[nodiscard]] JoinStats run_map_side_join(const workload::PatentData& data,
                                          const JobConfig& config = {});

}  // namespace mpcbf::mr
