#include "mapreduce/join.hpp"

#include <atomic>
#include <unordered_map>

namespace mpcbf::mr {
namespace {

/// Map input: either a patent (dimension) or a citation (fact) record,
/// exactly the two-file input of the paper's Fig. 13.
struct JoinInput {
  const workload::PatentRecord* patent = nullptr;
  const workload::CitationRecord* citation = nullptr;
};

/// Tagged map output value ('P' dimension attrs / 'C' citing id).
struct TaggedValue {
  char tag;
  std::string payload;

  [[nodiscard]] std::uint64_t byte_size() const {
    return 1 + payload.size();
  }
};

}  // namespace

JoinStats run_reduce_side_join(const workload::PatentData& data,
                               const Prefilter& prefilter,
                               const JobConfig& config) {
  JoinStats stats;

  std::vector<JoinInput> inputs;
  inputs.reserve(data.patents.size() + data.citations.size());
  for (const auto& p : data.patents) {
    inputs.push_back(JoinInput{&p, nullptr});
  }
  for (const auto& c : data.citations) {
    inputs.push_back(JoinInput{nullptr, &c});
  }

  std::atomic<std::uint64_t> probes{0};
  std::atomic<std::uint64_t> passes{0};

  using JoinJob = Job<JoinInput, std::string, TaggedValue, std::string>;

  JoinJob::MapFn mapper = [&](const JoinInput& in, JoinJob::Emitter& emit) {
    if (in.patent != nullptr) {
      emit.emit(in.patent->id, TaggedValue{'P', in.patent->attrs});
      return;
    }
    const auto& c = *in.citation;
    if (prefilter) {
      probes.fetch_add(1, std::memory_order_relaxed);
      if (!prefilter(c.cited)) {
        return;  // dropped map-side: never shuffled, never reduced
      }
      passes.fetch_add(1, std::memory_order_relaxed);
    }
    emit.emit(c.cited, TaggedValue{'C', c.citing});
  };

  JoinJob::ReduceFn reducer = [](const std::string& key,
                                 const std::vector<TaggedValue>& values,
                                 JoinJob::Collector& out) {
    // Separate the tag groups, then cross-product (Fig. 13). A key with no
    // dimension row produces nothing — this is where filter false
    // positives die.
    const std::string* attrs = nullptr;
    for (const auto& v : values) {
      if (v.tag == 'P') {
        attrs = &v.payload;
        break;
      }
    }
    if (attrs == nullptr) return;
    for (const auto& v : values) {
      if (v.tag == 'C') {
        out.emit(key + "," + v.payload + "," + *attrs);
      }
    }
  };

  JoinJob job(std::move(mapper), std::move(reducer), config);
  job.run(inputs, stats.counters, /*materialize_output=*/false);

  stats.filter_probes = probes.load();
  stats.filter_passes = passes.load();
  stats.joined_rows = stats.counters.reduce_output_records;
  return stats;
}

JoinStats run_map_side_join(const workload::PatentData& data,
                            const JobConfig& config) {
  JoinStats stats;

  // The broadcast table (the exact analogue of what the Bloom filter
  // approximates): cited id -> attrs.
  std::unordered_map<std::string_view, const std::string*> dimension;
  dimension.reserve(data.patents.size() * 2);
  for (const auto& p : data.patents) {
    dimension.emplace(p.id, &p.attrs);
  }

  // Map-only job over the fact stream: each match is emitted directly;
  // the "reduce" is an identity pass-through (num_reducers still shards
  // the output like Hadoop's map-side join writing R output files).
  using MsJob =
      Job<const workload::CitationRecord*, std::string, std::string,
          std::string>;
  MsJob::MapFn mapper = [&](const workload::CitationRecord* const& c,
                            MsJob::Emitter& emit) {
    auto it = dimension.find(c->cited);
    if (it != dimension.end()) {
      emit.emit(c->cited, c->citing + "," + *it->second);
    }
  };
  MsJob::ReduceFn reducer = [](const std::string& key,
                               const std::vector<std::string>& rows,
                               MsJob::Collector& out) {
    for (const auto& row : rows) {
      out.emit(key + "," + row);
    }
  };

  std::vector<const workload::CitationRecord*> inputs;
  inputs.reserve(data.citations.size());
  for (const auto& c : data.citations) {
    inputs.push_back(&c);
  }
  MsJob job(std::move(mapper), std::move(reducer), config);
  job.run(inputs, stats.counters, /*materialize_output=*/false);
  stats.joined_rows = stats.counters.reduce_output_records;
  return stats;
}

}  // namespace mpcbf::mr
