// Live filter-health probing — the "is this filter drifting toward
// saturation" layer on top of the structural introspection the filters
// already expose (fill_report(), event counters) and the closed-form FPR
// models in model/fpr_model.hpp.
//
// A HealthProber samples a filter on demand (probe()) or on a background
// interval (watch()/stop()) and publishes the sample as registry gauges
// (mpcbf_health_*), Prometheus-visible through the PR 2 exporter. Each
// sample carries:
//
//   * level-1 fill — fraction of level-1 counter positions that are
//     non-zero (Almeida's fill-rate, the quantity the FPR actually
//     tracks);
//   * hierarchy-bit utilization — hierarchy bits consumed vs the
//     l * (W - b1) available, i.e. how much of the counting headroom
//     has been spent;
//   * per-word hierarchy occupancy histogram buckets (from
//     fill_report().hierarchy_histogram);
//   * stash pressure and overflow rate — the overflow-path symptoms;
//   * predicted-vs-measured FPR drift — eq. (8)/(9) at the current
//     cardinality vs an empirical probe of never-inserted keys;
//   * a 0-100 saturation score: 100 x the worst component.
//
// Thresholds on the score classify the sample Ok/Warn/Critical; a
// non-Ok sample fires the configured callback and bumps
// mpcbf_health_alarms_total{severity=...}. The prober reads the filter
// without locking — point it at a filter that is not concurrently
// mutated, or at AtomicMpcbf (whose readers are wait-free).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/registry.hpp"
#include "model/fpr_model.hpp"
#include "trace/trace.hpp"

namespace mpcbf::metrics {

enum class Severity : std::uint8_t { kOk, kWarn, kCritical };

[[nodiscard]] constexpr const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kOk: return "ok";
    case Severity::kWarn: return "warn";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

/// One health sample. Component values are fractions in [0, 1] unless
/// noted; saturation_score is 0-100.
struct HealthSample {
  double level1_fill = 0.0;
  double hierarchy_utilization = 0.0;
  double stash_pressure = 0.0;   ///< stash entries / live elements
  double overflow_rate = 0.0;    ///< overflow events / attempted inserts
  double predicted_fpr = 0.0;    ///< eq. (8)/(9) at current cardinality
  double measured_fpr = 0.0;     ///< empirical never-inserted-key probe
  double fpr_drift = 0.0;        ///< measured - predicted (signed)
  double saturation_score = 0.0;
  Severity severity = Severity::kOk;
  std::uint64_t elements = 0;
  /// hierarchy_histogram[u] = words using u hierarchy bits (empty for
  /// filters without fill_report()).
  std::vector<std::size_t> hierarchy_histogram;
};

class HealthProber {
 public:
  struct Config {
    std::string filter_label = "mpcbf";
    /// Saturation-score thresholds (0-100).
    double warn_score = 70.0;
    double critical_score = 90.0;
    /// Never-inserted keys probed for the measured FPR (0 disables the
    /// empirical probe; predicted/drift gauges then read 0).
    std::size_t fpr_probes = 4096;
    std::uint64_t probe_seed = 0x9e3779b97f4a7c15ull;
    /// Fired on every non-Ok sample (watch() fires it from the
    /// background thread).
    std::function<void(const HealthSample&)> on_alarm;
    Registry* registry = &Registry::global();
  };

  HealthProber() : HealthProber(Config{}) {}
  explicit HealthProber(Config cfg) : cfg_(std::move(cfg)) {}
  ~HealthProber() { stop(); }
  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Samples `f` once: computes the component metrics, publishes the
  /// gauges, classifies against the thresholds, and fires the alarm
  /// callback + counter when the score crosses warn/critical.
  template <typename Filter>
  HealthSample probe(const Filter& f) {
    MPCBF_TRACE_SPAN(span, kTool, "health.probe");
    HealthSample s = sample(f);
    span.set_arg("score", static_cast<std::uint64_t>(s.saturation_score));
    publish(s);
    if (s.severity != Severity::kOk) {
      alarms_total_.fetch_add(1, std::memory_order_relaxed);
      if (cfg_.registry != nullptr) {
        cfg_.registry
            ->counter("mpcbf_health_alarms_total",
                      "Health probes that crossed warn/critical thresholds",
                      {{"filter", cfg_.filter_label},
                       {"severity", to_string(s.severity)}})
            .inc();
      }
      if (cfg_.on_alarm) cfg_.on_alarm(s);
    }
    return s;
  }

  /// Starts a background thread probing `f` every `interval` until
  /// stop() (or destruction). The caller must keep `f` alive and must
  /// not mutate it concurrently unless the filter's readers are
  /// thread-safe (AtomicMpcbf / ShardedMpcbf).
  template <typename Filter>
  void watch(const Filter& f, std::chrono::milliseconds interval) {
    stop();
    stop_requested_ = false;
    worker_ = std::thread([this, &f, interval] {
      std::unique_lock<std::mutex> lock(watch_mu_);
      for (;;) {
        lock.unlock();
        probe(f);
        lock.lock();
        if (watch_cv_.wait_for(lock, interval,
                               [this] { return stop_requested_; })) {
          return;
        }
      }
    });
  }

  /// Stops the background thread (idempotent; no-op when not watching).
  void stop() {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      stop_requested_ = true;
    }
    watch_cv_.notify_all();
    if (worker_.joinable()) worker_.join();
  }

  /// Alarms fired by this prober instance (the registry counter is the
  /// cross-instance view).
  [[nodiscard]] std::uint64_t alarms() const noexcept {
    return alarms_total_.load(std::memory_order_relaxed);
  }

  /// Computes a sample without publishing or alarming (tests, dry runs).
  template <typename Filter>
  [[nodiscard]] HealthSample sample(const Filter& f) const {
    HealthSample s;
    if constexpr (requires { f.size(); }) {
      s.elements = f.size();
    }

    if constexpr (requires { f.fill_report(); }) {
      const auto report = f.fill_report();
      s.hierarchy_histogram = report.hierarchy_histogram;
      std::size_t zero = report.counter_histogram.empty()
                             ? report.total_positions
                             : report.counter_histogram[0];
      if (report.total_positions > 0) {
        s.level1_fill =
            1.0 - static_cast<double>(zero) /
                      static_cast<double>(report.total_positions);
      }
    }

    if constexpr (requires { f.num_words(); f.b1(); f.memory_bits(); }) {
      // Word width W = memory_bits / l; hierarchy capacity = l * (W - b1).
      const std::size_t word_bits =
          f.num_words() > 0 ? f.memory_bits() / f.num_words() : 0;
      const std::size_t hier_capacity =
          word_bits > f.b1() ? f.num_words() * (word_bits - f.b1()) : 0;
      std::size_t hier_used = 0;
      for (std::size_t u = 0; u < s.hierarchy_histogram.size(); ++u) {
        hier_used += u * s.hierarchy_histogram[u];
      }
      if (hier_capacity > 0) {
        s.hierarchy_utilization = static_cast<double>(hier_used) /
                                  static_cast<double>(hier_capacity);
      }
    }

    std::uint64_t overflow = 0;
    if constexpr (requires { f.overflow_events(); }) {
      overflow = f.overflow_events();
    } else if constexpr (requires { f.saturations(); }) {
      overflow = f.saturations();
    }
    const std::uint64_t attempts = s.elements + overflow;
    if (attempts > 0) {
      s.overflow_rate =
          static_cast<double>(overflow) / static_cast<double>(attempts);
    }

    if constexpr (requires { f.stash_size(); }) {
      if (s.elements > 0) {
        s.stash_pressure = static_cast<double>(f.stash_size()) /
                           static_cast<double>(s.elements);
      } else if (f.stash_size() > 0) {
        s.stash_pressure = 1.0;
      }
    }

    if constexpr (requires { f.model_fpr(); }) {
      // Composite filters (ElasticMpcbf) know their own closed-form
      // bound — a chain's FPR is not the flat formula over summed
      // layout numbers.
      s.predicted_fpr = f.model_fpr();
      s.measured_fpr = measure_fpr(f);
      s.fpr_drift = s.measured_fpr - s.predicted_fpr;
    } else if constexpr (requires {
                           f.num_words();
                           f.b1();
                           f.k();
                           f.g();
                         }) {
      s.predicted_fpr = model::fpr_mpcbf_g(s.elements, f.num_words(),
                                           f.b1(), f.k(), f.g());
      s.measured_fpr = measure_fpr(f);
      s.fpr_drift = s.measured_fpr - s.predicted_fpr;
    }

    // Every component above guards its denominator, but keep the gauge
    // contract (finite values only — a NaN would poison the Prometheus
    // export and every comparison downstream) robust against filters
    // with odd duck-typed accessors: scrub non-finite ratios to 0.
    s.level1_fill = finite_or_zero(s.level1_fill);
    s.hierarchy_utilization = finite_or_zero(s.hierarchy_utilization);
    s.stash_pressure = finite_or_zero(s.stash_pressure);
    s.overflow_rate = finite_or_zero(s.overflow_rate);
    s.predicted_fpr = finite_or_zero(s.predicted_fpr);
    s.measured_fpr = finite_or_zero(s.measured_fpr);
    s.fpr_drift = finite_or_zero(s.fpr_drift);

    const double worst =
        std::max({s.level1_fill, s.hierarchy_utilization,
                  std::min(1.0, s.stash_pressure),
                  std::min(1.0, s.overflow_rate)});
    s.saturation_score = 100.0 * std::clamp(worst, 0.0, 1.0);
    s.severity = s.saturation_score >= cfg_.critical_score
                     ? Severity::kCritical
                 : s.saturation_score >= cfg_.warn_score ? Severity::kWarn
                                                         : Severity::kOk;
    return s;
  }

 private:
  [[nodiscard]] static double finite_or_zero(double v) noexcept {
    return std::isfinite(v) ? v : 0.0;
  }

  /// Empirical FPR: queries cfg_.fpr_probes synthetic keys drawn from a
  /// namespace no workload generator uses; every positive is (with
  /// overwhelming probability) a false positive.
  template <typename Filter>
  [[nodiscard]] double measure_fpr(const Filter& f) const {
    if (cfg_.fpr_probes == 0) return 0.0;
    std::uint64_t positives = 0;
    std::string key;
    for (std::size_t i = 0; i < cfg_.fpr_probes; ++i) {
      key = "\x01mpcbf-health-probe/";
      key += std::to_string(cfg_.probe_seed ^ (i * 0x2545f4914f6cdd1dull));
      if (f.contains(key)) ++positives;
    }
    return static_cast<double>(positives) /
           static_cast<double>(cfg_.fpr_probes);
  }

  void publish(const HealthSample& s) const {
    if (cfg_.registry == nullptr) return;
    Registry& reg = *cfg_.registry;
    const std::string& label = cfg_.filter_label;
    reg.gauge("mpcbf_health_level1_fill",
              "Fraction of level-1 counter positions that are non-zero",
              {{"filter", label}})
        .set(s.level1_fill);
    reg.gauge("mpcbf_health_hierarchy_utilization",
              "Hierarchy bits consumed / hierarchy bits available",
              {{"filter", label}})
        .set(s.hierarchy_utilization);
    reg.gauge("mpcbf_health_stash_pressure",
              "Stash entries per live element", {{"filter", label}})
        .set(s.stash_pressure);
    reg.gauge("mpcbf_health_overflow_rate",
              "Overflow events / attempted inserts", {{"filter", label}})
        .set(s.overflow_rate);
    reg.gauge("mpcbf_health_fpr_predicted",
              "Model FPR (eq. 8/9) at current cardinality",
              {{"filter", label}})
        .set(s.predicted_fpr);
    reg.gauge("mpcbf_health_fpr_measured",
              "Empirical FPR from never-inserted probe keys",
              {{"filter", label}})
        .set(s.measured_fpr);
    reg.gauge("mpcbf_health_fpr_drift",
              "Measured minus predicted FPR", {{"filter", label}})
        .set(s.fpr_drift);
    reg.gauge("mpcbf_health_saturation_score",
              "0-100 saturation score (100 x worst component)",
              {{"filter", label}})
        .set(s.saturation_score);
    reg.gauge("mpcbf_health_elements", "Elements at sample time",
              {{"filter", label}})
        .set(static_cast<double>(s.elements));
    // Per-word hierarchy occupancy, bucketed; everything past the last
    // individual bucket collapses into "N+" so the series count stays
    // bounded for any word geometry.
    constexpr std::size_t kIndividualBuckets = 8;
    const auto& hist = s.hierarchy_histogram;
    for (std::size_t u = 0; u < std::min(hist.size(), kIndividualBuckets);
         ++u) {
      reg.gauge("mpcbf_health_hierarchy_words",
                "Words by hierarchy bits in use",
                {{"filter", label}, {"used", std::to_string(u)}})
          .set(static_cast<double>(hist[u]));
    }
    if (hist.size() > kIndividualBuckets) {
      std::size_t tail = 0;
      for (std::size_t u = kIndividualBuckets; u < hist.size(); ++u) {
        tail += hist[u];
      }
      reg.gauge("mpcbf_health_hierarchy_words",
                "Words by hierarchy bits in use",
                {{"filter", label},
                 {"used", std::to_string(kIndividualBuckets) + "+"}})
          .set(static_cast<double>(tail));
    }
  }

  Config cfg_;
  std::atomic<std::uint64_t> alarms_total_{0};
  std::thread worker_;
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool stop_requested_ = false;
};

}  // namespace mpcbf::metrics
