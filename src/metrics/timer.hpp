// Monotonic nanosecond clock helpers for latency metrics.
//
// kStatsEnabled mirrors MPCBF_DISABLE_ACCESS_STATS so hot paths can guard
// clock reads with `if constexpr` and compile them out entirely in
// stats-disabled builds. ScopedLatency records elapsed nanoseconds into a
// Histogram at scope exit — the one-liner the IO and mapreduce layers use
// where the op is orders of magnitude above clock cost.
#pragma once

#include <chrono>
#include <cstdint>

#include "metrics/histogram.hpp"

namespace mpcbf::metrics {

#ifdef MPCBF_DISABLE_ACCESS_STATS
inline constexpr bool kStatsEnabled = false;
#else
inline constexpr bool kStatsEnabled = true;
#endif

[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Records the lifetime of the scope into `sink` (nanoseconds). A no-op
/// (no clock read) when stats are compiled out.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& sink) noexcept : sink_(sink) {
    if constexpr (kStatsEnabled) start_ = now_ns();
  }
  ~ScopedLatency() {
    if constexpr (kStatsEnabled) sink_.record(now_ns() - start_);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram& sink_;
  std::uint64_t start_ = 0;
};

}  // namespace mpcbf::metrics
