// Build identity and process uptime as metrics — the two series every
// fleet dashboard joins against: `mpcbf_build_info` (value 1, identity
// in the labels: version, git sha, which instrumentation twins were
// compiled in) and `mpcbf_server_uptime_seconds` (refreshed at scrape
// time, so a restart is visible as a sawtooth).
//
// Header-only; the git sha arrives as the MPCBF_GIT_SHA compile
// definition (src/CMakeLists.txt runs `git rev-parse`) and degrades to
// "unknown" in tarball builds.
#pragma once

#include <chrono>
#include <cstdint>

#include "metrics/registry.hpp"

namespace mpcbf::metrics {

inline constexpr const char* kBuildVersion = "0.8.0";

[[nodiscard]] inline const char* build_git_sha() noexcept {
#ifdef MPCBF_GIT_SHA
  return MPCBF_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Monotonic process uptime, anchored the first time anything asks.
[[nodiscard]] inline double process_uptime_seconds() noexcept {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Registers (idempotently) and refreshes the build/uptime series in
/// `reg`. Call before every exposition — /metrics, the STATS opcode and
/// the final `serve` dump all route through here so the three agree.
inline void publish_build_info(Registry& reg = Registry::global()) {
#ifdef MPCBF_DISABLE_ACCESS_STATS
  const char* stats = "off";
#else
  const char* stats = "on";
#endif
#ifdef MPCBF_DISABLE_TRACING
  const char* tracing = "off";
#else
  const char* tracing = "on";
#endif
#ifdef MPCBF_DISABLE_LOGGING
  const char* logging = "off";
#else
  const char* logging = "on";
#endif
  reg.gauge("mpcbf_build_info",
            "Build identity; the value is always 1, the labels carry "
            "version, git sha and compiled-in instrumentation",
            {{"version", kBuildVersion},
             {"git_sha", build_git_sha()},
             {"stats", stats},
             {"tracing", tracing},
             {"logging", logging}})
      .set(1.0);
  reg.gauge("mpcbf_server_uptime_seconds",
            "Process uptime, refreshed at scrape time")
      .set(process_uptime_seconds());
}

}  // namespace mpcbf::metrics
