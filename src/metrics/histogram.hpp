// Fixed-bucket log-scale histogram for latency/size distributions.
//
// Values (nanoseconds, batch sizes, byte counts — any uint64) land in one
// of 256 buckets: values below 4 get an exact bucket each; above that,
// every power-of-two octave is split into 4 sub-buckets, so a bucket's
// upper bound is at most 25% above its lower bound and quantile estimates
// carry bounded relative error. Recording is a handful of relaxed atomic
// adds — safe from concurrent readers/writers, never a synchronization
// point — and compiles to nothing when MPCBF_DISABLE_ACCESS_STATS is set.
//
// Quantiles are conservative: quantile(q) returns the upper bound of the
// bucket holding the rank-⌈q·count⌉ sample, so at least that many recorded
// samples are <= the returned value (the bracketing property
// tests/test_metrics.cpp asserts).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace mpcbf::metrics {

class Histogram {
 public:
  /// 4 sub-buckets per power-of-two octave; 64 octaves cover any uint64.
  static constexpr unsigned kSubBuckets = 4;
  static constexpr unsigned kNumBuckets = 64 * kSubBuckets;

  Histogram() = default;

  // Copyable as a relaxed snapshot (filters holding histograms are
  // copy/movable; the atomics themselves are not).
  Histogram(const Histogram& other) noexcept { copy_from(other); }
  Histogram& operator=(const Histogram& other) noexcept {
    if (this != &other) copy_from(other);
    return *this;
  }

  void record(std::uint64_t value) noexcept {
#ifdef MPCBF_DISABLE_ACCESS_STATS
    (void)value;
#else
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    // Monotonic max: lossy store race is resolved by the CAS retry.
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
#endif
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const auto c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }
  [[nodiscard]] std::uint64_t bucket_count(unsigned i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Maps a value to its bucket. Exact below 4; otherwise octave*4 + the
  /// two bits below the leading one.
  [[nodiscard]] static constexpr unsigned bucket_index(
      std::uint64_t v) noexcept {
    if (v < 4) return static_cast<unsigned>(v);
    const unsigned octave = 63 - static_cast<unsigned>(std::countl_zero(v));
    return octave * kSubBuckets +
           static_cast<unsigned>((v >> (octave - 2)) & 3);
  }

  /// Inclusive upper bound of bucket i (the largest value mapping to it).
  /// Indices 4..7 are dead (values < 4 are exact, values >= 4 start at
  /// octave 2 == index 8); they report bound 3 so bucket ranges stay
  /// contiguous for iteration.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(
      unsigned i) noexcept {
    if (i < 4) return i;
    if (i < 2 * kSubBuckets) return 3;
    const unsigned octave = i / kSubBuckets;
    const unsigned sub = i % kSubBuckets;
    const std::uint64_t lower =
        (std::uint64_t{1} << octave) +
        static_cast<std::uint64_t>(sub) * (std::uint64_t{1} << (octave - 2));
    const std::uint64_t width = std::uint64_t{1} << (octave - 2);
    return lower + width - 1;
  }

  /// Conservative quantile: the upper bound of the bucket holding the
  /// rank-⌈q·count⌉ sample (exact for values < 4; <= 25% above the true
  /// sample otherwise). Clamped to the recorded max. q in [0, 1].
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    const double clamped = std::min(std::max(q, 0.0), 1.0);
    std::uint64_t rank =
        static_cast<std::uint64_t>(clamped * static_cast<double>(n));
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t cumulative = 0;
    for (unsigned i = 0; i < kNumBuckets; ++i) {
      cumulative += bucket_count(i);
      if (cumulative >= rank) {
        return std::min(bucket_upper(i), max());
      }
    }
    return max();
  }

  /// Folds `other`'s recorded samples into this histogram (bucket-wise).
  void merge(const Histogram& other) noexcept {
    for (unsigned i = 0; i < kNumBuckets; ++i) {
      const auto c = other.bucket_count(i);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    const std::uint64_t om = other.max();
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (om > seen && !max_.compare_exchange_weak(
                            seen, om, std::memory_order_relaxed)) {
    }
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void copy_from(const Histogram& other) noexcept {
    for (unsigned i = 0; i < kNumBuckets; ++i) {
      buckets_[i].store(other.bucket_count(i), std::memory_order_relaxed);
    }
    count_.store(other.count(), std::memory_order_relaxed);
    sum_.store(other.sum(), std::memory_order_relaxed);
    max_.store(other.max(), std::memory_order_relaxed);
  }

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace mpcbf::metrics
