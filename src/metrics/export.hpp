// Publishes instance-local stats (AccessStats, filter event counters)
// into a metrics::Registry as labelled series — the bridge between the
// per-filter accounting every filter already carries and the
// process-wide Prometheus export.
//
// Filters stay registry-free on their hot paths (bench loops construct
// thousands of short-lived filters; registering each would leak series
// and serialize construction on the registry mutex). Instead a caller
// that wants export — mpcbf_tool stats, a serving layer's scrape
// handler — snapshots the filter into the registry under a `filter`
// label right before dumping. Counters are cumulative adds, so publish
// once per registry lifetime (or Registry::reset() between publishes).
#pragma once

#include <string>
#include <string_view>

#include "metrics/access_stats.hpp"
#include "metrics/registry.hpp"

namespace mpcbf::metrics {

/// Adds an AccessStats snapshot to `reg` as the filter-layer series
/// (ops/words/bits per op class + latency histograms).
inline void publish_access_stats(Registry& reg, std::string_view filter,
                                 const AccessStats& stats) {
  for (unsigned i = 0; i < kNumOpClasses; ++i) {
    const auto c = static_cast<OpClass>(i);
    const auto op = op_label(c);
    reg.counter("mpcbf_filter_ops_total", "Filter operations by class",
                {{"filter", filter}, {"op", op}})
        .inc(stats.ops(c));
    reg.counter("mpcbf_filter_words_touched_total",
                "Distinct memory words touched by filter operations",
                {{"filter", filter}, {"op", op}})
        .inc(stats.words(c));
    reg.counter("mpcbf_filter_hash_bits_total",
                "Accounted hash bits (access bandwidth) consumed",
                {{"filter", filter}, {"op", op}})
        .inc(stats.bits(c));
    reg.histogram("mpcbf_filter_op_duration_ns",
                  "Sampled per-operation latency in nanoseconds",
                  {{"filter", filter}, {"op", op}})
        .merge(stats.latency(c));
  }
  reg.histogram("mpcbf_filter_batch_query_duration_ns",
                "Per-key average latency of batch-query chunks (ns)",
                {{"filter", filter}})
      .merge(stats.batch_latency());
}

/// Publishes a filter's stats plus whichever structural/event metrics
/// the concrete type exposes (size, memory, overflow/underflow events,
/// stash occupancy). Works with Mpcbf, AtomicMpcbf, ShardedMpcbf and
/// the baseline filters — members are probed, not required.
template <typename Filter>
void publish_filter(Registry& reg, std::string_view label,
                    const Filter& f) {
  if constexpr (requires { f.stats(); }) {
    publish_access_stats(reg, label, f.stats());
  } else if constexpr (requires { f.stats_snapshot(); }) {
    publish_access_stats(reg, label, f.stats_snapshot());
  }
  if constexpr (requires { f.size(); }) {
    reg.gauge("mpcbf_filter_elements", "Elements currently represented",
              {{"filter", label}})
        .set(static_cast<double>(f.size()));
  }
  if constexpr (requires { f.memory_bits(); }) {
    reg.gauge("mpcbf_filter_memory_bits", "Configured filter memory",
              {{"filter", label}})
        .set(static_cast<double>(f.memory_bits()));
  }
  if constexpr (requires { f.overflow_events(); }) {
    reg.counter("mpcbf_filter_overflow_events_total",
                "Word-capacity overflows on insert", {{"filter", label}})
        .inc(f.overflow_events());
  }
  if constexpr (requires { f.underflow_events(); }) {
    reg.counter("mpcbf_filter_underflow_events_total",
                "Counter underflows on contract-violating deletes",
                {{"filter", label}})
        .inc(f.underflow_events());
  }
  if constexpr (requires { f.stash_size(); }) {
    reg.gauge("mpcbf_filter_stash_entries",
              "Elements diverted to the overflow stash",
              {{"filter", label}})
        .set(static_cast<double>(f.stash_size()));
  }
}

}  // namespace mpcbf::metrics
