// Process-wide metric registry: named counters, gauges and log-scale
// latency histograms with Prometheus labels, plus a Prometheus
// text-format exporter and a one-line-per-metric human summary.
//
// Usage pattern (hot paths cache the reference once — lookup takes a
// mutex, the cells themselves are lock-free relaxed atomics):
//
//   static auto& flushes = Registry::global().counter(
//       "mpcbf_journal_flushes_total", "Journal flush calls");
//   flushes.inc();
//
// Cells are never deallocated while the registry lives, so cached
// references stay valid for the process lifetime. Recording compiles to
// nothing under MPCBF_DISABLE_ACCESS_STATS (registration still works, so
// exporters keep linking); see docs/observability.md for the metric
// naming and label conventions.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "metrics/histogram.hpp"

namespace mpcbf::metrics {

/// Monotonic counter (Prometheus type `counter`).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#ifdef MPCBF_DISABLE_ACCESS_STATS
    (void)n;
#else
    v_.fetch_add(n, std::memory_order_relaxed);
#endif
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge (Prometheus type `gauge`). Doubles cover both counts
/// and seconds-valued readings; add() is a CAS loop because
/// std::atomic<double> has no fetch_add until C++20's is optional.
class Gauge {
 public:
  void set(double v) noexcept {
#ifdef MPCBF_DISABLE_ACCESS_STATS
    (void)v;
#else
    v_.store(v, std::memory_order_relaxed);
#endif
  }
  void add(double delta) noexcept {
#ifdef MPCBF_DISABLE_ACCESS_STATS
    (void)delta;
#else
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
#endif
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

using LabelView = std::pair<std::string_view, std::string_view>;

class Registry {
 public:
  /// The process-wide registry every built-in subsystem records into.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the series `name{labels}`. The first call for a
  /// name fixes its help text and type; re-registering the same name as
  /// a different metric type throws std::logic_error.
  Counter& counter(std::string_view name, std::string_view help = {},
                   std::initializer_list<LabelView> labels = {});
  Gauge& gauge(std::string_view name, std::string_view help = {},
               std::initializer_list<LabelView> labels = {});
  Histogram& histogram(std::string_view name, std::string_view help = {},
                       std::initializer_list<LabelView> labels = {});

  /// Prometheus text exposition format (# HELP / # TYPE / series lines;
  /// histograms as cumulative `_bucket{le=...}` + `_sum` + `_count`).
  void write_prometheus(std::ostream& os) const;

  /// Human-readable one-line-per-series summary (counters/gauges as
  /// `name{labels} = v`, histograms with count/mean/p50/p95/p99/max).
  void write_summary(std::ostream& os) const;

  /// Zeroes every registered series (tests; series stay registered).
  void reset();

  /// Number of registered series across all families (tests).
  [[nodiscard]] std::size_t series_count() const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  template <typename Cell>
  struct Family {
    std::string help;
    // label string -> cell; node-based so references are stable.
    std::map<std::string, std::unique_ptr<Cell>> series;
  };

  /// Canonical `k1="v1",k2="v2"` form (sorted, escaped).
  static std::string label_key(std::initializer_list<LabelView> labels);

  void claim_name(std::string_view name, Type type);

  mutable std::mutex mu_;
  std::map<std::string, Type, std::less<>> types_;
  std::map<std::string, Family<Counter>, std::less<>> counters_;
  std::map<std::string, Family<Gauge>, std::less<>> gauges_;
  std::map<std::string, Family<Histogram>, std::less<>> histograms_;
};

}  // namespace mpcbf::metrics
