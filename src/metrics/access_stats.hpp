// Per-operation access accounting — the instrument behind the paper's
// Tables I–III and Fig. 11, now a thin adapter over the observability
// layer's primitives (metrics/registry.hpp): each per-op-class bucket is
// a trio of registry Counter cells plus a log-scale latency Histogram,
// so a filter's stats can be published into the process-wide Registry
// verbatim (metrics/export.hpp) while staying instance-local — bench
// loops construct thousands of filters and must not leak registry series.
//
// Every filter in this repository records, for each operation it executes,
// (a) how many distinct memory words it touched and (b) how many hash bits
// it consumed ("access bandwidth" in the paper's terminology). Queries are
// split into negative/positive classes because query short-circuiting makes
// their costs differ (that is why the paper measures CBF at 2.1 — not 3.0 —
// accesses per query on IP traces).
//
// Counters are relaxed atomics so recording from const queries is safe
// under concurrent readers (filters hold an AccessStats as a `mutable`
// member and bump it from contains()). Relaxed ordering is sufficient:
// the counters are independent monotonic tallies, never used to
// synchronize other memory. Define MPCBF_DISABLE_ACCESS_STATS to compile
// recording out entirely on hot paths that cannot afford the atomic adds.
//
// Latency is sampled, not per-op: timing every operation would cost two
// clock reads (~40ns) against query costs of the same order. should_sample
// admits every kLatencySampleEvery-th operation; batch queries record one
// per-key average per chunk instead (see Mpcbf::contains_batch).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

#include "metrics/histogram.hpp"
#include "metrics/registry.hpp"

namespace mpcbf::metrics {

enum class OpClass : unsigned {
  kQueryNegative = 0,
  kQueryPositive = 1,
  kInsert = 2,
  kDelete = 3,
};

inline constexpr unsigned kNumOpClasses = 4;
/// One in kLatencySampleEvery operations is latency-timed.
inline constexpr std::uint64_t kLatencySampleEvery = 64;

constexpr std::string_view to_string(OpClass c) noexcept {
  switch (c) {
    case OpClass::kQueryNegative: return "query-";
    case OpClass::kQueryPositive: return "query+";
    case OpClass::kInsert: return "insert";
    case OpClass::kDelete: return "delete";
  }
  return "?";
}

/// Prometheus-safe label value for an op class.
constexpr std::string_view op_label(OpClass c) noexcept {
  switch (c) {
    case OpClass::kQueryNegative: return "query_negative";
    case OpClass::kQueryPositive: return "query_positive";
    case OpClass::kInsert: return "insert";
    case OpClass::kDelete: return "delete";
  }
  return "unknown";
}

class AccessStats {
 public:
  AccessStats() = default;

  // Filters are copy/movable; counters transfer as a relaxed snapshot
  // (atomics themselves are neither copyable nor movable).
  AccessStats(const AccessStats& other) noexcept { copy_from(other); }
  AccessStats& operator=(const AccessStats& other) noexcept {
    if (this != &other) copy_from(other);
    return *this;
  }

  void record(OpClass c, std::uint64_t words_touched,
              std::uint64_t hash_bits) noexcept {
    auto& b = buckets_[static_cast<unsigned>(c)];
    b.ops.inc();
    b.words.inc(words_touched);
    b.bits.inc(hash_bits);
  }

  /// Aggregated record for batch paths: `n` operations of class c that
  /// together touched `words_touched` words and consumed `hash_bits`
  /// bits. One trio of atomic adds instead of n — identical totals.
  void record_n(OpClass c, std::uint64_t n, std::uint64_t words_touched,
                std::uint64_t hash_bits) noexcept {
    if (n == 0) return;
    auto& b = buckets_[static_cast<unsigned>(c)];
    b.ops.inc(n);
    b.words.inc(words_touched);
    b.bits.inc(hash_bits);
  }

  /// True for the operations that should be latency-timed (one in
  /// kLatencySampleEvery). The tick is thread-local — an atomic tick
  /// would cost as much as the tallies it gates on machines with slow
  /// relaxed RMWs — so the sample rate holds per thread, across every
  /// AccessStats instance that thread touches. Always false when stats
  /// are compiled out, so callers skip the clock reads entirely.
  [[nodiscard]] bool should_sample() noexcept {
#ifdef MPCBF_DISABLE_ACCESS_STATS
    return false;
#else
    thread_local std::uint64_t tick = 0;
    return (tick++ % kLatencySampleEvery) == 0;
#endif
  }

  /// Records one sampled operation latency in nanoseconds.
  void record_latency(OpClass c, std::uint64_t ns) noexcept {
    latency_[static_cast<unsigned>(c)].record(ns);
  }

  /// Records one batch-query chunk's per-key average latency (ns).
  void record_batch_latency(std::uint64_t ns_per_key) noexcept {
    batch_latency_.record(ns_per_key);
  }

  void reset() noexcept {
    for (auto& b : buckets_) {
      b.ops.reset();
      b.words.reset();
      b.bits.reset();
    }
    for (auto& h : latency_) h.reset();
    batch_latency_.reset();
  }

  /// Folds `other`'s tallies into this instance (sharded filters
  /// aggregate their shards' stats through this).
  void merge(const AccessStats& other) noexcept {
    for (unsigned i = 0; i < kNumOpClasses; ++i) {
      buckets_[i].ops.inc(other.buckets_[i].ops.value());
      buckets_[i].words.inc(other.buckets_[i].words.value());
      buckets_[i].bits.inc(other.buckets_[i].bits.value());
      latency_[i].merge(other.latency_[i]);
    }
    batch_latency_.merge(other.batch_latency_);
  }

  [[nodiscard]] std::uint64_t ops(OpClass c) const noexcept {
    return buckets_[static_cast<unsigned>(c)].ops.value();
  }
  /// Total distinct-word touches across all operations of class c.
  [[nodiscard]] std::uint64_t words(OpClass c) const noexcept {
    return buckets_[static_cast<unsigned>(c)].words.value();
  }
  /// Total accounted hash bits across all operations of class c.
  [[nodiscard]] std::uint64_t bits(OpClass c) const noexcept {
    return buckets_[static_cast<unsigned>(c)].bits.value();
  }
  [[nodiscard]] const Histogram& latency(OpClass c) const noexcept {
    return latency_[static_cast<unsigned>(c)];
  }
  [[nodiscard]] const Histogram& batch_latency() const noexcept {
    return batch_latency_;
  }

  /// Mean distinct words touched per operation of class c (0 if none ran).
  [[nodiscard]] double mean_accesses(OpClass c) const noexcept {
    const auto& b = buckets_[static_cast<unsigned>(c)];
    const auto ops = b.ops.value();
    return ops == 0 ? 0.0
                    : static_cast<double>(b.words.value()) /
                          static_cast<double>(ops);
  }

  /// Mean hash bits consumed per operation of class c.
  [[nodiscard]] double mean_bandwidth(OpClass c) const noexcept {
    const auto& b = buckets_[static_cast<unsigned>(c)];
    const auto ops = b.ops.value();
    return ops == 0 ? 0.0
                    : static_cast<double>(b.bits.value()) /
                          static_cast<double>(ops);
  }

  /// Combined query statistics (positive + negative), the paper's
  /// "query overhead" row.
  [[nodiscard]] double mean_query_accesses() const noexcept {
    return combined_mean(&Bucket::words, 0, 1);
  }
  [[nodiscard]] double mean_query_bandwidth() const noexcept {
    return combined_mean(&Bucket::bits, 0, 1);
  }

  /// Combined insert+delete statistics, the paper's "update overhead" row.
  [[nodiscard]] double mean_update_accesses() const noexcept {
    return combined_mean(&Bucket::words, 2, 3);
  }
  [[nodiscard]] double mean_update_bandwidth() const noexcept {
    return combined_mean(&Bucket::bits, 2, 3);
  }

 private:
  struct Bucket {
    Counter ops;
    Counter words;
    Counter bits;
  };

  void copy_from(const AccessStats& other) noexcept {
    for (unsigned i = 0; i < kNumOpClasses; ++i) {
      buckets_[i].ops.reset();
      buckets_[i].ops.inc(other.buckets_[i].ops.value());
      buckets_[i].words.reset();
      buckets_[i].words.inc(other.buckets_[i].words.value());
      buckets_[i].bits.reset();
      buckets_[i].bits.inc(other.buckets_[i].bits.value());
      latency_[i] = other.latency_[i];
    }
    batch_latency_ = other.batch_latency_;
  }

  [[nodiscard]] double combined_mean(Counter Bucket::*field, unsigned a,
                                     unsigned b) const noexcept {
    const std::uint64_t ops =
        buckets_[a].ops.value() + buckets_[b].ops.value();
    return ops == 0 ? 0.0
                    : static_cast<double>((buckets_[a].*field).value() +
                                          (buckets_[b].*field).value()) /
                          static_cast<double>(ops);
  }

  std::array<Bucket, kNumOpClasses> buckets_{};
  std::array<Histogram, kNumOpClasses> latency_{};
  Histogram batch_latency_{};
};

}  // namespace mpcbf::metrics
