// Per-operation access accounting — the instrument behind the paper's
// Tables I–III and Fig. 11.
//
// Every filter in this repository records, for each operation it executes,
// (a) how many distinct memory words it touched and (b) how many hash bits
// it consumed ("access bandwidth" in the paper's terminology). Queries are
// split into negative/positive classes because query short-circuiting makes
// their costs differ (that is why the paper measures CBF at 2.1 — not 3.0 —
// accesses per query on IP traces).
//
// Counters are relaxed atomics so recording from const queries is safe
// under concurrent readers (filters hold an AccessStats as a `mutable`
// member and bump it from contains()). Relaxed ordering is sufficient:
// the counters are independent monotonic tallies, never used to
// synchronize other memory. Define MPCBF_DISABLE_ACCESS_STATS to compile
// recording out entirely on hot paths that cannot afford the atomic adds.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace mpcbf::metrics {

enum class OpClass : unsigned {
  kQueryNegative = 0,
  kQueryPositive = 1,
  kInsert = 2,
  kDelete = 3,
};

constexpr std::string_view to_string(OpClass c) noexcept {
  switch (c) {
    case OpClass::kQueryNegative: return "query-";
    case OpClass::kQueryPositive: return "query+";
    case OpClass::kInsert: return "insert";
    case OpClass::kDelete: return "delete";
  }
  return "?";
}

class AccessStats {
 public:
  AccessStats() = default;

  // Filters are copy/movable; counters transfer as a relaxed snapshot
  // (atomics themselves are neither copyable nor movable).
  AccessStats(const AccessStats& other) noexcept { copy_from(other); }
  AccessStats& operator=(const AccessStats& other) noexcept {
    if (this != &other) copy_from(other);
    return *this;
  }

  void record(OpClass c, std::uint64_t words_touched,
              std::uint64_t hash_bits) noexcept {
#ifdef MPCBF_DISABLE_ACCESS_STATS
    (void)c;
    (void)words_touched;
    (void)hash_bits;
#else
    auto& b = buckets_[static_cast<unsigned>(c)];
    b.ops.fetch_add(1, std::memory_order_relaxed);
    b.words.fetch_add(words_touched, std::memory_order_relaxed);
    b.bits.fetch_add(hash_bits, std::memory_order_relaxed);
#endif
  }

  void reset() noexcept {
    for (auto& b : buckets_) {
      b.ops.store(0, std::memory_order_relaxed);
      b.words.store(0, std::memory_order_relaxed);
      b.bits.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::uint64_t ops(OpClass c) const noexcept {
    return buckets_[static_cast<unsigned>(c)].ops.load(
        std::memory_order_relaxed);
  }

  /// Mean distinct words touched per operation of class c (0 if none ran).
  [[nodiscard]] double mean_accesses(OpClass c) const noexcept {
    const auto& b = buckets_[static_cast<unsigned>(c)];
    const auto ops = b.ops.load(std::memory_order_relaxed);
    return ops == 0 ? 0.0
                    : static_cast<double>(
                          b.words.load(std::memory_order_relaxed)) /
                          static_cast<double>(ops);
  }

  /// Mean hash bits consumed per operation of class c.
  [[nodiscard]] double mean_bandwidth(OpClass c) const noexcept {
    const auto& b = buckets_[static_cast<unsigned>(c)];
    const auto ops = b.ops.load(std::memory_order_relaxed);
    return ops == 0 ? 0.0
                    : static_cast<double>(
                          b.bits.load(std::memory_order_relaxed)) /
                          static_cast<double>(ops);
  }

  /// Combined query statistics (positive + negative), the paper's
  /// "query overhead" row.
  [[nodiscard]] double mean_query_accesses() const noexcept {
    return combined_mean(&Bucket::words, 0, 1);
  }
  [[nodiscard]] double mean_query_bandwidth() const noexcept {
    return combined_mean(&Bucket::bits, 0, 1);
  }

  /// Combined insert+delete statistics, the paper's "update overhead" row.
  [[nodiscard]] double mean_update_accesses() const noexcept {
    return combined_mean(&Bucket::words, 2, 3);
  }
  [[nodiscard]] double mean_update_bandwidth() const noexcept {
    return combined_mean(&Bucket::bits, 2, 3);
  }

 private:
  struct Bucket {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> words{0};
    std::atomic<std::uint64_t> bits{0};
  };

  void copy_from(const AccessStats& other) noexcept {
    for (unsigned i = 0; i < buckets_.size(); ++i) {
      buckets_[i].ops.store(
          other.buckets_[i].ops.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      buckets_[i].words.store(
          other.buckets_[i].words.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      buckets_[i].bits.store(
          other.buckets_[i].bits.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }

  [[nodiscard]] double combined_mean(std::atomic<std::uint64_t> Bucket::*field,
                                     unsigned a, unsigned b) const noexcept {
    const std::uint64_t ops =
        buckets_[a].ops.load(std::memory_order_relaxed) +
        buckets_[b].ops.load(std::memory_order_relaxed);
    return ops == 0
               ? 0.0
               : static_cast<double>(
                     (buckets_[a].*field).load(std::memory_order_relaxed) +
                     (buckets_[b].*field).load(std::memory_order_relaxed)) /
                     static_cast<double>(ops);
  }

  std::array<Bucket, 4> buckets_{};
};

}  // namespace mpcbf::metrics
