// Per-operation access accounting — the instrument behind the paper's
// Tables I–III and Fig. 11.
//
// Every filter in this repository records, for each operation it executes,
// (a) how many distinct memory words it touched and (b) how many hash bits
// it consumed ("access bandwidth" in the paper's terminology). Queries are
// split into negative/positive classes because query short-circuiting makes
// their costs differ (that is why the paper measures CBF at 2.1 — not 3.0 —
// accesses per query on IP traces).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace mpcbf::metrics {

enum class OpClass : unsigned {
  kQueryNegative = 0,
  kQueryPositive = 1,
  kInsert = 2,
  kDelete = 3,
};

constexpr std::string_view to_string(OpClass c) noexcept {
  switch (c) {
    case OpClass::kQueryNegative: return "query-";
    case OpClass::kQueryPositive: return "query+";
    case OpClass::kInsert: return "insert";
    case OpClass::kDelete: return "delete";
  }
  return "?";
}

class AccessStats {
 public:
  void record(OpClass c, std::uint64_t words_touched,
              std::uint64_t hash_bits) noexcept {
    auto& b = buckets_[static_cast<unsigned>(c)];
    b.ops += 1;
    b.words += words_touched;
    b.bits += hash_bits;
  }

  void reset() noexcept { buckets_ = {}; }

  [[nodiscard]] std::uint64_t ops(OpClass c) const noexcept {
    return buckets_[static_cast<unsigned>(c)].ops;
  }

  /// Mean distinct words touched per operation of class c (0 if none ran).
  [[nodiscard]] double mean_accesses(OpClass c) const noexcept {
    const auto& b = buckets_[static_cast<unsigned>(c)];
    return b.ops == 0 ? 0.0
                      : static_cast<double>(b.words) /
                            static_cast<double>(b.ops);
  }

  /// Mean hash bits consumed per operation of class c.
  [[nodiscard]] double mean_bandwidth(OpClass c) const noexcept {
    const auto& b = buckets_[static_cast<unsigned>(c)];
    return b.ops == 0 ? 0.0
                      : static_cast<double>(b.bits) /
                            static_cast<double>(b.ops);
  }

  /// Combined query statistics (positive + negative), the paper's
  /// "query overhead" row.
  [[nodiscard]] double mean_query_accesses() const noexcept {
    return combined_mean(&Bucket::words);
  }
  [[nodiscard]] double mean_query_bandwidth() const noexcept {
    return combined_mean(&Bucket::bits);
  }

  /// Combined insert+delete statistics, the paper's "update overhead" row.
  [[nodiscard]] double mean_update_accesses() const noexcept {
    return update_mean(&Bucket::words);
  }
  [[nodiscard]] double mean_update_bandwidth() const noexcept {
    return update_mean(&Bucket::bits);
  }

 private:
  struct Bucket {
    std::uint64_t ops = 0;
    std::uint64_t words = 0;
    std::uint64_t bits = 0;
  };

  [[nodiscard]] double combined_mean(std::uint64_t Bucket::*field)
      const noexcept {
    const auto& n = buckets_[0];
    const auto& p = buckets_[1];
    const std::uint64_t ops = n.ops + p.ops;
    return ops == 0 ? 0.0
                    : static_cast<double>(n.*field + p.*field) /
                          static_cast<double>(ops);
  }

  [[nodiscard]] double update_mean(std::uint64_t Bucket::*field)
      const noexcept {
    const auto& i = buckets_[2];
    const auto& d = buckets_[3];
    const std::uint64_t ops = i.ops + d.ops;
    return ops == 0 ? 0.0
                    : static_cast<double>(i.*field + d.*field) /
                          static_cast<double>(ops);
  }

  std::array<Bucket, 4> buckets_{};
};

}  // namespace mpcbf::metrics
