#include "metrics/registry.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace mpcbf::metrics {

namespace {

/// Prometheus metric-name grammar: [a-zA-Z_:][a-zA-Z0-9_:]*. Anything
/// else would silently break scrapes, so registration rejects it.
bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void append_escaped(std::string& out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// Series name as exported: name alone, or name{labels}.
std::string series_name(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

/// `name_bucket{labels,le="v"}` — labels may be empty.
std::string bucket_series(const std::string& name, const std::string& labels,
                          const std::string& le) {
  std::string out = name + "_bucket{";
  if (!labels.empty()) {
    out += labels;
    out += ",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

void write_header(std::ostream& os, const std::string& name,
                  const std::string& help, std::string_view type) {
  if (!help.empty()) {
    os << "# HELP " << name << " " << help << "\n";
  }
  os << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

std::string Registry::label_key(std::initializer_list<LabelView> labels) {
  std::vector<LabelView> sorted(labels);
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& [k, v] : sorted) {
    if (!key.empty()) key += ",";
    key.append(k);
    key += "=\"";
    append_escaped(key, v);
    key += "\"";
  }
  return key;
}

void Registry::claim_name(std::string_view name, Type type) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("invalid Prometheus metric name '" +
                                std::string(name) + "'");
  }
  const auto it = types_.find(name);
  if (it == types_.end()) {
    types_.emplace(std::string(name), type);
  } else if (it->second != type) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' re-registered as a different type");
  }
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           std::initializer_list<LabelView> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  claim_name(name, Type::kCounter);
  auto& family = counters_[std::string(name)];
  if (family.help.empty()) family.help = std::string(help);
  auto& cell = family.series[label_key(labels)];
  if (!cell) cell = std::make_unique<Counter>();
  return *cell;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::initializer_list<LabelView> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  claim_name(name, Type::kGauge);
  auto& family = gauges_[std::string(name)];
  if (family.help.empty()) family.help = std::string(help);
  auto& cell = family.series[label_key(labels)];
  if (!cell) cell = std::make_unique<Gauge>();
  return *cell;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::initializer_list<LabelView> labels) {
  std::lock_guard<std::mutex> lock(mu_);
  claim_name(name, Type::kHistogram);
  auto& family = histograms_[std::string(name)];
  if (family.help.empty()) family.help = std::string(help);
  auto& cell = family.series[label_key(labels)];
  if (!cell) cell = std::make_unique<Histogram>();
  return *cell;
}

void Registry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : counters_) {
    write_header(os, name, family.help, "counter");
    for (const auto& [labels, cell] : family.series) {
      os << series_name(name, labels) << " " << cell->value() << "\n";
    }
  }
  for (const auto& [name, family] : gauges_) {
    write_header(os, name, family.help, "gauge");
    for (const auto& [labels, cell] : family.series) {
      os << series_name(name, labels) << " " << cell->value() << "\n";
    }
  }
  for (const auto& [name, family] : histograms_) {
    write_header(os, name, family.help, "histogram");
    for (const auto& [labels, cell] : family.series) {
      std::uint64_t cumulative = 0;
      for (unsigned i = 0; i < Histogram::kNumBuckets; ++i) {
        const auto c = cell->bucket_count(i);
        if (c == 0) continue;  // sparse: only boundaries that hold samples
        cumulative += c;
        os << bucket_series(name, labels,
                            std::to_string(Histogram::bucket_upper(i)))
           << " " << cumulative << "\n";
      }
      os << bucket_series(name, labels, "+Inf") << " " << cell->count()
         << "\n";
      os << name << "_sum" << (labels.empty() ? "" : "{" + labels + "}")
         << " " << cell->sum() << "\n";
      os << name << "_count" << (labels.empty() ? "" : "{" + labels + "}")
         << " " << cell->count() << "\n";
    }
  }
}

void Registry::write_summary(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : counters_) {
    for (const auto& [labels, cell] : family.series) {
      os << series_name(name, labels) << " = " << cell->value() << "\n";
    }
  }
  for (const auto& [name, family] : gauges_) {
    for (const auto& [labels, cell] : family.series) {
      os << series_name(name, labels) << " = " << cell->value() << "\n";
    }
  }
  for (const auto& [name, family] : histograms_) {
    for (const auto& [labels, cell] : family.series) {
      os << series_name(name, labels) << ": count=" << cell->count()
         << " mean=" << cell->mean() << " p50=" << cell->quantile(0.50)
         << " p95=" << cell->quantile(0.95)
         << " p99=" << cell->quantile(0.99) << " max=" << cell->max()
         << "\n";
    }
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : counters_) {
    for (auto& [labels, cell] : family.series) cell->reset();
  }
  for (auto& [name, family] : gauges_) {
    for (auto& [labels, cell] : family.series) cell->reset();
  }
  for (auto& [name, family] : histograms_) {
    for (auto& [labels, cell] : family.series) cell->reset();
  }
}

std::size_t Registry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, family] : counters_) n += family.series.size();
  for (const auto& [name, family] : gauges_) n += family.series.size();
  for (const auto& [name, family] : histograms_) n += family.series.size();
  return n;
}

}  // namespace mpcbf::metrics
