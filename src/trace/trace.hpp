// Structured tracing — the "where did this operation's nanoseconds go"
// layer on top of the aggregate counters in src/metrics/.
//
// Design: each thread owns a fixed-capacity single-producer ring of POD
// events; the process-wide Tracer registers every ring and drains them
// (SPSC acquire/release, no locks on the hot path). Recording is guarded
// by one relaxed atomic load — tracing is *armed* explicitly (a debug /
// replay session, never always-on), so the disarmed cost on a query is a
// predicted-not-taken branch. When the owning thread outruns the
// collector the ring drops the event and counts it (dropped());
// drops are reported in the output, never silent.
//
// Output: Chrome trace-event JSON ("ph":"X" complete spans + "i"
// instants), loadable in chrome://tracing and Perfetto, plus a plain
// text timeline. Span names are static strings (no allocation, no
// copying on the hot path); one optional u64 argument per event carries
// structured data (level-walk depth, shard index, batch size).
//
// Instrumentation sites use the MPCBF_TRACE_* macros below. Compiling
// with MPCBF_DISABLE_TRACING replaces every macro with an inert no-op
// object — zero tracer references, zero codegen — mirroring
// MPCBF_DISABLE_ACCESS_STATS for the metrics layer (the filters are
// header-only, so the definition takes effect per translation unit).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/timer.hpp"

namespace mpcbf::trace {

enum class Category : std::uint8_t {
  kCore,       ///< filter hot paths (query/insert/erase/level walk)
  kIo,         ///< WAL append/flush/fsync, snapshot save/load
  kShard,      ///< ShardedMpcbf fan-out
  kMapReduce,  ///< mapreduce stage execution
  kTool,       ///< CLI / harness driver scopes
  kNet,        ///< mpcbfd server request handling / client RPCs
};

[[nodiscard]] constexpr const char* to_string(Category c) noexcept {
  switch (c) {
    case Category::kCore: return "core";
    case Category::kIo: return "io";
    case Category::kShard: return "shard";
    case Category::kMapReduce: return "mapreduce";
    case Category::kTool: return "tool";
    case Category::kNet: return "net";
  }
  return "?";
}

/// One recorded event. `name`/`arg_name` must be static-storage strings
/// (string literals at every call site); dur_ns == 0 marks an instant.
struct Event {
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  const char* name = nullptr;
  const char* arg_name = nullptr;
  std::uint64_t arg = 0;
  Category cat = Category::kCore;
};

/// An Event paired with the id of the thread ring it came from.
struct CollectedEvent {
  Event event;
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  /// Events a thread can buffer between drains. Power of two; at ~48
  /// bytes per event a ring is ~768 KiB, paid only by threads that
  /// record while armed.
  static constexpr std::size_t kRingCapacity = 16384;

  static Tracer& global();

  /// Recording gate, checked (relaxed) by every instrumentation site.
  [[nodiscard]] static bool armed() noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Starts/stops recording. arm() does not clear prior events —
  /// sessions can be stitched; call clear() for a fresh capture.
  void arm() noexcept { armed_.store(true, std::memory_order_relaxed); }
  void disarm() noexcept { armed_.store(false, std::memory_order_relaxed); }

  /// Records one event into the calling thread's ring (drops + counts
  /// when the ring is full). Call sites should gate on armed() first so
  /// the disarmed path never reaches here.
  void record(const Event& e);

  /// Moves every buffered event out of the thread rings into the
  /// collector's backlog and returns the backlog (oldest drain first;
  /// within a ring, record order). Thread-safe; concurrent recorders
  /// keep recording into the space this frees.
  const std::vector<CollectedEvent>& drain();

  /// Events dropped because a ring was full, process-wide, since the
  /// last clear().
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Drops the backlog and zeroes drop counters (rings stay registered).
  void clear();

  /// Drains and writes the Chrome trace-event JSON object
  /// ({"traceEvents":[...]}), loadable in chrome://tracing / Perfetto.
  /// Timestamps are rebased to the earliest event. Dropped-event counts
  /// are emitted as metadata instants so truncation is visible in the UI.
  void write_chrome_json(std::ostream& os);

  /// Drains and writes a plain one-line-per-event timeline, sorted by
  /// timestamp (diagnostic / test-friendly output).
  void write_timeline(std::ostream& os);

 private:
  Tracer() = default;

  struct ThreadRing;
  class RingHandle;

  ThreadRing& ring_for_this_thread();

  inline static std::atomic<bool> armed_{false};

  mutable std::mutex mu_;  // guards rings_ registration and backlog_/drain
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::vector<CollectedEvent> backlog_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span: captures the begin timestamp on construction and emits one
/// complete ("X") event on destruction. Construction checks the armed
/// gate once; a disarmed span costs one load + branch and never reads
/// the clock. `set_arg` attaches the span's structured argument (last
/// call wins) — safe to call whether or not the span is live.
class ScopedSpan {
 public:
  // Inline so a disarmed span compiles down to one relaxed load and an
  // untaken branch at the call site — no function call on the hot path.
  ScopedSpan(Category cat, const char* name) noexcept
      : name_(name), cat_(cat), live_(Tracer::armed()) {
    if (live_) t0_ = metrics::now_ns();
  }
  ~ScopedSpan() {
    if (live_) finish();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_arg(const char* arg_name, std::uint64_t value) noexcept {
    arg_name_ = arg_name;
    arg_ = value;
  }

  /// True when the tracer was armed at construction (events will be
  /// emitted) — lets call sites skip arg computation when idle.
  [[nodiscard]] bool live() const noexcept { return live_; }

 private:
  /// Cold path: builds the Event and hands it to the tracer.
  void finish();

  std::uint64_t t0_ = 0;
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  Category cat_ = Category::kCore;
  bool live_ = false;
};

/// Emits a zero-duration instant event (armed-gated like ScopedSpan).
void instant(Category cat, const char* name,
             const char* arg_name = nullptr, std::uint64_t arg = 0) noexcept;

/// Inert stand-ins the MPCBF_DISABLE_TRACING macros expand to: every
/// member is an empty inline, so instrumented call sites compile to
/// nothing without per-site #ifdefs.
struct NullSpan {
  void set_arg(const char*, std::uint64_t) const noexcept {}
  [[nodiscard]] bool live() const noexcept { return false; }
};

}  // namespace mpcbf::trace

// --- instrumentation macros ------------------------------------------------
//
// MPCBF_TRACE_SPAN(var, category, "name");   // RAII span named `var`
// var.set_arg("depth", depth);               // optional structured arg
// MPCBF_TRACE_INSTANT(category, "name");     // point event
//
// `category` is the bare enumerator name (kCore, kIo, ...).
#ifdef MPCBF_DISABLE_TRACING
#define MPCBF_TRACE_SPAN(var, category, name) \
  [[maybe_unused]] const ::mpcbf::trace::NullSpan var {}
#define MPCBF_TRACE_INSTANT(category, ...) \
  do {                                     \
  } while (false)
#else
#define MPCBF_TRACE_SPAN(var, category, name)   \
  ::mpcbf::trace::ScopedSpan var(               \
      ::mpcbf::trace::Category::category, name)
#define MPCBF_TRACE_INSTANT(category, ...)                                 \
  do {                                                                     \
    if (::mpcbf::trace::Tracer::armed()) {                                 \
      ::mpcbf::trace::instant(::mpcbf::trace::Category::category,          \
                              __VA_ARGS__);                                \
    }                                                                      \
  } while (false)
#endif
