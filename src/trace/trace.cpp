#include "trace/trace.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "metrics/timer.hpp"

namespace mpcbf::trace {

// Single-producer (owning thread) / single-consumer (drain, serialized
// by the Tracer mutex) bounded ring. The producer publishes a slot with
// a release store of head_; the consumer acquires head_, copies the
// slots out, then releases tail_ back to the producer. A full ring drops
// the event and counts it — recording must never block or reallocate.
struct Tracer::ThreadRing {
  explicit ThreadRing(std::uint32_t tid_in) : tid(tid_in) {}

  bool try_push(const Event& e) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= kRingCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots[head % kRingCapacity] = e;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: moves everything recorded so far into `sink`.
  void drain_into(std::vector<CollectedEvent>& sink) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      sink.push_back({slots[tail % kRingCapacity], tid});
    }
    tail_.store(tail, std::memory_order_release);
  }

  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  void reset_dropped() noexcept {
    dropped_.store(0, std::memory_order_relaxed);
  }

  const std::uint32_t tid;
  std::array<Event, kRingCapacity> slots{};
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

// Thread-local owner of one ring; keeps the ring alive (shared with the
// Tracer's registry) and caches the raw pointer so the steady-state
// record path is ring-lookup-free.
class Tracer::RingHandle {
 public:
  ThreadRing* ring = nullptr;
  std::shared_ptr<ThreadRing> owner;
};

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

Tracer::ThreadRing& Tracer::ring_for_this_thread() {
  thread_local RingHandle handle;
  if (handle.ring == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    handle.owner = std::make_shared<ThreadRing>(next_tid_++);
    handle.ring = handle.owner.get();
    rings_.push_back(handle.owner);
  }
  return *handle.ring;
}

void Tracer::record(const Event& e) { ring_for_this_thread().try_push(e); }

const std::vector<CollectedEvent>& Tracer::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    ring->drain_into(backlog_);
  }
  return backlog_;
}

std::uint64_t Tracer::dropped() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    std::vector<CollectedEvent> discard;
    ring->drain_into(discard);
    ring->reset_dropped();
  }
  backlog_.clear();
}

namespace {

/// JSON string escaping for names (static literals in practice, but the
/// writer must not be able to emit broken JSON regardless).
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Microsecond timestamp with nanosecond resolution kept as fraction
/// (Chrome's ts/dur unit is microseconds).
void write_us(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  os << buf;
}

std::vector<CollectedEvent> sorted_snapshot(
    const std::vector<CollectedEvent>& backlog) {
  std::vector<CollectedEvent> events(backlog);
  std::stable_sort(events.begin(), events.end(),
                   [](const CollectedEvent& a, const CollectedEvent& b) {
                     return a.event.ts_ns < b.event.ts_ns;
                   });
  return events;
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) {
  const auto events = sorted_snapshot(drain());
  const std::uint64_t drops = dropped();
  const std::uint64_t base =
      events.empty() ? 0 : events.front().event.ts_ns;
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"mpcbf\"}}";
  for (const auto& [e, tid] : events) {
    os << ",\n{";
    os << "\"name\":";
    write_json_string(os, e.name);
    os << ",\"cat\":\"" << to_string(e.cat) << "\"";
    if (e.dur_ns != 0) {
      os << ",\"ph\":\"X\",\"dur\":";
      write_us(os, e.dur_ns);
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    os << ",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
    write_us(os, e.ts_ns - base);
    if (e.arg_name != nullptr) {
      os << ",\"args\":{";
      write_json_string(os, e.arg_name);
      os << ":" << e.arg << "}";
    }
    os << "}";
  }
  if (drops != 0) {
    // Truncation must be visible in the viewer, not just in logs.
    const std::uint64_t end_ts =
        events.empty() ? 0 : events.back().event.ts_ns - base;
    os << ",\n{\"name\":\"trace.dropped_events\",\"cat\":\"tool\","
          "\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":";
    write_us(os, end_ts);
    os << ",\"args\":{\"count\":" << drops << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void Tracer::write_timeline(std::ostream& os) {
  const auto events = sorted_snapshot(drain());
  const std::uint64_t base =
      events.empty() ? 0 : events.front().event.ts_ns;
  for (const auto& [e, tid] : events) {
    os << "+" << (e.ts_ns - base) << "ns\tt" << tid << "\t["
       << to_string(e.cat) << "] " << e.name;
    if (e.dur_ns != 0) os << " dur=" << e.dur_ns << "ns";
    if (e.arg_name != nullptr) os << " " << e.arg_name << "=" << e.arg;
    os << "\n";
  }
  const std::uint64_t drops = dropped();
  if (drops != 0) os << "(" << drops << " events dropped)\n";
}

void ScopedSpan::finish() {
  Event e;
  e.ts_ns = t0_;
  // Sub-clock-resolution spans still need dur > 0 to render as "X"
  // complete events (dur 0 is the instant encoding).
  e.dur_ns = std::max<std::uint64_t>(1, metrics::now_ns() - t0_);
  e.name = name_;
  e.arg_name = arg_name_;
  e.arg = arg_;
  e.cat = cat_;
  Tracer::global().record(e);
}

void instant(Category cat, const char* name, const char* arg_name,
             std::uint64_t arg) noexcept {
  if (!Tracer::armed()) return;
  Event e;
  e.ts_ns = metrics::now_ns();
  e.name = name;
  e.arg_name = arg_name;
  e.arg = arg;
  e.cat = cat;
  Tracer::global().record(e);
}

}  // namespace mpcbf::trace
