// Aligned-text and CSV table emission for the experiment harnesses.
//
// Every bench binary prints its results both as a human-readable aligned
// table (stdout) and, when --csv <path> is given, as machine-readable CSV so
// figures can be regenerated from the raw series.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace mpcbf::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Starts a new row; subsequent add() calls fill its cells left-to-right.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  Table& add(const std::string& cell) {
    rows_.back().push_back(cell);
    return *this;
  }

  Table& add(const char* cell) { return add(std::string(cell)); }

  template <typename T>
  Table& add(T value) {
    std::ostringstream os;
    os << value;
    return add(os.str());
  }

  /// Fixed-precision numeric cell.
  Table& addf(double value, int precision = 4) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return add(os.str());
  }

  /// Scientific-notation cell, the natural format for false positive rates.
  Table& adde(double value, int precision = 3) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(precision) << value;
    return add(os.str());
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
           << cells[c];
      }
      os << '\n';
    };
    emit(headers_);
    std::size_t total = 2 * headers_.size();
    for (auto w : widths) total += w;
    os << std::string(total, '-') << '\n';
    for (const auto& r : rows_) emit(r);
  }

  void write_csv(const std::string& path) const {
    std::ofstream out(path);
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) out << ',';
        out << cells[c];
      }
      out << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
  }

  /// Prints the table and, when csv_path is non-empty, also writes CSV.
  void emit(const std::string& csv_path) const {
    print();
    if (!csv_path.empty()) {
      write_csv(csv_path);
      std::cout << "[csv written to " << csv_path << "]\n";
    }
  }

  /// Structured access for non-text emitters (JSON bench reports).
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpcbf::util
