// Minimal command-line flag parser for bench and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--name`. Unknown
// flags are an error so typos in experiment parameters fail loudly instead
// of silently running the wrong configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mpcbf::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv) {
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (!arg.starts_with("--")) {
        positional_.emplace_back(arg);
        continue;
      }
      arg.remove_prefix(2);
      if (auto eq = arg.find('='); eq != std::string_view::npos) {
        values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        values_[std::string(arg)] = argv[++i];
      } else {
        values_[std::string(arg)] = "true";
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.contains(name);
  }

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string default_value) const {
    auto it = values_.find(name);
    return it == values_.end() ? std::move(default_value) : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t default_value) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return std::stoll(it->second);
  }

  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t default_value) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return std::stoull(it->second);
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double default_value) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return std::stod(it->second);
  }

  [[nodiscard]] bool get_bool(const std::string& name,
                              bool default_value = false) const {
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    return it->second != "false" && it->second != "0";
  }

  /// Throws if any parsed flag name is not in `allowed` — call after all
  /// get_* calls with the full set of flags the binary understands.
  void reject_unknown(const std::vector<std::string>& allowed) const {
    for (const auto& [name, value] : values_) {
      bool ok = false;
      for (const auto& a : allowed) {
        if (a == name) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        throw std::invalid_argument("unknown flag --" + name);
      }
    }
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mpcbf::util
