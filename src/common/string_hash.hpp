// Transparent (heterogeneous) hash/equality for std::string-keyed maps,
// so std::string_view probes hit the map without materializing a
// temporary std::string per lookup (C++20 P0919 heterogeneous lookup
// for unordered containers). Used by the MPCBF overflow stash, whose
// find() sits on the query hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mpcbf::util {

struct StringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  [[nodiscard]] std::size_t operator()(const char* s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// string -> count map with allocation-free string_view lookups.
template <typename V>
using StringKeyMap =
    std::unordered_map<std::string, V, StringHash, std::equal_to<>>;

}  // namespace mpcbf::util
