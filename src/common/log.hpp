// Structured, leveled logging — the operator-facing event stream next to
// the aggregate counters (src/metrics/) and nanosecond spans (src/trace/).
//
// Design: one process-wide Logger with a relaxed-atomic level gate, so a
// below-threshold call site costs one load and an untaken branch — the
// same disarmed-path discipline as Tracer::armed(). Lines are logfmt by
// default (`ts=... level=... event=... key=value ...`) or JSON-lines,
// one complete line per write under a sink mutex so concurrent threads
// never interleave. Every call site carries its own rate limiter (a
// static SiteState behind the macro): at most kSiteBudget lines per
// second per site, with the suppressed count carried on the next
// admitted line — a log-storm (a peer in a reconnect loop, a saturated
// filter alarming every request) degrades to one line plus a count,
// never an unbounded write amplification.
//
// Field values are POD views (no allocation at the call site beyond the
// formatted line); `event` and field keys must be static-storage strings,
// mirroring trace.hpp's Event::name contract.
//
// Compiling with MPCBF_DISABLE_LOGGING replaces every MPCBF_LOG_* macro
// with an inert statement — zero logger references, zero codegen — the
// same convention as MPCBF_DISABLE_ACCESS_STATS / MPCBF_DISABLE_TRACING.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

#include "metrics/timer.hpp"

namespace mpcbf::log {

enum class Level : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< set_level(kOff) silences every site
};

[[nodiscard]] constexpr const char* to_string(Level l) noexcept {
  switch (l) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}

/// Parses "debug"/"info"/"warn"/"error"/"off"; returns false on anything
/// else (the caller decides whether that is fatal — mpcbf_tool rejects
/// the flag).
[[nodiscard]] inline bool parse_level(std::string_view s,
                                      Level& out) noexcept {
  if (s == "debug") out = Level::kDebug;
  else if (s == "info") out = Level::kInfo;
  else if (s == "warn") out = Level::kWarn;
  else if (s == "error") out = Level::kError;
  else if (s == "off") out = Level::kOff;
  else return false;
  return true;
}

/// One key=value pair. Keys must be static-storage strings; string
/// values are views that only need to outlive the log() call.
struct Field {
  enum class Kind : std::uint8_t { kU64, kI64, kF64, kStr, kBool, kHex };
  const char* key = nullptr;
  Kind kind = Kind::kU64;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double d = 0.0;
  std::string_view s;
};

[[nodiscard]] inline Field u64(const char* key, std::uint64_t v) noexcept {
  Field f;
  f.key = key;
  f.kind = Field::Kind::kU64;
  f.u = v;
  return f;
}
[[nodiscard]] inline Field i64(const char* key, std::int64_t v) noexcept {
  Field f;
  f.key = key;
  f.kind = Field::Kind::kI64;
  f.i = v;
  return f;
}
[[nodiscard]] inline Field f64(const char* key, double v) noexcept {
  Field f;
  f.key = key;
  f.kind = Field::Kind::kF64;
  f.d = v;
  return f;
}
[[nodiscard]] inline Field str(const char* key,
                               std::string_view v) noexcept {
  Field f;
  f.key = key;
  f.kind = Field::Kind::kStr;
  f.s = v;
  return f;
}
[[nodiscard]] inline Field boolean(const char* key, bool v) noexcept {
  Field f;
  f.key = key;
  f.kind = Field::Kind::kBool;
  f.u = v ? 1 : 0;
  return f;
}
/// Fixed 16-digit lowercase hex — the canonical rendering for trace and
/// session ids, so a grep for one id matches the wire, the log and
/// /tracez verbatim.
[[nodiscard]] inline Field hex(const char* key, std::uint64_t v) noexcept {
  Field f;
  f.key = key;
  f.kind = Field::Kind::kHex;
  f.u = v;
  return f;
}

/// Renders `v` as the canonical 16-digit lowercase hex id.
[[nodiscard]] inline std::string format_hex16(std::uint64_t v) {
  char buf[17];
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = kDigits[v & 0xF];
    v >>= 4;
  }
  buf[16] = '\0';
  return std::string(buf, 16);
}

/// Per-call-site rate-limiter state; the MPCBF_LOG_* macros declare one
/// static instance per site. Approximate and lock-free: a window race
/// can admit a handful of extra lines, never lose the suppressed count.
struct SiteState {
  std::atomic<std::uint64_t> window_start_ns{0};
  std::atomic<std::uint32_t> in_window{0};
  std::atomic<std::uint64_t> suppressed{0};
};

namespace detail {
/// The level gate lives at namespace scope (not inside the Logger
/// singleton) so a disarmed call site is one relaxed load + untaken
/// branch — no magic-static init guard on the hot path.
inline std::atomic<std::uint8_t> g_level{
    static_cast<std::uint8_t>(Level::kWarn)};
}  // namespace detail

/// True when a message at level `l` passes the process-wide gate.
[[nodiscard]] inline bool level_enabled(Level l) noexcept {
  return static_cast<std::uint8_t>(l) >=
         detail::g_level.load(std::memory_order_relaxed);
}

class Logger {
 public:
  enum class Format : std::uint8_t { kLogfmt, kJson };

  /// Lines one site may emit per second before suppression kicks in.
  static constexpr std::uint32_t kSiteBudget = 16;

  static Logger& global() {
    static Logger logger;
    return logger;
  }

  /// The level gate every site checks (relaxed — same discipline as
  /// Tracer::armed()). Default kWarn: library users see problems, not
  /// chatter; `mpcbfd serve` lowers it from --log-level.
  [[nodiscard]] bool enabled(Level l) const noexcept {
    return level_enabled(l);
  }
  [[nodiscard]] Level level() const noexcept {
    return static_cast<Level>(
        detail::g_level.load(std::memory_order_relaxed));
  }
  void set_level(Level l) noexcept {
    detail::g_level.store(static_cast<std::uint8_t>(l),
                          std::memory_order_relaxed);
  }

  void set_format(Format f) noexcept {
    format_.store(static_cast<std::uint8_t>(f),
                  std::memory_order_relaxed);
  }
  [[nodiscard]] Format format() const noexcept {
    return static_cast<Format>(format_.load(std::memory_order_relaxed));
  }

  /// Redirects output to `path` (append mode). Returns false and keeps
  /// the current sink when the file cannot be opened.
  bool open_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "ae");
    if (f == nullptr) f = std::fopen(path.c_str(), "a");
    if (f == nullptr) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ != nullptr && file_ != stderr) std::fclose(file_);
    file_ = f;
    return true;
  }

  /// Test hook: capture formatted lines instead of writing to the file
  /// sink. Pass nullptr to restore the file sink.
  void set_sink(std::function<void(std::string_view)> sink) {
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = std::move(sink);
  }

  /// Lines actually written (post rate limiting) / suppressed by rate
  /// limiting, process-wide.
  [[nodiscard]] std::uint64_t lines_written() const noexcept {
    return written_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t lines_suppressed() const noexcept {
    return total_suppressed_.load(std::memory_order_relaxed);
  }

  /// Formats and writes one line. Call through the MPCBF_LOG_* macros,
  /// which gate on enabled() and supply the per-site state; a null
  /// `site` skips rate limiting (tests, one-shot startup lines).
  void log(Level lvl, const char* event,
           std::initializer_list<Field> fields, SiteState* site) {
    std::uint64_t suppressed = 0;
    if (site != nullptr && !admit(*site, suppressed)) return;
    std::string line;
    line.reserve(160);
    if (format() == Format::kJson) {
      format_json(line, lvl, event, fields, suppressed);
    } else {
      format_logfmt(line, lvl, event, fields, suppressed);
    }
    line.push_back('\n');
    written_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (sink_) {
      sink_(line);
      return;
    }
    std::FILE* f = file_ != nullptr ? file_ : stderr;
    std::fwrite(line.data(), 1, line.size(), f);
    std::fflush(f);
  }

 private:
  Logger() = default;

  /// One-second fixed windows of kSiteBudget lines. On window roll the
  /// roller claims the accumulated suppressed count and reports it on
  /// its own (admitted) line.
  bool admit(SiteState& site, std::uint64_t& suppressed) {
    const std::uint64_t now = metrics::now_ns();
    std::uint64_t start = site.window_start_ns.load(std::memory_order_relaxed);
    if (start == 0 || now - start >= 1'000'000'000ull) {
      if (site.window_start_ns.compare_exchange_strong(
              start, now, std::memory_order_relaxed)) {
        site.in_window.store(1, std::memory_order_relaxed);
        suppressed = site.suppressed.exchange(0, std::memory_order_relaxed);
        return true;
      }
      // Another thread rolled the window; fall through and count
      // ourselves against the fresh budget.
    }
    if (site.in_window.fetch_add(1, std::memory_order_relaxed) + 1 <=
        kSiteBudget) {
      return true;
    }
    site.suppressed.fetch_add(1, std::memory_order_relaxed);
    total_suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// `ts=2026-01-01T00:00:00.123Z` — wall clock, UTC, millisecond
  /// resolution. The steady clock runs the rate limiter; the wall clock
  /// is what an operator greps against other systems' logs.
  static void append_timestamp(std::string& out) {
    std::timespec ts{};
    std::timespec_get(&ts, TIME_UTC);
    std::tm tm{};
    gmtime_r(&ts.tv_sec, &tm);
    char buf[40];
    const std::size_t n =
        std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm);
    out.append(buf, n);
    std::snprintf(buf, sizeof buf, ".%03ldZ", ts.tv_nsec / 1'000'000);
    out.append(buf);
  }

  static void append_double(std::string& out, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out.append(buf);
  }

  static void append_value(std::string& out, const Field& f) {
    char buf[24];
    switch (f.kind) {
      case Field::Kind::kU64:
        out.append(buf, static_cast<std::size_t>(std::snprintf(
                            buf, sizeof buf, "%llu",
                            static_cast<unsigned long long>(f.u))));
        break;
      case Field::Kind::kI64:
        out.append(buf, static_cast<std::size_t>(std::snprintf(
                            buf, sizeof buf, "%lld",
                            static_cast<long long>(f.i))));
        break;
      case Field::Kind::kF64:
        append_double(out, f.d);
        break;
      case Field::Kind::kBool:
        out.append(f.u != 0 ? "true" : "false");
        break;
      case Field::Kind::kHex:
        out.append(format_hex16(f.u));
        break;
      case Field::Kind::kStr:
        break;  // handled by the caller (quoting differs per format)
    }
  }

  /// logfmt value quoting: bare when the value is plain, double-quoted
  /// with backslash escapes otherwise.
  static void append_logfmt_str(std::string& out, std::string_view v) {
    bool plain = !v.empty();
    for (const char ch : v) {
      if (ch == ' ' || ch == '"' || ch == '=' || ch == '\\' ||
          ch == '\n' || ch == '\r' || ch == '\t') {
        plain = false;
        break;
      }
    }
    if (plain) {
      out.append(v);
      return;
    }
    out.push_back('"');
    for (const char ch : v) {
      switch (ch) {
        case '"': out.append("\\\""); break;
        case '\\': out.append("\\\\"); break;
        case '\n': out.append("\\n"); break;
        case '\r': out.append("\\r"); break;
        case '\t': out.append("\\t"); break;
        default: out.push_back(ch);
      }
    }
    out.push_back('"');
  }

  static void append_json_str(std::string& out, std::string_view v) {
    out.push_back('"');
    for (const char ch : v) {
      switch (ch) {
        case '"': out.append("\\\""); break;
        case '\\': out.append("\\\\"); break;
        case '\n': out.append("\\n"); break;
        case '\r': out.append("\\r"); break;
        case '\t': out.append("\\t"); break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(ch));
            out.append(buf);
          } else {
            out.push_back(ch);
          }
      }
    }
    out.push_back('"');
  }

  void format_logfmt(std::string& out, Level lvl, const char* event,
                     std::initializer_list<Field> fields,
                     std::uint64_t suppressed) {
    out.append("ts=");
    append_timestamp(out);
    out.append(" level=");
    out.append(to_string(lvl));
    out.append(" event=");
    append_logfmt_str(out, event);
    for (const Field& f : fields) {
      out.push_back(' ');
      out.append(f.key);
      out.push_back('=');
      if (f.kind == Field::Kind::kStr) {
        append_logfmt_str(out, f.s);
      } else {
        append_value(out, f);
      }
    }
    if (suppressed != 0) {
      out.append(" suppressed=");
      Field f = u64("suppressed", suppressed);
      append_value(out, f);
    }
  }

  void format_json(std::string& out, Level lvl, const char* event,
                   std::initializer_list<Field> fields,
                   std::uint64_t suppressed) {
    out.append("{\"ts\":\"");
    append_timestamp(out);
    out.append("\",\"level\":\"");
    out.append(to_string(lvl));
    out.append("\",\"event\":");
    append_json_str(out, event);
    for (const Field& f : fields) {
      out.push_back(',');
      append_json_str(out, f.key);
      out.push_back(':');
      switch (f.kind) {
        case Field::Kind::kStr:
          append_json_str(out, f.s);
          break;
        case Field::Kind::kHex: {
          out.push_back('"');
          out.append(format_hex16(f.u));
          out.push_back('"');
          break;
        }
        default:
          append_value(out, f);
      }
    }
    if (suppressed != 0) {
      out.append(",\"suppressed\":");
      Field f = u64("suppressed", suppressed);
      append_value(out, f);
    }
    out.push_back('}');
  }

  std::atomic<std::uint8_t> format_{
      static_cast<std::uint8_t>(Format::kLogfmt)};
  mutable std::mutex mu_;  // serializes sink writes (one line at a time)
  std::FILE* file_ = nullptr;  // nullptr = stderr
  std::function<void(std::string_view)> sink_;
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> total_suppressed_{0};
};

}  // namespace mpcbf::log

// --- call-site macros ------------------------------------------------------
//
// MPCBF_LOG_INFO("server.start", mpcbf::log::u64("port", port), ...);
//
// `event` and field keys must be string literals (static storage). Each
// expansion owns a static SiteState, so rate limiting is per source
// location. Under MPCBF_DISABLE_LOGGING every macro is an inert
// statement and its arguments are not evaluated.
#ifdef MPCBF_DISABLE_LOGGING
#define MPCBF_LOG_IMPL(level, ...) \
  do {                             \
  } while (false)
#else
#define MPCBF_LOG_IMPL(level, event, ...)                               \
  do {                                                                  \
    if (::mpcbf::log::level_enabled(::mpcbf::log::Level::level))        \
        [[unlikely]] {                                                  \
      static ::mpcbf::log::SiteState mpcbf_log_site_state;              \
      ::mpcbf::log::Logger::global().log(::mpcbf::log::Level::level,    \
                                         event, {__VA_ARGS__},          \
                                         &mpcbf_log_site_state);        \
    }                                                                   \
  } while (false)
#endif

#define MPCBF_LOG_DEBUG(...) MPCBF_LOG_IMPL(kDebug, __VA_ARGS__)
#define MPCBF_LOG_INFO(...) MPCBF_LOG_IMPL(kInfo, __VA_ARGS__)
#define MPCBF_LOG_WARN(...) MPCBF_LOG_IMPL(kWarn, __VA_ARGS__)
#define MPCBF_LOG_ERROR(...) MPCBF_LOG_IMPL(kError, __VA_ARGS__)
