// Wall-clock timing helper for the experiment harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace mpcbf::util {

/// Monotonic stopwatch. `elapsed_*()` may be called repeatedly; `reset()`
/// restarts the epoch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mpcbf::util
