#include "common/thread_pool.hpp"

namespace mpcbf::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;  // already stopped
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace mpcbf::util
