// Deterministic pseudo-random number generation for workloads and tests.
//
// All randomness in this repository flows through these generators so that
// every experiment is reproducible from a single 64-bit seed printed by the
// harness. We avoid <random>'s engines for the hot paths because their state
// and distribution code is heavier than needed for workload synthesis.
#pragma once

#include <cstdint>
#include <limits>

namespace mpcbf::util {

/// SplitMix64 (Steele, Lea, Flood 2014). Used to seed other generators and
/// as a cheap stateless mixer: `SplitMix64::mix(x)` is a bijective 64-bit
/// finalizer with full avalanche.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Stateless avalanche mix of a single value.
  static constexpr std::uint64_t mix(std::uint64_t z) noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). The workhorse generator for workload
/// synthesis: fast, 256-bit state, passes BigCrush. Satisfies
/// UniformRandomBitGenerator so it can also drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace mpcbf::util
