// Eager physical-page release for buffers about to be freed.
//
// Freeing a drained segment's word array hands the bytes back to the
// allocator, but glibc keeps small-and-medium chunks resident in its
// arena indefinitely — a server that grew to N segments and compacted
// back down still holds the peak RSS. madvise(MADV_DONTNEED) on the
// buffer's page-aligned interior returns the physical pages to the OS
// immediately while leaving the mapping (and the allocator's chunk
// bookkeeping around the buffer) untouched: the region stays valid
// memory that simply rereads as zeroes, which is fine for a buffer
// whose next event is its own free().
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace mpcbf::util {

/// Drops the resident pages fully inside [p, p+n): the range is rounded
/// *inward* to page boundaries so bytes the allocator may own just
/// outside the buffer are never touched. Returns the bytes advised (0
/// when no full page fits or the platform lacks madvise). The caller
/// must treat the buffer's contents as destroyed.
inline std::size_t drop_resident_pages(void* p, std::size_t n) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  if (p == nullptr || n == 0) return 0;
  static const auto page =
      static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t first = (addr + page - 1) & ~(page - 1);
  const std::uintptr_t last = (addr + n) & ~(page - 1);
  if (last <= first) return 0;
  if (::madvise(reinterpret_cast<void*>(first), last - first,
                MADV_DONTNEED) != 0) {
    return 0;
  }
  return last - first;
#else
  (void)p;
  (void)n;
  return 0;
#endif
}

}  // namespace mpcbf::util
