// Fixed-size thread pool used by the MapReduce engine and parallel benches.
//
// Deliberately simple (mutex + condition variable, FIFO queue): the
// experiment hosts have few cores and the tasks we submit are coarse
// (whole map/reduce partitions), so a lock-free or work-stealing design
// would add risk without measurable benefit. See CP.1/CP.20 of the C++
// Core Guidelines: data is handed to tasks by value, joins are RAII.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mpcbf::util {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks and joins all workers, after which
  /// submit() throws. Idempotent; the destructor calls it. Lets an
  /// owner (e.g. net::Server during graceful shutdown) end the pool's
  /// lifetime at a chosen point instead of at scope exit.
  void stop();

  /// Enqueues a task; the returned future resolves when it completes.
  /// Throws std::runtime_error after stop() — a task submitted to a
  /// stopped pool would never run, so accepting it silently (or
  /// crashing, as the old queue-after-notify-exit UB could) is worse
  /// than failing loudly.
  template <typename F>
  std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after stop");
      }
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Hardware concurrency, never zero.
  static std::size_t default_threads() noexcept {
    auto n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([i, &fn] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace mpcbf::util
