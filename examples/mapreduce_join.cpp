// Reduce-side join acceleration (the paper's Sec. V scenario): join a
// synthetic NBER-like citation stream against a patent table inside the
// in-process MapReduce engine, with and without filter pushdown, and
// report the Table-IV-style metrics.
//
// Run: ./build/examples/mapreduce_join [--patents N] [--citations N] [--hit-fraction F]
#include <iomanip>
#include <iostream>

#include "common/cli.hpp"
#include "core/mpcbf.hpp"
#include "filters/counting_bloom.hpp"
#include "mapreduce/join.hpp"
#include "workload/patent_data.hpp"

int main(int argc, char** argv) {
  using mpcbf::workload::PatentData;
  mpcbf::util::CliArgs args(argc, argv);
  mpcbf::workload::PatentDataConfig dcfg;
  dcfg.num_patents = args.get_uint("patents", 20000);
  dcfg.num_citations = args.get_uint("citations", 300000);
  dcfg.hit_fraction = args.get_double("hit-fraction", 0.45);
  args.reject_unknown({"patents", "citations", "hit-fraction"});

  std::cout << "generating data: " << dcfg.num_patents << " patents, "
            << dcfg.num_citations << " citations, hit fraction "
            << dcfg.hit_fraction << "\n";
  const auto data = PatentData::generate(dcfg);

  // Filters over the (small) patent table, broadcast to every mapper —
  // the paper's DistributedCache pattern. Memory sized tight so filter
  // quality differences show. In software one memory access is a 64-byte
  // cache line, so the MPCBF word is 512 bits — at ~10 bits/key that
  // amortizes the hierarchy reservation (see bench_table4).
  const std::size_t filter_bits = dcfg.num_patents * 10;
  mpcbf::filters::CountingBloomFilter cbf(filter_bits, 3);
  mpcbf::core::MpcbfConfig mcfg;
  mcfg.memory_bits = filter_bits;
  mcfg.k = 3;
  mcfg.g = 1;
  mcfg.expected_n = dcfg.num_patents;
  mcfg.policy = mpcbf::core::OverflowPolicy::kStash;
  mpcbf::core::Mpcbf<512> mp1(mcfg);
  mcfg.g = 2;
  mpcbf::core::Mpcbf<512> mp2(mcfg);
  for (const auto& p : data.patents) {
    cbf.insert(p.id);
    mp1.insert(p.id);
    mp2.insert(p.id);
  }

  const auto report = [&](const char* name,
                          const mpcbf::mr::JoinStats& s) {
    const auto non_hits =
        s.filter_probes == 0
            ? 0
            : s.filter_probes - data.hit_count();
    const double fpr =
        non_hits == 0 ? 0.0
                      : static_cast<double>(s.filter_passes -
                                            data.hit_count()) /
                            static_cast<double>(non_hits);
    std::cout << std::left << std::setw(12) << name << " joined rows: "
              << s.joined_rows
              << "  map outputs: " << s.counters.map_output_records
              << "  filter fpr: " << std::fixed << std::setprecision(4)
              << fpr << "  total time: " << std::setprecision(3)
              << s.counters.total_seconds << "s\n";
    std::cout.unsetf(std::ios::fixed);
  };

  report("no filter", mpcbf::mr::run_reduce_side_join(data, nullptr));
  report("CBF", mpcbf::mr::run_reduce_side_join(
                    data, [&](std::string_view k) { return cbf.contains(k); }));
  report("MPCBF-1", mpcbf::mr::run_reduce_side_join(
                        data, [&](std::string_view k) { return mp1.contains(k); }));
  report("MPCBF-2", mpcbf::mr::run_reduce_side_join(
                        data, [&](std::string_view k) { return mp2.contains(k); }));
  return 0;
}
