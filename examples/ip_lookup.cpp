// IP route lookup with per-length membership filters — the line-card
// scenario from the paper's introduction (refs. [4-6]), end to end:
// build a BGP-shaped route table, install it into the LPM engine (one
// MPCBF per prefix length + exact hash tables), stream a lookup trace,
// and report how many "off-chip" exact-table probes the filters saved,
// including under route churn (withdraw/announce), which is what forces
// the filters to be *counting* filters.
//
// Run: ./build/examples/ip_lookup [--routes N] [--lookups N] [--churn N]
#include <iomanip>
#include <iostream>

#include "apps/lpm.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "workload/route_table.hpp"

int main(int argc, char** argv) {
  using mpcbf::workload::RouteTable;
  mpcbf::util::CliArgs args(argc, argv);
  mpcbf::workload::RouteTableConfig rcfg;
  rcfg.num_routes = args.get_uint("routes", 50000);
  const std::size_t lookups = args.get_uint("lookups", 300000);
  const std::size_t churn = args.get_uint("churn", 5000);
  args.reject_unknown({"routes", "lookups", "churn"});

  std::cout << "generating " << rcfg.num_routes << "-route table (BGP-like "
            << "length mix)...\n";
  const auto reference = RouteTable::generate(rcfg);

  mpcbf::apps::LpmConfig cfg;
  cfg.expected_per_length = rcfg.num_routes / 2;  // /24 dominates
  cfg.filter_bits_per_length =
      std::max<std::size_t>(1 << 14, rcfg.num_routes * 16);
  mpcbf::apps::LpmTable table(cfg);
  for (const auto& r : reference.routes()) {
    table.add_route(r.prefix, r.length, r.next_hop);
  }
  std::cout << "installed " << table.num_routes() << " routes; filter "
            << "memory " << table.filter_memory_bits() / 8 / 1024
            << " KiB total across 25 lengths\n";

  const auto trace = reference.make_lookup_trace(
      {.num_lookups = lookups, .hit_fraction = 0.8, .seed = 7});

  mpcbf::apps::LpmStats stats;
  mpcbf::util::Stopwatch watch;
  std::size_t matched = 0;
  for (const auto addr : trace) {
    if (table.lookup(addr, &stats).has_value()) ++matched;
  }
  const double seconds = watch.elapsed_seconds();

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "\nlookups:            " << stats.lookups << " (" << matched
            << " matched)\n";
  std::cout << "exact-table probes: " << stats.table_probes << " ("
            << stats.probes_per_lookup() << " per lookup vs 25.0 for "
            << "filterless scan)\n";
  std::cout << "wasted probes (filter false positives): "
            << stats.wasted_probes << " ("
            << 100.0 * static_cast<double>(stats.wasted_probes) /
                   static_cast<double>(stats.table_probes)
            << "% of probes)\n";
  std::cout << "throughput:         "
            << static_cast<double>(lookups) / seconds / 1e6 << " Mlookup/s "
            << "(software; on-chip filters would pipeline)\n";

  // Route churn: withdraw and re-announce a batch — deletion in action.
  mpcbf::util::Xoshiro256 rng(11);
  std::size_t withdrawn = 0;
  for (std::size_t i = 0; i < churn; ++i) {
    const auto& r =
        reference.routes()[rng.bounded(reference.routes().size())];
    if (table.remove_route(r.prefix, r.length)) ++withdrawn;
  }
  std::cout << "\nchurn: withdrew " << withdrawn << " routes, re-announced "
            << "them\n";
  for (const auto& r : reference.routes()) {
    table.add_route(r.prefix, r.length, r.next_hop);
  }
  // Spot-check correctness after churn.
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < 20000; ++i) {
    const auto addr = trace[i % trace.size()];
    const auto* expected = reference.lookup_reference(addr);
    const auto got = table.lookup(addr);
    const bool ok = expected == nullptr
                        ? !got.has_value()
                        : got.has_value() &&
                              got.value() == expected->next_hop;
    wrong += !ok;
  }
  std::cout << "post-churn spot check: " << (wrong == 0 ? "exact" : "WRONG")
            << " (" << wrong << " mismatches in 20000)\n";
  return wrong == 0 ? 0 : 1;
}
