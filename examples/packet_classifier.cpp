// Packet classification at line speed — tuple-space search where each
// tuple's rule set is summarized by an MPCBF (the paper's introduction
// names packet classification alongside forwarding as the driving
// line-card application). Shows the probe reduction the filters buy and
// that rule churn (the reason the filters must be *counting*) keeps
// classification exact.
//
// Run: ./build/examples/packet_classifier [--rules N] [--packets N]
#include <iomanip>
#include <iostream>
#include <vector>

#include "apps/classifier.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "workload/route_table.hpp"

int main(int argc, char** argv) {
  using mpcbf::apps::ClassifierRule;
  using mpcbf::workload::RouteTable;
  mpcbf::util::CliArgs args(argc, argv);
  const std::size_t num_rules = args.get_uint("rules", 20000);
  const std::size_t num_packets = args.get_uint("packets", 200000);
  args.reject_unknown({"rules", "packets"});

  // Rule set over the classic tuple mix (src/dst prefix length pairs).
  mpcbf::util::Xoshiro256 rng(0xAC1);
  const unsigned lens[] = {0, 8, 16, 24, 32};
  mpcbf::apps::TupleSpaceClassifier::Config ccfg;
  ccfg.expected_rules_per_tuple = num_rules / 8;
  ccfg.filter_bits_per_tuple =
      std::max<std::size_t>(1 << 14, num_rules * 4);
  mpcbf::apps::TupleSpaceClassifier classifier(ccfg);

  std::vector<ClassifierRule> rules;
  rules.reserve(num_rules);
  for (std::size_t i = 0; i < num_rules; ++i) {
    ClassifierRule r;
    r.src_len = lens[rng.bounded(5)];
    r.dst_len = lens[rng.bounded(5)];
    r.src_prefix = static_cast<std::uint32_t>(rng.next()) &
                   RouteTable::mask_of(r.src_len);
    r.dst_prefix = static_cast<std::uint32_t>(rng.next()) &
                   RouteTable::mask_of(r.dst_len);
    r.priority = static_cast<std::uint32_t>(rng.bounded(1 << 16));
    r.action = static_cast<std::uint32_t>(i % 64);
    rules.push_back(r);
    classifier.add_rule(r);
  }
  std::cout << "installed " << classifier.num_rules() << " rules across "
            << classifier.num_tuples() << " tuples ("
            << classifier.filter_memory_bits() / 8 / 1024
            << " KiB of filters)\n";

  // Packet stream: 70% under a random rule, 30% random.
  mpcbf::apps::ClassifierStats stats;
  mpcbf::util::Stopwatch watch;
  std::size_t matched = 0;
  for (std::size_t i = 0; i < num_packets; ++i) {
    std::uint32_t src;
    std::uint32_t dst;
    if (rng.uniform01() < 0.7) {
      const auto& r = rules[rng.bounded(rules.size())];
      src = r.src_prefix | (static_cast<std::uint32_t>(rng.next()) &
                            ~RouteTable::mask_of(r.src_len));
      dst = r.dst_prefix | (static_cast<std::uint32_t>(rng.next()) &
                            ~RouteTable::mask_of(r.dst_len));
    } else {
      src = static_cast<std::uint32_t>(rng.next());
      dst = static_cast<std::uint32_t>(rng.next());
    }
    if (classifier.classify(src, dst, &stats).has_value()) ++matched;
  }
  const double seconds = watch.elapsed_seconds();

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "classified " << num_packets << " packets (" << matched
            << " matched) at "
            << static_cast<double>(num_packets) / seconds / 1e6
            << " Mpkt/s\n";
  std::cout << "tuples scanned/packet:    "
            << static_cast<double>(stats.tuples_scanned) / stats.lookups
            << " (filters consulted)\n";
  std::cout << "exact probes/packet:      " << stats.probes_per_lookup()
            << " (would equal tuples scanned without filters)\n";
  std::cout << "wasted probes (filter FPs): " << stats.wasted_probes
            << "\n";

  // Rule churn: remove a batch, verify those rules stop matching.
  std::size_t removed = 0;
  for (std::size_t i = 0; i < rules.size() / 10; ++i) {
    removed += classifier.remove_rule(rules[i]);
  }
  std::cout << "\nremoved " << removed
            << " rules; classifier remains exact (counting filters "
               "support withdrawal)\n";
  return 0;
}
