// mpcbf_tool — command-line front end for building, querying, planning
// and persisting MPCBF filters. The kind of utility an operator uses to
// pre-build a filter offline (e.g. the patent-key filter of Sec. V) and
// ship it to consumers.
//
// Subcommands:
//   plan  --n N --fpr F [--accesses G]        size a filter from the model
//   build --keys FILE --out FILTER [...]      build & save from a key file
//   query --filter FILTER --keys FILE         membership-check a key file
//         [--batch]                           via the batched engine pipeline
//   merge --a F1 --b F2 --out F3              counter-wise union of filters
//   stats --filter FILTER | --dir D           layout + metric registry dump
//         [--keys FILE] [--prometheus]        (optionally after a workload)
//   verify --filter FILTER                    integrity-check a snapshot file
//   snapshot --dir D [--keys FILE] [...]      append to a durable dir & compact
//   recover --dir D [--out FILTER]            rebuild state from a durable dir
//   health --filter FILTER | --dir D          saturation / FPR-drift probe
//          [--probes N] [--warn S] [--critical S] [--prometheus]
//          [--watch] [--interval-ms MS]       re-probe until SIGINT/SIGTERM
//   trace --keys FILE [--filter F | --dir D]  record a keyfile replay to
//         [--out T.trace.json] [--timeline T] Chrome trace-event JSON
//   serve --dir D | --filter F | (sizing)     run mpcbfd (docs/server.md)
//         [--port P] [--bind A] [--workers N] until SIGINT/SIGTERM; durable
//         [--port-file PATH]                  dirs snapshot on shutdown
//         [--cores N]                         shared-nothing mode: the key
//                                             space splits across N worker-
//                                             owned shards (lock-free data
//                                             path); with --dir each shard
//                                             journals to D/shard-NN/
//         [--admin-port P] [--admin-bind A]   HTTP admin plane (/metrics,
//         [--admin-port-file PATH]            /healthz, /readyz, /statusz,
//                                             /tracez) on a separate port
//         [--log-level L] [--log-file PATH]   structured logging; L one of
//         [--log-json]                        debug|info|warn|error|off
//         [--slow-request-threshold-us N]     record requests over N us to
//                                             /tracez and the log
//         [--follow H:P[,H:P...]]             follower: tail a primary's
//                                             journal (requires --dir);
//                                             read-only until caught up
//         [--elastic]                         chain-of-segments backend that
//         [--route-bits N] [--grow-score S]   grows online (sizing flags
//         [--probe-stride N]                  size one segment); with --dir
//         [--max-segments N]                  the chain is WAL-journaled
//         [--maintenance-ms MS]               drain/gauge cadence
//         [--namespaces]                      multi-tenant registry: clients
//         [--ns-root DIR]                     create/drop namespaces over
//                                             the wire (docs/server.md);
//                                             durable namespaces live under
//                                             DIR/ns-<name>/ (default --dir)
//   topology --dir D                          segment chain of an elastic
//                                             durable dir + CRC digest
//   client --port P [--host H]                one batched RPC against a
//          --op query|insert|erase|est_count| running server
//               stats|health|snapshot|
//               replstatus
//          [--keys FILE] [--verbose]
//          [--ns NAME]                        scope filter ops to a namespace
//   ns <create|drop|list|tick>                namespace admin against a
//      --port P [--host H]                    running server
//      create: --name N [--kind memory|durable|decay|durable-decay]
//              [--memory-bits B] [--k K] [--g G] [--expected-n N]
//              [--generations G] [--tick-interval-ms MS]
//              [--max-keys N] [--max-memory-bytes B]
//      drop/tick: --name N
//   replstatus --port P [--host H]            replication watermarks; exit
//                                             0 only when caught up
//   proxy --target-port P [--target-host H]   chaos TCP forwarder
//         [--port P] [--port-file PATH]       (net/fault_proxy.hpp) for
//         [--delay-ms N]                      failure-injection tests
//
// Key files are newline-separated keys. A "durable dir" is a
// DurableMpcbf directory (write-ahead journal + checksummed snapshots,
// see docs/persistence.md); `snapshot` creates one on first use from the
// sizing flags (--memory-bits/--k/--g/--expected-n/--n-max).
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "core/durable_mpcbf.hpp"
#include "core/elastic_mpcbf.hpp"
#include "core/mpcbf.hpp"
#include "io/crc32c.hpp"
#include "metrics/export.hpp"
#include "metrics/health.hpp"
#include "model/planner.hpp"
#include "net/client.hpp"
#include "net/fault_proxy.hpp"
#include "net/http.hpp"
#include "net/namespace_registry.hpp"
#include "net/replication.hpp"
#include "net/server.hpp"
#include "net/shutdown.hpp"
#include "trace/trace.hpp"

namespace {

std::vector<std::string> read_keys(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open key file: " + path);
  std::vector<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) keys.push_back(line);
  }
  return keys;
}

int cmd_plan(const mpcbf::util::CliArgs& args) {
  mpcbf::model::PlanRequirements req;
  req.expected_n = args.get_uint("n", 100000);
  req.target_fpr = args.get_double("fpr", 1e-3);
  req.max_accesses = static_cast<unsigned>(args.get_uint("accesses", 1));
  const auto plan = mpcbf::model::plan_mpcbf(req);
  const auto cbf = mpcbf::model::plan_cbf(req);
  if (!plan.feasible) {
    std::cerr << "no feasible MPCBF configuration within the memory cap\n";
    return 1;
  }
  std::cout << "MPCBF-" << plan.g << ": " << plan.memory_bits / 8 / 1024
            << " KiB, k=" << plan.k << ", n_max=" << plan.n_max
            << ", b1=" << plan.b1 << ", predicted fpr="
            << plan.predicted_fpr << " ("
            << plan.bits_per_element(req.expected_n) << " bits/element)\n";
  if (cbf.feasible) {
    std::cout << "CBF (for comparison): " << cbf.memory_bits / 8 / 1024
              << " KiB at k=" << cbf.k << " (" << cbf.k
              << " memory accesses/query vs MPCBF's " << plan.g << ")\n";
  }
  return 0;
}

int cmd_build(const mpcbf::util::CliArgs& args) {
  const auto keys = read_keys(args.get_string("keys", ""));
  mpcbf::core::MpcbfConfig cfg;
  // --expected-n sizes the per-word capacity for a larger future
  // population (e.g. the total after merging several shards).
  cfg.expected_n = args.get_uint("expected-n", keys.size());
  cfg.k = static_cast<unsigned>(args.get_uint("k", 3));
  cfg.g = static_cast<unsigned>(args.get_uint("g", 1));
  cfg.memory_bits = args.get_uint("memory-bits", 0);
  if (cfg.memory_bits == 0) {
    // No size given: plan one from the target FPR.
    mpcbf::model::PlanRequirements req;
    req.expected_n = keys.size();
    req.target_fpr = args.get_double("fpr", 1e-3);
    req.max_accesses = cfg.g;
    const auto plan = mpcbf::model::plan_mpcbf(req);
    if (!plan.feasible) {
      std::cerr << "no feasible configuration for target fpr\n";
      return 1;
    }
    cfg.memory_bits = plan.memory_bits;
    cfg.k = plan.k;
    cfg.g = plan.g;
  }
  cfg.policy = mpcbf::core::OverflowPolicy::kStash;
  mpcbf::core::Mpcbf<64> filter(cfg);
  for (const auto& key : keys) {
    filter.insert(key);
  }
  const std::string out = args.get_string("out", "filter.mpcbf");
  std::ofstream os(out, std::ios::binary);
  filter.save(os);
  std::cout << "built " << out << ": " << filter.size() << " keys in "
            << filter.memory_bits() / 8 / 1024 << " KiB (k=" << filter.k()
            << ", g=" << filter.g() << ", b1=" << filter.b1()
            << ", stash=" << filter.stash_size() << ")\n";
  return 0;
}

int cmd_query(const mpcbf::util::CliArgs& args) {
  std::ifstream is(args.get_string("filter", "filter.mpcbf"),
                   std::ios::binary);
  if (!is) {
    std::cerr << "cannot open filter file\n";
    return 1;
  }
  auto filter = mpcbf::core::Mpcbf<64>::load(is);
  const auto keys = read_keys(args.get_string("keys", ""));
  std::size_t hits = 0;
  if (args.get_bool("batch")) {
    // Engine batch pipeline (derive → prefetch → resolve): same verdicts
    // as the scalar loop, fewer memory stalls on large filters.
    std::vector<std::uint8_t> out(keys.size());
    filter.contains_batch(keys, out);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      hits += out[i];
      if (args.get_bool("verbose")) {
        std::cout << (out[i] ? "+ " : "- ") << keys[i] << "\n";
      }
    }
  } else {
    for (const auto& key : keys) {
      const bool hit = filter.contains(key);
      hits += hit;
      if (args.get_bool("verbose")) {
        std::cout << (hit ? "+ " : "- ") << key << "\n";
      }
    }
  }
  std::cout << hits << "/" << keys.size() << " keys positive\n";
  return 0;
}

int cmd_merge(const mpcbf::util::CliArgs& args) {
  std::ifstream a_in(args.get_string("a", ""), std::ios::binary);
  std::ifstream b_in(args.get_string("b", ""), std::ios::binary);
  if (!a_in || !b_in) {
    std::cerr << "cannot open input filters (--a / --b)\n";
    return 1;
  }
  auto a = mpcbf::core::Mpcbf<64>::load(a_in);
  const auto b = mpcbf::core::Mpcbf<64>::load(b_in);
  if (!a.compatible(b)) {
    std::cerr << "filters have different layouts/seeds; cannot merge\n";
    return 1;
  }
  if (!a.merge(b)) {
    std::cerr << "merge would overflow a word; rebuild with more memory\n";
    return 1;
  }
  const std::string out = args.get_string("out", "merged.mpcbf");
  std::ofstream os(out, std::ios::binary);
  a.save(os);
  std::cout << "merged " << a.size() << " keys into " << out << "\n";
  return 0;
}

// Loads either a plain saved filter (v2-framed or bare v1) or a
// DurableMpcbf snapshot file, whose frame payload carries the durable
// magic and journal watermark ahead of the filter payload.
mpcbf::core::Mpcbf<64> load_any_filter(std::istream& is) {
  const auto magic = mpcbf::io::read_raw_magic(is);
  if (mpcbf::io::magic_equals(magic, mpcbf::io::kFrameMagic)) {
    std::istringstream payload(
        mpcbf::io::read_frame_payload_after_magic(is));
    const auto inner = mpcbf::io::read_raw_magic(payload);
    if (mpcbf::io::magic_equals(
            inner, mpcbf::core::DurableMpcbf<64>::kSnapshotMagic)) {
      (void)mpcbf::io::read_pod<std::uint64_t>(payload);  // watermark
    } else if (mpcbf::io::magic_equals(inner,
                                       mpcbf::core::Mpcbf<64>::kMagic)) {
      payload.seekg(0);  // plain save(): payload is the bare v1 stream
    } else {
      throw std::runtime_error("unrecognized frame payload magic");
    }
    return mpcbf::core::Mpcbf<64>::load_payload(payload);
  }
  if (mpcbf::io::magic_equals(magic, mpcbf::core::Mpcbf<64>::kMagic)) {
    is.seekg(0);
    return mpcbf::core::Mpcbf<64>::load(is);
  }
  throw std::runtime_error("unrecognized magic");
}

// Layout report for a saved filter (--filter) or a durable directory
// (--dir, recovered through the WAL — which also populates the journal/
// durability series). With --keys the key file is replayed as a query
// workload (scalar + batch passes, exercising both accounting paths)
// before the metric registry is dumped: Prometheus exposition format
// under --prometheus, the one-line-per-series human summary otherwise.
int cmd_stats(const mpcbf::util::CliArgs& args) {
  const std::string dir = args.get_string("dir", "");
  const auto filter = [&]() -> mpcbf::core::Mpcbf<64> {
    if (!dir.empty()) {
      return mpcbf::core::DurableMpcbf<64>::recover(dir);
    }
    const std::string path = args.get_string("filter", "filter.mpcbf");
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open filter file: " + path);
    return load_any_filter(is);
  }();
  std::cout << "words:          " << filter.num_words() << " x 64 bits\n"
            << "memory:         " << filter.memory_bits() / 8 / 1024
            << " KiB\n"
            << "k / g:          " << filter.k() << " / " << filter.g() << "\n"
            << "b1 / n_max:     " << filter.b1() << " / " << filter.n_max()
            << "\n"
            << "elements:       " << filter.size() << "\n"
            << "hierarchy bits: " << filter.total_hierarchy_bits() << " ("
            << "max/word " << filter.max_word_hierarchy_bits() << ")\n"
            << "stash entries:  " << filter.stash_size() << "\n"
            << "valid:          " << (filter.validate() ? "yes" : "NO") << "\n";
  const std::string key_file = args.get_string("keys", "");
  if (!key_file.empty()) {
    const auto keys = read_keys(key_file);
    std::size_t hits = 0;
    for (const auto& key : keys) {
      hits += filter.contains(key) ? 1 : 0;
    }
    std::vector<std::uint8_t> out(keys.size());
    filter.contains_batch(keys, out);
    std::cout << "workload:       " << keys.size() << " keys, " << hits
              << " positive\n";
  }
  auto& reg = mpcbf::metrics::Registry::global();
  mpcbf::metrics::publish_filter(reg, dir.empty() ? "mpcbf64" : "durable",
                                 filter);
  if (args.get_bool("prometheus")) {
    reg.write_prometheus(std::cout);
  } else {
    std::cout << "--- metrics ---\n";
    reg.write_summary(std::cout);
  }
  return 0;
}

int cmd_verify(const mpcbf::util::CliArgs& args) {
  const std::string path = args.get_string("filter", "filter.mpcbf");
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::cerr << "cannot open filter file: " << path << "\n";
    return 1;
  }
  try {
    const auto filter = load_any_filter(is);
    // load() already CRC-checked the frame and cross-validated the
    // state; validate() re-derives the word invariants as a belt.
    if (!filter.validate()) {
      std::cerr << path << ": INVALID (word state inconsistent)\n";
      return 1;
    }
    std::cout << path << ": ok (" << filter.size() << " elements, "
              << filter.memory_bits() / 8 / 1024 << " KiB, stash "
              << filter.stash_size() << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << path << ": CORRUPT: " << e.what() << "\n";
    return 1;
  }
}

mpcbf::core::MpcbfConfig durable_config(const mpcbf::util::CliArgs& args) {
  mpcbf::core::MpcbfConfig cfg;
  cfg.memory_bits = args.get_uint("memory-bits", 1 << 20);
  cfg.k = static_cast<unsigned>(args.get_uint("k", 3));
  cfg.g = static_cast<unsigned>(args.get_uint("g", 1));
  cfg.expected_n = args.get_uint("expected-n", 0);
  cfg.n_max = static_cast<unsigned>(args.get_uint("n-max", 0));
  if (cfg.expected_n == 0 && cfg.n_max == 0) {
    cfg.expected_n = args.get_uint("memory-bits", 1 << 20) / 16;
  }
  cfg.policy = mpcbf::core::OverflowPolicy::kStash;
  return cfg;
}

// Elastic chain config: sizing flags describe ONE segment; the chain
// flags describe when and how far it grows.
mpcbf::core::ElasticConfig elastic_config(const mpcbf::util::CliArgs& args) {
  mpcbf::core::ElasticConfig cfg;
  cfg.segment = durable_config(args);
  cfg.route_bits =
      static_cast<unsigned>(args.get_uint("route-bits", 6));
  cfg.grow_score = args.get_double("grow-score", 70.0);
  cfg.probe_stride = args.get_uint("probe-stride", 256);
  cfg.max_segments = args.get_uint("max-segments", 64);
  return cfg;
}

// Segment-chain report for an elastic durable dir: per-segment load,
// bucket ownership counts, and a CRC32C digest of the topology record —
// the line scripts compare across kill/recover to prove the chain came
// back byte-identical.
int cmd_topology(const mpcbf::util::CliArgs& args) {
  const std::string dir = args.get_string("dir", "");
  if (dir.empty()) {
    std::cerr << "topology: --dir is required\n";
    return 2;
  }
  const auto filter = mpcbf::core::DurableElasticMpcbf<64>::recover(dir);
  std::cout << "segments:       " << filter.live_segments() << " live / "
            << filter.num_segments() << " total\n"
            << "route buckets:  " << filter.num_buckets() << "\n"
            << "grows/retires:  " << filter.grows() << " / "
            << filter.retires() << "\n"
            << "elements:       " << filter.size() << "\n"
            << "memory:         " << filter.memory_bits() / 8 / 1024
            << " KiB\n"
            << "model FPR:      " << filter.model_fpr() << "\n"
            << "valid:          " << (filter.validate() ? "yes" : "NO")
            << "\n";
  std::vector<std::size_t> owned(filter.num_segments(), 0);
  for (std::uint32_t b = 0; b < filter.num_buckets(); ++b) {
    ++owned[filter.owner(b)];
  }
  for (std::size_t i = 0; i < filter.num_segments(); ++i) {
    const auto* seg = filter.segment(i);
    if (seg == nullptr) {
      std::cout << "  segment " << i << ": retired\n";
      continue;
    }
    std::cout << "  segment " << i << ": " << seg->size() << " elements, "
              << owned[i] << " buckets, score "
              << filter.segment_score(i) << "\n";
  }
  const std::string topo = filter.topology_bytes();
  char digest[16];
  std::snprintf(digest, sizeof digest, "%08x",
                mpcbf::io::crc32c(topo.data(), topo.size()));
  std::cout << "topology digest: " << digest << "\n";
  return filter.validate() ? 0 : 1;
}

int cmd_snapshot(const mpcbf::util::CliArgs& args) {
  const std::string dir = args.get_string("dir", "");
  if (dir.empty()) {
    std::cerr << "snapshot: --dir is required\n";
    return 2;
  }
  // An existing directory dictates its own layout; the sizing flags only
  // matter the first time, when the durable state is created.
  auto durable = [&] {
    try {
      return mpcbf::core::DurableMpcbf<64>::open_existing(dir);
    } catch (const std::runtime_error&) {
      return mpcbf::core::DurableMpcbf<64>(dir, durable_config(args));
    }
  }();
  const std::string key_file = args.get_string("keys", "");
  std::size_t appended = 0;
  if (!key_file.empty()) {
    for (const auto& key : read_keys(key_file)) {
      durable.insert(key);
      ++appended;
    }
  }
  durable.snapshot();
  std::cout << "snapshot " << dir << ": +" << appended << " keys, "
            << durable.size() << " total, journal compacted at seq "
            << durable.next_seq() - 1 << "\n";
  return 0;
}

int cmd_recover(const mpcbf::util::CliArgs& args) {
  const std::string dir = args.get_string("dir", "");
  if (dir.empty()) {
    std::cerr << "recover: --dir is required\n";
    return 2;
  }
  const auto filter = mpcbf::core::DurableMpcbf<64>::recover(dir);
  std::cout << "recovered " << dir << ": " << filter.size()
            << " elements, stash " << filter.stash_size() << ", valid: "
            << (filter.validate() ? "yes" : "NO") << "\n";
  const std::string out = args.get_string("out", "");
  if (!out.empty()) {
    std::ofstream os(out, std::ios::binary);
    filter.save(os);
    std::cout << "exported to " << out << "\n";
  }
  return 0;
}


// Health probe of a saved filter (--filter) or durable directory
// (--dir): publishes the mpcbf_health_* gauges, prints the sample, and
// exits non-zero when the saturation score crosses --critical.
int cmd_health(const mpcbf::util::CliArgs& args) {
  const std::string dir = args.get_string("dir", "");
  const auto filter = [&]() -> mpcbf::core::Mpcbf<64> {
    if (!dir.empty()) {
      return mpcbf::core::DurableMpcbf<64>::recover(dir);
    }
    const std::string path = args.get_string("filter", "filter.mpcbf");
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open filter file: " + path);
    return load_any_filter(is);
  }();

  mpcbf::metrics::HealthProber::Config cfg;
  cfg.filter_label = dir.empty() ? "mpcbf64" : "durable";
  cfg.warn_score = args.get_double("warn", 70.0);
  cfg.critical_score = args.get_double("critical", 90.0);
  cfg.fpr_probes = args.get_uint("probes", 4096);
  cfg.on_alarm = [](const mpcbf::metrics::HealthSample& s) {
    std::cerr << "ALARM [" << mpcbf::metrics::to_string(s.severity)
              << "]: saturation score " << s.saturation_score << "\n";
  };
  mpcbf::metrics::HealthProber prober(cfg);

  if (args.get_bool("watch")) {
    // Re-probe on an interval until SIGINT/SIGTERM (same latch as
    // `serve`), then flush the registry and exit 0 — so a supervised
    // watcher always leaves a final scrape behind.
    mpcbf::net::ShutdownSignal::install();
    const auto interval =
        std::chrono::milliseconds(args.get_uint("interval-ms", 1000));
    while (!mpcbf::net::ShutdownSignal::requested()) {
      const auto w = prober.probe(filter);
      std::cout << "health: score=" << w.saturation_score << " severity="
                << mpcbf::metrics::to_string(w.severity)
                << " fill=" << w.level1_fill << " fpr=" << w.measured_fpr
                << " drift=" << w.fpr_drift << std::endl;
      mpcbf::net::ShutdownSignal::wait(interval);
    }
    if (args.get_bool("prometheus")) {
      mpcbf::metrics::Registry::global().write_prometheus(std::cout);
    }
    std::cout << "health watch: shutdown signal received, exiting\n";
    return 0;
  }

  const auto s = prober.probe(filter);

  std::cout << "severity:              " << mpcbf::metrics::to_string(s.severity)
            << "\n"
            << "saturation score:      " << s.saturation_score << " / 100\n"
            << "level-1 fill:          " << s.level1_fill << "\n"
            << "hierarchy utilization: " << s.hierarchy_utilization << "\n"
            << "stash pressure:        " << s.stash_pressure << "\n"
            << "overflow rate:         " << s.overflow_rate << "\n"
            << "predicted FPR:         " << s.predicted_fpr << "\n"
            << "measured FPR:          " << s.measured_fpr << " ("
            << cfg.fpr_probes << " probes)\n"
            << "FPR drift:             " << s.fpr_drift << "\n";
  if (args.get_bool("prometheus")) {
    mpcbf::metrics::Registry::global().write_prometheus(std::cout);
  }
  return s.severity == mpcbf::metrics::Severity::kCritical ? 1 : 0;
}

// Records a traced keyfile replay. Against --filter the replay inserts
// then queries every key through an in-memory Mpcbf (core spans:
// insert, level walk, query, word fetch). Against --dir the keys run
// through a DurableMpcbf, adding the WAL append/group-commit/fsync and
// snapshot spans. Output is Chrome trace-event JSON for
// chrome://tracing / Perfetto; --timeline additionally writes the plain
// text view.
int cmd_trace(const mpcbf::util::CliArgs& args) {
  const auto keys = read_keys(args.get_string("keys", ""));
  const std::string out = args.get_string("out", "replay.trace.json");
  const std::string dir = args.get_string("dir", "");

  auto& tracer = mpcbf::trace::Tracer::global();
  tracer.clear();
  tracer.arm();
  std::size_t hits = 0;
  if (!dir.empty()) {
    auto durable = [&] {
      try {
        return mpcbf::core::DurableMpcbf<64>::open_existing(dir);
      } catch (const std::runtime_error&) {
        return mpcbf::core::DurableMpcbf<64>(dir, durable_config(args));
      }
    }();
    for (const auto& key : keys) durable.insert(key);
    for (const auto& key : keys) hits += durable.contains(key) ? 1 : 0;
    durable.snapshot();
  } else {
    const std::string path = args.get_string("filter", "");
    auto filter = [&]() -> mpcbf::core::Mpcbf<64> {
      if (!path.empty()) {
        std::ifstream is(path, std::ios::binary);
        if (!is) {
          throw std::runtime_error("cannot open filter file: " + path);
        }
        return load_any_filter(is);
      }
      mpcbf::core::MpcbfConfig cfg;
      cfg.memory_bits = 1 << 20;
      cfg.expected_n = std::max<std::size_t>(keys.size(), 1);
      cfg.policy = mpcbf::core::OverflowPolicy::kStash;
      return mpcbf::core::Mpcbf<64>(cfg);
    }();
    for (const auto& key : keys) filter.insert(key);
    for (const auto& key : keys) hits += filter.contains(key) ? 1 : 0;
  }
  tracer.disarm();

  std::ofstream os(out);
  if (!os) {
    std::cerr << "cannot write trace file: " << out << "\n";
    return 1;
  }
  const std::uint64_t dropped = tracer.dropped();
  tracer.write_chrome_json(os);
  std::cout << "traced " << keys.size() << " keys (" << hits
            << " positive) to " << out;
  if (dropped != 0) std::cout << " [" << dropped << " events dropped]";
  std::cout << "\n";
  const std::string timeline = args.get_string("timeline", "");
  if (!timeline.empty()) {
    // write_chrome_json drained the backlog; the timeline writer reuses
    // the same backlog, so re-emit from a fresh capture is not needed.
    std::ofstream ts(timeline);
    tracer.write_timeline(ts);
    std::cout << "timeline written to " << timeline << "\n";
  }
  tracer.clear();
  return 0;
}

// Splits "host:port[,host:port...]" into endpoints.
std::vector<mpcbf::net::Endpoint> parse_endpoints(
    const std::string& spec) {
  std::vector<mpcbf::net::Endpoint> endpoints;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.rfind(':');
    if (colon == std::string::npos || colon + 1 >= item.size()) {
      throw std::runtime_error("bad endpoint (want host:port): " + item);
    }
    mpcbf::net::Endpoint ep;
    ep.host = item.substr(0, colon);
    ep.port = static_cast<std::uint16_t>(
        std::stoul(item.substr(colon + 1)));
    endpoints.push_back(std::move(ep));
  }
  if (endpoints.empty()) {
    throw std::runtime_error("no endpoints in: " + spec);
  }
  return endpoints;
}

// Runs mpcbfd until SIGINT/SIGTERM. Backing modes:
//   --dir D      durable: WAL-first mutations, final snapshot on shutdown
//   --filter F   serve a pre-built snapshot (read-mostly deployments)
//   (neither)    fresh in-memory filter from the sizing flags
//   --dir D --follow H:P[,...]   durable follower: bootstraps from and
//                tails the primary's journal; serves queries only (the
//                HEALTH ready bit stays 0 until it has caught up)
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// resolved port for scripted callers (the CI smoke test uses it).
int cmd_serve(const mpcbf::util::CliArgs& args) {
  mpcbf::net::ShutdownSignal::install();

  // Logging first, so every later subsystem (backend open, replication,
  // the servers) emits through the configured sink. The library default
  // is warn; a daemon wants its lifecycle lines, so serve defaults to
  // info.
  {
    auto& logger = mpcbf::log::Logger::global();
    mpcbf::log::Level lvl = mpcbf::log::Level::kInfo;
    const std::string level_str = args.get_string("log-level", "info");
    if (!mpcbf::log::parse_level(level_str, lvl)) {
      std::cerr << "serve: bad --log-level (want "
                   "debug|info|warn|error|off): " << level_str << "\n";
      return 2;
    }
    logger.set_level(lvl);
    if (args.get_bool("log-json")) {
      logger.set_format(mpcbf::log::Logger::Format::kJson);
    }
    const std::string log_file = args.get_string("log-file", "");
    if (!log_file.empty() && !logger.open_file(log_file)) {
      std::cerr << "serve: cannot open --log-file " << log_file << "\n";
      return 2;
    }
  }

  const std::string dir = args.get_string("dir", "");
  const std::string filter_path = args.get_string("filter", "");
  const std::string follow = args.get_string("follow", "");
  const bool elastic = args.get_bool("elastic");
  const std::size_t cores = args.get_uint("cores", 1);
  if (cores > 1) {
    // Shared-nothing mode partitions the key space across per-worker
    // shards (docs/server.md#threading); modes that assume one filter
    // object are rejected up front with the reason.
    if (!follow.empty()) {
      std::cerr << "serve: --cores " << cores
                << " cannot combine with --follow: follower-side "
                   "sharding has not landed yet (the replication agent "
                   "applies one sequential stream into one durable "
                   "directory). Run the follower with --cores 1; a "
                   "sharded primary still serves REPLICATE to flat "
                   "followers.\n";
      return 2;
    }
    if (!filter_path.empty()) {
      std::cerr << "serve: --cores " << cores
                << " cannot combine with --filter: a pre-built snapshot "
                   "is one flat filter, not a shard set. Serve it with "
                   "--cores 1, or rebuild into a sharded --dir.\n";
      return 2;
    }
    if (elastic) {
      std::cerr << "serve: --cores " << cores
                << " cannot combine with --elastic yet (per-shard "
                   "segment chains are an open roadmap item)\n";
      return 2;
    }
  }
  if (!follow.empty() && dir.empty()) {
    std::cerr << "serve: --follow requires --dir (the follower's own "
                 "durable directory)\n";
    return 2;
  }
  if (elastic && !follow.empty()) {
    std::cerr << "serve: --elastic cannot combine with --follow yet "
                 "(the replication agent speaks flat durable dirs)\n";
    return 2;
  }
  if (elastic && !filter_path.empty()) {
    std::cerr << "serve: --elastic takes sizing flags or --dir, not "
                 "--filter\n";
    return 2;
  }

  std::shared_ptr<mpcbf::core::DurableMpcbf<64>> durable;
  std::shared_ptr<mpcbf::core::Mpcbf<64>> plain;
  std::shared_ptr<mpcbf::core::DurableElasticMpcbf<64>> elastic_durable;
  std::shared_ptr<mpcbf::core::ElasticMpcbf<64>> elastic_plain;
  std::unique_ptr<mpcbf::core::ElasticMaintainer> maintainer;
  std::unique_ptr<mpcbf::net::Replicator> replicator;
  std::vector<std::shared_ptr<mpcbf::core::Mpcbf<64>>> shard_plain;
  std::vector<std::shared_ptr<mpcbf::core::DurableMpcbf<64>>> shard_durable;
  std::shared_ptr<std::atomic<std::uint64_t>> seq_counter;
  mpcbf::net::ShardSet shard_set;
  mpcbf::net::FilterBackend backend;
  std::function<void(std::string&)> status_extra;  // extra /statusz lines
  if (cores > 1) {
    // Shared-nothing: split the sizing across the shards, so --cores N
    // at fixed flags serves the same aggregate capacity as --cores 1.
    mpcbf::core::MpcbfConfig shard_cfg = durable_config(args);
    shard_cfg.memory_bits = std::max<std::size_t>(
        shard_cfg.memory_bits / cores, std::size_t{64} * 64);
    if (shard_cfg.expected_n > 0) {
      shard_cfg.expected_n =
          std::max<std::size_t>(shard_cfg.expected_n / cores, 1);
    }
    const std::size_t probes = args.get_uint("probes", 512);
    if (!dir.empty()) {
      // One global sequence counter stamps every shard's WAL records
      // (DurableMpcbf Options::seq_source), so the per-shard journals
      // hold disjoint subsequences of one stream and REPLICATE can
      // merge them back into a consecutive tail.
      seq_counter = std::make_shared<std::atomic<std::uint64_t>>(0);
      mpcbf::core::DurableMpcbf<64>::Options dopts;
      dopts.seq_source = [ctr = seq_counter] {
        return ctr->fetch_add(1, std::memory_order_relaxed) + 1;
      };
      for (std::size_t i = 0; i < cores; ++i) {
        const std::filesystem::path sdir =
            std::filesystem::path(dir) /
            ("shard-" + std::string(i < 10 ? "0" : "") + std::to_string(i));
        auto shard = [&] {
          try {
            return mpcbf::core::DurableMpcbf<64>::open_shared(
                sdir, std::nullopt, dopts);
          } catch (const std::runtime_error&) {
            return mpcbf::core::DurableMpcbf<64>::open_shared(sdir, shard_cfg,
                                                              dopts);
          }
        }();
        shard_durable.push_back(shard);
        shard_set.shards.push_back(
            mpcbf::net::make_shard_backend(shard, i, probes));
      }
      // Resume the global sequence from the highest stamp any shard
      // made durable.
      std::uint64_t last = 0;
      for (const auto& s : shard_durable) {
        last = std::max(last, s->next_seq() - 1);
      }
      seq_counter->store(last, std::memory_order_relaxed);
      shard_set.seq_counter = seq_counter;
      shard_set.manifest = [base = std::filesystem::path(dir),
                            shards = shard_durable,
                            mu = std::make_shared<std::mutex>()](
                               std::span<const std::uint64_t> marks) {
        std::lock_guard<std::mutex> lock(*mu);
        {
          std::ofstream mf(base / "shards.manifest", std::ios::trunc);
          mf << "shards " << shards.size() << "\n";
          for (std::size_t i = 0; i < marks.size(); ++i) {
            mf << "shard-" << i << " watermark " << marks[i] << "\n";
          }
        }
        // Best-effort merged single-file filter next to the manifest:
        // read-only tools (stats/verify/query --filter) see the union
        // without understanding shards. Skipped when layouts diverged
        // or a counter would overflow (merge is all-or-nothing).
        mpcbf::core::Mpcbf<64> merged = shards.front()->filter();
        bool ok = true;
        for (std::size_t i = 1; i < shards.size() && ok; ++i) {
          ok = merged.merge(shards[i]->filter());
        }
        if (ok) {
          std::ofstream os(base / "merged.filter",
                           std::ios::binary | std::ios::trunc);
          merged.save(os);
        }
      };
      status_extra = [ctr = seq_counter, n = cores](std::string& out) {
        out += "cores: " + std::to_string(n) + "\n";
        out += "journal_next_seq: " +
               std::to_string(ctr->load(std::memory_order_relaxed) + 1) +
               "\n";
      };
    } else {
      for (std::size_t i = 0; i < cores; ++i) {
        auto shard = std::make_shared<mpcbf::core::Mpcbf<64>>(shard_cfg);
        shard_plain.push_back(shard);
        shard_set.shards.push_back(
            mpcbf::net::make_shard_backend(shard, i, probes));
      }
      status_extra = [n = cores](std::string& out) {
        out += "cores: " + std::to_string(n) + "\n";
      };
    }
  } else if (elastic) {
    // Chain backend: segments split online when the active segment's
    // health crosses the grow score; a background maintainer drains
    // cold segments and refreshes the mpcbf_elastic_* gauges under the
    // same lock the server's mutations take.
    auto mu = std::make_shared<std::shared_mutex>();
    const auto interval =
        std::chrono::milliseconds(args.get_uint("maintenance-ms", 1000));
    auto& reg = mpcbf::metrics::Registry::global();
    if (!dir.empty()) {
      elastic_durable = mpcbf::core::DurableElasticMpcbf<64>::open_shared(
          dir, elastic_config(args));
      backend = mpcbf::net::make_backend(elastic_durable, mu,
                                         args.get_uint("probes", 512));
      maintainer = std::make_unique<mpcbf::core::ElasticMaintainer>(
          [elastic_durable, mu, &reg] {
            std::unique_lock lock(*mu);
            (void)elastic_durable->compact_once();
            elastic_durable->publish_metrics(reg);
          },
          interval);
      status_extra = [elastic_durable, mu](std::string& out) {
        std::shared_lock lock(*mu);
        const auto& f = elastic_durable->filter();
        out += "elastic_segments: " +
               std::to_string(f.live_segments()) + "\n";
        out += "elastic_grows: " + std::to_string(f.grows()) + "\n";
        out += "elastic_retires: " + std::to_string(f.retires()) + "\n";
        out += "journal_next_seq: " +
               std::to_string(elastic_durable->next_seq()) + "\n";
      };
    } else {
      elastic_plain = std::make_shared<mpcbf::core::ElasticMpcbf<64>>(
          elastic_config(args));
      backend = mpcbf::net::make_backend(elastic_plain, mu,
                                         args.get_uint("probes", 512));
      maintainer = std::make_unique<mpcbf::core::ElasticMaintainer>(
          [elastic_plain, mu, &reg] {
            std::unique_lock lock(*mu);
            (void)elastic_plain->compact_once();
            elastic_plain->publish_metrics(reg);
          },
          interval);
      status_extra = [elastic_plain, mu](std::string& out) {
        std::shared_lock lock(*mu);
        out += "elastic_segments: " +
               std::to_string(elastic_plain->live_segments()) + "\n";
        out += "elastic_grows: " +
               std::to_string(elastic_plain->grows()) + "\n";
        out += "elastic_retires: " +
               std::to_string(elastic_plain->retires()) + "\n";
      };
    }
  } else if (!dir.empty()) {
    durable = [&] {
      try {
        return mpcbf::core::DurableMpcbf<64>::open_shared(dir);
      } catch (const std::runtime_error&) {
        return mpcbf::core::DurableMpcbf<64>::open_shared(
            dir, durable_config(args));
      }
    }();
    auto mu = std::make_shared<std::shared_mutex>();
    backend = mpcbf::net::make_backend(durable, mu,
                                       args.get_uint("probes", 512));
    status_extra = [durable, mu](std::string& out) {
      std::shared_lock lock(*mu);
      out += "journal_next_seq: " +
             std::to_string(durable->next_seq()) + "\n";
    };
    if (!follow.empty()) {
      mpcbf::net::Replicator::Options ropts;
      ropts.primaries = parse_endpoints(follow);
      replicator = std::make_unique<mpcbf::net::Replicator>(durable, mu,
                                                            ropts);
      // A follower is a read-only replica: mutations must go to the
      // primary, or the sequence streams would fork.
      backend.insert_batch = nullptr;
      backend.erase_batch = nullptr;
      mpcbf::net::Replicator* rp = replicator.get();
      backend.ready = [rp] { return rp->caught_up(); };
      backend.repl_status = [rp] { return rp->status(); };
      replicator->start();
    }
  } else if (!filter_path.empty()) {
    std::ifstream is(filter_path, std::ios::binary);
    if (!is) {
      std::cerr << "cannot open filter file: " << filter_path << "\n";
      return 1;
    }
    plain = std::make_shared<mpcbf::core::Mpcbf<64>>(load_any_filter(is));
    backend = mpcbf::net::make_backend(plain, args.get_uint("probes", 512));
  } else {
    plain = std::make_shared<mpcbf::core::Mpcbf<64>>(durable_config(args));
    backend = mpcbf::net::make_backend(plain, args.get_uint("probes", 512));
  }

  // Multi-tenant registry: wire-created namespaces, each its own filter
  // backend. Flat server only — shard ownership and per-namespace
  // backends do not compose.
  std::shared_ptr<mpcbf::net::NamespaceRegistry> registry;
  if (args.get_bool("namespaces")) {
    if (cores > 1) {
      std::cerr << "serve: --namespaces cannot combine with --cores "
                << cores << " (the registry needs the flat server)\n";
      return 2;
    }
    mpcbf::net::NamespaceRegistry::Options nopts;
    // Durable namespaces default to living next to the server's own
    // durable state; --ns-root overrides (and is the only way to get
    // durable namespaces on an otherwise in-memory server).
    nopts.root_dir = args.get_string("ns-root", dir);
    registry = std::make_shared<mpcbf::net::NamespaceRegistry>(nopts);
    auto base_extra = status_extra;
    status_extra = [registry, base_extra](std::string& out) {
      if (base_extra) base_extra(out);
      registry->status_lines(out);
    };
  }

  // The admin plane needs the backend's introspection hooks after the
  // data plane takes ownership of `backend`; std::function copies are
  // cheap and share the underlying state.
  const auto health_fn = backend.health;
  const auto ready_fn = backend.ready;
  const auto repl_fn = backend.repl_status;

  mpcbf::net::Server::Options opts;
  opts.bind_address = args.get_string("bind", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(args.get_uint("port", 0));
  opts.workers = cores > 1 ? cores : args.get_uint("workers", 2);
  opts.slow_request_threshold = std::chrono::microseconds(
      args.get_int("slow-request-threshold-us", -1));
  std::unique_ptr<mpcbf::net::Server> server_ptr =
      cores > 1
          ? std::make_unique<mpcbf::net::Server>(std::move(shard_set), opts)
          : std::make_unique<mpcbf::net::Server>(std::move(backend), opts);
  mpcbf::net::Server& server = *server_ptr;
  if (registry) server.set_namespace_registry(registry);
  server.start();

  const char* backend_kind =
      replicator             ? "follower"
      : !shard_durable.empty() ? "sharded durable"
      : !shard_plain.empty()   ? "sharded in-memory"
      : elastic_durable      ? "elastic durable"
      : elastic_plain        ? "elastic in-memory"
      : durable              ? "durable"
                             : "in-memory";
  std::cout << "mpcbfd listening on " << opts.bind_address << ":"
            << server.port() << " (";
  if (cores > 1) {
    std::cout << cores << " cores shared-nothing, ";
  } else {
    std::cout << opts.workers << " workers, ";
  }
  std::cout << backend_kind << " backend";
  if (registry) std::cout << ", namespaces enabled";
  std::cout << ")" << std::endl;
  const std::string port_file = args.get_string("port-file", "");
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << server.port() << "\n";
  }

  // Optional admin plane on its own port: /metrics, /healthz, /readyz,
  // /statusz, /tracez (docs/observability.md).
  std::unique_ptr<mpcbf::net::AdminServer> admin;
  if (args.has("admin-port")) {
    mpcbf::net::AdminServer::Options aopts;
    aopts.bind_address = args.get_string("admin-bind", "127.0.0.1");
    aopts.port =
        static_cast<std::uint16_t>(args.get_uint("admin-port", 0));
    admin = std::make_unique<mpcbf::net::AdminServer>(aopts);
    mpcbf::net::AdminEndpoints eps;
    eps.health = health_fn;
    mpcbf::net::Server* sp = &server;
    eps.ready = [sp, ready_fn] {
      return sp->running() && (!ready_fn || ready_fn());
    };
    eps.repl_status = repl_fn;
    eps.backend_kind = backend_kind;
    eps.status_extra = status_extra;
    eps.slow_ring = &server.slow_ring();
    mpcbf::net::register_admin_endpoints(*admin, std::move(eps));
    admin->start();
    std::cout << "admin plane on " << aopts.bind_address << ":"
              << admin->port() << std::endl;
    const std::string admin_port_file =
        args.get_string("admin-port-file", "");
    if (!admin_port_file.empty()) {
      std::ofstream pf(admin_port_file);
      pf << admin->port() << "\n";
    }
  }

  mpcbf::net::ShutdownSignal::wait(std::chrono::milliseconds(0));
  std::cout << "mpcbfd: shutdown signal received, draining" << std::endl;
  if (replicator) replicator->stop();
  if (maintainer) maintainer->stop();
  server.stop();
  if (admin) admin->stop();

  if (durable) {
    // In-flight mutations are already journaled (WAL-first); the final
    // snapshot just compacts recovery to one file read.
    durable->snapshot();
    std::cout << "final snapshot at seq " << durable->next_seq() - 1
              << "\n";
  }
  if (!shard_durable.empty()) {
    // server.stop() already wrote the per-shard snapshots and the
    // shards.manifest (single-threaded, after the workers joined).
    std::cout << "final sharded snapshot at seq "
              << seq_counter->load(std::memory_order_relaxed) << " ("
              << shard_durable.size() << " shards)\n";
  }
  if (elastic_durable) {
    elastic_durable->snapshot();
    elastic_durable->publish_metrics(mpcbf::metrics::Registry::global());
    std::cout << "final snapshot at seq " << elastic_durable->next_seq() - 1
              << " (" << elastic_durable->filter().live_segments()
              << " segments)\n";
  }
  if (elastic_plain) {
    elastic_plain->publish_metrics(mpcbf::metrics::Registry::global());
  }
  std::cout << "served " << server.requests_served() << " requests on "
            << server.connections_accepted() << " connections\n";
  if (args.get_bool("prometheus")) {
    mpcbf::metrics::Registry::global().write_prometheus(std::cout);
  } else {
    std::cout << "--- metrics ---\n";
    mpcbf::metrics::Registry::global().write_summary(std::cout);
  }
  mpcbf::trace::Tracer::global().clear();
  return 0;
}

// One client RPC against a running server: batched filter ops read the
// key file and print verdict counts; admin ops print the decoded reply.
int cmd_client(const mpcbf::util::CliArgs& args) {
  mpcbf::net::Client::Options opts;
  opts.host = args.get_string("host", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(args.get_uint("port", 0));
  if (opts.port == 0) {
    std::cerr << "client: --port is required\n";
    return 2;
  }
  mpcbf::net::Client client(opts);
  const std::string ns = args.get_string("ns", "");
  if (!ns.empty()) client.set_namespace(ns);
  const std::string op = args.get_string("op", "query");

  if (op == "stats") {
    const auto s = client.stats();
    std::cout << "elements:        " << s.elements << "\n"
              << "memory:          " << s.memory_bits / 8 / 1024 << " KiB\n"
              << "k / g:           " << s.k << " / " << s.g << "\n"
              << "b1 / n_max:      " << s.b1 << " / " << s.n_max << "\n"
              << "stash entries:   " << s.stash_entries << "\n"
              << "overflow events: " << s.overflow_events << "\n"
              << "requests served: " << s.requests_served << "\n";
    return 0;
  }
  if (op == "health") {
    const auto h = client.health();
    std::cout << "ready:            " << (h.ready ? "yes" : "no") << "\n"
              << "severity:         " << unsigned(h.severity) << "\n"
              << "saturation score: " << h.saturation_score << "\n"
              << "level-1 fill:     " << h.level1_fill << "\n"
              << "measured FPR:     " << h.measured_fpr << "\n"
              << "FPR drift:        " << h.fpr_drift << "\n"
              << "elements:         " << h.elements << "\n";
    return h.severity >= 2 ? 1 : 0;
  }
  if (op == "snapshot") {
    std::cout << "snapshot at seq " << client.snapshot() << "\n";
    return 0;
  }
  if (op == "replstatus") {
    const auto r = client.repl_status();
    const char* role = r.role == 1   ? "primary"
                       : r.role == 2 ? "follower"
                                     : "none";
    std::cout << "role:          " << role << "\n"
              << "caught up:     " << (r.caught_up ? "yes" : "no") << "\n"
              << "next seq:      " << r.next_seq << "\n"
              << "acked seq:     " << r.acked_seq << "\n"
              << "followers:     " << r.followers << "\n"
              << "min acked seq: " << r.min_acked_seq << "\n"
              << "lag records:   " << r.lag_records << "\n";
    return r.caught_up ? 0 : 1;
  }

  const auto keys = read_keys(args.get_string("keys", ""));
  if (op == "est_count") {
    const auto counts = client.est_count(keys);
    std::size_t positive = 0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      positive += counts[i] > 0 ? 1 : 0;
      total += counts[i];
      if (args.get_bool("verbose")) {
        std::cout << counts[i] << " " << keys[i] << "\n";
      }
    }
    std::cout << "est_count: " << positive << "/" << keys.size()
              << " positive, " << total << " total occurrences\n";
    return 0;
  }
  std::vector<std::uint8_t> verdicts;
  if (op == "query") {
    verdicts = client.query(keys);
  } else if (op == "insert") {
    verdicts = client.insert(keys);
  } else if (op == "erase") {
    verdicts = client.erase(keys);
  } else {
    std::cerr << "unknown --op: " << op << "\n";
    return 2;
  }
  std::size_t positive = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    positive += verdicts[i];
    if (args.get_bool("verbose")) {
      std::cout << (verdicts[i] ? "+ " : "- ") << keys[i] << "\n";
    }
  }
  std::cout << op << ": " << positive << "/" << keys.size()
            << " positive\n";
  return 0;
}

const char* ns_kind_name(std::uint8_t kind) {
  switch (static_cast<mpcbf::net::NsKind>(kind)) {
    case mpcbf::net::NsKind::kMemory: return "memory";
    case mpcbf::net::NsKind::kDurable: return "durable";
    case mpcbf::net::NsKind::kDecay: return "decay";
    case mpcbf::net::NsKind::kDurableDecay: return "durable-decay";
  }
  return "?";
}

// Namespace administration against a running server:
//   ns create --port P --name sessions --kind decay --generations 4 ...
//   ns drop   --port P --name sessions
//   ns list   --port P
//   ns tick   --port P --name sessions
int cmd_ns(const std::string& action, const mpcbf::util::CliArgs& args) {
  mpcbf::net::Client::Options opts;
  opts.host = args.get_string("host", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(args.get_uint("port", 0));
  if (opts.port == 0) {
    std::cerr << "ns " << action << ": --port is required\n";
    return 2;
  }
  mpcbf::net::Client client(opts);

  if (action == "list") {
    const auto rows = client.ns_list();
    std::cout << rows.size() << " namespace" << (rows.size() == 1 ? "" : "s")
              << "\n";
    for (const auto& row : rows) {
      std::cout << "  " << row.name << ": kind=" << ns_kind_name(row.info.kind)
                << " elements=" << row.info.elements
                << " memory_bits=" << row.info.memory_bits;
      if (row.info.decay_generations != 0) {
        std::cout << " generations="
                  << unsigned(row.info.decay_generations)
                  << " ticks=" << row.info.decay_ticks;
      }
      if (row.info.max_keys != 0) {
        std::cout << " max_keys=" << row.info.max_keys;
      }
      if (row.info.quota_rejections != 0) {
        std::cout << " quota_rejections=" << row.info.quota_rejections;
      }
      std::cout << "\n";
    }
    return 0;
  }

  const std::string name = args.get_string("name", "");
  if (name.empty()) {
    std::cerr << "ns " << action << ": --name is required\n";
    return 2;
  }
  if (action == "create") {
    mpcbf::net::NsConfigWire cfg;
    const std::string kind = args.get_string("kind", "memory");
    if (kind == "memory") {
      cfg.kind = static_cast<std::uint8_t>(mpcbf::net::NsKind::kMemory);
    } else if (kind == "durable") {
      cfg.kind = static_cast<std::uint8_t>(mpcbf::net::NsKind::kDurable);
    } else if (kind == "decay") {
      cfg.kind = static_cast<std::uint8_t>(mpcbf::net::NsKind::kDecay);
    } else if (kind == "durable-decay") {
      cfg.kind =
          static_cast<std::uint8_t>(mpcbf::net::NsKind::kDurableDecay);
    } else {
      std::cerr << "ns create: bad --kind (want "
                   "memory|durable|decay|durable-decay): " << kind << "\n";
      return 2;
    }
    cfg.k = static_cast<std::uint8_t>(args.get_uint("k", 3));
    cfg.g = static_cast<std::uint8_t>(args.get_uint("g", 1));
    cfg.decay_generations =
        static_cast<std::uint8_t>(args.get_uint("generations", 0));
    cfg.tick_interval_ms =
        static_cast<std::uint32_t>(args.get_uint("tick-interval-ms", 0));
    cfg.memory_bits = args.get_uint("memory-bits", 1 << 20);
    cfg.expected_n = args.get_uint("expected-n", 0);
    cfg.max_keys = args.get_uint("max-keys", 0);
    cfg.max_memory_bytes = args.get_uint("max-memory-bytes", 0);
    client.ns_create(name, cfg);
    std::cout << "created namespace " << name << " ("
              << ns_kind_name(cfg.kind) << ")\n";
    return 0;
  }
  if (action == "drop") {
    client.ns_drop(name);
    std::cout << "dropped namespace " << name << "\n";
    return 0;
  }
  if (action == "tick") {
    const std::uint64_t ticks = client.ns_tick(name);
    std::cout << "namespace " << name << " at decay tick " << ticks << "\n";
    return 0;
  }
  std::cerr << "ns: unknown action (want create|drop|list|tick): "
            << action << "\n";
  return 2;
}

// Replication watermarks of a running server. Exit code doubles as a
// poll predicate: 0 only when the node reports caught_up, so scripts
// can `until mpcbf_tool replstatus --port P; do sleep 0.2; done`.
int cmd_replstatus(const mpcbf::util::CliArgs& args) {
  mpcbf::net::Client::Options opts;
  opts.host = args.get_string("host", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(args.get_uint("port", 0));
  if (opts.port == 0) {
    std::cerr << "replstatus: --port is required\n";
    return 2;
  }
  mpcbf::net::Client client(opts);
  const auto r = client.repl_status();
  const char* role = r.role == 1   ? "primary"
                     : r.role == 2 ? "follower"
                                   : "none";
  std::cout << "role:          " << role << "\n"
            << "caught up:     " << (r.caught_up ? "yes" : "no") << "\n"
            << "next seq:      " << r.next_seq << "\n"
            << "acked seq:     " << r.acked_seq << "\n"
            << "followers:     " << r.followers << "\n"
            << "min acked seq: " << r.min_acked_seq << "\n"
            << "lag records:   " << r.lag_records << "\n";
  return r.caught_up ? 0 : 1;
}

// Chaos TCP forwarder between a client and a server, for scripted
// failure-injection (the CI replication-smoke job routes the insert
// stream through it). Runs until SIGINT/SIGTERM.
int cmd_proxy(const mpcbf::util::CliArgs& args) {
  mpcbf::net::ShutdownSignal::install();
  mpcbf::net::FaultProxy::Options opts;
  opts.listen_address = args.get_string("bind", "127.0.0.1");
  opts.port = static_cast<std::uint16_t>(args.get_uint("port", 0));
  opts.target_host = args.get_string("target-host", "127.0.0.1");
  opts.target_port =
      static_cast<std::uint16_t>(args.get_uint("target-port", 0));
  if (opts.target_port == 0) {
    std::cerr << "proxy: --target-port is required\n";
    return 2;
  }
  mpcbf::net::FaultProxy proxy(opts);
  proxy.start();
  proxy.set_delay(
      std::chrono::milliseconds(args.get_uint("delay-ms", 0)));
  std::cout << "fault proxy " << opts.listen_address << ":"
            << proxy.port() << " -> " << opts.target_host << ":"
            << opts.target_port << std::endl;
  const std::string port_file = args.get_string("port-file", "");
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << proxy.port() << "\n";
  }
  mpcbf::net::ShutdownSignal::wait(std::chrono::milliseconds(0));
  proxy.stop();
  std::cout << "proxy forwarded " << proxy.forwarded_bytes()
            << " bytes over " << proxy.connections() << " connections\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: mpcbf_tool "
                 "<plan|build|query|merge|stats|verify|snapshot|recover|"
                 "health|trace|serve|client|ns|replstatus|proxy|topology> "
                 "[flags]\n";
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "ns") {
    if (argc < 3) {
      std::cerr << "usage: mpcbf_tool ns <create|drop|list|tick> "
                   "--port P [flags]\n";
      return 2;
    }
    mpcbf::util::CliArgs ns_args(argc - 2, argv + 2);
    try {
      return cmd_ns(argv[2], ns_args);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  mpcbf::util::CliArgs args(argc - 1, argv + 1);
  try {
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "build") return cmd_build(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "snapshot") return cmd_snapshot(args);
    if (cmd == "recover") return cmd_recover(args);
    if (cmd == "health") return cmd_health(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "client") return cmd_client(args);
    if (cmd == "replstatus") return cmd_replstatus(args);
    if (cmd == "proxy") return cmd_proxy(args);
    if (cmd == "topology") return cmd_topology(args);
    std::cerr << "unknown subcommand: " << cmd << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
