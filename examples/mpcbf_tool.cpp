// mpcbf_tool — command-line front end for building, querying, planning
// and persisting MPCBF filters. The kind of utility an operator uses to
// pre-build a filter offline (e.g. the patent-key filter of Sec. V) and
// ship it to consumers.
//
// Subcommands:
//   plan  --n N --fpr F [--accesses G]        size a filter from the model
//   build --keys FILE --out FILTER [...]      build & save from a key file
//   query --filter FILTER --keys FILE         membership-check a key file
//   merge --a F1 --b F2 --out F3              counter-wise union of filters
//   stats --filter FILTER                     print a saved filter's layout
//
// Key files are newline-separated keys.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/mpcbf.hpp"
#include "model/planner.hpp"

namespace {

std::vector<std::string> read_keys(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open key file: " + path);
  std::vector<std::string> keys;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) keys.push_back(line);
  }
  return keys;
}

int cmd_plan(const mpcbf::util::CliArgs& args) {
  mpcbf::model::PlanRequirements req;
  req.expected_n = args.get_uint("n", 100000);
  req.target_fpr = args.get_double("fpr", 1e-3);
  req.max_accesses = static_cast<unsigned>(args.get_uint("accesses", 1));
  const auto plan = mpcbf::model::plan_mpcbf(req);
  const auto cbf = mpcbf::model::plan_cbf(req);
  if (!plan.feasible) {
    std::cerr << "no feasible MPCBF configuration within the memory cap\n";
    return 1;
  }
  std::cout << "MPCBF-" << plan.g << ": " << plan.memory_bits / 8 / 1024
            << " KiB, k=" << plan.k << ", n_max=" << plan.n_max
            << ", b1=" << plan.b1 << ", predicted fpr="
            << plan.predicted_fpr << " ("
            << plan.bits_per_element(req.expected_n) << " bits/element)\n";
  if (cbf.feasible) {
    std::cout << "CBF (for comparison): " << cbf.memory_bits / 8 / 1024
              << " KiB at k=" << cbf.k << " (" << cbf.k
              << " memory accesses/query vs MPCBF's " << plan.g << ")\n";
  }
  return 0;
}

int cmd_build(const mpcbf::util::CliArgs& args) {
  const auto keys = read_keys(args.get_string("keys", ""));
  mpcbf::core::MpcbfConfig cfg;
  // --expected-n sizes the per-word capacity for a larger future
  // population (e.g. the total after merging several shards).
  cfg.expected_n = args.get_uint("expected-n", keys.size());
  cfg.k = static_cast<unsigned>(args.get_uint("k", 3));
  cfg.g = static_cast<unsigned>(args.get_uint("g", 1));
  cfg.memory_bits = args.get_uint("memory-bits", 0);
  if (cfg.memory_bits == 0) {
    // No size given: plan one from the target FPR.
    mpcbf::model::PlanRequirements req;
    req.expected_n = keys.size();
    req.target_fpr = args.get_double("fpr", 1e-3);
    req.max_accesses = cfg.g;
    const auto plan = mpcbf::model::plan_mpcbf(req);
    if (!plan.feasible) {
      std::cerr << "no feasible configuration for target fpr\n";
      return 1;
    }
    cfg.memory_bits = plan.memory_bits;
    cfg.k = plan.k;
    cfg.g = plan.g;
  }
  cfg.policy = mpcbf::core::OverflowPolicy::kStash;
  mpcbf::core::Mpcbf<64> filter(cfg);
  for (const auto& key : keys) {
    filter.insert(key);
  }
  const std::string out = args.get_string("out", "filter.mpcbf");
  std::ofstream os(out, std::ios::binary);
  filter.save(os);
  std::cout << "built " << out << ": " << filter.size() << " keys in "
            << filter.memory_bits() / 8 / 1024 << " KiB (k=" << filter.k()
            << ", g=" << filter.g() << ", b1=" << filter.b1()
            << ", stash=" << filter.stash_size() << ")\n";
  return 0;
}

int cmd_query(const mpcbf::util::CliArgs& args) {
  std::ifstream is(args.get_string("filter", "filter.mpcbf"),
                   std::ios::binary);
  if (!is) {
    std::cerr << "cannot open filter file\n";
    return 1;
  }
  auto filter = mpcbf::core::Mpcbf<64>::load(is);
  const auto keys = read_keys(args.get_string("keys", ""));
  std::size_t hits = 0;
  for (const auto& key : keys) {
    const bool hit = filter.contains(key);
    hits += hit;
    if (args.get_bool("verbose")) {
      std::cout << (hit ? "+ " : "- ") << key << "\n";
    }
  }
  std::cout << hits << "/" << keys.size() << " keys positive\n";
  return 0;
}

int cmd_merge(const mpcbf::util::CliArgs& args) {
  std::ifstream a_in(args.get_string("a", ""), std::ios::binary);
  std::ifstream b_in(args.get_string("b", ""), std::ios::binary);
  if (!a_in || !b_in) {
    std::cerr << "cannot open input filters (--a / --b)\n";
    return 1;
  }
  auto a = mpcbf::core::Mpcbf<64>::load(a_in);
  const auto b = mpcbf::core::Mpcbf<64>::load(b_in);
  if (!a.compatible(b)) {
    std::cerr << "filters have different layouts/seeds; cannot merge\n";
    return 1;
  }
  if (!a.merge(b)) {
    std::cerr << "merge would overflow a word; rebuild with more memory\n";
    return 1;
  }
  const std::string out = args.get_string("out", "merged.mpcbf");
  std::ofstream os(out, std::ios::binary);
  a.save(os);
  std::cout << "merged " << a.size() << " keys into " << out << "\n";
  return 0;
}

int cmd_stats(const mpcbf::util::CliArgs& args) {
  std::ifstream is(args.get_string("filter", "filter.mpcbf"),
                   std::ios::binary);
  if (!is) {
    std::cerr << "cannot open filter file\n";
    return 1;
  }
  const auto filter = mpcbf::core::Mpcbf<64>::load(is);
  std::cout << "words:          " << filter.num_words() << " x 64 bits\n"
            << "memory:         " << filter.memory_bits() / 8 / 1024
            << " KiB\n"
            << "k / g:          " << filter.k() << " / " << filter.g() << "\n"
            << "b1 / n_max:     " << filter.b1() << " / " << filter.n_max()
            << "\n"
            << "elements:       " << filter.size() << "\n"
            << "hierarchy bits: " << filter.total_hierarchy_bits() << " ("
            << "max/word " << filter.max_word_hierarchy_bits() << ")\n"
            << "stash entries:  " << filter.stash_size() << "\n"
            << "valid:          " << (filter.validate() ? "yes" : "NO") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: mpcbf_tool <plan|build|query|stats> [flags]\n";
    return 2;
  }
  const std::string cmd = argv[1];
  mpcbf::util::CliArgs args(argc - 1, argv + 1);
  try {
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "build") return cmd_build(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "stats") return cmd_stats(args);
    std::cerr << "unknown subcommand: " << cmd << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
