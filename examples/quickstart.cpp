// Quickstart: the MPCBF public API in one page.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <iostream>
#include <string>

#include "core/mpcbf.hpp"

int main() {
  using mpcbf::core::Mpcbf;

  // A filter sized for ~10K elements in 1 Mb of memory, k=3 hash
  // functions, one memory access per operation (MPCBF-1). The per-word
  // capacity n_max is derived automatically from the paper's eq.-(11)
  // heuristic.
  auto filter = Mpcbf<64>::with_memory(/*memory_bits=*/1 << 20,
                                       /*k=*/3, /*g=*/1,
                                       /*expected_n=*/10000);

  std::cout << "MPCBF-1 configured: " << filter.num_words()
            << " words of 64 bits, first-level size b1 = " << filter.b1()
            << ", per-word capacity n_max = " << filter.n_max() << "\n\n";

  // Dynamic membership: insert, query, delete.
  filter.insert("alice");
  filter.insert("bob");
  filter.insert("bob");  // multiplicity is tracked

  std::cout << std::boolalpha;
  std::cout << "contains(alice) = " << filter.contains("alice") << "\n";
  std::cout << "contains(bob)   = " << filter.contains("bob") << "\n";
  std::cout << "contains(carol) = " << filter.contains("carol") << "\n";
  std::cout << "count(bob)      = " << filter.count("bob") << "\n\n";

  filter.erase("bob");
  std::cout << "after one erase: count(bob) = " << filter.count("bob")
            << ", contains(bob) = " << filter.contains("bob") << "\n";
  filter.erase("bob");
  std::cout << "after two:       contains(bob) = " << filter.contains("bob")
            << "\n\n";

  // The access metrics behind the paper's Tables I-III come for free.
  const auto& stats = filter.stats();
  std::cout << "mean memory accesses per query:  "
            << stats.mean_query_accesses() << "\n";
  std::cout << "mean memory accesses per update: "
            << stats.mean_update_accesses() << "\n";
  std::cout << "mean hash bits per query:        "
            << stats.mean_query_bandwidth() << "\n";
  return 0;
}
