// Flow-measurement scenario (the paper's Sec. IV-D motivation): a router
// line card tracks a set of monitored flows in a compact filter and tests
// every arriving packet against it. Compares the standard CBF and MPCBF-1
// on the same synthetic backbone trace: accuracy, memory accesses per
// packet, and throughput.
//
// Run: ./build/examples/flow_accounting [--packets N] [--flows N] [--memory-kb N]
#include <iostream>
#include <unordered_set>

#include "common/cli.hpp"
#include "common/stopwatch.hpp"
#include "core/mpcbf.hpp"
#include "filters/counting_bloom.hpp"
#include "workload/flow_trace.hpp"

int main(int argc, char** argv) {
  using mpcbf::workload::FlowTrace;
  mpcbf::util::CliArgs args(argc, argv);
  mpcbf::workload::FlowTraceConfig tcfg;
  tcfg.total_packets = args.get_uint("packets", 500000);
  tcfg.unique_flows = args.get_uint("flows", 30000);
  tcfg.seed = args.get_uint("seed", 0xCA1DA);
  const std::size_t memory_bits = args.get_uint("memory-kb", 128) * 8192;
  args.reject_unknown({"packets", "flows", "seed", "memory-kb"});

  std::cout << "generating trace: " << tcfg.total_packets << " packets, "
            << tcfg.unique_flows << " unique flows...\n";
  const auto trace = FlowTrace::generate(tcfg);

  // Monitor the most recently seen half of the flows.
  const std::size_t monitored_n = tcfg.unique_flows / 2;
  mpcbf::filters::CountingBloomFilter cbf(memory_bits, 3);
  // Stash policy: a monitored flow must never be dropped by a rare word
  // overflow, or the line card silently stops accounting it.
  mpcbf::core::MpcbfConfig mcfg;
  mcfg.memory_bits = memory_bits;
  mcfg.k = 3;
  mcfg.g = 1;
  mcfg.expected_n = monitored_n;
  mcfg.policy = mpcbf::core::OverflowPolicy::kStash;
  mpcbf::core::Mpcbf<64> mp(mcfg);
  std::unordered_set<std::uint64_t> monitored;
  for (std::size_t i = 0; i < monitored_n; ++i) {
    const auto flow = trace.unique_flows()[i];
    monitored.insert(flow);
    const auto key = FlowTrace::key_view(flow);
    cbf.insert(key);
    mp.insert(key);
  }
  if (mp.stash_size() != 0) {
    std::cout << "(" << mp.stash_size()
              << " flows spilled to the overflow stash)\n";
  }

  auto run = [&](auto& filter, const char* name) {
    filter.stats().reset();
    std::uint64_t matched = 0;
    std::uint64_t false_pos = 0;
    std::uint64_t non_members = 0;
    mpcbf::util::Stopwatch watch;
    for (std::size_t i = 0; i < trace.packets().size(); ++i) {
      const bool hit = filter.contains(trace.packet_key(i));
      if (hit) ++matched;
      if (!monitored.contains(trace.packets()[i])) {
        ++non_members;
        if (hit) ++false_pos;
      }
    }
    const double seconds = watch.elapsed_seconds();
    std::cout << name << ": matched " << matched << "/"
              << trace.packets().size() << " packets, fpr="
              << (non_members
                      ? static_cast<double>(false_pos) / non_members
                      : 0.0)
              << ", accesses/query="
              << filter.stats().mean_query_accesses() << ", throughput="
              << static_cast<double>(trace.packets().size()) / seconds / 1e6
              << " Mpkt/s\n";
  };

  run(cbf, "CBF     (k=3)");
  run(mp, "MPCBF-1 (k=3)");
  return 0;
}
