// Heavy-hitter detection on a synthetic backbone trace: find the top
// flows by packet count using an MPCBF-backed sketch, compare against
// exact ground truth, and demonstrate sliding-window decay (the operation
// that requires a *counting* filter).
//
// Run: ./build/examples/heavy_hitters [--packets N] [--flows N] [--top N]
#include <cstring>
#include <iostream>
#include <unordered_map>

#include "apps/heavy_hitters.hpp"
#include "common/cli.hpp"
#include "workload/flow_trace.hpp"

int main(int argc, char** argv) {
  using mpcbf::workload::FlowTrace;
  mpcbf::util::CliArgs args(argc, argv);
  mpcbf::workload::FlowTraceConfig tcfg;
  tcfg.total_packets = args.get_uint("packets", 300000);
  tcfg.unique_flows = args.get_uint("flows", 20000);
  const std::size_t top_n = args.get_uint("top", 10);
  args.reject_unknown({"packets", "flows", "top"});

  std::cout << "generating trace: " << tcfg.total_packets << " packets, "
            << tcfg.unique_flows << " unique flows\n";
  const auto trace = FlowTrace::generate(tcfg);

  mpcbf::apps::HeavyHitterSketch::Config cfg;
  cfg.expected_distinct = tcfg.unique_flows;
  cfg.memory_bits = tcfg.unique_flows * 64;
  cfg.threshold = tcfg.total_packets / tcfg.unique_flows * 4;
  mpcbf::apps::HeavyHitterSketch sketch(cfg);

  std::unordered_map<std::uint64_t, std::uint64_t> exact;
  for (std::size_t i = 0; i < trace.packets().size(); ++i) {
    sketch.add(trace.packet_key(i));
    ++exact[trace.packets()[i]];
  }

  const auto hitters = sketch.top(top_n);
  std::cout << "\ntop-" << top_n << " flows (sketch estimate vs exact):\n";
  std::size_t overcounts = 0;
  std::size_t undercounts = 0;
  for (const auto& h : hitters) {
    std::uint64_t flow;
    std::memcpy(&flow, h.key.data(), sizeof flow);
    const std::uint64_t truth = exact[flow];
    std::cout << "  flow " << std::hex << flow << std::dec << "  est="
              << h.estimate << "  exact=" << truth << "\n";
    if (h.estimate > truth) ++overcounts;
    if (h.estimate < truth) ++undercounts;
  }
  std::cout << "\nestimates >= exact for " << (hitters.size() - undercounts)
            << "/" << hitters.size()
            << " hitters (conservative sketch; " << overcounts
            << " inflated by collisions)\n";
  if (undercounts != 0) {
    std::cerr << "ERROR: sketch undercounted — should be impossible\n";
    return 1;
  }

  // Sliding-window decay: remove the first half of the stream again; the
  // counts must drop accordingly (a plain Bloom filter cannot do this).
  for (std::size_t i = 0; i < trace.packets().size() / 2; ++i) {
    sketch.remove(trace.packet_key(i));
  }
  std::cout << "after aging out the first half: "
            << sketch.candidate_count() << " candidates remain (was "
            << hitters.size() << "+ before)\n";
  return 0;
}
