// Web-cache summary sharing — the scenario CBF was invented for (Fan et
// al.'s Summary Cache, the paper's ref. [3]): each proxy keeps a compact
// summary of its neighbours' cache contents and consults the summaries
// before forwarding a miss. Cache contents churn constantly, which is
// exactly why a *counting* filter (supporting deletion) is required.
//
// This example runs an LRU cache with an MPCBF-1 summary and measures how
// often the summary mis-predicts (false positives cost a wasted remote
// lookup; false negatives never happen).
//
// Run: ./build/examples/cache_summary [--requests N] [--objects N] [--capacity N]
#include <iostream>
#include <list>
#include <string>
#include <unordered_map>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/mpcbf.hpp"

namespace {

/// Minimal LRU cache that keeps its MPCBF summary in sync on every
/// admission and eviction.
class SummarizedLruCache {
 public:
  SummarizedLruCache(std::size_t capacity, std::size_t summary_bits)
      : capacity_(capacity), summary_(make_summary(capacity, summary_bits)) {}

  /// Admits `key`, evicting the LRU entry (and deleting it from the
  /// summary — the operation plain Bloom filters cannot do).
  void admit(const std::string& key) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (lru_.size() == capacity_) {
      summary_.erase(lru_.back());
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    index_[key] = lru_.begin();
    summary_.insert(key);
  }

  [[nodiscard]] bool cached(const std::string& key) const {
    return index_.contains(key);
  }
  [[nodiscard]] bool summary_says_cached(const std::string& key) const {
    return summary_.contains(key);
  }

 private:
  // A summary must never lose a member (a false negative means a peer
  // skips a cache that actually has the object), so rare word overflows
  // go to the stash instead of being rejected.
  static mpcbf::core::Mpcbf<64> make_summary(std::size_t capacity,
                                             std::size_t summary_bits) {
    mpcbf::core::MpcbfConfig cfg;
    cfg.memory_bits = summary_bits;
    cfg.k = 3;
    cfg.g = 1;
    cfg.expected_n = capacity;
    cfg.policy = mpcbf::core::OverflowPolicy::kStash;
    return mpcbf::core::Mpcbf<64>(cfg);
  }

  std::size_t capacity_;
  std::list<std::string> lru_;
  std::unordered_map<std::string, std::list<std::string>::iterator> index_;
  mpcbf::core::Mpcbf<64> summary_;
};

}  // namespace

int main(int argc, char** argv) {
  mpcbf::util::CliArgs args(argc, argv);
  const std::size_t requests = args.get_uint("requests", 200000);
  const std::size_t objects = args.get_uint("objects", 20000);
  const std::size_t capacity = args.get_uint("capacity", 5000);
  args.reject_unknown({"requests", "objects", "capacity"});

  SummarizedLruCache cache(capacity, capacity * 16);
  mpcbf::util::Xoshiro256 rng(0xCAFE);

  std::uint64_t summary_fp = 0;
  std::uint64_t summary_fn = 0;
  std::uint64_t lookups = 0;
  for (std::size_t r = 0; r < requests; ++r) {
    // Zipf-ish skew via squaring a uniform draw.
    const double u = rng.uniform01();
    const auto obj = static_cast<std::size_t>(u * u * objects);
    const std::string key = "obj-" + std::to_string(obj);

    // A peer proxy asks the summary before fetching remotely.
    ++lookups;
    const bool predicted = cache.summary_says_cached(key);
    const bool actual = cache.cached(key);
    if (predicted && !actual) ++summary_fp;
    if (!predicted && actual) ++summary_fn;

    cache.admit(key);
  }

  std::cout << "requests: " << requests << ", cache capacity: " << capacity
            << "\n";
  std::cout << "summary false positives: " << summary_fp << " ("
            << static_cast<double>(summary_fp) / lookups * 100 << "% of lookups)\n";
  std::cout << "summary false negatives: " << summary_fn
            << " (must be 0 — counting filters never lose members)\n";
  return summary_fn == 0 ? 0 : 1;
}
