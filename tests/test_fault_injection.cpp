// Corruption fault-injection harness. Exhaustively mutates persisted
// artifacts — every byte offset flipped (two masks) and every truncation
// length — and asserts the durability contract at each point:
//
//   * framed snapshots (Mpcbf, CBF): load throws; a single-byte flip is
//     a burst error <= 8 bits, which CRC32C detects unconditionally, so
//     nothing short of a clean load is ever accepted;
//   * journals: replay either throws (header damage) or yields an exact
//     prefix of the true record sequence (torn-tail semantics);
//   * crash points: a process death simulated at every durability-
//     critical step of DurableMpcbf (including around the snapshot
//     rename) loses no acknowledged mutation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/durable_mpcbf.hpp"
#include "core/mpcbf.hpp"
#include "filters/counting_bloom.hpp"
#include "io/journal.hpp"
#include "workload/string_sets.hpp"

namespace {

namespace fs = std::filesystem;
using mpcbf::core::DurableMpcbf;
using mpcbf::core::Mpcbf;
using mpcbf::core::MpcbfConfig;
using mpcbf::core::OverflowPolicy;
using mpcbf::io::Journal;
using mpcbf::io::JournalOp;
using mpcbf::io::JournalRecord;
using mpcbf::workload::generate_unique_strings;

constexpr unsigned char kFlipMasks[] = {0x01, 0x80};

std::string serialized_mpcbf(std::size_t* out_size = nullptr) {
  MpcbfConfig cfg;
  cfg.memory_bits = 1 << 16;
  cfg.k = 3;
  cfg.g = 1;
  cfg.expected_n = 3000;
  cfg.policy = OverflowPolicy::kStash;
  Mpcbf<64> filter(cfg);
  for (const auto& key : generate_unique_strings(2500, 6, 11)) {
    filter.insert(key);
  }
  if (out_size != nullptr) *out_size = filter.size();
  std::ostringstream os;
  filter.save(os);
  return os.str();
}

TEST(FaultInjection, MpcbfSnapshotEveryByteFlipRejected) {
  std::size_t true_size = 0;
  const std::string bytes = serialized_mpcbf(&true_size);
  std::size_t points = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const unsigned char mask : kFlipMasks) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      std::istringstream is(mutated);
      EXPECT_THROW((void)Mpcbf<64>::load(is), std::runtime_error)
          << "flip mask 0x" << std::hex << unsigned{mask} << " at offset "
          << std::dec << i;
      ++points;
    }
  }
  // The issue's floor for the harness: >= 10k distinct mutation points.
  EXPECT_GE(points, 10000u);
  // Sanity: the unmutated stream still loads to the state we built.
  std::istringstream is(bytes);
  EXPECT_EQ(Mpcbf<64>::load(is).size(), true_size);
}

TEST(FaultInjection, MpcbfSnapshotEveryTruncationRejected) {
  const std::string bytes = serialized_mpcbf();
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::istringstream is(bytes.substr(0, keep));
    EXPECT_THROW((void)Mpcbf<64>::load(is), std::runtime_error)
        << "kept " << keep << " of " << bytes.size();
  }
}

TEST(FaultInjection, CbfSnapshotFlipsAndTruncationsRejected) {
  mpcbf::filters::CountingBloomFilter cbf(1 << 12, 3);
  for (const auto& key : generate_unique_strings(200, 6, 12)) cbf.insert(key);
  std::ostringstream os;
  cbf.save(os);
  const std::string bytes = os.str();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    std::istringstream is(mutated);
    EXPECT_THROW((void)mpcbf::filters::CountingBloomFilter::load(is),
                 std::runtime_error)
        << "flip at offset " << i;
  }
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::istringstream is(bytes.substr(0, keep));
    EXPECT_THROW((void)mpcbf::filters::CountingBloomFilter::load(is),
                 std::runtime_error)
        << "kept " << keep;
  }
}

class JournalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mpcbf_fault_journal_" + std::string(::testing::UnitTest::
                                                     GetInstance()
                                                         ->current_test_info()
                                                         ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "journal.wal").string();
    Journal j(path_);
    for (int i = 0; i < 60; ++i) {
      const std::string key = "journal-key-" + std::to_string(i);
      const auto op = i % 4 == 0 ? JournalOp::kErase : JournalOp::kInsert;
      truth_.push_back({j.append(op, key), op, key});
    }
    j.flush(false);
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_mutated(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // The journal contract under arbitrary damage: replay throws, or it
  // yields an exact prefix of the records that were truly appended.
  void expect_prefix_or_throw(const std::string& context) const {
    std::vector<JournalRecord> records;
    try {
      records = Journal::replay(path_);
    } catch (const std::runtime_error&) {
      return;
    }
    ASSERT_LE(records.size(), truth_.size()) << context;
    for (std::size_t i = 0; i < records.size(); ++i) {
      ASSERT_EQ(records[i], truth_[i]) << context << " record " << i;
    }
  }

  fs::path dir_;
  std::string path_;
  std::string bytes_;
  std::vector<JournalRecord> truth_;
};

TEST_F(JournalFaultTest, EveryByteFlipYieldsPrefixOrThrows) {
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    for (const unsigned char mask : kFlipMasks) {
      std::string mutated = bytes_;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      write_mutated(mutated);
      expect_prefix_or_throw("flip at offset " + std::to_string(i));
    }
  }
}

TEST_F(JournalFaultTest, EveryTruncationYieldsPrefixOrThrows) {
  for (std::size_t keep = 0; keep < bytes_.size(); ++keep) {
    write_mutated(bytes_.substr(0, keep));
    expect_prefix_or_throw("kept " + std::to_string(keep));
  }
}

TEST_F(JournalFaultTest, RecordDamageNeverForgesRecords) {
  // Flipping record bytes (past the header) must never *invent* data:
  // any surviving record must byte-match the truth. Already implied by
  // the prefix contract; this narrows it to the record region and
  // additionally checks that damage at record r keeps records < r.
  const std::size_t header = Journal::kHeaderBytes;
  for (std::size_t i = header; i < bytes_.size(); i += 7) {
    std::string mutated = bytes_;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    write_mutated(mutated);
    const auto records = Journal::replay(path_);  // record damage: no throw
    ASSERT_LT(records.size(), truth_.size()) << "flip at " << i;
    for (std::size_t r = 0; r < records.size(); ++r) {
      ASSERT_EQ(records[r], truth_[r]) << "flip at " << i;
    }
  }
}

// --- crash-point simulation ---------------------------------------------

struct SimulatedCrash {};

class CrashPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mpcbf_crash_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
  }
  void TearDown() override { fs::remove_all(dir_); }

  static MpcbfConfig config() {
    MpcbfConfig cfg;
    cfg.memory_bits = 1 << 15;
    cfg.k = 3;
    cfg.g = 1;
    cfg.expected_n = 500;
    cfg.policy = OverflowPolicy::kStash;
    return cfg;
  }

  /// Runs the scripted workload (30 inserts, snapshot, 30 inserts,
  /// snapshot, 30 inserts) with a crash injected at the `nth` occurrence
  /// of `point`; returns the keys whose mutation was acknowledged
  /// (insert() returned) before the crash.
  std::vector<std::string> run_until_crash(std::string_view point, int nth) {
    fs::remove_all(dir_);
    const auto keys = generate_unique_strings(90, 6, 21);
    int seen = 0;
    DurableMpcbf<64>::Options opt;
    opt.fsync = false;  // crash model here is process death, not power loss
    opt.flush_every = 1;
    opt.crash_hook = [&](std::string_view p) {
      if (p == point && ++seen == nth) throw SimulatedCrash{};
    };
    std::vector<std::string> acked;
    try {
      DurableMpcbf<64> d(dir_, config(), opt);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        d.insert(keys[i]);
        acked.push_back(keys[i]);
        if (i == 29 || i == 59) d.snapshot();
      }
    } catch (const SimulatedCrash&) {
    }
    return acked;
  }

  fs::path dir_;
};

TEST_F(CrashPointTest, NoAcknowledgedMutationIsLostAtAnyCrashPoint) {
  const struct {
    std::string_view point;
    std::vector<int> nths;  // occurrence indices to crash at
  } scenarios[] = {
      // Journal points fire once per insert: crash in the first batch,
      // after the first snapshot, and after the second snapshot.
      {"journal:pre-append", {1, 45, 75}},
      {"journal:post-append", {1, 45, 75}},
      {"journal:post-flush", {1, 45, 75}},
      // Snapshot points fire once per snapshot() call.
      {"snapshot:post-temp-write", {1, 2}},
      {"snapshot:pre-rename", {1, 2}},
      {"snapshot:post-rename", {1, 2}},
      {"snapshot:post-journal-reset", {1, 2}},
  };
  const MpcbfConfig cfg = config();
  for (const auto& scenario : scenarios) {
    for (const int nth : scenario.nths) {
      const auto acked = run_until_crash(scenario.point, nth);
      const Mpcbf<64> recovered = DurableMpcbf<64>::recover(dir_, &cfg);
      EXPECT_TRUE(recovered.validate());
      for (const auto& key : acked) {
        EXPECT_TRUE(recovered.contains(key))
            << "lost \"" << key << "\" crashing at " << scenario.point
            << " occurrence " << nth << " (" << acked.size() << " acked)";
      }
    }
  }
}

TEST_F(CrashPointTest, ReopenAfterCrashContinuesCleanly) {
  // After a crash at the nastiest point (snapshot published, journal not
  // yet truncated), a plain reopen must resume with the full state and
  // keep accepting writes.
  const auto acked = run_until_crash("snapshot:post-rename", 2);
  DurableMpcbf<64>::Options opt;
  opt.fsync = false;
  DurableMpcbf<64> d(dir_, config(), opt);
  for (const auto& key : acked) EXPECT_TRUE(d.contains(key));
  EXPECT_TRUE(d.insert("post-crash-key"));
  EXPECT_TRUE(d.contains("post-crash-key"));
}

}  // namespace
