// HeavyHitterSketch: conservative estimates, threshold admission, top-k
// ordering, decay via deletion, and recall against exact ground truth on
// a skewed stream.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "apps/heavy_hitters.hpp"
#include "common/rng.hpp"
#include "workload/flow_trace.hpp"

namespace {

using mpcbf::apps::HeavyHitterSketch;

HeavyHitterSketch::Config small_config() {
  HeavyHitterSketch::Config cfg;
  cfg.memory_bits = 1 << 18;
  cfg.expected_distinct = 2000;
  cfg.threshold = 5;
  return cfg;
}

TEST(HeavyHitters, EstimatesNeverUndercount) {
  HeavyHitterSketch sketch(small_config());
  std::unordered_map<std::string, std::uint64_t> exact;
  mpcbf::util::Xoshiro256 rng(501);
  for (int i = 0; i < 20000; ++i) {
    // Skewed stream: low ids much hotter.
    const auto id = static_cast<std::uint64_t>(
        rng.uniform01() * rng.uniform01() * 500);
    const std::string key = "k" + std::to_string(id);
    sketch.add(key);
    ++exact[key];
  }
  for (const auto& h : sketch.top(50)) {
    ASSERT_GE(h.estimate, exact[h.key]) << h.key;
  }
  EXPECT_EQ(sketch.total_occurrences(), 20000u);
}

TEST(HeavyHitters, FindsTheActualHitters) {
  HeavyHitterSketch::Config cfg = small_config();
  cfg.threshold = 50;
  HeavyHitterSketch sketch(cfg);
  // Three known heavy keys in a sea of singletons.
  for (int i = 0; i < 500; ++i) sketch.add("elephant-1");
  for (int i = 0; i < 300; ++i) sketch.add("elephant-2");
  for (int i = 0; i < 100; ++i) sketch.add("elephant-3");
  for (int i = 0; i < 5000; ++i) {
    sketch.add("mouse-" + std::to_string(i));
  }
  const auto top = sketch.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "elephant-1");
  EXPECT_EQ(top[1].key, "elephant-2");
  EXPECT_EQ(top[2].key, "elephant-3");
  EXPECT_GE(top[0].estimate, 500u);
}

TEST(HeavyHitters, BelowThresholdNotAdmitted) {
  HeavyHitterSketch::Config cfg = small_config();
  cfg.threshold = 10;
  HeavyHitterSketch sketch(cfg);
  for (int i = 0; i < 9; ++i) sketch.add("warm");
  EXPECT_EQ(sketch.candidate_count(), 0u);
  sketch.add("warm");
  EXPECT_GE(sketch.candidate_count(), 1u);
}

TEST(HeavyHitters, DecayEvictsCooledKeys) {
  HeavyHitterSketch::Config cfg = small_config();
  cfg.threshold = 10;
  HeavyHitterSketch sketch(cfg);
  for (int i = 0; i < 20; ++i) sketch.add("hot");
  ASSERT_GE(sketch.candidate_count(), 1u);
  for (int i = 0; i < 15; ++i) sketch.remove("hot");
  // Estimate now below threshold: candidate evicted.
  EXPECT_EQ(sketch.candidate_count(), 0u);
  EXPECT_EQ(sketch.total_occurrences(), 5u);
}

TEST(HeavyHitters, TopIsSortedAndBounded) {
  HeavyHitterSketch::Config cfg = small_config();
  cfg.threshold = 2;
  HeavyHitterSketch sketch(cfg);
  for (int k = 1; k <= 20; ++k) {
    for (int i = 0; i < k * 3; ++i) {
      sketch.add("key-" + std::to_string(k));
    }
  }
  const auto top = sketch.top(5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].estimate, top[i].estimate);
  }
  EXPECT_EQ(top[0].key, "key-20");
}

TEST(HeavyHitters, WorksOnFlowTrace) {
  mpcbf::workload::FlowTraceConfig tcfg;
  tcfg.total_packets = 60000;
  tcfg.unique_flows = 5000;
  tcfg.seed = 502;
  const auto trace = mpcbf::workload::FlowTrace::generate(tcfg);

  HeavyHitterSketch::Config cfg;
  cfg.memory_bits = tcfg.unique_flows * 64;
  cfg.expected_distinct = tcfg.unique_flows;
  cfg.threshold = 40;
  HeavyHitterSketch sketch(cfg);

  std::unordered_map<std::uint64_t, std::uint64_t> exact;
  for (std::size_t i = 0; i < trace.packets().size(); ++i) {
    sketch.add(trace.packet_key(i));
    ++exact[trace.packets()[i]];
  }
  // Every flow above 2x threshold must be among the candidates (the
  // sketch never undercounts, so it cannot miss them).
  std::size_t big = 0;
  for (const auto& [flow, count] : exact) {
    if (count >= 2 * cfg.threshold) ++big;
  }
  ASSERT_GT(big, 0u);
  EXPECT_GE(sketch.candidate_count(), big);
}

}  // namespace
