// ThreadPool: completion guarantees, parallel_for coverage, and teardown
// under queued work.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.hpp"

namespace {

using mpcbf::util::parallel_for;
using mpcbf::util::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto fut = pool.submit([] {});
  fut.get();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
    // Pool destroyed here; all queued tasks must still run.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, StopDrainsQueueAndJoins) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    (void)pool.submit([&done] { done.fetch_add(1); });
  }
  pool.stop();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  // A task accepted after stop() would never run; the pool must refuse
  // it loudly instead of dropping it (net::Server relies on this being
  // a defined error during shutdown races).
  ThreadPool pool(2);
  pool.stop();
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
  pool.stop();  // idempotent
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, SubmitAfterDestructorPathStopThrowsConsistently) {
  ThreadPool pool(1);
  auto fut = pool.submit([] {});
  fut.get();
  pool.stop();
  // size() reports zero workers once stopped; submit stays an error.
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, DefaultThreadsNonZero) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPool, TasksRunConcurrentlyWhenPossible) {
  // Not a strict requirement on 1-core hosts, but the pool must at least
  // not deadlock when tasks block on each other's side effects via
  // futures resolved in submission order.
  ThreadPool pool(2);
  std::atomic<int> stage{0};
  auto f1 = pool.submit([&stage] { stage.store(1); });
  f1.get();
  auto f2 = pool.submit([&stage] {
    if (stage.load() == 1) stage.store(2);
  });
  f2.get();
  EXPECT_EQ(stage.load(), 2);
}

}  // namespace
