// Deterministic RNG substrate: reproducibility, range contracts, and
// rough uniformity (enough to trust the workload generators).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "common/rng.hpp"

namespace {

using mpcbf::util::SplitMix64;
using mpcbf::util::Xoshiro256;

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, KnownVectors) {
  // Reference values for seed 1234567 from the public-domain sample code.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
}

TEST(SplitMix64, MixIsStatelessAndAvalanches) {
  EXPECT_EQ(SplitMix64::mix(7), SplitMix64::mix(7));
  // Flipping a single input bit flips roughly half of the output bits.
  const std::uint64_t a = SplitMix64::mix(0x1234);
  const std::uint64_t b = SplitMix64::mix(0x1235);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GT(flipped, 16);
  EXPECT_LT(flipped, 48);
}

TEST(Xoshiro256, DeterministicAndSeedSensitive) {
  Xoshiro256 a(9);
  Xoshiro256 b(9);
  Xoshiro256 c(10);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 52ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, BoundedRoughlyUniform) {
  Xoshiro256 rng(5);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> hist{};
  for (int i = 0; i < kDraws; ++i) {
    ++hist[rng.bounded(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int h : hist) {
    EXPECT_NEAR(h, expected, expected * 0.06);
  }
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(77);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 50000.0, 0.5, 0.01);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  EXPECT_NO_THROW((void)rng());
}

}  // namespace
