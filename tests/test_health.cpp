// HealthProber: component metrics on empty and loaded filters, alarm
// firing at saturation (callback + instance counter + registry counter),
// FPR drift agreement with the closed-form model, gauge publication,
// and the background watch() lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mpcbf.hpp"
#include "metrics/health.hpp"
#include "metrics/registry.hpp"
#include "workload/string_sets.hpp"

namespace {

using mpcbf::core::Mpcbf;
using mpcbf::core::MpcbfConfig;
using mpcbf::core::OverflowPolicy;
using mpcbf::metrics::HealthProber;
using mpcbf::metrics::HealthSample;
using mpcbf::metrics::Registry;
using mpcbf::metrics::Severity;

Mpcbf<64> make_filter(std::size_t memory_bits, std::size_t expected_n,
                      unsigned k = 3, unsigned g = 1) {
  MpcbfConfig cfg;
  cfg.memory_bits = memory_bits;
  cfg.k = k;
  cfg.g = g;
  cfg.expected_n = expected_n;
  cfg.policy = OverflowPolicy::kStash;
  return Mpcbf<64>(cfg);
}

TEST(Health, EmptyFilterScoresZeroAndOk) {
  auto filter = make_filter(1 << 16, 1000);
  Registry reg;
  HealthProber::Config cfg;
  cfg.registry = &reg;
  cfg.fpr_probes = 256;
  HealthProber prober(std::move(cfg));
  const HealthSample s = prober.probe(filter);
  EXPECT_EQ(s.elements, 0u);
  EXPECT_DOUBLE_EQ(s.level1_fill, 0.0);
  EXPECT_DOUBLE_EQ(s.saturation_score, 0.0);
  EXPECT_EQ(s.severity, Severity::kOk);
  EXPECT_EQ(prober.alarms(), 0u);
}

TEST(Health, FreshFilterProducesNoNaNAnywhere) {
  // Regression: probing a freshly-constructed (or degenerate) filter
  // must never leak NaN/Inf into the sample, the score, or the exported
  // gauges — a NaN score silently disables the alarm comparisons and a
  // NaN gauge poisons Prometheus rate() queries. Every ratio field is
  // scrubbed through finite_or_zero() before scoring.
  auto filter = make_filter(1 << 12, 64);  // fresh: zero elements
  Registry reg;
  HealthProber::Config cfg;
  cfg.registry = &reg;
  cfg.fpr_probes = 0;  // zero-probe path: measured FPR must be 0, not 0/0
  HealthProber prober(std::move(cfg));
  const HealthSample s = prober.probe(filter);

  for (const double v :
       {s.level1_fill, s.hierarchy_utilization, s.stash_pressure,
        s.overflow_rate, s.predicted_fpr, s.measured_fpr, s.fpr_drift,
        s.saturation_score}) {
    EXPECT_TRUE(std::isfinite(v)) << v;
  }
  EXPECT_DOUBLE_EQ(s.measured_fpr, 0.0);
  EXPECT_EQ(s.severity, Severity::kOk);

  std::ostringstream os;
  reg.write_prometheus(os);
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
  EXPECT_EQ(os.str().find("inf"), std::string::npos);
}

TEST(Health, LoadedFilterReportsFillAndUtilization) {
  auto filter = make_filter(1 << 18, 4000);
  const auto keys = mpcbf::workload::generate_unique_strings(4000, 5, 11);
  for (const auto& k : keys) filter.insert(k);

  Registry reg;
  HealthProber::Config cfg;
  cfg.registry = &reg;
  HealthProber prober(std::move(cfg));
  const HealthSample s = prober.probe(filter);
  EXPECT_EQ(s.elements, 4000u);
  EXPECT_GT(s.level1_fill, 0.0);
  EXPECT_LT(s.level1_fill, 1.0);
  EXPECT_GT(s.hierarchy_utilization, 0.0);
  EXPECT_FALSE(s.hierarchy_histogram.empty());
  EXPECT_GE(s.saturation_score, 100.0 * s.level1_fill - 1e-9);
}

TEST(Health, SaturatedFilterFiresAlarms) {
  // Undersized on purpose: ~16x more elements than the geometry expects
  // drives level-1 fill (and the stash) toward saturation.
  auto filter = make_filter(4096, 64);
  const auto keys = mpcbf::workload::generate_unique_strings(1000, 5, 23);
  for (const auto& k : keys) filter.insert(k);

  Registry reg;
  std::atomic<int> callback_fires{0};
  Severity seen = Severity::kOk;
  HealthProber::Config cfg;
  cfg.registry = &reg;
  cfg.fpr_probes = 64;
  cfg.on_alarm = [&](const HealthSample& s) {
    callback_fires.fetch_add(1);
    seen = s.severity;
  };
  HealthProber prober(std::move(cfg));
  const HealthSample s = prober.probe(filter);

  EXPECT_GE(s.saturation_score, 90.0);
  EXPECT_EQ(s.severity, Severity::kCritical);
  EXPECT_EQ(seen, Severity::kCritical);
  EXPECT_EQ(callback_fires.load(), 1);
  EXPECT_EQ(prober.alarms(), 1u);

  std::ostringstream os;
  reg.write_prometheus(os);
  EXPECT_NE(os.str().find("mpcbf_health_alarms_total{filter=\"mpcbf\","
                          "severity=\"critical\"} 1"),
            std::string::npos);
}

TEST(Health, WarnThresholdClassifiesBetweenOkAndCritical) {
  auto filter = make_filter(1 << 16, 1000);
  const auto keys = mpcbf::workload::generate_unique_strings(1000, 5, 7);
  for (const auto& k : keys) filter.insert(k);

  HealthProber::Config cfg;
  cfg.registry = nullptr;  // classification only, no gauges
  cfg.fpr_probes = 0;
  HealthProber probe_only(std::move(cfg));
  const HealthSample base = probe_only.sample(filter);
  ASSERT_GT(base.saturation_score, 0.0);

  // Re-classify the same filter with thresholds straddling its score.
  HealthProber::Config warn_cfg;
  warn_cfg.registry = nullptr;
  warn_cfg.fpr_probes = 0;
  warn_cfg.warn_score = base.saturation_score - 1.0;
  warn_cfg.critical_score = base.saturation_score + 1.0;
  HealthProber warn_prober(std::move(warn_cfg));
  EXPECT_EQ(warn_prober.sample(filter).severity, Severity::kWarn);

  HealthProber::Config crit_cfg;
  crit_cfg.registry = nullptr;
  crit_cfg.fpr_probes = 0;
  crit_cfg.warn_score = base.saturation_score / 2.0;
  crit_cfg.critical_score = base.saturation_score - 1.0;
  HealthProber crit_prober(std::move(crit_cfg));
  EXPECT_EQ(crit_prober.sample(filter).severity, Severity::kCritical);
}

TEST(Health, FprDriftAgreesWithModel) {
  // At a memory budget tight enough for a measurable FPR, the empirical
  // probe should land near the eq. (8)/(9) prediction — the same
  // model-vs-measurement agreement bench_fig07 demonstrates.
  const std::size_t n = 20000;
  auto filter = make_filter(n * 8, n, 3, 1);
  const auto keys = mpcbf::workload::generate_unique_strings(n, 5, 99);
  for (const auto& k : keys) filter.insert(k);

  HealthProber::Config cfg;
  cfg.registry = nullptr;
  cfg.fpr_probes = 50000;
  HealthProber prober(std::move(cfg));
  const HealthSample s = prober.sample(filter);

  ASSERT_GT(s.predicted_fpr, 0.0);
  // Enough probes that the expected false-positive count is well above
  // Poisson noise.
  ASSERT_GE(s.predicted_fpr * static_cast<double>(cfg.fpr_probes), 20.0);
  EXPECT_GT(s.measured_fpr, s.predicted_fpr / 4.0);
  EXPECT_LT(s.measured_fpr, s.predicted_fpr * 4.0);
  EXPECT_NEAR(s.fpr_drift, s.measured_fpr - s.predicted_fpr, 1e-12);
}

TEST(Health, PublishesGaugesIntoRegistry) {
  auto filter = make_filter(1 << 16, 500);
  filter.insert("one");
  filter.insert("two");

  Registry reg;
  HealthProber::Config cfg;
  cfg.registry = &reg;
  cfg.filter_label = "unit";
  cfg.fpr_probes = 128;
  HealthProber prober(std::move(cfg));
  prober.probe(filter);

  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  for (const char* gauge :
       {"mpcbf_health_level1_fill{filter=\"unit\"}",
        "mpcbf_health_hierarchy_utilization{filter=\"unit\"}",
        "mpcbf_health_stash_pressure{filter=\"unit\"}",
        "mpcbf_health_overflow_rate{filter=\"unit\"}",
        "mpcbf_health_fpr_predicted{filter=\"unit\"}",
        "mpcbf_health_fpr_measured{filter=\"unit\"}",
        "mpcbf_health_fpr_drift{filter=\"unit\"}",
        "mpcbf_health_saturation_score{filter=\"unit\"}",
        "mpcbf_health_elements{filter=\"unit\"} 2",
        "mpcbf_health_hierarchy_words{filter=\"unit\",used=\"0\"}"}) {
    EXPECT_NE(text.find(gauge), std::string::npos) << gauge;
  }
}

TEST(Health, WatchFiresRepeatedlyUntilStopped) {
  auto filter = make_filter(4096, 64);
  const auto keys = mpcbf::workload::generate_unique_strings(1000, 5, 31);
  for (const auto& k : keys) filter.insert(k);

  Registry reg;
  std::atomic<int> fires{0};
  HealthProber::Config cfg;
  cfg.registry = &reg;
  cfg.fpr_probes = 0;
  cfg.on_alarm = [&](const HealthSample&) { fires.fetch_add(1); };
  HealthProber prober(std::move(cfg));
  prober.watch(filter, std::chrono::milliseconds(5));
  while (fires.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  prober.stop();
  prober.stop();  // idempotent
  const int after_stop = fires.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(fires.load(), after_stop);
  EXPECT_GE(prober.alarms(), 3u);
}

}  // namespace
